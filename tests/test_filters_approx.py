"""Approximate (thresholded) propagation: error bounds and gating."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthesize
from repro.errors import FilterError
from repro.filters import (
    approximate_precompute,
    approximation_error,
    last_pruning_stats,
    make_filter,
)


@pytest.fixture(scope="module")
def graph():
    return synthesize("cora", scale=0.3, seed=0)


@pytest.fixture(scope="module")
def sparse_features(graph):
    """One-hot-ish features: AGP's actual operating regime."""
    rng = np.random.default_rng(0)
    x = np.zeros((graph.num_nodes, 32), dtype=np.float32)
    x[np.arange(graph.num_nodes), rng.integers(0, 32, graph.num_nodes)] = 1.0
    return x


class TestExactness:
    def test_zero_threshold_is_exact(self, graph, sparse_features):
        f = make_filter("ppr", num_hops=8, alpha=0.2)
        exact = f.precompute(graph, sparse_features)
        approximate = approximate_precompute(f, graph, sparse_features,
                                             threshold=0.0)
        np.testing.assert_allclose(approximate, exact, atol=1e-4)

    @pytest.mark.parametrize("name", ["ppr", "hk", "monomial", "impulse",
                                      "linear", "identity"])
    def test_monomial_basis_filters_supported(self, graph, sparse_features,
                                              name):
        f = make_filter(name, num_hops=5)
        out = approximate_precompute(f, graph, sparse_features, threshold=0.01)
        assert out.shape == (graph.num_nodes, 1, 32)
        assert np.all(np.isfinite(out))


class TestErrorBehaviour:
    def test_error_grows_with_threshold(self, graph, sparse_features):
        f = make_filter("ppr", num_hops=10, alpha=0.15)
        errors = [approximation_error(f, graph, sparse_features, thr)
                  for thr in (0.01, 0.05, 0.2)]
        assert errors[0] < errors[1] < errors[2]

    def test_density_shrinks_with_threshold(self, graph, sparse_features):
        f = make_filter("ppr", num_hops=10, alpha=0.15)
        densities = []
        for thr in (0.01, 0.2):
            approximate_precompute(f, graph, sparse_features, threshold=thr)
            densities.append(last_pruning_stats()["density"])
        assert densities[1] < densities[0]

    def test_small_threshold_small_error(self, graph, sparse_features):
        f = make_filter("ppr", num_hops=10, alpha=0.15)
        assert approximation_error(f, graph, sparse_features, 0.01) < 0.1

    def test_stats_report_configuration(self, graph, sparse_features):
        f = make_filter("hk", num_hops=6)
        approximate_precompute(f, graph, sparse_features, threshold=0.03)
        stats = last_pruning_stats()
        assert stats["threshold"] == 0.03
        assert stats["hops"] == 6
        assert 0.0 < stats["density"] <= 1.0


class TestGating:
    def test_variable_filter_rejected(self, graph, sparse_features):
        with pytest.raises(FilterError):
            approximate_precompute(make_filter("chebyshev"), graph,
                                   sparse_features)

    def test_gaussian_rejected(self, graph, sparse_features):
        # Gaussian uses the product form, not the monomial basis.
        with pytest.raises(FilterError):
            approximate_precompute(make_filter("gaussian"), graph,
                                   sparse_features)

    def test_bad_threshold(self, graph, sparse_features):
        f = make_filter("ppr")
        with pytest.raises(FilterError):
            approximate_precompute(f, graph, sparse_features, threshold=1.0)
        with pytest.raises(FilterError):
            approximate_precompute(f, graph, sparse_features, threshold=-0.1)
