"""Baseline training loops (Table 6 runners) on tiny graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.baseline_runners import (
    BACKEND_LABELS,
    train_ansgt,
    train_iterative_baseline,
    train_nagphormer,
)
from repro.datasets import random_split, synthesize
from repro.errors import TrainingError
from repro.training import TrainConfig

CONFIG = TrainConfig(epochs=2, patience=0, eval_every=10, batch_size=128)


@pytest.fixture(scope="module")
def graph():
    return synthesize("cora", scale=0.08, seed=0)


@pytest.fixture(scope="module")
def split(graph):
    return random_split(graph.num_nodes, seed=0)


class TestIterativeRunner:
    @pytest.mark.parametrize("model_name", ["GCN", "GraphSAGE", "ChebNet"])
    def test_row_structure(self, graph, split, model_name):
        row = train_iterative_baseline(model_name, graph, split, CONFIG)
        assert row["model"] == model_name
        assert row["status"] == "ok"
        assert 0.0 <= row["accuracy"] <= 1.0
        assert row["train_s_per_epoch"] > 0
        assert row["device_bytes"] > 0

    def test_backend_labels(self, graph, split):
        row = train_iterative_baseline("GCN", graph, split, CONFIG,
                                       backend="coo_gather")
        assert row["backend"] == "EI"
        assert BACKEND_LABELS["csr"] == "SP"

    def test_ei_uses_more_device_memory(self, graph, split):
        sp_row = train_iterative_baseline("GCN", graph, split, CONFIG, "csr")
        ei_row = train_iterative_baseline("GCN", graph, split, CONFIG,
                                          "coo_gather")
        assert ei_row["device_bytes"] > sp_row["device_bytes"]

    def test_oom_reported(self, graph, split):
        row = train_iterative_baseline("GCN", graph, split, CONFIG,
                                       device_capacity_gib=1e-7)
        assert row["status"] == "oom"
        assert np.isnan(row["accuracy"])

    def test_unknown_model(self, graph, split):
        with pytest.raises(TrainingError):
            train_iterative_baseline("GAT", graph, split, CONFIG)


class TestTransformerRunners:
    def test_nagphormer_row(self, graph, split):
        row = train_nagphormer(graph, split, CONFIG, num_hops=2)
        assert row["model"] == "NAGphormer"
        assert row["status"] == "ok"
        assert row["precompute_s"] > 0  # hop2token stage exists
        assert 0.0 <= row["accuracy"] <= 1.0

    def test_ansgt_row(self, graph, split):
        row = train_ansgt(graph, split, CONFIG)
        assert row["model"] == "ANS-GT"
        assert row["status"] == "ok"
        assert row["precompute_s"] == 0.0  # samples inside the epoch
        assert 0.0 <= row["accuracy"] <= 1.0

    def test_transformer_oom(self, graph, split):
        row = train_nagphormer(graph, split, CONFIG,
                               device_capacity_gib=1e-7)
        assert row["status"] == "oom"
