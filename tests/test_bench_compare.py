"""Run comparison / regression tracking."""

from __future__ import annotations

import pytest

from repro.bench.compare import (
    MetricDelta,
    compare_files,
    compare_registry,
    compare_rows,
    registry_delta_rows,
)
from repro.bench.io import save_rows
from repro.errors import ReproError

BASE = [
    {"dataset": "cora", "filter": "ppr", "mean": 0.86, "train_s_per_epoch": 0.05},
    {"dataset": "cora", "filter": "hk", "mean": 0.80, "train_s_per_epoch": 0.05},
    {"dataset": "roman", "filter": "ppr", "mean": 0.50, "train_s_per_epoch": 0.06},
]


def candidate(mean_shift=0.0, time_factor=1.0, drop_last=False):
    rows = []
    for row in BASE[:-1] if drop_last else BASE:
        rows.append(dict(row, mean=row["mean"] + mean_shift,
                         train_s_per_epoch=row["train_s_per_epoch"] * time_factor))
    return rows


class TestAlignment:
    def test_full_match(self):
        comparison = compare_rows(BASE, candidate())
        assert comparison.matched == 3
        assert not comparison.baseline_only
        assert not comparison.candidate_only

    def test_missing_rows_reported(self):
        comparison = compare_rows(BASE, candidate(drop_last=True))
        assert comparison.matched == 2
        assert comparison.baseline_only == [("roman", "ppr")]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ReproError):
            compare_rows(BASE + [BASE[0]], candidate())

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            compare_rows([], BASE)

    def test_explicit_key_columns(self):
        comparison = compare_rows(BASE, candidate(),
                                  key_columns=("dataset", "filter"))
        assert comparison.matched == 3

    def test_no_keys_rejected(self):
        with pytest.raises(ReproError):
            compare_rows([{"x": 1.0}], [{"x": 2.0}])


class TestDeltas:
    def test_identical_runs_no_regressions(self):
        comparison = compare_rows(BASE, candidate())
        assert all(d.delta == 0 for d in comparison.deltas)
        assert comparison.regressions() == []

    def test_accuracy_drop_is_regression(self):
        comparison = compare_rows(BASE, candidate(mean_shift=-0.10))
        regressions = comparison.regressions(tolerance=0.05)
        assert regressions
        assert all(d.metric == "mean" for d in regressions)

    def test_accuracy_gain_is_not(self):
        comparison = compare_rows(BASE, candidate(mean_shift=+0.10))
        assert not [d for d in comparison.regressions(0.05)
                    if d.metric == "mean"]

    def test_time_increase_is_regression(self):
        comparison = compare_rows(BASE, candidate(time_factor=2.0))
        regressions = comparison.regressions(tolerance=0.05)
        assert any(d.metric == "train_s_per_epoch" for d in regressions)

    def test_time_decrease_is_not(self):
        comparison = compare_rows(BASE, candidate(time_factor=0.5))
        assert not comparison.regressions(0.05)

    def test_tolerance_respected(self):
        comparison = compare_rows(BASE, candidate(mean_shift=-0.02))
        assert not comparison.regressions(tolerance=0.10)
        assert comparison.regressions(tolerance=0.001)

    def test_summary_rows_shape(self):
        rows = compare_rows(BASE, candidate()).summary_rows()
        assert {"key", "metric", "baseline", "candidate", "delta"} <= set(rows[0])

    def test_metric_delta_relative(self):
        delta = MetricDelta(("cora",), "mean", baseline=0.5, candidate=0.55)
        assert delta.relative == pytest.approx(0.1)


class TestFiles:
    def test_compare_files(self, tmp_path):
        base_path = tmp_path / "base.json"
        cand_path = tmp_path / "cand.json"
        save_rows(BASE, base_path)
        save_rows(candidate(mean_shift=-0.2), cand_path)
        comparison = compare_files(base_path, cand_path)
        assert comparison.matched == 3
        assert comparison.regressions(0.05)


def _registry_record(timestamp, seconds, counters=None, summary=None):
    from repro.telemetry.registry import build_record

    manifest = {"experiment": "efficiency", "config": {"epochs": 2},
                "seed": 0, "datasets": ["cora"]}
    return build_record(
        manifest,
        stages={"train": {"seconds": seconds, "self_seconds": seconds / 2,
                          "ram_delta_bytes": 0}},
        metrics={"counters": dict(counters or {})},
        summary=dict(summary or {}),
        timestamp=timestamp,
    )


class TestRegistryDeltas:
    def test_stage_counter_summary_rows(self):
        base = _registry_record(1.0, 2.0, counters={"ops.spmm.flops": 100},
                                summary={"mean": 0.80})
        cand = _registry_record(2.0, 3.0, counters={"ops.spmm.flops": 150},
                                summary={"mean": 0.82})
        rows = registry_delta_rows(base, cand)
        by_metric = {r["metric"]: r for r in rows}
        train = by_metric["stages.train.seconds"]
        assert train["delta"] == pytest.approx(1.0)
        assert train["rel"] == pytest.approx(0.5)
        assert by_metric["counters.ops.spmm.flops"]["delta"] == 50
        assert by_metric["summary.mean"]["delta"] == pytest.approx(0.02)

    def test_unchanged_counters_omitted_and_zero_rows_finite(self):
        base = _registry_record(1.0, 2.0, counters={"ops.spmm.flops": 100})
        cand = _registry_record(2.0, 2.0, counters={"ops.spmm.flops": 100})
        rows = registry_delta_rows(base, cand)
        metrics = {r["metric"] for r in rows}
        assert "counters.ops.spmm.flops" not in metrics
        # 0 -> 0 rows report rel 0, not inf.
        ram = next(r for r in rows
                   if r["metric"] == "stages.train.ram_delta_bytes")
        assert ram["rel"] == 0.0

    def test_compare_registry_resolves_latest_pair(self, tmp_path):
        from repro.telemetry.registry import RunRegistry

        registry = RunRegistry(tmp_path)
        registry.append(_registry_record(1.0, 1.0))
        registry.append(_registry_record(2.0, 2.0))
        registry.append(_registry_record(3.0, 4.0))
        fingerprint = registry.load()[0].config_fingerprint
        baseline, candidate, rows = compare_registry(
            fingerprint, registry_dir=tmp_path)
        # Two most recent: 2.0s -> 4.0s, the first run is out of the diff.
        assert baseline.timestamp == 2.0 and candidate.timestamp == 3.0
        train = next(r for r in rows if r["metric"] == "stages.train.seconds")
        assert train["baseline"] == 2.0 and train["candidate"] == 4.0

    def test_compare_registry_unknown_spec(self, tmp_path):
        with pytest.raises(ReproError, match="need 2"):
            compare_registry("no-such-config", registry_dir=tmp_path)
