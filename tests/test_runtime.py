"""Device model, profiler, and hardware profiles."""

from __future__ import annotations

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autodiff import Tensor
from repro.errors import DeviceOOMError
from repro.runtime import (
    GIBIBYTE,
    S1,
    S2,
    DeviceModel,
    HardwareProfile,
    StageProfiler,
    nbytes_of,
)


class TestNbytesOf:
    def test_int_passthrough(self):
        assert nbytes_of(1024) == 1024

    def test_ndarray(self):
        assert nbytes_of(np.zeros((10, 10), dtype=np.float32)) == 400

    def test_sparse(self):
        m = sp.random(20, 20, density=0.2, format="csr")
        assert nbytes_of(m) == m.data.nbytes + m.indices.nbytes + m.indptr.nbytes

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            nbytes_of("hello")


class TestDeviceModel:
    def test_persistent_accounting(self):
        device = DeviceModel()
        device.to_device(np.zeros(100, dtype=np.float32))
        assert device.persistent_bytes == 400
        assert device.peak_bytes == 400

    def test_free(self):
        device = DeviceModel()
        arr = np.zeros(10, dtype=np.float32)
        device.to_device(arr)
        device.free(arr)
        assert device.persistent_bytes == 0
        assert device.peak_bytes == 40  # peak remembers

    def test_step_meters_tensor_allocations(self):
        device = DeviceModel()
        with device.step():
            Tensor(np.zeros((5, 5), dtype=np.float32))
        assert device.peak_bytes == 100

    def test_transient_resets_between_steps(self):
        device = DeviceModel()
        for _ in range(3):
            with device.step():
                Tensor(np.zeros((5, 5), dtype=np.float32))
        assert device.peak_bytes == 100  # not 300: steps free activations

    def test_peak_is_persistent_plus_transient(self):
        device = DeviceModel()
        device.to_device(1000)
        with device.step():
            Tensor(np.zeros(25, dtype=np.float32))  # +100
        assert device.peak_bytes == 1100

    def test_oom_raised_at_capacity(self):
        device = DeviceModel(capacity_bytes=500)
        device.to_device(400)
        with pytest.raises(DeviceOOMError):
            device.to_device(200)

    def test_oom_during_step(self):
        device = DeviceModel(capacity_bytes=150)
        with pytest.raises(DeviceOOMError):
            with device.step():
                Tensor(np.zeros(100, dtype=np.float32))  # 400 B > 150

    def test_hook_removed_after_oom(self):
        device = DeviceModel(capacity_bytes=150)
        try:
            with device.step():
                Tensor(np.zeros(100, dtype=np.float32))
        except DeviceOOMError:
            pass
        # Allocation outside a step must not be metered any more.
        before = device.peak_bytes
        Tensor(np.zeros(100, dtype=np.float32))
        assert device.peak_bytes == before

    def test_oom_error_carries_numbers(self):
        device = DeviceModel(capacity_bytes=100)
        with pytest.raises(DeviceOOMError) as info:
            device.to_device(200)
        assert info.value.requested_bytes == 200
        assert info.value.capacity_bytes == 100

    def test_reset(self):
        device = DeviceModel()
        device.to_device(100)
        device.reset()
        assert device.peak_bytes == 0
        assert device.persistent_bytes == 0

    def test_peak_gib(self):
        device = DeviceModel()
        device.to_device(GIBIBYTE)
        assert device.peak_gib == pytest.approx(1.0)

    def test_nested_step_is_flat(self):
        device = DeviceModel()
        with device.step():
            with device.step():
                Tensor(np.zeros(25, dtype=np.float32))
        assert device.peak_bytes == 100


class TestDeviceModelEdgeCases:
    def test_free_unregistered_clamps_at_zero(self):
        """Freeing an object never registered must not drive residency
        negative (and so corrupt every later peak computation)."""
        device = DeviceModel()
        device.free(np.zeros(100, dtype=np.float32))
        assert device.persistent_bytes == 0
        device.to_device(400)
        device.free(1000)  # over-free: clamps, not -600
        assert device.persistent_bytes == 0
        with device.step():
            Tensor(np.zeros(200, dtype=np.float32))  # 800 B transient
        # A -600 B residency would hide this step under the old 400 B
        # peak; the clamp keeps transient accounting honest.
        assert device.peak_bytes == 800

    def test_step_reentry_outer_keeps_metering_after_inner_exit(self):
        """An inner (re-entrant) step is a flat no-op: its exit must not
        tear down the outer step's metering."""
        device = DeviceModel()
        with device.step():
            with device.step():
                pass
            Tensor(np.zeros(25, dtype=np.float32))  # after inner exit
        assert device.peak_bytes == 100

    def test_nbytes_of_coo_counts_converted_csr(self):
        """Sparse sizes are quoted in CSR terms regardless of input
        format — the format the compute path actually holds resident."""
        m = sp.random(50, 40, density=0.1, format="coo", random_state=7)
        csr = m.tocsr()
        expected = csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
        assert nbytes_of(m) == expected
        assert nbytes_of(m.tocsc()) == expected

    def test_oom_mid_step_removes_only_device_hook(self):
        """A simulated OOM unwinds the device's own subscription but must
        leave sibling subscribers (e.g. the allocation ledger) installed."""
        from repro.autodiff.tensor import (
            add_allocation_hook,
            remove_allocation_hook,
        )

        seen = []

        def sibling(nbytes, array, op):
            seen.append(nbytes)

        add_allocation_hook(sibling)
        try:
            device = DeviceModel(capacity_bytes=150)
            with pytest.raises(DeviceOOMError):
                with device.step():
                    Tensor(np.zeros(100, dtype=np.float32))
            before = device.peak_bytes
            Tensor(np.zeros(100, dtype=np.float32))
            assert device.peak_bytes == before  # device hook gone…
            assert seen == [400, 400]           # …sibling still subscribed
        finally:
            remove_allocation_hook(sibling)


class TestStageProfiler:
    def test_stage_timing_accumulates(self):
        profiler = StageProfiler()
        for _ in range(3):
            with profiler.stage("train"):
                time.sleep(0.001)
        stats = profiler.stages["train"]
        assert stats.calls == 3
        assert stats.seconds > 0
        assert stats.seconds_per_call == pytest.approx(stats.seconds / 3)

    def test_memory_records_peak(self):
        profiler = StageProfiler()
        profiler.record_ram("precompute", 100)
        profiler.record_ram("precompute", 50)
        assert profiler.stages["precompute"].ram_bytes == 100

    def test_summary_fields(self):
        profiler = StageProfiler()
        with profiler.stage("train", op_class="propagation"):
            pass
        summary = profiler.summary()
        assert summary["train"]["op_class"] == "propagation"
        assert summary["train"]["calls"] == 1

    def test_peaks_across_stages(self):
        profiler = StageProfiler()
        profiler.record_ram("a", 10)
        profiler.record_device("b", 30)
        assert profiler.peak_ram_bytes() == 10
        assert profiler.peak_device_bytes() == 30

    def test_merge(self):
        a, b = StageProfiler(), StageProfiler()
        with a.stage("train"):
            pass
        with b.stage("train"):
            pass
        b.record_ram("train", 99)
        a.merge(b)
        assert a.stages["train"].calls == 2
        assert a.stages["train"].ram_bytes == 99

    def test_missing_stage_seconds_zero(self):
        assert StageProfiler().seconds("nope") == 0.0

    def test_merge_keeps_first_nondefault_op_class(self):
        # Regression: merge used to clobber op_class with the incoming
        # stage's default ("transform") even when ours was classified.
        a, b = StageProfiler(), StageProfiler()
        with a.stage("precompute", op_class="propagation"):
            pass
        b.record_ram("precompute", 42)  # never entered -> default op_class
        a.merge(b)
        assert a.stages["precompute"].op_class == "propagation"

    def test_merge_adopts_incoming_classification(self):
        a, b = StageProfiler(), StageProfiler()
        a.record_ram("precompute", 1)  # default op_class
        with b.stage("precompute", op_class="propagation"):
            pass
        a.merge(b)
        assert a.stages["precompute"].op_class == "propagation"

    def test_reset_clears_stages(self):
        profiler = StageProfiler()
        with profiler.stage("train"):
            pass
        profiler.record_ram("train", 100)
        profiler.reset()
        assert profiler.stages == {}
        assert profiler.peak_ram_bytes() == 0
        assert profiler.seconds("train") == 0.0

    def test_zero_call_stage_seconds_per_call(self):
        # record_ram creates the stage with zero calls; summary must not
        # divide by zero or report NaN.
        profiler = StageProfiler()
        profiler.record_ram("inference", 10)
        stats = profiler.stages["inference"]
        assert stats.calls == 0
        assert stats.seconds_per_call == 0.0
        summary = profiler.summary()
        assert summary["inference"]["seconds_per_call"] == 0.0


class TestHardwareProfiles:
    def test_s2_speeds(self):
        assert S2.propagation_speed < 1.0  # slower CPU
        assert S2.transform_speed > 1.0    # faster GPU

    def test_scaling_direction(self):
        profiler = StageProfiler()
        with profiler.stage("precompute", op_class="propagation"):
            time.sleep(0.002)
        with profiler.stage("train", op_class="transform"):
            time.sleep(0.002)
        summary = profiler.summary()
        s1 = S1.scale_stage_seconds(summary)
        s2 = S2.scale_stage_seconds(summary)
        assert s2["precompute"] > s1["precompute"]  # propagation slower on S2
        assert s2["train"] < s1["train"]            # transform faster on S2

    def test_custom_profile(self):
        profile = HardwareProfile("X", propagation_speed=2.0, transform_speed=0.5)
        scaled = profile.scale_stage_seconds(
            {"p": {"seconds": 1.0, "op_class": "propagation"},
             "t": {"seconds": 1.0, "op_class": "transform"}})
        assert scaled["p"] == 0.5
        assert scaled["t"] == 2.0
