"""Filter design: closed-form fitting of θ to target responses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import (
    basis_matrix,
    design_error,
    fit_filter_to_response,
    make_filter,
)

GRID = np.linspace(0.0, 2.0, 65)


def band(lam):
    return np.exp(-10.0 * (lam - 1.0) ** 2)


def lowpass(lam):
    return np.exp(-2.0 * lam)


class TestBasisMatrix:
    def test_shape(self):
        matrix = basis_matrix(make_filter("chebyshev", num_hops=6), GRID)
        assert matrix.shape == (65, 7)

    def test_columns_are_basis_values(self):
        matrix = basis_matrix(make_filter("chebyshev", num_hops=4), GRID)
        theta = np.arccos(np.clip(GRID - 1.0, -1, 1))
        np.testing.assert_allclose(matrix[:, 3], np.cos(3 * theta), atol=1e-8)


class TestFitting:
    @pytest.mark.parametrize("name", ["monomial_var", "chebyshev", "clenshaw",
                                      "bernstein", "legendre", "jacobi",
                                      "chebinterp", "horner"])
    def test_variable_filters_fit_lowpass_well(self, name):
        filter_ = make_filter(name, num_hops=10)
        params = fit_filter_to_response(filter_, lowpass)
        assert design_error(filter_, params, lowpass) < 0.02

    @pytest.mark.parametrize("name", ["chebyshev", "bernstein", "chebinterp"])
    def test_stable_bases_fit_bandpass(self, name):
        filter_ = make_filter(name, num_hops=10)
        params = fit_filter_to_response(filter_, band)
        assert design_error(filter_, params, band) < 0.05

    def test_fit_improves_over_default(self):
        filter_ = make_filter("chebyshev", num_hops=10)
        params = fit_filter_to_response(filter_, band)
        default = {"theta": filter_.default_coefficients()}
        assert design_error(filter_, params, band) < design_error(
            filter_, default, band)

    def test_bank_fitting(self):
        bank = make_filter("figure", num_hops=8)
        params = fit_filter_to_response(bank, band)
        assert "gamma" in params
        assert design_error(bank, params, band) < 0.1

    def test_fixed_bank_channels_get_gamma(self):
        bank = make_filter("g2cn", num_hops=10)
        params = fit_filter_to_response(bank, band)
        assert set(params) == {"gamma"}
        assert design_error(bank, params, band) < design_error(
            bank, None, band) + 1e-9

    def test_fixed_filter_rejected(self):
        with pytest.raises(FilterError):
            fit_filter_to_response(make_filter("ppr"), lowpass)

    def test_favard_rejected(self):
        with pytest.raises(FilterError):
            fit_filter_to_response(make_filter("favard", num_hops=5), lowpass)

    def test_bad_target_rejected(self):
        with pytest.raises(FilterError):
            fit_filter_to_response(make_filter("chebyshev"), lambda lam: 1.0)

    def test_custom_grid(self):
        grid = np.linspace(0.2, 1.8, 21)
        filter_ = make_filter("chebyshev", num_hops=8)
        params = fit_filter_to_response(filter_, lowpass, grid=grid)
        assert design_error(filter_, params, lowpass, grid=grid) < 0.02

    def test_fitted_params_drive_propagation(self, small_graph):
        """Designed θ filters an actual signal like the target response."""
        from repro.filters.base import PropagationContext
        from repro.spectral import laplacian_eigendecomposition

        filter_ = make_filter("chebyshev", num_hops=10)
        eigenvalues, eigenvectors = laplacian_eigendecomposition(small_graph)
        params = fit_filter_to_response(filter_, lowpass, grid=eigenvalues)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(small_graph.num_nodes, 1)).astype(np.float32)
        ctx = PropagationContext.for_graph(small_graph)
        out = np.asarray(filter_.forward(ctx, x, params))
        expected = eigenvectors @ (lowpass(eigenvalues)[:, None] *
                                   (eigenvectors.T @ x))
        np.testing.assert_allclose(out, expected, atol=0.05)
