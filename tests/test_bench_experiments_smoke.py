"""Fast smoke tests for every experiment runner (tiny configs).

The full-size assertions live in ``benchmarks/``; these keep the runners'
row schemas and basic invariants covered by the quick test suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    degree_bias_experiment,
    hardware_experiment,
    hop_sweep_experiment,
    normalization_experiment,
    scale_shift_experiment,
    stability_experiment,
    tsne_experiment,
)
from repro.training import TrainConfig

TINY = TrainConfig(epochs=3, patience=0, eval_every=10, hidden=16)


class TestRunnersSmoke:
    def test_stability_rows(self):
        rows = stability_experiment(filters=("ppr",), dataset_names=("cora",),
                                    seeds=(0, 1), config=TINY)
        assert len(rows) == 2
        assert {r["split"] for r in rows} == {"random"}
        assert all(np.isfinite(r["score"]) for r in rows)

    def test_hardware_rows(self):
        rows = hardware_experiment(filters=("ppr",), dataset_name="cora",
                                   config=TINY)
        # 2 schemes × 2 platforms
        assert len(rows) == 4
        assert {r["platform"] for r in rows} == {"S1", "S2"}
        assert all(r["total_s"] > 0 for r in rows)

    def test_hop_sweep_rows(self):
        rows = hop_sweep_experiment(filters=("ppr",), dataset_names=("cora",),
                                    hops=(2, 4), config=TINY, seeds=(0,))
        assert [r["K"] for r in rows] == [2, 4]
        assert all(0 <= r["accuracy"] <= 1 for r in rows)

    def test_tsne_rows(self):
        rows = tsne_experiment(filters=("ppr",), dataset_names=("cora",),
                               config=TINY, tsne_iterations=30)
        assert rows[0]["embedding"].shape[1] == 2
        assert rows[0]["cluster_separation"] > 0

    def test_degree_bias_rows(self):
        rows = degree_bias_experiment(filters=("ppr",),
                                      dataset_names=("cora",),
                                      config=TINY, seeds=(0,))
        assert len(rows) == 1
        assert -1.0 <= rows[0]["degree_gap"] <= 1.0
        assert rows[0]["rho"] == 0.5

    def test_normalization_rows(self):
        rows = normalization_experiment(filters=("ppr",),
                                        dataset_names=("cora",),
                                        rhos=(0.0, 1.0), config=TINY,
                                        seeds=(0,))
        assert {r["rho"] for r in rows} == {0.0, 1.0}

    def test_scale_shift_rows(self):
        rows = scale_shift_experiment(filters=("ppr", "identity"),
                                      dataset_names=("cora",),
                                      seeds=(0,), config=TINY)
        best = max(r["relative_accuracy"] for r in rows)
        assert best == pytest.approx(1.0)
