"""Sparse-dense products: both backends, values and gradients."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autodiff import Tensor, spmm, spmm_numpy
from repro.errors import AutodiffError


@pytest.fixture
def matrix(rng):
    dense = rng.normal(size=(6, 6)) * (rng.random((6, 6)) < 0.4)
    return sp.csr_matrix(dense)


class TestSpmmForward:
    @pytest.mark.parametrize("backend", ["csr", "coo_gather"])
    def test_matches_dense(self, matrix, rng, backend):
        x = rng.normal(size=(6, 3))
        out = spmm(matrix, Tensor(x), backend=backend)
        np.testing.assert_allclose(out.data, matrix.toarray() @ x, atol=1e-5)

    @pytest.mark.parametrize("backend", ["csr", "coo_gather"])
    def test_numpy_path_matches(self, matrix, rng, backend):
        x = rng.normal(size=(6, 3)).astype(np.float32)
        np.testing.assert_allclose(
            spmm_numpy(matrix, x, backend=backend),
            matrix.toarray() @ x, atol=1e-4)

    def test_backends_agree(self, matrix, rng):
        x = rng.normal(size=(6, 4)).astype(np.float32)
        a = spmm_numpy(matrix, x, backend="csr")
        b = spmm_numpy(matrix, x, backend="coo_gather")
        np.testing.assert_allclose(a, b, atol=1e-4)

    def test_shape_mismatch_raises(self, matrix):
        with pytest.raises(AutodiffError):
            spmm(matrix, Tensor(np.zeros((5, 2))))

    def test_unknown_backend_raises(self, matrix):
        with pytest.raises(AutodiffError):
            spmm(matrix, Tensor(np.zeros((6, 2))), backend="cuda")
        with pytest.raises(AutodiffError):
            spmm_numpy(matrix, np.zeros((6, 2)), backend="cuda")


class TestSpmmBackward:
    @pytest.mark.parametrize("backend", ["csr", "coo_gather"])
    def test_gradient_is_transpose_product(self, matrix, rng, backend):
        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True, dtype=np.float64)
        out = spmm(matrix, x, backend=backend)
        seed = rng.normal(size=out.shape)
        out.backward(seed)
        np.testing.assert_allclose(x.grad, matrix.toarray().T @ seed, atol=1e-5)

    def test_chained_propagation_gradient(self, matrix, rng):
        # Two hops: d/dx sum(P P x) = (P^2)^T 1
        x = Tensor(rng.normal(size=(6, 2)), requires_grad=True, dtype=np.float64)
        spmm(matrix, spmm(matrix, x)).sum().backward()
        dense = matrix.toarray()
        expected = (dense @ dense).T @ np.ones((6, 2))
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)

    def test_no_grad_through_constant(self, matrix, rng):
        x = Tensor(rng.normal(size=(6, 2)))
        out = spmm(matrix, x)
        assert not out.requires_grad
