"""Package-level quality gates: API surface, docstrings, error hierarchy."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro.errors import (
    AutodiffError,
    DatasetError,
    DeviceOOMError,
    FilterError,
    GraphError,
    ReproError,
    TrainingError,
)

SUBPACKAGES = ["autodiff", "nn", "graph", "filters", "models", "datasets",
               "training", "tasks", "spectral", "runtime", "bench"]


def walk_modules():
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        if "__main__" in module_info.name:
            continue
        yield importlib.import_module(module_info.name)


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackages_importable(self, name):
        module = importlib.import_module(f"repro.{name}")
        assert module.__doc__, f"repro.{name} missing a module docstring"

    def test_all_exports_resolve(self):
        for module in walk_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_every_module_has_docstring(self):
        for module in walk_modules():
            assert module.__doc__, f"{module.__name__} missing docstring"

    def test_public_classes_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(obj) and obj.__module__ == module.__name__:
                    if not obj.__doc__:
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented

    def test_public_functions_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isfunction(obj) and obj.__module__ == module.__name__:
                    if not obj.__doc__:
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [GraphError, FilterError, AutodiffError,
                                     DatasetError, TrainingError,
                                     DeviceOOMError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_oom_carries_context(self):
        error = DeviceOOMError(100, 50, 120)
        assert error.requested_bytes == 100
        assert error.used_bytes == 50
        assert error.capacity_bytes == 120
        assert "out of memory" in str(error)

    def test_repro_error_catchable_for_all(self):
        with pytest.raises(ReproError):
            raise FilterError("x")
