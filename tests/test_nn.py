"""Modules: parameter discovery, state dicts, MLP/attention behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.autodiff.optim import Adam
from repro.autodiff import functional as F
from repro.nn import MLP, Linear, Module, ModuleList, Parameter, SelfAttention, TransformerBlock


class TestModule:
    def test_parameter_registration(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones((2, 2), dtype=np.float32))
                self.inner = Linear(2, 3, rng=rng)

        net = Net()
        names = dict(net.named_parameters())
        assert "w" in names
        assert "inner.weight" in names
        assert "inner.bias" in names
        assert net.parameter_count() == 4 + 6 + 3

    def test_train_eval_propagates(self, rng):
        mlp = MLP(4, 2, num_layers=2, rng=rng)
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_state_dict_roundtrip(self, rng):
        mlp = MLP(4, 2, num_layers=2, rng=rng)
        state = mlp.state_dict()
        for p in mlp.parameters():
            p.data = p.data + 1.0
        mlp.load_state_dict(state)
        for name, p in mlp.named_parameters():
            np.testing.assert_array_equal(p.data, state[name])

    def test_state_dict_copies(self, rng):
        mlp = MLP(4, 2, num_layers=1, rng=rng)
        state = mlp.state_dict()
        state["layers.0.weight"][:] = 99.0
        assert not np.any(mlp.layers[0].weight.data == 99.0)

    def test_zero_grad(self, rng):
        linear = Linear(3, 2, rng=rng)
        out = linear(Tensor(rng.normal(size=(4, 3)).astype(np.float32)))
        out.sum().backward()
        assert linear.weight.grad is not None
        linear.zero_grad()
        assert linear.weight.grad is None

    def test_module_list(self, rng):
        items = ModuleList([Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)])
        assert len(items) == 2
        assert items[0] is list(items)[0]
        # Parameters of children are discoverable.
        assert len(items.parameters()) == 4


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(7, 5)).astype(np.float32)))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_affine_exactness(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)


class TestMLP:
    def test_zero_layers_is_identity(self, rng):
        mlp = MLP(4, 9, num_layers=0, rng=rng)
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        assert mlp(x) is x
        assert mlp.parameter_count() == 0

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_depth_and_shapes(self, rng, depth):
        mlp = MLP(4, 2, hidden=8, num_layers=depth, rng=rng)
        out = mlp(Tensor(rng.normal(size=(5, 4)).astype(np.float32)))
        assert out.shape == (5, 2)
        assert len(mlp.layers) == depth

    def test_dropout_only_in_training(self, rng):
        mlp = MLP(4, 4, num_layers=1, dropout=0.9, rng=rng)
        x = Tensor(np.ones((8, 4), dtype=np.float32))
        mlp.eval()
        a = mlp(x).data
        b = mlp(x).data
        np.testing.assert_array_equal(a, b)  # deterministic when eval

    def test_learns_xor_like_split(self, rng):
        # Nonlinear separability requires depth >= 2 and ReLU.
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float32)
        y = np.array([0, 1, 1, 0])
        mlp = MLP(2, 2, hidden=16, num_layers=2, rng=np.random.default_rng(0))
        opt = Adam(mlp.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = F.cross_entropy(mlp(Tensor(np.tile(x, (8, 1)))), np.tile(y, 8))
            loss.backward()
            opt.step()
        mlp.eval()
        predictions = mlp(Tensor(x)).data.argmax(axis=1)
        np.testing.assert_array_equal(predictions, y)


class TestAttention:
    def test_self_attention_shape(self, rng):
        attn = SelfAttention(8, rng=rng)
        out = attn(Tensor(rng.normal(size=(3, 5, 8)).astype(np.float32)))
        assert out.shape == (3, 5, 8)

    def test_transformer_block_shape(self, rng):
        block = TransformerBlock(8, rng=rng)
        out = block(Tensor(rng.normal(size=(2, 4, 8)).astype(np.float32)))
        assert out.shape == (2, 4, 8)

    def test_attention_is_permutation_sensitive_output_aligned(self, rng):
        # Permuting tokens permutes outputs identically (no positional bias).
        attn = SelfAttention(6, rng=rng)
        x = rng.normal(size=(1, 4, 6)).astype(np.float32)
        out = attn(Tensor(x)).data
        perm = [2, 0, 3, 1]
        out_perm = attn(Tensor(x[:, perm, :])).data
        np.testing.assert_allclose(out[:, perm, :], out_perm, atol=1e-5)

    def test_gradients_flow(self, rng):
        block = TransformerBlock(6, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 6)).astype(np.float32))
        block(x).sum().backward()
        assert all(p.grad is not None for p in block.parameters())
