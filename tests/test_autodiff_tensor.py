"""Tensor ops and the backward pass, checked against numpy and finite
differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor, concatenate, no_grad, stack, where
from repro.autodiff.tensor import _unbroadcast, is_grad_enabled
from repro.errors import AutodiffError


def finite_diff(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar fn of one array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = grad.reshape(-1)
    xf = x.reshape(-1)
    for i in range(xf.size):
        orig = xf[i]
        xf[i] = orig + eps
        hi = fn(x)
        xf[i] = orig - eps
        lo = fn(x)
        xf[i] = orig
        flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(op, shape=(3, 4), seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    t = Tensor(x.copy(), requires_grad=True, dtype=np.float64)
    out = op(t).sum()
    out.backward()
    numeric = finite_diff(lambda arr: float(op(Tensor(arr, dtype=np.float64)).sum().item()), x)
    np.testing.assert_allclose(t.grad, numeric, atol=atol)


class TestConstruction:
    def test_wraps_array(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert t.shape == (2, 3)
        assert t.dtype == np.float32  # int input promoted to float

    def test_preserves_float64(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_rejects_tensor_input(self):
        with pytest.raises(AutodiffError):
            Tensor(Tensor([1.0]))

    def test_repr_mentions_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert "requires_grad" in repr(t)

    def test_item_scalar_only(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        with pytest.raises(AutodiffError):
            Tensor([1.0, 2.0]).item()

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 2)))
        assert len(t) == 4
        assert t.size == 8
        assert t.ndim == 2


class TestForwardAgainstNumpy:
    @pytest.mark.parametrize("op,npop", [
        (lambda a, b: a + b, np.add),
        (lambda a, b: a - b, np.subtract),
        (lambda a, b: a * b, np.multiply),
        (lambda a, b: a / b, np.divide),
    ])
    def test_binary_ops(self, rng, op, npop):
        a = rng.normal(size=(3, 4)) + 3.0
        b = rng.normal(size=(3, 4)) + 3.0
        out = op(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, npop(a, b), rtol=1e-6)

    def test_scalar_broadcast(self, rng):
        a = rng.normal(size=(3, 4))
        np.testing.assert_allclose((Tensor(a) * 2.5).data, a * 2.5, rtol=1e-6)
        np.testing.assert_allclose((2.5 * Tensor(a)).data, a * 2.5, rtol=1e-6)
        np.testing.assert_allclose((1.0 - Tensor(a)).data, 1.0 - a, rtol=1e-6)
        np.testing.assert_allclose((1.0 / (Tensor(a) + 10)).data, 1.0 / (a + 10), rtol=1e-6)

    def test_matmul(self, rng):
        a, b = rng.normal(size=(3, 5)), rng.normal(size=(5, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b, rtol=1e-6)

    def test_batched_matmul(self, rng):
        a, b = rng.normal(size=(2, 3, 5)), rng.normal(size=(2, 5, 4))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b, rtol=1e-6)

    @pytest.mark.parametrize("method,npfn", [
        ("exp", np.exp), ("tanh", np.tanh), ("sqrt", np.sqrt), ("abs", np.abs),
    ])
    def test_unary(self, rng, method, npfn):
        a = np.abs(rng.normal(size=(4,))) + 0.5
        out = getattr(Tensor(a), method)()
        np.testing.assert_allclose(out.data, npfn(a), rtol=1e-6)

    def test_log(self, rng):
        a = np.abs(rng.normal(size=(4,))) + 0.5
        np.testing.assert_allclose(Tensor(a).log().data, np.log(a), rtol=1e-6)

    def test_relu(self):
        a = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(Tensor(a).relu().data, [0.0, 0.0, 2.0])

    def test_sigmoid_extremes_stable(self):
        a = np.array([-1000.0, 0.0, 1000.0])
        out = Tensor(a).sigmoid().data
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-6)

    def test_clip(self):
        a = np.array([-2.0, 0.5, 3.0])
        np.testing.assert_array_equal(Tensor(a).clip(-1, 1).data, [-1.0, 0.5, 1.0])

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True)])
    def test_reductions(self, rng, axis, keepdims):
        a = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            Tensor(a).sum(axis=axis, keepdims=keepdims).data,
            a.sum(axis=axis, keepdims=keepdims), rtol=1e-6)
        np.testing.assert_allclose(
            Tensor(a).mean(axis=axis, keepdims=keepdims).data,
            a.mean(axis=axis, keepdims=keepdims), rtol=1e-6)

    def test_max(self, rng):
        a = rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(a).max(axis=1).data, a.max(axis=1))

    def test_reshape_transpose(self, rng):
        a = rng.normal(size=(2, 6))
        assert Tensor(a).reshape(3, 4).shape == (3, 4)
        assert Tensor(a).reshape((4, 3)).shape == (4, 3)
        assert Tensor(a).T.shape == (6, 2)
        b = rng.normal(size=(2, 3, 4))
        assert Tensor(b).transpose((0, 2, 1)).shape == (2, 4, 3)

    def test_getitem(self, rng):
        a = rng.normal(size=(5, 3))
        index = np.array([0, 2, 4])
        np.testing.assert_array_equal(Tensor(a)[index].data, a[index])
        np.testing.assert_array_equal(Tensor(a)[1:3].data, a[1:3])

    def test_concatenate_and_stack(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        np.testing.assert_array_equal(
            concatenate([Tensor(a), Tensor(b)], axis=1).data,
            np.concatenate([a, b], axis=1))
        np.testing.assert_array_equal(
            stack([Tensor(a), Tensor(b)], axis=0).data, np.stack([a, b]))

    def test_where(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        cond = a > 0
        np.testing.assert_array_equal(
            where(cond, Tensor(a), Tensor(b)).data, np.where(cond, a, b))


class TestBackward:
    @pytest.mark.parametrize("op", [
        lambda t: t + 2.0,
        lambda t: t * 3.0,
        lambda t: t - t * 0.5,
        lambda t: t / 2.0,
        lambda t: -t,
        lambda t: t ** 3,
        lambda t: (t * t).exp() * 0.01,
        lambda t: (t * t + 1.0).log(),
        lambda t: (t * t + 0.5).sqrt(),
        lambda t: t.tanh(),
        lambda t: t.sigmoid(),
        lambda t: t.relu(),
        lambda t: t.abs(),
        lambda t: t.max(axis=1),
        lambda t: t.mean(axis=0),
        lambda t: t.reshape(4, 3),
        lambda t: t.transpose(),
        lambda t: t[np.array([0, 2])],
        lambda t: t.clip(-0.5, 0.5),
    ])
    def test_gradients_match_finite_difference(self, op):
        check_gradient(op)

    def test_matmul_gradient(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        ta = Tensor(a, requires_grad=True, dtype=np.float64)
        tb = Tensor(b, requires_grad=True, dtype=np.float64)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((3, 2)) @ b.T, atol=1e-8)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((3, 2)), atol=1e-8)

    def test_broadcast_add_gradient(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True, dtype=np.float64)
        bias = Tensor(rng.normal(size=(4,)), requires_grad=True, dtype=np.float64)
        (a + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))

    def test_reuse_accumulates(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True, dtype=np.float64)
        out = (t * 2.0 + t * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, np.full(3, 5.0))

    def test_diamond_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True, dtype=np.float64)
        a = t * 3.0
        out = (a * a).sum()  # (3t)^2 -> d/dt = 18t = 36
        out.backward()
        np.testing.assert_allclose(t.grad, [36.0])

    def test_backward_accumulates_across_calls(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0, 4.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_backward_requires_grad(self):
        with pytest.raises(AutodiffError):
            Tensor(np.ones(2)).backward()

    def test_backward_seed_shape_check(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2.0
        with pytest.raises(AutodiffError):
            out.backward(np.ones(4))

    def test_concat_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True, dtype=np.float64)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True, dtype=np.float64)
        (concatenate([a, b], axis=1) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack_gradient(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True, dtype=np.float64)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True, dtype=np.float64)
        (stack([a, b], axis=0) * np.array([[1.0], [2.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.full(3, 2.0))

    def test_where_gradient(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True, dtype=np.float64)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True, dtype=np.float64)
        cond = np.array([True, False, True, False])
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, cond.astype(float))
        np.testing.assert_allclose(b.grad, (~cond).astype(float))

    def test_max_tie_splitting(self):
        t = Tensor(np.array([[1.0, 1.0]]), requires_grad=True, dtype=np.float64)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = t * 2.0
            assert not is_grad_enabled()
        assert not out.requires_grad

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            pass
        assert is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_detach(self):
        t = Tensor(np.ones(2), requires_grad=True)
        d = (t * 2.0).detach()
        assert not d.requires_grad
        assert d._parents == ()


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert _unbroadcast(g, (3, 4)) is g

    def test_leading_axis(self):
        g = np.ones((5, 3, 4))
        np.testing.assert_array_equal(_unbroadcast(g, (3, 4)), np.full((3, 4), 5.0))

    def test_size_one_axis(self):
        g = np.ones((3, 4))
        np.testing.assert_array_equal(_unbroadcast(g, (3, 1)), np.full((3, 1), 4.0))

    def test_scalar_target(self):
        g = np.ones((2, 2))
        np.testing.assert_array_equal(_unbroadcast(g, ()), 4.0)
