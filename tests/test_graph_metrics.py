"""Homophily, degree groups, and Rayleigh quotients on crafted graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    degree_groups,
    edge_homophily,
    label_frequency_profile,
    node_homophily,
    rayleigh_quotient,
)


def path_graph(labels):
    n = len(labels)
    edges = np.array([[i, i + 1] for i in range(n - 1)])
    return Graph.from_edges(n, edges, labels=np.asarray(labels))


class TestHomophily:
    def test_fully_homophilous(self):
        g = path_graph([0, 0, 0, 0])
        assert node_homophily(g) == 1.0
        assert edge_homophily(g) == 1.0

    def test_fully_heterophilous(self):
        g = path_graph([0, 1, 0, 1])
        assert node_homophily(g) == 0.0
        assert edge_homophily(g) == 0.0

    def test_mixed_path(self):
        # 0-0 edge homophilous, 0-1 edge not.
        g = path_graph([0, 0, 1])
        # node scores: node0: 1/1, node1: 1/2, node2: 0/1 -> mean 0.5
        assert node_homophily(g) == pytest.approx(0.5)
        assert edge_homophily(g) == pytest.approx(0.5)

    def test_explicit_labels_override(self):
        g = path_graph([0, 0, 0])
        assert node_homophily(g, np.array([0, 1, 0])) == 0.0

    def test_requires_labels(self):
        g = Graph.from_edges(2, np.array([[0, 1]]))
        with pytest.raises(GraphError):
            node_homophily(g)

    def test_edgeless_graph_rejected(self):
        g = Graph.from_edges(2, np.empty((0, 2), dtype=int),
                             labels=np.array([0, 1]))
        with pytest.raises(GraphError):
            node_homophily(g)
        with pytest.raises(GraphError):
            edge_homophily(g)

    def test_tiny_graph_value(self, tiny_graph):
        # 9 undirected edges, one cross-label (the 2-3 bridge).
        assert edge_homophily(tiny_graph) == pytest.approx(8.0 / 9.0)


class TestDegreeGroups:
    def test_partition_covers_all(self, tiny_graph):
        high, low = degree_groups(tiny_graph)
        assert len(high) + len(low) == tiny_graph.num_nodes
        assert len(np.intersect1d(high, low)) == 0

    def test_high_group_has_higher_degrees(self, tiny_graph):
        high, low = degree_groups(tiny_graph)
        if len(low):
            assert tiny_graph.degrees[high].min() >= tiny_graph.degrees[low].max()

    def test_quantile_extremes(self, tiny_graph):
        high, low = degree_groups(tiny_graph, quantile=0.0)
        assert len(low) == 0
        assert len(high) == tiny_graph.num_nodes


class TestRayleigh:
    def test_constant_signal_is_lowest_frequency(self, tiny_graph):
        # A constant vector is not exactly the 0-eigenvector of the
        # normalized Laplacian, but it is close to the smooth end.
        smooth = rayleigh_quotient(tiny_graph, np.ones(tiny_graph.num_nodes))
        alternating = rayleigh_quotient(
            tiny_graph, np.array([1, -1, 1, -1, 1, -1, 1, -1], dtype=float))
        assert smooth < alternating

    def test_bounded_by_spectrum(self, tiny_graph, rng):
        for _ in range(5):
            value = rayleigh_quotient(tiny_graph, rng.normal(size=8))
            assert -1e-6 <= value <= 2.0 + 1e-6

    def test_shape_validation(self, tiny_graph):
        with pytest.raises(GraphError):
            rayleigh_quotient(tiny_graph, np.ones(5))

    def test_label_frequency_orders_homophily(self):
        homo = path_graph([0, 0, 0, 1, 1, 1])
        hetero = path_graph([0, 1, 0, 1, 0, 1])
        assert label_frequency_profile(homo) < label_frequency_profile(hetero)
