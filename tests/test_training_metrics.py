"""Metrics against hand-computed values."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.training import accuracy, evaluate, macro_f1, r2_score, roc_auc


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_half(self):
        logits = np.array([[2.0, 0.0], [2.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_shape_check(self):
        with pytest.raises(TrainingError):
            accuracy(np.zeros(4), np.zeros(4))


class TestRocAuc:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 1.0

    def test_inverted(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=2000)
        labels = rng.integers(0, 2, size=2000)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_midrank(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([0, 1, 0, 1])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_known_value(self):
        # 1 positive ranked above 1 of 2 negatives: AUC = 0.5.
        scores = np.array([0.3, 0.5, 0.7])
        labels = np.array([0, 1, 0])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_two_column_logits(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert roc_auc(logits, np.array([0, 1])) == 1.0

    def test_single_column(self):
        assert roc_auc(np.array([[0.1], [0.9]]), np.array([0, 1])) == 1.0

    def test_needs_both_classes(self):
        with pytest.raises(TrainingError):
            roc_auc(np.array([0.1, 0.9]), np.array([1, 1]))

    def test_multiclass_rejected(self):
        with pytest.raises(TrainingError):
            roc_auc(np.zeros((3, 4)), np.array([0, 1, 0]))


class TestR2:
    def test_perfect(self, rng):
        y = rng.normal(size=(10, 2))
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_predictor_is_zero(self, rng):
        y = rng.normal(size=(50,))
        pred = np.full_like(y, y.mean())
        assert r2_score(pred, y) == pytest.approx(0.0, abs=1e-9)

    def test_worse_than_mean_is_negative(self, rng):
        y = rng.normal(size=(50,))
        assert r2_score(-5 * y, y) < 0

    def test_shape_mismatch(self):
        with pytest.raises(TrainingError):
            r2_score(np.zeros(3), np.zeros(4))


class TestMacroF1:
    def test_perfect(self):
        logits = np.eye(3) * 5
        assert macro_f1(logits, np.array([0, 1, 2])) == 1.0

    def test_degenerate_class_zero(self):
        # Everything predicted class 0; class 1 gets F1 = 0.
        logits = np.array([[1.0, 0.0]] * 4)
        labels = np.array([0, 0, 1, 1])
        # class0: precision 0.5 recall 1 -> F1 2/3; class1: 0.
        assert macro_f1(logits, labels) == pytest.approx(1.0 / 3.0)


class TestDispatch:
    def test_by_name(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert evaluate("accuracy", logits, np.array([0, 1])) == 1.0
        assert evaluate("roc_auc", logits, np.array([0, 1])) == 1.0

    def test_unknown_metric(self):
        with pytest.raises(TrainingError):
            evaluate("bleu", np.zeros((2, 2)), np.zeros(2))
