"""The load-bearing filter invariants, checked for all 27 filters.

1. **Spectral consistency**: propagating a signal through the filter's
   polynomial recurrence equals exact spectral filtering
   ``U · diag(g(λ)) · Uᵀ x`` with the filter's own ``response(λ)`` — the
   polynomial and spectral views must agree to numerical precision.
2. **Path consistency**: full-batch ``forward`` and mini-batch
   ``precompute`` + ``batch_combine`` compute the same function.
3. **Backend consistency**: the csr and coo_gather backends agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.filters import FILTER_NAMES, REGISTRY, make_filter
from repro.filters.base import PropagationContext
from repro.spectral import laplacian_eigendecomposition

K = 8

#: Exact spectral equivalence holds for every filter whose response is not
#: signal-dependent (OptBasis) and whose fusion is a sum (concat banks
#: return stacked channels, checked separately below).
SPECTRAL_EXACT = [
    n for n in FILTER_NAMES if n not in ("optbasis", "fbgnn1", "acmgnn1")
]


def _perturbed_params(filter_, rng, scale=0.3):
    spec = filter_.parameter_spec()
    if not spec:
        return None
    return {
        name: (s.init + scale * rng.normal(size=s.shape)).astype(np.float32)
        for name, s in spec.items()
    }


@pytest.mark.parametrize("name", SPECTRAL_EXACT)
def test_propagation_matches_spectral_filtering(small_graph, name):
    """g(L̃)x computed by recurrences == U g(Λ) Uᵀ x with the same params."""
    rng = np.random.default_rng(11)
    filter_ = make_filter(name, num_hops=K, num_features=1)
    params = _perturbed_params(filter_, rng)
    x = rng.normal(size=(small_graph.num_nodes, 1)).astype(np.float32)

    ctx = PropagationContext.for_graph(small_graph, rho=0.5)
    propagated = np.asarray(filter_.forward(ctx, x, params), dtype=np.float64)

    eigenvalues, eigenvectors = laplacian_eigendecomposition(small_graph)
    response = filter_.response(eigenvalues, params)
    expected = eigenvectors @ (response[:, None] * (eigenvectors.T @ x))

    scale = max(np.abs(expected).max(), 1.0)
    np.testing.assert_allclose(propagated, expected, atol=2e-3 * scale)


@pytest.mark.parametrize("name", ["fbgnn1", "acmgnn1"])
def test_concat_bank_channels_match_spectral(small_graph, name):
    """Each concat-bank channel independently satisfies the equivalence."""
    rng = np.random.default_rng(11)
    bank = make_filter(name, num_hops=K)
    params = _perturbed_params(bank, rng)
    x = rng.normal(size=(small_graph.num_nodes, 1)).astype(np.float32)
    eigenvalues, eigenvectors = laplacian_eigendecomposition(small_graph)
    responses = bank.channel_responses(eigenvalues, params)
    gamma = params["gamma"]
    ctx = PropagationContext.for_graph(small_graph, rho=0.5)
    stacked = np.asarray(bank.forward(ctx, x, params), dtype=np.float64)
    for q in range(len(bank.channels)):
        expected = gamma[q] * (
            eigenvectors @ (responses[q][:, None] * (eigenvectors.T @ x)))
        scale = max(np.abs(expected).max(), 1.0)
        np.testing.assert_allclose(stacked[:, q:q + 1], expected,
                                   atol=2e-3 * scale)


@pytest.mark.parametrize("name", FILTER_NAMES)
def test_full_batch_equals_minibatch_path(small_graph, signal, name):
    """forward() == precompute() + batch_combine() for the same params."""
    rng = np.random.default_rng(5)
    filter_ = make_filter(name, num_hops=5, num_features=signal.shape[1])
    params = _perturbed_params(filter_, rng)

    ctx = PropagationContext.for_graph(small_graph, rho=0.5)
    full = np.asarray(filter_.forward(ctx, signal, params), dtype=np.float64)

    channels = filter_.precompute(small_graph, signal, rho=0.5)
    tensor_params = (
        {k: Tensor(v) for k, v in params.items()} if params else None
    )
    combined = filter_.batch_combine(Tensor(channels), tensor_params).data

    scale = max(np.abs(full).max(), 1.0)
    np.testing.assert_allclose(combined, full, atol=1e-3 * scale)


@pytest.mark.parametrize("name", FILTER_NAMES)
def test_backends_agree(small_graph, signal, name):
    """csr and coo_gather propagation produce the same channels."""
    filter_ = make_filter(name, num_hops=4, num_features=signal.shape[1])
    a = filter_.precompute(small_graph, signal, backend="csr")
    b = filter_.precompute(small_graph, signal, backend="coo_gather")
    scale = max(np.abs(a).max(), 1.0)
    np.testing.assert_allclose(a, b, atol=1e-3 * scale)


@pytest.mark.parametrize("name", FILTER_NAMES)
def test_precompute_identical_with_cache_on_and_off(small_graph, signal, name):
    """The normalization memo + transpose cache never change channel bytes."""
    from repro.runtime import cache

    filter_ = make_filter(name, num_hops=4, num_features=signal.shape[1])
    cached = filter_.precompute(small_graph, signal, rho=0.5)
    with cache.caches_disabled():
        plain = filter_.precompute(small_graph, signal, rho=0.5)
    np.testing.assert_array_equal(cached, plain)


def test_forward_gradients_identical_with_cache_on_and_off(small_graph, signal):
    """One FB forward/backward: θ gradients match bitwise, cache on vs off."""
    from repro.runtime import cache

    filter_ = make_filter("chebyshev", num_hops=5,
                          num_features=signal.shape[1])

    def run():
        theta = Tensor(filter_.default_coefficients().astype(np.float32),
                       requires_grad=True)
        ctx = PropagationContext.for_graph(small_graph, rho=0.5)
        out = filter_.forward(ctx, Tensor(signal), {"theta": theta})
        out.sum().backward()
        return out.data, theta.grad

    cache.clear_transpose_cache()
    cached_out, cached_grad = run()
    with cache.caches_disabled():
        plain_out, plain_grad = run()
    np.testing.assert_array_equal(cached_out, plain_out)
    np.testing.assert_array_equal(cached_grad, plain_grad)


@pytest.mark.parametrize("name", FILTER_NAMES)
def test_response_finite_on_grid(name):
    filter_ = make_filter(name, num_hops=6, num_features=3)
    lams = np.linspace(0.0, 2.0, 41)
    response = filter_.response(lams)
    assert response.shape == lams.shape
    assert np.all(np.isfinite(response))


@pytest.mark.parametrize("name", FILTER_NAMES)
def test_forward_linear_in_signal(small_graph, name):
    """Filters are linear operators: g(L̃)(ax + by) = a·g(L̃)x + b·g(L̃)y."""
    rng = np.random.default_rng(3)
    filter_ = make_filter(name, num_hops=4, num_features=2)
    params = _perturbed_params(filter_, rng)
    x = rng.normal(size=(small_graph.num_nodes, 2)).astype(np.float32)
    y = rng.normal(size=(small_graph.num_nodes, 2)).astype(np.float32)
    if name == "optbasis":
        pytest.skip("OptBasis normalizes by the signal: intentionally nonlinear")

    def apply(v):
        ctx = PropagationContext.for_graph(small_graph, rho=0.5)
        return np.asarray(filter_.forward(ctx, v, params), dtype=np.float64)

    lhs = apply(2.0 * x - 3.0 * y)
    rhs = 2.0 * apply(x) - 3.0 * apply(y)
    scale = max(np.abs(rhs).max(), 1.0)
    np.testing.assert_allclose(lhs, rhs, atol=1e-3 * scale)
