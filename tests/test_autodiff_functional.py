"""Loss functions and dropout: values and gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.autodiff import functional as F
from repro.errors import AutodiffError

from .test_autodiff_tensor import finite_diff


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(5, 3))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_stable_for_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 1000.0]])), axis=1)
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(4, 6))
        log_sm = F.log_softmax(Tensor(x), axis=1).data
        np.testing.assert_allclose(log_sm, np.log(F.softmax(Tensor(x), axis=1).data),
                                   atol=1e-6)


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = F.cross_entropy(Tensor(logits), labels).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), labels].mean()
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_sum_reduction(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        mean = F.cross_entropy(Tensor(logits), labels, reduction="mean").item()
        total = F.cross_entropy(Tensor(logits), labels, reduction="sum").item()
        assert total == pytest.approx(6 * mean, rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1])).item()
        assert loss < 1e-6

    def test_gradient(self, rng):
        logits = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        t = Tensor(logits.copy(), requires_grad=True, dtype=np.float64)
        F.cross_entropy(t, labels).backward()
        numeric = finite_diff(
            lambda arr: F.cross_entropy(Tensor(arr, dtype=np.float64), labels).item(),
            logits)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    def test_rejects_bad_shapes(self):
        with pytest.raises(AutodiffError):
            F.cross_entropy(Tensor(np.zeros(3)), np.zeros(3, dtype=int))
        with pytest.raises(AutodiffError):
            F.cross_entropy(Tensor(np.zeros((3, 2))), np.zeros(4, dtype=int))
        with pytest.raises(AutodiffError):
            F.cross_entropy(Tensor(np.zeros((3, 2))), np.zeros(3, dtype=int),
                            reduction="median")


class TestBCEWithLogits:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(8,))
        targets = rng.integers(0, 2, size=8).astype(float)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        p = 1.0 / (1.0 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss == pytest.approx(expected, rel=1e-4)

    def test_stable_at_extreme_logits(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor(np.array([1000.0, -1000.0])), np.array([1.0, 0.0])).item()
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_gradient(self, rng):
        logits = rng.normal(size=(6,))
        targets = rng.integers(0, 2, size=6).astype(float)
        t = Tensor(logits.copy(), requires_grad=True, dtype=np.float64)
        F.binary_cross_entropy_with_logits(t, targets).backward()
        numeric = finite_diff(
            lambda arr: F.binary_cross_entropy_with_logits(
                Tensor(arr, dtype=np.float64), targets).item(),
            logits)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)


class TestMSE:
    def test_value(self, rng):
        pred = rng.normal(size=(4, 2))
        target = rng.normal(size=(4, 2))
        loss = F.mse_loss(Tensor(pred), target).item()
        assert loss == pytest.approx(((pred - target) ** 2).mean(), rel=1e-5)

    def test_gradient(self, rng):
        pred = rng.normal(size=(4, 2))
        target = rng.normal(size=(4, 2))
        t = Tensor(pred.copy(), requires_grad=True, dtype=np.float64)
        F.mse_loss(t, target).backward()
        np.testing.assert_allclose(t.grad, 2 * (pred - target) / pred.size, atol=1e-6)


class TestDropout:
    def test_noop_in_eval(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_noop_at_zero(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_scale_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)
        # Surviving entries are scaled up by 1/(1-p).
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.7, rtol=1e-6)

    def test_invalid_probability(self, rng):
        x = Tensor(rng.normal(size=(3,)))
        with pytest.raises(AutodiffError):
            F.dropout(x, 1.0, training=True)
        with pytest.raises(AutodiffError):
            F.dropout(x, -0.1, training=True)

    def test_deterministic_with_rng(self, rng):
        x = Tensor(np.ones((20, 20)))
        a = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(5)).data
        b = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(5)).data
        np.testing.assert_array_equal(a, b)
