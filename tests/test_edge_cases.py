"""Edge cases across the stack: degenerate sizes, K extremes, tiny graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthesize
from repro.filters import make_filter
from repro.filters.base import PropagationContext
from repro.graph import Graph
from repro.tasks import run_node_classification
from repro.training import TrainConfig


@pytest.fixture
def path_graph():
    edges = np.array([[i, i + 1] for i in range(9)])
    features = np.random.default_rng(0).normal(size=(10, 4)).astype(np.float32)
    labels = np.array([0, 1] * 5)
    return Graph.from_edges(10, edges, features=features, labels=labels)


class TestZeroHops:
    @pytest.mark.parametrize("name", ["impulse", "monomial", "ppr", "hk",
                                      "monomial_var", "chebyshev", "horner",
                                      "bernstein", "legendre", "jacobi",
                                      "clenshaw"])
    def test_k_zero_filters_run(self, path_graph, name):
        filter_ = make_filter(name, num_hops=0, num_features=4)
        ctx = PropagationContext.for_graph(path_graph)
        params = {p: s.init for p, s in filter_.parameter_spec().items()}
        out = filter_.forward(ctx, path_graph.features, params or None)
        assert np.asarray(out).shape == (10, 4)

    def test_k_zero_impulse_is_identity(self, path_graph):
        filter_ = make_filter("impulse", num_hops=0)
        out = filter_.propagate(path_graph, path_graph.features)
        np.testing.assert_allclose(out, path_graph.features, atol=1e-6)


class TestLargeK:
    @pytest.mark.parametrize("name", ["chebyshev", "legendre", "jacobi",
                                      "clenshaw", "horner", "bernstein"])
    def test_k_30_stays_finite(self, path_graph, name):
        """The top of the Table 4 K range must not overflow numerically."""
        filter_ = make_filter(name, num_hops=30, num_features=4)
        lams = np.linspace(0, 2, 21)
        response = filter_.response(lams)
        assert np.all(np.isfinite(response))
        assert np.abs(response).max() < 1e6


class TestTinyGraphTraining:
    def test_trains_on_path_graph(self, path_graph):
        config = TrainConfig(epochs=10, patience=5, hidden=8)
        result = run_node_classification(path_graph, "chebyshev",
                                         config=config)
        assert result.status == "ok"

    def test_minibatch_single_batch(self, path_graph):
        config = TrainConfig(epochs=5, patience=0, batch_size=10_000, hidden=8)
        result = run_node_classification(path_graph, "ppr",
                                         scheme="mini_batch", config=config)
        assert result.status == "ok"

    def test_batch_size_one(self, path_graph):
        config = TrainConfig(epochs=2, patience=0, batch_size=1, hidden=8)
        result = run_node_classification(path_graph, "ppr",
                                         scheme="mini_batch", config=config)
        assert result.status == "ok"


class TestSingleClassSafety:
    def test_metrics_survive_missing_class_in_test(self):
        # All test labels the same class: accuracy still defined.
        from repro.training import accuracy

        logits = np.array([[1.0, 0.0]] * 4)
        assert accuracy(logits, np.zeros(4, dtype=int)) == 1.0


class TestFeatureWidthOne:
    def test_f1_dataset_trains(self):
        """Minesweeper-style tiny attribute width (the over-squashing case)."""
        graph = synthesize("minesweeper", scale=0.05, seed=0)
        assert graph.num_features == 7
        config = TrainConfig(epochs=10, patience=5, metric="roc_auc")
        fb = run_node_classification(graph, "chebyshev", config=config)
        mb = run_node_classification(graph, "chebyshev", scheme="mini_batch",
                                     config=config)
        assert fb.status == mb.status == "ok"


class TestDisconnectedGraph:
    def test_filters_handle_isolated_nodes(self):
        edges = np.array([[0, 1], [1, 2]])
        features = np.eye(5, dtype=np.float32)
        graph = Graph.from_edges(5, edges, features=features,
                                 labels=np.array([0, 0, 0, 1, 1]))
        for name in ("ppr", "chebyshev", "figure"):
            filter_ = make_filter(name, num_hops=4, num_features=5)
            channels = filter_.precompute(graph, features)
            assert np.all(np.isfinite(channels)), name

    def test_isolated_node_keeps_self_signal(self):
        edges = np.array([[0, 1]])
        features = np.eye(3, dtype=np.float32)
        graph = Graph.from_edges(3, edges, features=features)
        out = make_filter("ppr", num_hops=5).propagate(graph, features)
        # Node 2 is isolated: the self-looped propagation keeps all of its
        # (truncated-PPR) mass on itself: Σ_k α(1−α)^k = 1 − (1−α)^{K+1}.
        assert out[2, 2] == pytest.approx(1.0 - 0.9 ** 6, abs=1e-5)
        assert out[2, :2].max() < 1e-6  # nothing leaks in from the component
