"""BFS partitioner: coverage, balance, and cut-edge accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import Graph, bfs_partition, cut_edges
from repro.graph.partition import cut_fraction


class TestPartition:
    def test_covers_every_node_once(self, small_graph, rng):
        parts = bfs_partition(small_graph, 4, rng=rng)
        combined = np.concatenate(parts)
        assert len(combined) == small_graph.num_nodes
        assert len(np.unique(combined)) == small_graph.num_nodes

    def test_single_part_is_everything(self, small_graph, rng):
        parts = bfs_partition(small_graph, 1, rng=rng)
        assert len(parts) == 1
        assert len(parts[0]) == small_graph.num_nodes

    @pytest.mark.parametrize("num_parts", [2, 3, 5])
    def test_rough_balance(self, small_graph, rng, num_parts):
        parts = bfs_partition(small_graph, num_parts, rng=rng)
        sizes = [len(p) for p in parts]
        cap = int(np.ceil(small_graph.num_nodes / num_parts))
        assert max(sizes) <= cap + num_parts  # leftovers may pad slightly

    def test_handles_disconnected_graph(self, rng):
        # Two components + isolated node.
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        g = Graph.from_edges(6, edges)
        parts = bfs_partition(g, 2, rng=rng)
        assert sum(len(p) for p in parts) == 6

    def test_invalid_counts(self, tiny_graph, rng):
        with pytest.raises(GraphError):
            bfs_partition(tiny_graph, 0, rng=rng)

    def test_more_parts_than_nodes_clamps_to_singletons(self, tiny_graph, rng):
        # Used to raise; now clamps to n singleton parts, all non-empty.
        parts = bfs_partition(tiny_graph, 100, rng=rng)
        assert len(parts) == tiny_graph.num_nodes
        assert all(len(p) == 1 for p in parts)
        combined = np.concatenate(parts)
        assert len(np.unique(combined)) == tiny_graph.num_nodes

    def test_empty_graph_raises(self, rng):
        g = Graph.from_edges(0, np.empty((0, 2), dtype=np.int64))
        with pytest.raises(GraphError):
            bfs_partition(g, 2, rng=rng)

    @pytest.mark.parametrize("num_parts", [2, 3, 4, 5])
    def test_no_empty_parts(self, rng, num_parts):
        # Path of 5 nodes: BFS from an end swallows the whole path before
        # later seeds get a chance — the rebalance pass must refill them.
        edges = np.array([[i, i + 1] for i in range(4)])
        g = Graph.from_edges(5, edges)
        for seed in range(10):
            parts = bfs_partition(g, num_parts,
                                  rng=np.random.default_rng(seed))
            assert len(parts) == num_parts
            assert all(len(p) > 0 for p in parts)
            combined = np.concatenate(parts)
            assert len(np.unique(combined)) == 5

    def test_disconnected_no_empty_parts(self, rng):
        # 3 isolated nodes + a triangle, more parts than components.
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        g = Graph.from_edges(6, edges)
        parts = bfs_partition(g, 5, rng=rng)
        assert len(parts) == 5
        assert all(len(p) > 0 for p in parts)
        assert sum(len(p) for p in parts) == 6

    def test_deterministic_given_rng(self, small_graph):
        a = bfs_partition(small_graph, 3, rng=np.random.default_rng(1))
        b = bfs_partition(small_graph, 3, rng=np.random.default_rng(1))
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)


class TestCutEdges:
    def test_no_cut_for_single_part(self, tiny_graph, rng):
        parts = bfs_partition(tiny_graph, 1, rng=rng)
        assert cut_edges(tiny_graph, parts) == 0

    def test_known_cut(self, tiny_graph):
        # Split exactly at the 2-3 bridge: 2 directed edges cut.
        parts = [np.array([0, 1, 2]), np.array([3, 4, 5, 6, 7])]
        assert cut_edges(tiny_graph, parts) == 2

    def test_cut_bounded_by_edge_count(self, small_graph, rng):
        parts = bfs_partition(small_graph, 8, rng=rng)
        cut = cut_edges(small_graph, parts)
        assert 0 < cut <= small_graph.num_edges

    def test_cut_fraction_in_unit_interval(self, small_graph, rng):
        parts = bfs_partition(small_graph, 4, rng=rng)
        frac = cut_fraction(small_graph, parts)
        assert 0.0 < frac <= 1.0
        assert frac == cut_edges(small_graph, parts) / small_graph.num_edges
