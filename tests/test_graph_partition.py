"""BFS partitioner: coverage, balance, and cut-edge accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import Graph, bfs_partition, cut_edges


class TestPartition:
    def test_covers_every_node_once(self, small_graph, rng):
        parts = bfs_partition(small_graph, 4, rng=rng)
        combined = np.concatenate(parts)
        assert len(combined) == small_graph.num_nodes
        assert len(np.unique(combined)) == small_graph.num_nodes

    def test_single_part_is_everything(self, small_graph, rng):
        parts = bfs_partition(small_graph, 1, rng=rng)
        assert len(parts) == 1
        assert len(parts[0]) == small_graph.num_nodes

    @pytest.mark.parametrize("num_parts", [2, 3, 5])
    def test_rough_balance(self, small_graph, rng, num_parts):
        parts = bfs_partition(small_graph, num_parts, rng=rng)
        sizes = [len(p) for p in parts]
        cap = int(np.ceil(small_graph.num_nodes / num_parts))
        assert max(sizes) <= cap + num_parts  # leftovers may pad slightly

    def test_handles_disconnected_graph(self, rng):
        # Two components + isolated node.
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        g = Graph.from_edges(6, edges)
        parts = bfs_partition(g, 2, rng=rng)
        assert sum(len(p) for p in parts) == 6

    def test_invalid_counts(self, tiny_graph, rng):
        with pytest.raises(GraphError):
            bfs_partition(tiny_graph, 0, rng=rng)
        with pytest.raises(GraphError):
            bfs_partition(tiny_graph, 100, rng=rng)

    def test_deterministic_given_rng(self, small_graph):
        a = bfs_partition(small_graph, 3, rng=np.random.default_rng(1))
        b = bfs_partition(small_graph, 3, rng=np.random.default_rng(1))
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)


class TestCutEdges:
    def test_no_cut_for_single_part(self, tiny_graph, rng):
        parts = bfs_partition(tiny_graph, 1, rng=rng)
        assert cut_edges(tiny_graph, parts) == 0

    def test_known_cut(self, tiny_graph):
        # Split exactly at the 2-3 bridge: 2 directed edges cut.
        parts = [np.array([0, 1, 2]), np.array([3, 4, 5, 6, 7])]
        assert cut_edges(tiny_graph, parts) == 2

    def test_cut_bounded_by_edge_count(self, small_graph, rng):
        parts = bfs_partition(small_graph, 8, rng=rng)
        cut = cut_edges(small_graph, parts)
        assert 0 < cut <= small_graph.num_edges
