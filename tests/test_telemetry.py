"""Telemetry layer: spans, metrics, sinks, manifests, reports, wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.autodiff import Tensor, spmm
from repro.bench.io import load_jsonl, load_manifest, save_jsonl, save_rows
from repro.datasets.synthesis import synthesize
from repro.runtime.profiler import StageProfiler
from repro.tasks.node_classification import run_node_classification
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.training.loop import TrainConfig
import scipy.sparse as sp


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with telemetry disabled."""
    telemetry.shutdown()
    yield
    telemetry.shutdown()


def spans_of(events):
    return [e for e in events if e["type"] == "span"]


class TestSpans:
    def test_nesting_parent_links(self):
        telemetry.configure()
        with telemetry.span("outer"):
            with telemetry.span("middle"):
                with telemetry.span("inner"):
                    pass
        events = telemetry.shutdown()
        spans = {e["name"]: e for e in spans_of(events)}
        assert spans["inner"]["parent"] == spans["middle"]["id"]
        assert spans["middle"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert (spans["outer"]["depth"], spans["middle"]["depth"],
                spans["inner"]["depth"]) == (0, 1, 2)

    def test_close_ordering_children_first(self):
        telemetry.configure()
        with telemetry.span("a"):
            with telemetry.span("b"):
                pass
            with telemetry.span("c"):
                pass
        names = [e["name"] for e in spans_of(telemetry.shutdown())]
        assert names == ["b", "c", "a"]

    def test_durations_nest(self):
        telemetry.configure()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        spans = {e["name"]: e for e in spans_of(telemetry.shutdown())}
        assert spans["outer"]["duration_s"] >= spans["inner"]["duration_s"]

    def test_sibling_spans_share_parent(self):
        telemetry.configure()
        with telemetry.span("root"):
            for _ in range(3):
                with telemetry.span("child"):
                    pass
        events = spans_of(telemetry.shutdown())
        root = [e for e in events if e["name"] == "root"][0]
        children = [e for e in events if e["name"] == "child"]
        assert len(children) == 3
        assert all(c["parent"] == root["id"] for c in children)

    def test_attrs_and_error_marker(self):
        telemetry.configure()
        with pytest.raises(ValueError):
            with telemetry.span("work", stage="x"):
                raise ValueError("boom")
        span = spans_of(telemetry.shutdown())[0]
        assert span["attrs"]["stage"] == "x"
        assert span["attrs"]["error"] == "ValueError"

    def test_emit_event_tags_current_span(self):
        telemetry.configure()
        with telemetry.span("outer") as span:
            telemetry.emit_event("custom", value=7)
        events = telemetry.shutdown()
        custom = [e for e in events if e["type"] == "custom"][0]
        assert custom["span"] == span.span_id
        assert custom["value"] == 7


class TestDisabledMode:
    def test_span_is_shared_noop_singleton(self):
        assert telemetry.span("anything") is telemetry.NOOP_SPAN
        assert telemetry.span("other", k=1) is telemetry.NOOP_SPAN

    def test_noop_span_usable(self):
        with telemetry.span("x") as s:
            s.set(attr=1)

    def test_free_functions_are_noops(self):
        telemetry.emit_event("e", a=1)
        telemetry.set_gauge("g", 2.0)
        telemetry.inc_counter("c")
        telemetry.observe("h", 3.0)
        assert not telemetry.enabled()
        assert telemetry.get_tracer() is None
        assert telemetry.get_metrics() is None

    def test_disabled_overhead_no_allocation_per_call(self):
        # The disabled path must not build a new object per call.
        ids = {id(telemetry.span("s")) for _ in range(100)}
        assert len(ids) == 1


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(5)
        registry.gauge("g").set(3.0)
        registry.gauge("g").set(1.0)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 6
        assert snap["gauges"]["g"] == {"value": 1.0, "max": 3.0}

    def test_histogram_quantiles_exact_small(self):
        hist = Histogram("h")
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        assert hist.quantile(0.5) == pytest.approx(50.5)
        assert hist.quantile(0.95) == pytest.approx(95.05, rel=0.01)
        assert hist.max_value == 100.0
        assert hist.mean == pytest.approx(50.5)

    def test_histogram_decimation_bounds_memory(self):
        hist = Histogram("h", max_samples=64)
        for v in range(10_000):
            hist.observe(float(v))
        assert len(hist._samples) < 64
        assert hist.count == 10_000
        # Quantiles remain representative after decimation.
        assert hist.quantile(0.5) == pytest.approx(5000, rel=0.15)
        assert hist.summary()["max"] == 9999.0

    def test_histogram_empty(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) == 0.0
        assert hist.summary()["count"] == 0


class TestOpCounters:
    def test_matmul_flops_counted(self):
        telemetry.configure()
        a = Tensor(np.ones((4, 8), dtype=np.float32))
        b = Tensor(np.ones((8, 3), dtype=np.float32))
        _ = a @ b
        metrics = telemetry.get_metrics()
        assert metrics.counter("ops.matmul.calls").value == 1
        assert metrics.counter("ops.matmul.flops").value == 2 * 4 * 3 * 8
        assert metrics.counter("ops.matmul.bytes").value == 4 * 3 * 4

    def test_spmm_flops_counted(self):
        telemetry.configure()
        matrix = sp.random(16, 16, density=0.25, format="csr",
                           random_state=0).astype(np.float32)
        dense = Tensor(np.ones((16, 5), dtype=np.float32))
        _ = spmm(matrix, dense)
        metrics = telemetry.get_metrics()
        assert metrics.counter("ops.spmm.calls").value == 1
        assert metrics.counter("ops.spmm.flops").value == 2 * matrix.nnz * 5

    def test_elementwise_flops_counted(self):
        """Elementwise ops feed the hook too: ~1 FLOP + one write per elem."""
        telemetry.configure()
        a = Tensor(np.ones((4, 8), dtype=np.float32))
        b = Tensor(np.ones((4, 8), dtype=np.float32))
        _ = a + b
        _ = (a * b).relu()
        metrics = telemetry.get_metrics()
        assert metrics.counter("ops.ewise.calls").value == 3
        assert metrics.counter("ops.ewise.flops").value == 3 * 4 * 8
        assert metrics.counter("ops.ewise.bytes").value == 3 * 4 * 8 * 4

    def test_elementwise_unary_ops_counted(self):
        telemetry.configure()
        a = Tensor(np.full((3, 3), 0.5, dtype=np.float32))
        for op in (a.exp, a.log, a.sqrt, a.abs, a.tanh, a.sigmoid,
                   a.__neg__, lambda: a.clip(0.0, 1.0), lambda: a ** 2.0):
            op()
        assert telemetry.get_metrics().counter("ops.ewise.calls").value == 9

    def test_bytes_attributed_to_open_span(self):
        telemetry.configure()
        with telemetry.span("compute"):
            a = Tensor(np.ones((4, 4), dtype=np.float32))
            _ = a @ a
        span = spans_of(telemetry.shutdown())[0]
        assert span["alloc_bytes"] == 4 * 4 * 4

    def test_hook_detached_after_shutdown(self):
        telemetry.configure()
        telemetry.shutdown()
        from repro.autodiff import tensor as tensor_mod
        assert tensor_mod._op_hook is None


class TestJsonlRoundTrip:
    def test_trace_round_trips_through_bench_io(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry.configure(trace_path=str(path))
        with telemetry.span("outer", tag="t"):
            telemetry.emit_event("epoch", epoch=0, loss=1.5)
        in_memory = telemetry.shutdown()
        reloaded = load_jsonl(path)
        assert reloaded == in_memory

    def test_save_load_jsonl(self, tmp_path):
        records = [{"a": 1, "b": [1.5, 2.5]}, {"a": 2, "c": "x"}]
        path = tmp_path / "events.jsonl"
        save_jsonl(records, path)
        assert load_jsonl(path) == records

    def test_save_jsonl_numpy_safe(self, tmp_path):
        path = tmp_path / "events.jsonl"
        save_jsonl([{"v": np.float32(0.5), "n": np.int64(3)}], path)
        loaded = load_jsonl(path)
        assert loaded[0]["v"] == pytest.approx(0.5)
        assert loaded[0]["n"] == 3


class TestSinkRobustness:
    def test_load_events_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type":"span","name":"a"}\n'
                        '{"type":"span","name":"b"}\n'
                        '{"type":"span","na')  # killed writer mid-line
        events = telemetry.load_events(path)
        assert [e["name"] for e in events] == ["a", "b"]

    def test_load_events_raises_on_midfile_corruption(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type":"span","name":"a"}\n'
                        'not json at all\n'
                        '{"type":"span","name":"b"}\n')
        with pytest.raises(json.JSONDecodeError):
            telemetry.load_events(path)

    def test_jsonl_sink_serializes_exotic_payloads(self, tmp_path):
        from repro.telemetry.sinks import JsonlSink

        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"np_int": np.int64(3), "np_float": np.float32(0.5),
                   "array_scalar": np.array(7.0),
                   "opaque": object()})  # falls back to str()
        sink.close()
        (event,) = telemetry.load_events(path)
        assert event["np_int"] == 3
        assert event["np_float"] == pytest.approx(0.5)
        assert event["array_scalar"] == pytest.approx(7.0)
        assert "object" in event["opaque"]

    def test_jsonl_sink_emit_after_close_is_silent(self, tmp_path):
        from repro.telemetry.sinks import JsonlSink

        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"n": 1})
        sink.close()
        sink.emit({"n": 2})   # dropped, not raised
        sink.flush()
        sink.close()          # idempotent
        assert [e["n"] for e in telemetry.load_events(path)] == [1]

    def test_tee_sink_fans_out_and_closes_every_child(self):
        class Recorder(telemetry.EventSink):
            def __init__(self):
                self.events, self.flushed, self.closed = [], 0, 0

            def emit(self, event):
                self.events.append(event)

            def flush(self):
                self.flushed += 1

            def close(self):
                self.closed += 1

        first, second = Recorder(), Recorder()
        tee = telemetry.TeeSink(first, second)
        tee.emit({"n": 1})
        tee.flush()
        tee.close()
        assert first.events == second.events == [{"n": 1}]
        assert (first.flushed, second.flushed) == (1, 1)
        assert (first.closed, second.closed) == (1, 1)


class TestManifest:
    def test_deterministic_across_runs(self):
        config = TrainConfig(epochs=7, seed=3)
        first = telemetry.build_manifest(config=config, seed=3,
                                         extra={"experiment": "eff"})
        second = telemetry.build_manifest(config=config, seed=3,
                                          extra={"experiment": "eff"})
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_contents(self):
        manifest = telemetry.build_manifest(config={"lr": 0.1}, seed=1)
        assert manifest["schema"].startswith("repro.telemetry.manifest/")
        assert manifest["seed"] == 1
        assert manifest["config"] == {"lr": 0.1}
        assert manifest["platform"]["numpy"] == np.__version__
        # Running inside this git repo, the SHA must resolve.
        assert manifest["git_sha"] is None or len(manifest["git_sha"]) == 40

    def test_write_read_round_trip(self, tmp_path):
        manifest = telemetry.build_manifest(seed=0)
        path = telemetry.write_manifest(tmp_path / "m.manifest.json", manifest)
        assert telemetry.read_manifest(path) == manifest

    def test_dataset_fingerprint_stable_and_sensitive(self):
        g1 = synthesize("cora", scale=0.05, seed=0)
        g2 = synthesize("cora", scale=0.05, seed=0)
        g3 = synthesize("cora", scale=0.05, seed=1)
        assert telemetry.dataset_fingerprint(g1) == telemetry.dataset_fingerprint(g2)
        assert telemetry.dataset_fingerprint(g1) != telemetry.dataset_fingerprint(g3)

    def test_sidecar_written_by_save_rows(self, tmp_path):
        path = tmp_path / "rows.json"
        save_rows([{"a": 1}], path, metadata={"experiment": "x"})
        sidecar = load_manifest(path)
        assert sidecar is not None
        assert sidecar["metadata"] == {"experiment": "x"}
        assert sidecar["num_rows"] == 1

    def test_sidecar_suppressed(self, tmp_path):
        path = tmp_path / "rows.json"
        save_rows([{"a": 1}], path, manifest=False)
        assert load_manifest(path) is None

    def test_manifest_path_for(self):
        assert str(telemetry.manifest_path_for("out/x.json")).endswith(
            "x.manifest.json")

    def test_hardware_snapshot_present_and_sane(self):
        manifest = telemetry.build_manifest(seed=0)
        hardware = manifest["hardware"]
        assert hardware["cpu_count"] >= 1
        assert hardware["total_ram_bytes"] >= 0
        assert telemetry.hardware_info() == hardware  # stable on one host

    def test_hardware_outside_config_fingerprint(self):
        from repro.telemetry.registry import config_fingerprint

        manifest = telemetry.build_manifest(seed=0,
                                            extra={"experiment": "eff"})
        perturbed = dict(manifest)
        perturbed["hardware"] = {"cpu_count": 4096,
                                 "total_ram_bytes": 2 ** 50}
        assert (config_fingerprint(manifest)
                == config_fingerprint(perturbed)), \
            "hardware must not change a run's configuration identity"


class TestReport:
    def test_sparkline_shape(self):
        line = telemetry.sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_and_empty(self):
        assert telemetry.sparkline([5, 5, 5]) == "▁▁▁"
        assert telemetry.sparkline([]) == ""

    def test_render_trace_report_sections(self):
        telemetry.configure()
        with telemetry.span("train"):
            telemetry.emit_event("epoch", epoch=0, loss=2.0, valid_score=0.5)
            telemetry.emit_event("epoch", epoch=1, loss=1.0, valid_score=0.7)
        telemetry.inc_counter("ops.matmul.flops", 1000)
        events = telemetry.shutdown()
        report = telemetry.render_trace_report(events)
        assert "top" in report and "train" in report
        assert "loss" in report and "valid_score" in report
        assert "ops.matmul.flops" in report

    def test_report_empty_events(self):
        report = telemetry.render_trace_report([])
        assert "no spans" in report


class TestTrainingIntegration:
    @pytest.fixture(scope="class")
    def traced_run(self):
        telemetry.shutdown()
        telemetry.configure()
        graph = synthesize("cora", scale=0.05, seed=0)
        result = run_node_classification(
            graph, "ppr", scheme="mini_batch",
            config=TrainConfig(epochs=3, patience=0, eval_every=1))
        events = telemetry.shutdown()
        return result, events

    def test_stage_span_hierarchy(self, traced_run):
        _, events = traced_run
        spans = {e["id"]: e for e in spans_of(events)}
        names = {e["name"] for e in spans.values()}
        assert {"precompute", "train", "epoch", "forward", "backward"} <= names
        forward = next(e for e in spans.values() if e["name"] == "forward")
        chain = []
        cursor = forward
        while cursor is not None:
            chain.append(cursor["name"])
            cursor = spans.get(cursor["parent"])
        assert chain[:3] == ["forward", "epoch", "train"]

    def test_epoch_events_recorded(self, traced_run):
        _, events = traced_run
        epochs = [e for e in events if e["type"] == "epoch"]
        assert len(epochs) == 3
        assert all(e["loss"] is not None for e in epochs)
        assert all(e["valid_score"] is not None for e in epochs)
        assert all(e["grad_norm"] is not None and e["grad_norm"] > 0
                   for e in epochs)
        assert [e["epoch"] for e in epochs] == [0, 1, 2]

    def test_op_counters_populated(self, traced_run):
        _, events = traced_run
        metrics_events = [e for e in events if e["type"] == "metrics"]
        assert metrics_events
        counters = metrics_events[-1]["metrics"]["counters"]
        assert counters["ops.spmm.calls"] > 0
        assert counters["ops.matmul.flops"] > 0
        assert counters["train.epochs"] == 3

    def test_profiler_view_matches_live_run(self, traced_run):
        result, events = traced_run
        view = StageProfiler.from_events(events)
        live = result.profiler
        for stage in ("precompute", "train", "inference"):
            assert view.stages[stage].calls == live.stages[stage].calls
            assert view.stages[stage].seconds == pytest.approx(
                live.stages[stage].seconds, rel=0.2)
        assert view.stages["train"].op_class == "transform"
        assert view.stages["precompute"].op_class == "propagation"
        assert view.peak_ram_bytes() == live.peak_ram_bytes()

    def test_result_unaffected_by_tracing(self):
        graph = synthesize("cora", scale=0.05, seed=0)
        config = TrainConfig(epochs=3, patience=0, eval_every=1)
        plain = run_node_classification(graph, "ppr", scheme="mini_batch",
                                        config=config)
        telemetry.configure()
        traced = run_node_classification(graph, "ppr", scheme="mini_batch",
                                         config=config)
        telemetry.shutdown()
        assert traced.test_score == pytest.approx(plain.test_score)
        assert traced.epochs_run == plain.epochs_run


class TestCli:
    def test_trace_flag_writes_artifacts(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        trace = tmp_path / "run.jsonl"
        code = main(["efficiency", "--datasets", "cora", "--filters", "ppr",
                     "--schemes", "mini_batch", "--epochs", "2",
                     "--trace", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry" in out and "per-epoch metrics" in out
        events = load_jsonl(trace)
        names = {e["name"] for e in events if e["type"] == "span"}
        assert {"experiment", "precompute", "train", "epoch",
                "forward", "backward"} <= names
        manifest = telemetry.read_manifest(
            telemetry.manifest_path_for(trace))
        assert manifest["experiment"] == "efficiency"
        assert manifest["config"]["epochs"] == 2

    def test_no_telemetry_flag(self, capsys):
        from repro.bench.__main__ import main

        code = main(["efficiency", "--datasets", "cora", "--filters", "ppr",
                     "--schemes", "mini_batch", "--epochs", "2",
                     "--no-telemetry"])
        assert code == 0
        assert not telemetry.enabled()
        assert "telemetry" not in capsys.readouterr().out

    def test_parser_accepts_flags(self):
        from repro.bench.__main__ import build_parser

        args = build_parser().parse_args(
            ["efficiency", "--trace", "t.jsonl", "--no-telemetry"])
        assert args.trace == "t.jsonl"
        assert args.no_telemetry


def _span(span_id, parent, name, seconds, alloc, **extra):
    return {"type": "span", "id": span_id, "parent": parent, "name": name,
            "duration_s": seconds, "alloc_bytes": alloc, **extra}


#: root(10s, 1000B) -> a(4s, 300B) -> c(1s, 50B); root -> b(3s, 200B)
TREE_EVENTS = [
    _span(3, 2, "c", 1.0, 50),
    _span(2, 1, "a", 4.0, 300),
    _span(4, 1, "b", 3.0, 200),
    _span(1, None, "root", 10.0, 1000),
]


class TestExclusiveAggregation:
    def test_self_values_subtract_direct_children(self):
        stats = telemetry.aggregate_spans(TREE_EVENTS)
        assert stats["root"]["seconds"] == 10.0
        assert stats["root"]["self_seconds"] == pytest.approx(3.0)
        assert stats["a"]["self_seconds"] == pytest.approx(3.0)
        assert stats["c"]["self_seconds"] == pytest.approx(1.0)
        assert stats["root"]["self_alloc_bytes"] == 500
        assert stats["a"]["self_alloc_bytes"] == 250
        assert stats["b"]["self_alloc_bytes"] == \
            stats["b"]["alloc_bytes"] == 200

    def test_exclusive_telescopes_to_inclusive_root(self):
        """Σ self over every span == inclusive total of the root spans."""
        stats = telemetry.aggregate_spans(TREE_EVENTS)
        assert sum(e["self_seconds"] for e in stats.values()) \
            == pytest.approx(stats["root"]["seconds"])
        assert sum(e["self_alloc_bytes"] for e in stats.values()) \
            == stats["root"]["alloc_bytes"]

    def test_telescoping_holds_on_a_live_trace(self):
        telemetry.configure()
        with telemetry.span("root"):
            with telemetry.span("a"):
                with telemetry.span("c"):
                    sum(range(2000))
            with telemetry.span("b"):
                sum(range(2000))
        events = telemetry.shutdown()
        stats = telemetry.aggregate_spans(events)
        root_inclusive = stats["root"]["seconds"]
        assert sum(e["self_seconds"] for e in stats.values()) \
            == pytest.approx(root_inclusive, rel=1e-9)
        assert all(e["self_seconds"] >= 0 for e in stats.values())

    def test_tolerates_missing_fields(self):
        """Partially-written spans degrade gracefully, never raise."""
        ragged = [
            {"type": "span", "name": "a", "duration_s": 1.0},  # no id/parent
            {"type": "span", "name": "a"},                     # no numerics
            {"type": "span", "id": 7, "parent": None,
             "duration_s": None, "alloc_bytes": None, "name": "b"},
            {"type": "span", "duration_s": 5.0},               # no name
            {"type": "epoch", "loss": 1.0},
        ]
        stats = telemetry.aggregate_spans(ragged)
        assert stats["a"]["calls"] == 2
        assert stats["a"]["seconds"] == 1.0
        assert stats["a"]["self_seconds"] == 1.0   # no linkage: self==incl
        assert stats["b"]["seconds"] == 0.0
        assert "span" not in stats and None not in stats

    def test_renderers_tolerate_ragged_events(self):
        ragged = [
            {"type": "span", "name": "a", "duration_s": 1.0},
            {"type": "span", "duration_s": 2.0},
            {"type": "metrics"},                       # no payload
            {"type": "metrics", "metrics": None},
            {"type": "metrics", "metrics": {"counters": None}},
            {"type": "metrics",
             "metrics": {"counters": {"ops.x.calls": 3, "note": "text"}}},
        ]
        top = telemetry.render_top_spans(ragged)
        assert "a" in top and "self" in top
        counters = telemetry.render_counters(ragged)
        assert "ops.x.calls" in counters and "note" in counters
        assert "no counters" in telemetry.render_counters(
            [{"type": "metrics", "metrics": {"counters": {}}}])


class TestRunDiff:
    def test_span_and_counter_deltas(self):
        baseline = TREE_EVENTS + [
            {"type": "metrics",
             "metrics": {"counters": {"ops.spmm.flops": 100,
                                      "ops.matmul.flops": 50}}}]
        candidate = [
            _span(3, 2, "c", 1.0, 50),
            _span(2, 1, "a", 7.0, 300),        # a got 3s slower
            _span(4, 1, "b", 3.0, 200),
            _span(1, None, "root", 13.0, 1000),
            {"type": "metrics",
             "metrics": {"counters": {"ops.spmm.flops": 300,
                                      "ops.matmul.flops": 50}}}]
        text = telemetry.render_run_diff(baseline, candidate)
        assert "span diff" in text and "counter diff" in text
        # 'a' has the largest self-time delta, so it leads the table.
        span_lines = [ln for ln in text.splitlines()
                      if ln.startswith(("a ", "root ", "b ", "c "))]
        assert span_lines[0].startswith("a ")
        assert "+75.0%" in text            # a: 4s -> 7s inclusive
        assert "ops.spmm.flops" in text and "+200" in text
        assert "ops.matmul.flops" not in text   # unchanged counters hidden

    def test_empty_traces(self):
        text = telemetry.render_run_diff([], [])
        assert "no spans" in text and "no counter changes" in text


class TestHistogramMerge:
    def test_exact_fields_combine_exactly(self):
        a, b = Histogram("h"), Histogram("h")
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
        for v in (10.0, 20.0):
            b.observe(v)
        merged = a.merge(b)
        assert merged.count == 5
        assert merged.mean == pytest.approx(36.0 / 5)
        assert merged.min_value == 1.0 and merged.max_value == 20.0
        # Small reservoirs merge losslessly: quantiles are exact.
        assert merged.quantile(0.5) == 3.0

    def test_merge_is_commutative(self):
        rng = np.random.default_rng(0)
        a, b = Histogram("h", max_samples=64), Histogram("h", max_samples=64)
        for v in rng.normal(size=500):
            a.observe(float(v))
        for v in rng.normal(loc=3.0, size=300):
            b.observe(float(v))
        ab, ba = a.merge(b), b.merge(a)
        assert ab.summary() == ba.summary()

    def test_merge_with_empty(self):
        a, empty = Histogram("h"), Histogram("h")
        for v in (1.0, 2.0):
            a.observe(v)
        assert a.merge(empty).summary() == a.summary()
        assert empty.merge(a).summary() == a.summary()
        assert empty.merge(Histogram("h")).count == 0

    def test_compression_respects_reservoir_bound(self):
        a, b = Histogram("h", max_samples=32), Histogram("h", max_samples=32)
        for i in range(1000):
            a.observe(float(i))
            b.observe(float(2000 + i))
        merged = a.merge(b)
        assert len(merged._samples) < merged.max_samples
        assert merged.quantile(0.0) == merged.min_value
        assert merged.quantile(1.0) == merged.max_value

    @given(
        left=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=400),
        right=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=400),
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_quantiles_within_rank_error(self, left, right):
        """Merged quantile(q) sits within a bounded *rank* neighborhood.

        Equal-mass compression with capacity C moves any quantile by at
        most a few centroids of mass; we assert merged quantiles stay
        inside the value range spanned by ranks q ± 3/C of the exact
        combined distribution (endpoints exact by construction).
        """
        capacity = 64
        a, b = Histogram("h", capacity), Histogram("h", capacity)
        for v in left:
            a.observe(v)
        for v in right:
            b.observe(v)
        merged = a.merge(b)
        data = sorted(left + right)
        n = len(data)
        assert merged.quantile(0.0) == min(data)
        assert merged.quantile(1.0) == max(data)
        rank_eps = 3.0 / capacity
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            low = data[max(0, int(np.floor((q - rank_eps) * (n - 1))))]
            high = data[min(n - 1, int(np.ceil((q + rank_eps) * (n - 1))))]
            value = merged.quantile(q)
            slack = 1e-9 * max(1.0, abs(low), abs(high))  # float roundoff
            assert low - slack <= value <= high + slack


class TestRegistryMergeFrom:
    def test_counters_gauges_histograms_fold(self):
        main, shard = MetricsRegistry(), MetricsRegistry()
        main.counter("ops.spmm.calls").inc(5)
        shard.counter("ops.spmm.calls").inc(7)
        shard.counter("ops.eig.calls").inc(1)
        main.gauge("ram").set(100)
        shard.gauge("ram").set(80)
        shard.gauge("ram").set(60)
        for v in (1.0, 2.0):
            main.histogram("lat").observe(v)
        for v in (3.0, 4.0):
            shard.histogram("lat").observe(v)
        merged = main.merge_from(shard).snapshot()
        assert merged["counters"]["ops.spmm.calls"] == 12
        assert merged["counters"]["ops.eig.calls"] == 1
        assert merged["gauges"]["ram"]["max"] == 100
        assert merged["gauges"]["ram"]["value"] == 60
        assert merged["histograms"]["lat"]["count"] == 4
        assert merged["histograms"]["lat"]["mean"] == pytest.approx(2.5)
