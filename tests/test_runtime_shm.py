"""Cross-process shared term store (:mod:`repro.runtime.shm`) tests.

The store's contract has four faces, each covered here:

1. **Index mechanics** — fingerprints are content addresses; the
   length-prefixed JSON index round-trips, reads torn/garbage buffers as
   an explicit miss, and refuses writes that do not fit.
2. **Protocol** — blob publish/fetch is first-publisher-wins; chain
   claims are exclusive, adoptable when their holder dies, abandonable,
   and a publish against stale offsets is refused (the orphan segment is
   reclaimed). FIFO eviction keeps payload bytes under budget without
   ever evicting the entry being published. A client that cannot take
   the lock degrades to local compute instead of blocking the sweep.
3. **Crash safety** — scope exit unlinks every segment of the run by
   name; :func:`~repro.runtime.shm.sweep_leaked_segments` reaps groups
   whose owner died or whose index vanished; a SIGKILLed attacher never
   wedges cleanup (the lock-holder variant lives in
   ``tests/test_runtime_pool.py`` with the slow marker).
4. **Invisibility** — with a worker handle installed, planner-served
   shared terms and shared CSR blobs are byte-identical to local
   computation across the full 27-filter taxonomy (parametrized + a
   hypothesis property), and ``--no-cache`` semantics turn the store
   off via :func:`~repro.runtime.shm.active_handle`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.filters.registry import FILTER_NAMES, make_filter
from repro.graph import Graph
from repro.runtime import cache, plan, shm
from repro.runtime.shm import (
    SharedTermStore,
    StoreConfig,
    blob_fingerprint,
    chain_fingerprint,
    sweep_leaked_segments,
)

pytestmark = pytest.mark.skipif(not shm.supported(),
                                reason="POSIX shared memory unavailable")


@pytest.fixture(autouse=True)
def _clean_state():
    """Isolate tests from global cache switches and leftover telemetry."""
    cache.set_enabled(True)
    plan.set_enabled(True)
    telemetry.shutdown()
    yield
    cache.set_enabled(True)
    plan.set_enabled(True)
    telemetry.shutdown()


@pytest.fixture()
def store():
    instance = SharedTermStore()
    yield instance
    instance.close()
    assert not _run_segments(instance.run_id), \
        "store close left segments in /dev/shm"


def _run_segments(run_id: str) -> list:
    prefix = f"{shm.SEGMENT_PREFIX}{run_id}"
    if not os.path.isdir("/dev/shm"):
        return []
    return [name for name in os.listdir("/dev/shm")
            if name.startswith(prefix)]


def _dead_pid() -> int:
    probe = subprocess.Popen([sys.executable, "-c", "pass"])
    probe.wait()
    return probe.pid


# ---------------------------------------------------------------------------
# 1. fingerprints + index serialization
# ---------------------------------------------------------------------------

class TestFingerprints:
    MTOK = ((4, 4), 8, "<f8", 3.25)
    XTOK = ("x", 16, "<f4", 1.5)

    def test_chain_fingerprint_deterministic(self):
        first = chain_fingerprint(self.MTOK, "numpy", self.XTOK,
                                  "monomial_adj", (0.5,))
        again = chain_fingerprint(self.MTOK, "numpy", self.XTOK,
                                  "monomial_adj", (0.5,))
        assert first == again and len(first) == 16

    def test_chain_fingerprint_sensitivity(self):
        base = chain_fingerprint(self.MTOK, "numpy", self.XTOK,
                                 "monomial_adj", (0.5,))
        assert base != chain_fingerprint(self.MTOK, "numpy", self.XTOK,
                                         "monomial_lap", (0.5,))
        assert base != chain_fingerprint(self.MTOK, "numpy", self.XTOK,
                                         "monomial_adj", (0.25,))
        assert base != chain_fingerprint(self.MTOK, "autodiff", self.XTOK,
                                         "monomial_adj", (0.5,))
        other_x = ("x", 16, "<f4", 2.5)
        assert base != chain_fingerprint(self.MTOK, "numpy", other_x,
                                         "monomial_adj", (0.5,))

    def test_blob_fingerprint_kind_scoped(self):
        token = self.MTOK
        assert blob_fingerprint("spmm_t", token) \
            != blob_fingerprint("norm", token)
        assert blob_fingerprint("spmm_t", token) \
            == blob_fingerprint("spmm_t", token)


class TestIndexBuffer:
    def test_round_trip(self):
        buf = bytearray(4096)
        doc = {"schema": "x", "chains": {"fp": {"terms": []}}}
        assert shm._write_index_buf(buf, doc)
        assert shm._read_index_buf(buf) == doc

    def test_zero_length_reads_none(self):
        assert shm._read_index_buf(bytearray(64)) is None

    def test_garbage_reads_none(self):
        buf = bytearray(64)
        shm._write_index_buf(buf, {"k": 1})
        buf[4:10] = b"\xff" * 6
        assert shm._read_index_buf(buf) is None

    def test_oversized_write_refused(self):
        buf = bytearray(32)
        assert not shm._write_index_buf(buf, {"k": "v" * 64})
        assert shm._read_index_buf(buf) is None


# ---------------------------------------------------------------------------
# 2. protocol: blobs, chains, claims, eviction, degradation
# ---------------------------------------------------------------------------

class TestBlobProtocol:
    def test_publish_fetch_round_trip(self, store):
        arrays = {"data": np.arange(6, dtype=np.float64),
                  "indices": np.arange(6, dtype=np.int32)}
        fp = blob_fingerprint("spmm_t", ("t",))
        assert store.publish_blob(fp, arrays, meta={"shape": [2, 3]})
        fetched = store.fetch_blob(fp)
        assert fetched is not None
        got, meta = fetched
        assert meta == {"shape": [2, 3]}
        for name, array in arrays.items():
            np.testing.assert_array_equal(got[name], array)
            assert not got[name].flags.writeable

    def test_first_publisher_wins(self, store):
        fp = blob_fingerprint("norm", ("n",))
        assert store.publish_blob(fp, {"a": np.ones(3)})
        assert not store.publish_blob(fp, {"a": np.zeros(3)})
        got, _meta = store.fetch_blob(fp)
        np.testing.assert_array_equal(got["a"], np.ones(3))

    def test_refused_publish_reclaims_segment(self, store):
        fp = blob_fingerprint("norm", ("again",))
        store.publish_blob(fp, {"a": np.ones(3)})
        before = set(_run_segments(store.run_id))
        assert not store.publish_blob(fp, {"a": np.zeros(3)})
        assert set(_run_segments(store.run_id)) == before

    def test_unknown_blob_misses(self, store):
        assert store.fetch_blob(blob_fingerprint("norm", ("nope",))) is None


class TestChainProtocol:
    FP = chain_fingerprint(((3, 3), 4, "<f8", 1.0), "numpy",
                           ("x", 9, "<f4", 0.5), "monomial_adj", ())

    def _terms(self, count, offset=0):
        return [np.full((3, 2), float(offset + k), dtype=np.float32)
                for k in range(count)]

    def test_claim_publish_serve(self, store):
        served, claimed = store.plan_chain(self.FP, have=0, want=3)
        assert served == [] and claimed
        terms = self._terms(3)
        assert store.publish_terms(self.FP, first_order=1, terms=terms)
        handle = store.worker_handle()
        served, claimed = handle.plan_chain(self.FP, have=0, want=3)
        assert not claimed and len(served) == 3
        for expected, got in zip(terms, served):
            np.testing.assert_array_equal(got, expected)
            assert not got.flags.writeable
        handle.close()

    def test_incremental_extension(self, store):
        store.plan_chain(self.FP, have=0, want=2)
        store.publish_terms(self.FP, first_order=1, terms=self._terms(2))
        served, claimed = store.plan_chain(self.FP, have=2, want=4)
        assert served == [] and claimed, \
            "extension past published depth must claim the remainder"
        assert store.publish_terms(self.FP, first_order=3,
                                   terms=self._terms(2, offset=2))
        served, claimed = store.plan_chain(self.FP, have=0, want=4)
        assert not claimed and len(served) == 4
        np.testing.assert_array_equal(served[3],
                                      np.full((3, 2), 3.0, np.float32))

    def test_stale_offset_publish_refused(self, store):
        store.plan_chain(self.FP, have=0, want=2)
        store.publish_terms(self.FP, first_order=1, terms=self._terms(2))
        before = set(_run_segments(store.run_id))
        assert not store.publish_terms(self.FP, first_order=1,
                                       terms=self._terms(2, offset=9))
        assert set(_run_segments(store.run_id)) == before
        served, _ = store.plan_chain(self.FP, have=0, want=2)
        np.testing.assert_array_equal(served[0],
                                      np.zeros((3, 2), np.float32))

    def test_abandon_claim_releases(self, store):
        _, claimed = store.plan_chain(self.FP, have=0, want=2)
        assert claimed
        store.abandon_claim(self.FP)
        handle = store.worker_handle()
        _, claimed = handle.plan_chain(self.FP, have=0, want=2)
        assert claimed, "abandoned claim must be immediately re-claimable"
        handle.close()

    def test_dead_claimant_adopted(self, store):
        dead = _dead_pid()

        def forge(index):
            index["chains"][self.FP] = {
                "dtype": None, "shape": None, "nbytes": 0, "terms": [],
                "claim": {"pid": dead, "ts": time.time(), "upto": 2}}
            return None, True

        store._with_index(forge)
        served, claimed = store.plan_chain(self.FP, have=0, want=2)
        assert served == [] and claimed
        assert store.stats()["adoptions"] == 1

    def test_live_claimant_waiter_times_out(self, store):
        holder = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            def forge(index):
                index["chains"][self.FP] = {
                    "dtype": None, "shape": None, "nbytes": 0, "terms": [],
                    "claim": {"pid": holder.pid, "ts": time.time(),
                              "upto": 2}}
                return None, True

            store._with_index(forge)
            handle = shm.WorkerHandle(
                store._index_name, store._lock,
                StoreConfig(wait_timeout_s=0.05, poll_interval_s=0.005),
                store.run_id, store.start_method)
            start = time.monotonic()
            served, claimed = handle.plan_chain(self.FP, have=0, want=2)
            assert served == [] and not claimed, \
                "waiter must give up and compute locally, never claim over"
            assert time.monotonic() - start < 5.0
            handle.close()
        finally:
            holder.kill()
            holder.wait()


class TestEvictionAndDegradation:
    def test_fifo_eviction_respects_budget(self):
        store = SharedTermStore(config=StoreConfig(budget_bytes=4096))
        try:
            chunk = np.zeros(384, dtype=np.float64)  # 3 KiB each
            first = blob_fingerprint("norm", ("first",))
            second = blob_fingerprint("norm", ("second",))
            assert store.publish_blob(first, {"a": chunk})
            assert store.publish_blob(second, {"a": chunk})
            assert store.fetch_blob(first) is None, \
                "oldest entry must be evicted past the byte budget"
            assert store.fetch_blob(second) is not None, \
                "the entry being published is protected from eviction"
            assert store.stats()["bytes"] <= 4096
        finally:
            store.close()

    def test_lock_timeout_degrades_to_local(self, store):
        handle = shm.WorkerHandle(
            store._index_name, store._lock,
            StoreConfig(lock_timeout_s=0.05),
            store.run_id, store.start_method)
        assert store._lock.acquire()
        try:
            fp = blob_fingerprint("norm", ("locked",))
            assert handle.fetch_blob(fp) is None
            assert handle._disabled, \
                "a lock timeout must disable the client for the session"
        finally:
            store._lock.release()
        # Degradation is sticky: the store stays off even once the lock
        # frees up — liveness over sharing.
        assert handle.fetch_blob(blob_fingerprint("norm", ("free",))) is None
        handle.close()

    def test_index_overflow_disables_instead_of_corrupting(self):
        store = SharedTermStore(config=StoreConfig(index_bytes=4096))
        try:
            for attempt in range(64):
                fp = blob_fingerprint("norm", ("bulk", attempt))
                if not store.publish_blob(fp, {"a": np.ones(2)},
                                          meta={"pad": "p" * 128}):
                    break
            # Either eviction kept the document inside the segment, or
            # the store disabled itself; both leave the index readable
            # (or the store off) — never a torn document.
            if not store._disabled:
                assert store.stats() != {}
        finally:
            store.close()


# ---------------------------------------------------------------------------
# 3. crash safety: lifecycle, leaked-segment sweep, cross-process
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_close_unlinks_and_is_idempotent(self):
        store = SharedTermStore()
        store.publish_blob(blob_fingerprint("norm", ("x",)),
                           {"a": np.ones(4)})
        assert _run_segments(store.run_id)
        stats = store.close()
        assert stats["segments_unlinked"] >= 2  # index + data
        assert stats["blobs"] == 1
        assert not _run_segments(store.run_id)
        assert store.close() == stats, "second close must be a no-op"

    def test_worker_handle_state_never_ships_segments(self, store):
        store.publish_blob(blob_fingerprint("norm", ("y",)),
                           {"a": np.ones(4)})
        handle = store.worker_handle()
        handle.fetch_blob(blob_fingerprint("norm", ("y",)))
        state = handle.__getstate__()
        assert state["_segments"] == {} and state["_index_seg"] is None
        handle.close()

    def test_store_survives_view_outliving_fetch(self, store):
        fp = blob_fingerprint("norm", ("held",))
        store.publish_blob(fp, {"a": np.arange(8.0)})
        got, _ = store.fetch_blob(fp)
        view = got["a"]  # keep a live view across close
        stats = store.close()
        assert stats["segments_unlinked"] >= 2
        np.testing.assert_array_equal(view, np.arange(8.0)), \
            "POSIX unlink must not invalidate live mappings"


class TestLeakedSegmentSweep:
    def test_dead_owner_group_reaped(self):
        store = SharedTermStore()
        store.publish_blob(blob_fingerprint("norm", ("leak",)),
                           {"a": np.ones(16)})
        run_id, dead = store.run_id, _dead_pid()

        def forge(index):
            index["owner"] = dead
            return None, True

        store._with_index(forge)
        assert sweep_leaked_segments() >= 2
        assert not _run_segments(run_id)
        store._closed = True  # segments already gone; skip double unlink

    def test_orphan_data_segment_reaped(self):
        name = f"{shm.SEGMENT_PREFIX}deadbeefd1x0"
        segment = shm._create_segment(name, 64)
        segment.close()
        assert sweep_leaked_segments() >= 1
        assert not _run_segments("deadbeef")

    def test_live_store_never_swept(self, store):
        store.publish_blob(blob_fingerprint("norm", ("live",)),
                           {"a": np.ones(4)})
        sweep_leaked_segments()
        assert _run_segments(store.run_id), \
            "a store with a live owner must survive the sweep"


def _child_roundtrip(handle, fp_in, fp_out, conn):
    """Fork-child: fetch the parent's blob, publish one back."""
    try:
        with shm.worker_scope(handle) as active:
            got, _meta = active.fetch_blob(fp_in)
            value = np.asarray(got["a"]).copy()
            active.publish_blob(fp_out, {"b": value * 2.0})
        conn.send(value.tolist())
    except Exception as exc:  # pragma: no cover - surfaced by the parent
        conn.send(f"error: {exc}")
    finally:
        conn.close()


class TestCrossProcess:
    def test_fork_child_fetches_and_publishes(self, store):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        fp_in = blob_fingerprint("norm", ("parent",))
        fp_out = blob_fingerprint("norm", ("child",))
        payload = np.arange(5.0)
        assert store.publish_blob(fp_in, {"a": payload})
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child_roundtrip,
                           args=(store.worker_handle(), fp_in, fp_out,
                                 child_conn))
        proc.start()
        child_conn.close()
        assert parent_conn.poll(30.0), "fork child never reported"
        result = parent_conn.recv()
        proc.join(timeout=30.0)
        assert proc.exitcode == 0
        assert result == payload.tolist()
        got, _meta = store.fetch_blob(fp_out)
        np.testing.assert_array_equal(got["b"], payload * 2.0)


# ---------------------------------------------------------------------------
# 4. invisibility: planner/cache integration across the taxonomy
# ---------------------------------------------------------------------------

def _random_graph(n: int, seed: int, num_features: int = 3) -> Graph:
    rng = np.random.default_rng(seed)
    num_edges = max(2 * n, 1)
    edges = np.stack([rng.integers(0, n, size=num_edges),
                      rng.integers(0, n, size=num_edges)], axis=1)
    edges = edges[edges[:, 0] != edges[:, 1]]
    if len(edges) == 0:
        edges = np.array([[0, n - 1]]) if n > 1 else np.zeros((0, 2), int)
    features = rng.normal(size=(n, num_features)).astype(np.float32)
    return Graph.from_edges(n, edges, features=features, name=f"rand{seed}")


def _shared_vs_local(name: str, graph: Graph, num_hops: int, rho: float):
    """(local bytes, publisher-pass bytes, served-pass bytes)."""
    x = np.asarray(graph.features, dtype=np.float32)
    filter_ = make_filter(name, num_hops=num_hops, num_features=x.shape[1])
    with plan.plan_scope(fresh=True):
        local = filter_.precompute(graph, x, rho=rho)
    store = SharedTermStore()
    try:
        with shm.worker_scope(store.worker_handle()):
            # Fresh plan scopes per pass model isolated pool workers:
            # pass 1 computes and publishes, pass 2 must be served the
            # same bytes from shared memory.
            with plan.plan_scope(fresh=True):
                published = filter_.precompute(graph, x, rho=rho)
            with plan.plan_scope(fresh=True):
                served = filter_.precompute(graph, x, rho=rho)
    finally:
        stats = store.close()
    return local, published, served, stats


class TestSharedStoreInvisibility:
    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_taxonomy_byte_identity(self, name):
        """Shared-store on/off is invisible for all 27 filters."""
        graph = _random_graph(24, seed=11)
        local, published, served, _stats = _shared_vs_local(
            name, graph, num_hops=6, rho=0.5)
        assert local.tobytes() == published.tobytes(), name
        assert local.tobytes() == served.tobytes(), name

    def test_second_pass_is_served_from_shared_memory(self):
        graph = _random_graph(24, seed=13)
        _local, _pub, _served, stats = _shared_vs_local(
            "monomial", graph, num_hops=6, rho=0.5)
        assert stats["publishes"] > 0, "first pass must publish its chain"
        assert stats["hits"] > 0, "second pass must hit the shared chain"

    @given(seed=st.integers(0, 40), num_hops=st.integers(1, 7),
           rho=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
           name=st.sampled_from(["monomial", "ppr", "hk", "gaussian",
                                 "horner", "chebyshev", "clenshaw",
                                 "legendre", "jacobi", "fbgnn2", "fagnn"]))
    @settings(max_examples=15, deadline=None)
    def test_shared_on_off_byte_identity_property(self, seed, num_hops,
                                                  rho, name):
        """Random graph/order/ρ across every chain family: identical."""
        graph = _random_graph(12 + seed % 9, seed=seed)
        local, published, served, _stats = _shared_vs_local(
            name, graph, num_hops=num_hops, rho=rho)
        assert local.tobytes() == published.tobytes(), name
        assert local.tobytes() == served.tobytes(), name


class TestCsrBlobIntegration:
    def _csr(self, seed=0, n=12):
        rng = np.random.default_rng(seed)
        matrix = sp.random(n, n, density=0.3, random_state=rng,
                           format="csr", dtype=np.float64)
        matrix.sort_indices()
        return matrix

    def test_shared_csr_round_trip(self, store):
        matrix = self._csr()
        fp = blob_fingerprint("spmm_t", cache.matrix_token(matrix))
        assert cache.shared_csr_publish(store, fp, matrix)
        fetched = cache.shared_csr_fetch(store, fp)
        assert fetched is not None
        assert (fetched != matrix).nnz == 0
        assert fetched.has_sorted_indices

    def test_transpose_routes_through_store(self, store):
        matrix = self._csr(seed=3)
        with shm.worker_scope(store.worker_handle()):
            cache.clear_transpose_cache()
            first = cache.transpose_csr(matrix)
            assert cache.transpose_build_count() == 1
            # A cold local cache (clear also zeroes the build counter)
            # must now be served the shared blob, not rebuild.
            cache.clear_transpose_cache()
            second = cache.transpose_csr(matrix)
            assert cache.transpose_build_count() == 0
        assert (first != second).nnz == 0
        assert store.stats()["hits"] >= 1

    def test_normalization_routes_through_store(self, store):
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        with shm.worker_scope(store.worker_handle()):
            first = Graph.from_edges(4, edges.copy(),
                                     name="n1").normalized_adjacency()
            second = Graph.from_edges(4, edges.copy(),
                                      name="n2").normalized_adjacency()
        assert (first != second).nnz == 0
        stats = store.stats()
        assert stats["blobs"] >= 1 and stats["hits"] >= 1, \
            "identical graphs must share one normalization blob"


class TestScopes:
    def test_store_scope_installs_and_closes(self):
        store = SharedTermStore()
        with shm.store_scope(store) as active:
            assert shm.active_store() is active
        assert shm.active_store() is None
        assert not _run_segments(store.run_id), \
            "scope exit must close the store"

    def test_worker_scope_none_passthrough(self):
        with shm.worker_scope(None) as handle:
            assert handle is None
        assert shm.active_handle() is None

    def test_no_cache_disables_active_handle(self, store):
        with shm.worker_scope(store.worker_handle()) as handle:
            assert shm.active_handle() is handle
            cache.set_enabled(False)
            assert shm.active_handle() is None, \
                "--no-cache must turn the shared store off too"
            cache.set_enabled(True)
            assert shm.active_handle() is handle
