"""Hyperparameter search: ranges, sampling, budgeted random search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.training import (
    FILTER_SEARCH_RANGES,
    UNIVERSAL_DEFAULTS,
    UNIVERSAL_GRID,
    SearchSpace,
    TrainConfig,
    random_search,
    sample_configuration,
)


class TestTableFour:
    def test_defaults_in_grid(self):
        assert UNIVERSAL_DEFAULTS["num_hops"] in UNIVERSAL_GRID["num_hops"]
        assert UNIVERSAL_DEFAULTS["hidden"] in UNIVERSAL_GRID["hidden"]

    def test_paper_universal_values(self):
        assert UNIVERSAL_DEFAULTS["num_hops"] == 10
        assert UNIVERSAL_DEFAULTS["hidden"] == 64
        assert UNIVERSAL_DEFAULTS["phi0_layers_mb"] == 0
        assert UNIVERSAL_DEFAULTS["phi1_layers_mb"] == 2

    def test_filter_ranges_cover_tunable_filters(self):
        assert "ppr" in FILTER_SEARCH_RANGES
        assert "jacobi" in FILTER_SEARCH_RANGES
        assert "g2cn" in FILTER_SEARCH_RANGES


class TestSampling:
    def test_draw_within_ranges(self):
        space = SearchSpace.default(FILTER_SEARCH_RANGES["ppr"])
        rng = np.random.default_rng(0)
        for _ in range(20):
            config, filter_hp = sample_configuration(space, TrainConfig(), rng)
            assert 0.0 <= config.rho <= 1.0
            assert 1e-5 <= config.lr <= 0.5
            assert 1e-7 <= config.weight_decay <= 1e-3
            assert 0.05 <= filter_hp["alpha"] <= 0.95

    def test_log_ranges_span_decades(self):
        space = SearchSpace.default()
        rng = np.random.default_rng(0)
        lrs = [sample_configuration(space, TrainConfig(), rng)[0].lr
               for _ in range(200)]
        assert min(lrs) < 1e-3 and max(lrs) > 0.05

    def test_unknown_range_kind(self):
        from repro.training.hyper import _draw

        with pytest.raises(TrainingError):
            _draw(np.random.default_rng(0), 0, 1, "cauchy")


class TestRandomSearch:
    def test_evaluates_base_first(self):
        calls = []

        def objective(config, filter_hp):
            calls.append((config, filter_hp))
            return -abs(config.lr - 0.02)

        base = TrainConfig(lr=0.02)
        best_config, best_hp, best_score, trace = random_search(
            objective, SearchSpace.default(), base, budget=5, seed=0)
        assert calls[0][0] is base
        assert best_score == 0.0  # base is optimal for this objective
        assert best_config is base
        assert len(trace) == 5

    def test_search_can_improve(self):
        def objective(config, filter_hp):
            return -abs(np.log10(config.lr) + 2)  # optimum at lr = 0.01

        base = TrainConfig(lr=0.4)
        _, _, best_score, trace = random_search(
            objective, SearchSpace.default(), base, budget=30, seed=1)
        assert best_score > trace[0]

    def test_budget_validation(self):
        with pytest.raises(TrainingError):
            random_search(lambda c, h: 0.0, SearchSpace.default(),
                          TrainConfig(), budget=0)

    def test_end_to_end_tiny_search(self, small_graph):
        """Random search over a real (tiny) training objective."""
        from repro.tasks import run_node_classification

        def objective(config, filter_hp):
            result = run_node_classification(
                small_graph, "ppr", scheme="mini_batch",
                config=config, filter_hp=filter_hp)
            return result.valid_score

        base = TrainConfig(epochs=5, patience=0, eval_every=1)
        space = SearchSpace.default(FILTER_SEARCH_RANGES["ppr"])
        best_config, best_hp, best_score, trace = random_search(
            objective, space, base, budget=3, seed=0)
        assert len(trace) == 3
        assert np.isfinite(best_score)
