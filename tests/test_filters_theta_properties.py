"""Property tests on filter parameterization: linearity in θ, γ scaling."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters import BANK_NAMES, VARIABLE_NAMES, make_filter

LAMS = np.linspace(0.0, 2.0, 33)

#: Filters whose response is linear in their coefficient vector θ.
THETA_LINEAR = [n for n in VARIABLE_NAMES if n not in ("favard", "optbasis")]

small_floats = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False,
                         allow_infinity=False)


class TestThetaLinearity:
    @given(st.sampled_from(THETA_LINEAR), small_floats, small_floats,
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_response_linear_in_theta(self, name, a, b, seed):
        """g(λ; aθ₁ + bθ₂) == a·g(λ; θ₁) + b·g(λ; θ₂)."""
        filter_ = make_filter(name, num_hops=6)
        rng = np.random.default_rng(seed)
        size = filter_.parameter_spec()["theta"].shape
        theta1 = rng.normal(size=size).astype(np.float32)
        theta2 = rng.normal(size=size).astype(np.float32)
        lhs = filter_.response(LAMS, {"theta": a * theta1 + b * theta2})
        rhs = (a * filter_.response(LAMS, {"theta": theta1})
               + b * filter_.response(LAMS, {"theta": theta2}))
        np.testing.assert_allclose(lhs, rhs, atol=1e-5 * max(1, abs(a) + abs(b)))

    @given(st.sampled_from(THETA_LINEAR))
    @settings(max_examples=20, deadline=None)
    def test_zero_theta_zero_response(self, name):
        filter_ = make_filter(name, num_hops=6)
        size = filter_.parameter_spec()["theta"].shape
        response = filter_.response(LAMS, {"theta": np.zeros(size, np.float32)})
        np.testing.assert_allclose(response, 0.0, atol=1e-10)


class TestGammaScaling:
    @given(st.sampled_from([n for n in BANK_NAMES if n != "adagnn"]),
           st.floats(min_value=0.1, max_value=3.0),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_response_linear_in_gamma(self, name, scale, seed):
        """Scaling every γ_q scales the (sum-fused) response."""
        bank = make_filter(name, num_hops=4)
        rng = np.random.default_rng(seed)
        params = {p: s.init.copy() for p, s in bank.parameter_spec().items()}
        base = bank.response(LAMS, params)
        scaled = dict(params)
        scaled["gamma"] = params["gamma"] * scale
        np.testing.assert_allclose(bank.response(LAMS, scaled), scale * base,
                                   atol=1e-6 * scale)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_adagnn_gamma_zero_is_identity(self, hops, seed):
        filter_ = make_filter("adagnn", num_hops=hops, num_features=3)
        gamma = np.zeros((hops, 3), dtype=np.float32)
        response = filter_.response(LAMS, {"gamma": gamma})
        np.testing.assert_allclose(response, 1.0, atol=1e-8)


class TestHopMonotonicity:
    @given(st.sampled_from(["ppr", "hk"]),
           st.integers(min_value=2, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_truncation_converges(self, name, hops):
        """Adding hops to a decaying fixed filter changes the response by
        at most the truncated tail mass."""
        short = make_filter(name, num_hops=hops)
        long = make_filter(name, num_hops=hops + 8)
        tail = np.abs(long.fixed_coefficients()[hops + 1:]).sum()
        gap = np.abs(short.response(LAMS) - long.response(LAMS)).max()
        assert gap <= tail + 1e-9
