"""Filter-selection guidelines: recommendation quality and structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthesize
from repro.spectral import (
    CATEGORY_COST,
    label_spectral_energy,
    recommend_filters,
)


@pytest.fixture(scope="module")
def homo_graph():
    return synthesize("cora", scale=0.15, seed=0)


@pytest.fixture(scope="module")
def hetero_graph():
    return synthesize("chameleon", scale=0.4, seed=0)


class TestLabelEnergy:
    def test_shape_and_nonnegative(self, homo_graph):
        energy = label_spectral_energy(homo_graph)
        assert energy.shape == (homo_graph.num_nodes,)
        assert np.all(energy >= 0)

    def test_homophilous_energy_is_low_frequency(self, homo_graph, hetero_graph):
        def centroid(graph):
            from repro.spectral import laplacian_eigendecomposition

            eigenvalues, _ = laplacian_eigendecomposition(graph)
            energy = label_spectral_energy(graph)
            return float((eigenvalues * energy).sum() / energy.sum())

        assert centroid(homo_graph) < centroid(hetero_graph)


class TestRecommendations:
    def test_sorted_best_first(self, homo_graph):
        recs = recommend_filters(homo_graph,
                                 candidates=["ppr", "impulse", "chebyshev"])
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_homophily_prefers_low_pass_fixed(self, homo_graph):
        recs = recommend_filters(
            homo_graph, candidates=["ppr", "hk", "impulse", "monomial"])
        by_name = {r.filter_name: r for r in recs}
        # A decaying low-pass beats the bare K-hop impulse under homophily.
        assert by_name["ppr"].alignment > by_name["impulse"].alignment

    def test_heterophily_ranks_impulse_last(self, hetero_graph):
        recs = recommend_filters(
            hetero_graph,
            candidates=["impulse", "ppr", "chebyshev", "bernstein"])
        assert recs[-1].filter_name == "impulse"

    def test_heterophily_prefers_adaptive(self, hetero_graph):
        recs = recommend_filters(
            hetero_graph, candidates=["ppr", "hk", "chebyshev", "bernstein"])
        assert recs[0].category == "variable"

    def test_efficiency_weight_demotes_banks(self, homo_graph):
        neutral = recommend_filters(homo_graph, efficiency_weight=0.0,
                                    candidates=["ppr", "figure"])
        thrifty = recommend_filters(homo_graph, efficiency_weight=0.5,
                                    candidates=["ppr", "figure"])
        neutral_rank = [r.filter_name for r in neutral]
        thrifty_rank = [r.filter_name for r in thrifty]
        assert thrifty_rank.index("ppr") <= neutral_rank.index("ppr")

    def test_rationale_mentions_display_name(self, homo_graph):
        recs = recommend_filters(homo_graph, candidates=["ppr"])
        assert "PPR" in recs[0].rationale()

    def test_cost_classes_cover_taxonomy(self):
        assert set(CATEGORY_COST) == {"fixed", "variable", "bank"}

    def test_defaults_cover_full_registry(self, homo_graph):
        recs = recommend_filters(homo_graph, num_hops=6)
        assert len(recs) == 27

    def test_recommendation_predicts_accuracy_ordering(self, hetero_graph):
        """Top recommendation trains better than the bottom one (C5)."""
        from repro.tasks import run_node_classification
        from repro.training import TrainConfig

        recs = recommend_filters(
            hetero_graph,
            candidates=["impulse", "ppr", "chebyshev"])
        config = TrainConfig(epochs=40, patience=20)
        top = run_node_classification(hetero_graph, recs[0].filter_name,
                                      config=config)
        bottom = run_node_classification(hetero_graph, recs[-1].filter_name,
                                         config=config)
        assert top.test_score > bottom.test_score
