"""The ``python -m repro.bench`` command-line interface."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_lists_experiments(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_every_experiment_registered_with_artifact(self):
        artifacts = [artifact for _, artifact, _ in EXPERIMENTS.values()]
        assert any("Table 5" in a for a in artifacts)
        assert any("Figure 10" in a for a in artifacts)
        assert len(EXPERIMENTS) == 13

    def test_parser_accepts_common_flags(self):
        parser = build_parser()
        args = parser.parse_args(["effectiveness", "--datasets", "cora",
                                  "--filters", "ppr", "--epochs", "5",
                                  "--seeds", "0", "1"])
        assert args.experiment == "effectiveness"
        assert args.datasets == ["cora"]
        assert args.seeds == [0, 1]


class TestExecution:
    def test_taxonomy_runs(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "Bernstein" in out
        assert "Table 1" in out

    def test_effectiveness_with_overrides(self, capsys):
        code = main(["effectiveness", "--datasets", "cora",
                     "--filters", "identity", "monomial",
                     "--epochs", "5", "--seeds", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Monomial" in out and "±" in out

    def test_regression_with_epochs(self, capsys):
        code = main(["regression", "--filters", "ppr", "--epochs", "5"])
        assert code == 0
        assert "low" in capsys.readouterr().out


class TestRegistryCli:
    EFFICIENCY = ["efficiency", "--datasets", "cora", "--filters", "ppr",
                  "--schemes", "mini_batch", "--epochs", "2"]

    def _run(self, registry_dir, index):
        return main(self.EFFICIENCY + [
            "--registry-dir", str(registry_dir),
            "--trace", str(registry_dir / f"run{index}.jsonl")])

    def test_run_indexes_into_registry(self, tmp_path, capsys):
        from repro.telemetry.registry import RunRegistry

        assert self._run(tmp_path, 1) == 0
        assert "registry:" in capsys.readouterr().out
        records = RunRegistry(tmp_path).load()
        assert len(records) == 1
        assert records[0].experiment == "efficiency"
        assert records[0].stages["train"]["seconds"] > 0
        assert "self_seconds" in records[0].stages["train"]

    def test_no_registry_flag_skips_indexing(self, tmp_path, capsys):
        from repro.telemetry.registry import RunRegistry

        code = main(self.EFFICIENCY + ["--no-registry",
                                       "--registry-dir", str(tmp_path)])
        assert code == 0
        assert "registry:" not in capsys.readouterr().out
        assert RunRegistry(tmp_path).load() == []

    def test_compare_history_sparkline_report(self, tmp_path, capsys):
        """Two runs, then `--history` renders a trend row per metric."""
        assert self._run(tmp_path, 1) == 0
        assert self._run(tmp_path, 2) == 0
        capsys.readouterr()

        code = main(["compare", "--registry", "efficiency",
                     "--registry-dir", str(tmp_path), "--history", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "registry history: efficiency (last 5 runs" in out
        assert "stages.train.seconds" in out
        assert "trend" in out

    def test_history_requires_registry(self):
        with pytest.raises(SystemExit):
            main(["compare", "a.json", "b.json", "--history", "3"])

    def test_compare_registry_end_to_end(self, tmp_path, capsys):
        """Two runs, then resolve + diff by fingerprint with no file paths."""
        from repro.telemetry.registry import RunRegistry

        assert self._run(tmp_path, 1) == 0
        assert self._run(tmp_path, 2) == 0
        capsys.readouterr()
        fingerprint = RunRegistry(tmp_path).load()[-1].config_fingerprint

        code = main(["compare", "--registry", fingerprint,
                     "--registry-dir", str(tmp_path), "--gate"])
        out = capsys.readouterr().out
        assert code in (0, 1)  # gate may legitimately flag smoke noise
        assert f"config {fingerprint}" in out
        assert "registry diff" in out
        assert "stages.train.seconds" in out
        assert "span diff" in out            # traces existed for both runs
        assert "regression verdicts" in out  # --gate renders the table

class TestPoolCli:
    EFFICIENCY = ["efficiency", "--datasets", "cora",
                  "--filters", "ppr", "chebyshev",
                  "--schemes", "mini_batch", "--epochs", "2"]

    def test_parser_accepts_pool_flags(self):
        parser = build_parser()
        args = parser.parse_args(["efficiency", "--workers", "4",
                                  "--cell-timeout", "600",
                                  "--max-retries", "2"])
        assert args.workers == 4
        assert args.cell_timeout == 600.0
        assert args.max_retries == 2

    def test_pool_flags_rejected_outside_grid_sweeps(self):
        with pytest.raises(SystemExit):
            main(["taxonomy", "--workers", "4"])
        with pytest.raises(SystemExit):
            main(["efficiency", "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["efficiency", "--root-seed", "7"])  # effectiveness-only

    def test_parser_accepts_blocked_flags(self):
        parser = build_parser()
        args = parser.parse_args(["efficiency", "--blocked",
                                  "--ram-budget", "64",
                                  "--spill-dir", "/tmp/spill"])
        assert args.blocked
        assert args.ram_budget == 64.0
        assert args.spill_dir == "/tmp/spill"

    def test_blocked_flag_validation(self):
        with pytest.raises(SystemExit):
            main(["efficiency", "--ram-budget", "64"])  # needs --blocked
        with pytest.raises(SystemExit):
            main(["efficiency", "--spill-dir", "/tmp/x"])  # needs --blocked
        with pytest.raises(SystemExit):
            main(["efficiency", "--blocked", "--ram-budget", "0"])
        with pytest.raises(SystemExit):
            main(["efficiency", "--blocked", "--workers", "4"])

    def test_unsupported_scale_fails_at_parse_time(self, capsys):
        # Out-of-range scales error immediately with the supported range
        # in the message — not deep inside dataset generation.
        for bad in ("4.2", "0", "-0.5", "1e-9", "nan"):
            with pytest.raises(SystemExit):
                main(["efficiency", "--scale", bad])
            assert "supported range" in capsys.readouterr().err

    def test_supported_scale_parses(self):
        parser = build_parser()
        args = parser.parse_args(["efficiency", "--scale", "0.05"])
        assert args.scale == 0.05

    def test_scale_shift_accepts_workers(self):
        parser = build_parser()
        args = parser.parse_args(["scale-shift", "--workers", "2"])
        assert args.experiment == "scale-shift"
        assert args.workers == 2

    def test_pooled_run_recorded_with_worker_count(self, tmp_path, capsys):
        from repro.telemetry.registry import RunRegistry

        code = main(self.EFFICIENCY + ["--workers", "2",
                                       "--registry-dir", str(tmp_path)])
        assert code == 0
        assert "registry:" in capsys.readouterr().out
        record = RunRegistry(tmp_path).load()[0]
        assert record.workers == 2
        assert record.pool["workers"] == 2
        assert record.pool["cell_timeout"] is None
        assert record.pool["max_retries"] == 1
        # The full pool_stats block lands in the record, with one
        # per-cell entry per grid cell in grid order.
        stats = record.pool["stats"]
        assert stats["cells"] == 2 and stats["ok"] == 2
        assert stats["failed"] == 0 and stats["retries"] == 0
        assert [cell["cell"] for cell in stats["per_cell"]] == [
            "cora/mini_batch/ppr", "cora/mini_batch/chebyshev"]
        assert all(cell["status"] == "ok" and cell["attempts"] == 1
                   and cell["seconds"] >= 0.0
                   for cell in stats["per_cell"])
        # One folded shard per grid cell (2 filters x 1 dataset).
        assert record.metrics["counters"]["pool.cells.ok"] == 2


class TestLiveCli:
    def test_parser_accepts_live_flags(self):
        parser = build_parser()
        args = parser.parse_args(["efficiency", "--watch",
                                  "--live", "out/live.jsonl",
                                  "--stall-fraction", "0.3"])
        assert args.watch is True
        assert args.live == "out/live.jsonl"
        assert args.stall_fraction == 0.3

    def test_watch_rejected_with_no_telemetry(self):
        with pytest.raises(SystemExit):
            main(["efficiency", "--watch", "--no-telemetry"])
        with pytest.raises(SystemExit):
            main(["efficiency", "--live", "x.jsonl", "--no-telemetry"])

    def test_watch_rejected_outside_grid_sweeps(self):
        with pytest.raises(SystemExit):
            main(["taxonomy", "--watch"])
        with pytest.raises(SystemExit):
            main(["regression", "--live", "x.jsonl"])

    def test_stall_fraction_must_be_a_proper_fraction(self):
        for bad in ("0", "1", "1.5", "-0.2"):
            with pytest.raises(SystemExit):
                main(["efficiency", "--watch", "--stall-fraction", bad])

    def test_live_run_writes_stream_trace_and_registry_pointers(
            self, tmp_path, capsys):
        from repro.telemetry.registry import RunRegistry
        from repro.telemetry.sinks import load_events

        live_path = tmp_path / "live.jsonl"
        code = main(TestPoolCli.EFFICIENCY
                    + ["--workers", "2", "--live", str(live_path),
                       "--registry-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "live:" in out and "chrome-trace:" in out

        events = load_events(live_path)
        types = {e["type"] for e in events}
        assert {"sweep_start", "cell_start", "heartbeat",
                "cell_finish", "sweep_finish"} <= types

        trace_path = tmp_path / "live.trace.json"
        assert trace_path.exists()
        import json

        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"], "empty Chrome trace"

        record = RunRegistry(tmp_path).load()[0]
        assert record.live_path == str(live_path)
        assert record.chrome_trace_path == str(trace_path)
        assert record.pool["stats"]["stragglers"], \
            "straggler ranking missing from the registry record"


class TestRegistryCliErrors:
    def test_compare_registry_unknown_spec_exits_2(self, tmp_path, capsys):
        code = main(["compare", "--registry", "feedfacefeed",
                     "--registry-dir", str(tmp_path)])
        assert code == 2
        assert "need 2" in capsys.readouterr().err

    def test_compare_rejects_mixed_modes(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["compare", "a.json", "b.json", "--registry", "abc"])
        with pytest.raises(SystemExit):
            main(["compare", "only-one.json"])


class TestResumeCli:
    EFFICIENCY = ["efficiency", "--datasets", "cora", "--filters", "ppr",
                  "--schemes", "full_batch", "--epochs", "2",
                  "--scale", "0.05"]

    def test_parser_accepts_resume_flags(self):
        parser = build_parser()
        args = parser.parse_args(["efficiency", "--resume",
                                  "--artifact-dir", "store"])
        assert args.resume and not args.fresh
        assert args.artifact_dir == "store"
        args = parser.parse_args(["efficiency", "--fresh"])
        assert args.fresh and not args.resume

    def test_resume_and_fresh_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["efficiency", "--resume", "--fresh"])

    def test_artifact_dir_requires_a_mode_flag(self):
        with pytest.raises(SystemExit):
            main(["efficiency", "--artifact-dir", "store"])

    def test_resume_rejected_without_telemetry(self):
        with pytest.raises(SystemExit):
            main(["efficiency", "--resume", "--no-telemetry"])
        with pytest.raises(SystemExit):
            main(["efficiency", "--fresh", "--no-telemetry"])

    def test_resume_rejected_outside_grid_sweeps(self):
        with pytest.raises(SystemExit):
            main(["taxonomy", "--resume"])
        with pytest.raises(SystemExit):
            main(["regression", "--fresh"])

    def test_fresh_then_resume_byte_identical_and_recorded(self, tmp_path,
                                                           capsys):
        from repro.bench.io import canonical_payload, load_rows
        from repro.telemetry.registry import RunRegistry

        store_dir = tmp_path / "store"
        base = self.EFFICIENCY + ["--artifact-dir", str(store_dir),
                                  "--registry-dir", str(tmp_path / "reg")]

        out1 = tmp_path / "fresh.json"
        assert main(base + ["--fresh", "--output", str(out1)]) == 0
        fresh_out = capsys.readouterr().out
        assert "mode=fresh" in fresh_out
        assert "hit=0 miss=1 stored=1" in fresh_out

        out2 = tmp_path / "resume.json"
        assert main(base + ["--resume", "--output", str(out2)]) == 0
        resume_out = capsys.readouterr().out
        assert "mode=resume" in resume_out
        assert "hit=1 miss=0 stored=0" in resume_out

        assert canonical_payload(load_rows(out1)) \
            == canonical_payload(load_rows(out2))

        fresh_rec, resume_rec = RunRegistry(tmp_path / "reg").load()
        assert fresh_rec.config_fingerprint == resume_rec.config_fingerprint, \
            "resume mode must stay outside the config fingerprint"
        assert fresh_rec.schema.endswith("/v6")
        assert fresh_rec.artifacts["mode"] == "fresh"
        assert fresh_rec.artifacts["stored"] == 1
        assert resume_rec.artifacts["mode"] == "resume"
        assert resume_rec.artifacts["hit"] == 1
        assert resume_rec.artifacts["dir"] == str(store_dir)
        stats = resume_rec.pool["stats"]
        assert stats["cached"] == 1 and stats["ok"] == 0
        assert stats["cached"] + stats["ok"] == stats["cells"]

    def test_fresh_purges_a_stale_store(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        base = self.EFFICIENCY + ["--artifact-dir", str(store_dir),
                                  "--no-registry"]
        assert main(base + ["--fresh"]) == 0
        capsys.readouterr()
        assert main(base + ["--fresh"]) == 0
        captured = capsys.readouterr()
        assert "purged 1 stored cell(s)" in captured.err
        assert "hit=0 miss=1 stored=1" in captured.out

    def test_runs_without_flags_do_not_touch_the_store(self, tmp_path):
        store_dir = tmp_path / "store"
        assert main(self.EFFICIENCY + ["--no-registry"]) == 0
        assert not store_dir.exists()
