"""The ``python -m repro.bench`` command-line interface."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_lists_experiments(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_every_experiment_registered_with_artifact(self):
        artifacts = [artifact for _, artifact, _ in EXPERIMENTS.values()]
        assert any("Table 5" in a for a in artifacts)
        assert any("Figure 10" in a for a in artifacts)
        assert len(EXPERIMENTS) == 13

    def test_parser_accepts_common_flags(self):
        parser = build_parser()
        args = parser.parse_args(["effectiveness", "--datasets", "cora",
                                  "--filters", "ppr", "--epochs", "5",
                                  "--seeds", "0", "1"])
        assert args.experiment == "effectiveness"
        assert args.datasets == ["cora"]
        assert args.seeds == [0, 1]


class TestExecution:
    def test_taxonomy_runs(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "Bernstein" in out
        assert "Table 1" in out

    def test_effectiveness_with_overrides(self, capsys):
        code = main(["effectiveness", "--datasets", "cora",
                     "--filters", "identity", "monomial",
                     "--epochs", "5", "--seeds", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Monomial" in out and "±" in out

    def test_regression_with_epochs(self, capsys):
        code = main(["regression", "--filters", "ppr", "--epochs", "5"])
        assert code == 0
        assert "low" in capsys.readouterr().out
