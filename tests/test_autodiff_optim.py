"""Optimizers: update rules, parameter groups, and convergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.autodiff.optim import SGD, Adam
from repro.errors import TrainingError


def quadratic_loss(param: Tensor) -> Tensor:
    return (param * param).sum()


class TestSGD:
    def test_plain_step(self):
        p = Tensor(np.array([1.0, -2.0]), requires_grad=True, dtype=np.float64)
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(p.data, [0.8, -1.6])

    def test_momentum_accumulates(self):
        p = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(2):
            p.grad = np.array([1.0])
            opt.step()
        # step1: v=1 -> p=1-0.1; step2: v=0.9+1=1.9 -> p=0.9-0.19
        np.testing.assert_allclose(p.data, [0.71])

    def test_weight_decay(self):
        p = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.5])

    def test_converges_on_quadratic(self):
        p = Tensor(np.array([5.0, -3.0]), requires_grad=True, dtype=np.float64)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-4

    def test_skips_missing_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()  # no grad: no-op
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_first_step_is_lr_sized(self):
        p = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        opt = Adam([p], lr=0.1)
        p.grad = np.array([7.0])
        opt.step()
        # Bias correction makes the first step ≈ lr * sign(grad).
        np.testing.assert_allclose(p.data, [1.0 - 0.1], rtol=1e-5)

    def test_converges_on_quadratic(self):
        p = Tensor(np.array([5.0, -3.0]), requires_grad=True, dtype=np.float64)
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_fits_linear_regression(self, rng):
        true_w = rng.normal(size=(4, 1))
        x = rng.normal(size=(64, 4))
        y = x @ true_w
        w = Tensor(np.zeros((4, 1)), requires_grad=True, dtype=np.float64)
        opt = Adam([w], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            residual = Tensor(x, dtype=np.float64) @ w - Tensor(y, dtype=np.float64)
            (residual * residual).mean().backward()
            opt.step()
        np.testing.assert_allclose(w.data, true_w, atol=0.02)


class TestParameterGroups:
    def test_separate_learning_rates(self):
        a = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        b = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        opt = SGD([
            {"params": [a], "lr": 0.1},
            {"params": [b], "lr": 0.01},
        ])
        a.grad = np.array([1.0])
        b.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(a.data, [0.9])
        np.testing.assert_allclose(b.data, [0.99])

    def test_group_weight_decay(self):
        a = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        b = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        opt = SGD([
            {"params": [a], "lr": 0.1, "weight_decay": 1.0},
            {"params": [b], "lr": 0.1, "weight_decay": 0.0},
        ])
        a.grad = np.array([0.0])
        b.grad = np.array([0.0])
        opt.step()
        assert a.data[0] < 1.0
        assert b.data[0] == 1.0

    def test_zero_grad_clears_all_groups(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([{"params": [a]}, {"params": [b]}], lr=0.1)
        a.grad = np.array([1.0])
        b.grad = np.array([1.0])
        opt.zero_grad()
        assert a.grad is None and b.grad is None


class TestValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(TrainingError):
            SGD([], lr=0.1)

    def test_non_grad_params_rejected(self):
        with pytest.raises(TrainingError):
            SGD([Tensor(np.ones(2))], lr=0.1)

    def test_group_missing_params_key(self):
        with pytest.raises(TrainingError):
            Adam([{"lr": 0.1}], lr=0.1)
