"""Filter banks: channel structure, fusion, γ parameters, AdaGNN identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.errors import FilterError
from repro.filters import (
    ACMGNNFilter,
    AdaGNNFilter,
    FAGNNFilter,
    FBGNNFilter,
    FiGUReFilter,
    FilterBank,
    G2CNFilter,
    GNNLFHFFilter,
    IdentityFilter,
    MonomialFilter,
)
from repro.filters.base import PropagationContext

LAMS = np.linspace(0.0, 2.0, 21)


class TestGenericBank:
    def test_needs_channels(self):
        with pytest.raises(FilterError):
            FilterBank(channels=[], fusion="sum")

    def test_bad_fusion(self):
        with pytest.raises(FilterError):
            FilterBank(channels=[IdentityFilter()], fusion="mean")

    def test_gamma_spec(self):
        bank = FilterBank([IdentityFilter(), MonomialFilter(4)], fusion="sum")
        spec = bank.parameter_spec()
        assert spec["gamma"].shape == (2,)
        np.testing.assert_allclose(spec["gamma"].init, [0.5, 0.5])

    def test_sum_fusion_weights_channels(self, small_graph, signal):
        bank = FilterBank([IdentityFilter(), IdentityFilter()], fusion="sum")
        ctx = PropagationContext.for_graph(small_graph)
        params = {"gamma": np.array([0.25, 0.75], dtype=np.float32)}
        out = bank.forward(ctx, signal, params)
        np.testing.assert_allclose(out, signal, atol=1e-6)  # 0.25+0.75 = 1

    def test_concat_fusion_widens(self, small_graph, signal):
        bank = FilterBank([IdentityFilter(), MonomialFilter(3)], fusion="concat")
        ctx = PropagationContext.for_graph(small_graph)
        out = bank.forward(ctx, signal)
        assert out.shape == (small_graph.num_nodes, 2 * signal.shape[1])
        assert bank.output_width(signal.shape[1]) == 2 * signal.shape[1]

    def test_precompute_slices_channels(self, small_graph, signal):
        bank = FiGUReFilter(num_hops=3)
        channels = bank.precompute(small_graph, signal)
        # identity (1) + monomial_var (4) + chebyshev (4) + bernstein (4)
        assert channels.shape[1] == 13
        assert bank._channel_slices == [(0, 1), (1, 5), (5, 9), (9, 13)]

    def test_batch_combine_requires_precompute(self, signal):
        bank = FiGUReFilter(num_hops=3)
        with pytest.raises(FilterError):
            bank.batch_combine(Tensor(signal[:, None, :]))

    def test_variable_channels_get_scoped_params(self):
        bank = FiGUReFilter(num_hops=4)
        spec = bank.parameter_spec()
        assert "gamma" in spec
        assert "theta_1" in spec and "theta_2" in spec and "theta_3" in spec
        assert "theta_0" not in spec  # identity channel has no θ

    def test_channel_responses_shape(self):
        bank = G2CNFilter(num_hops=6)
        responses = bank.channel_responses(LAMS)
        assert responses.shape == (2, len(LAMS))


class TestNamedBanks:
    @pytest.mark.parametrize("cls,expected_q", [
        (lambda: FBGNNFilter(4, variant="I"), 2),
        (lambda: FBGNNFilter(4, variant="II"), 2),
        (lambda: ACMGNNFilter(4, variant="I"), 3),
        (lambda: ACMGNNFilter(4, variant="II"), 3),
        (lambda: FAGNNFilter(4), 2),
        (lambda: G2CNFilter(4), 2),
        (lambda: GNNLFHFFilter(4), 2),
        (lambda: FiGUReFilter(4), 4),
    ])
    def test_channel_counts(self, cls, expected_q):
        assert len(cls().channels) == expected_q

    def test_variant_validation(self):
        with pytest.raises(FilterError):
            FBGNNFilter(variant="III")
        with pytest.raises(FilterError):
            ACMGNNFilter(variant="X")

    def test_variant_i_concat_ii_sum(self):
        assert FBGNNFilter(variant="I").fusion == "concat"
        assert FBGNNFilter(variant="II").fusion == "sum"
        assert ACMGNNFilter(variant="I").fusion == "concat"
        assert ACMGNNFilter(variant="II").fusion == "sum"

    def test_fbgnn_channels_cover_both_ends(self):
        bank = FBGNNFilter(num_hops=8, variant="II")
        responses = bank.channel_responses(LAMS)
        # Low-pass channel peaks at λ=0, high-pass at λ=2.
        assert np.argmax(responses[0]) == 0
        assert np.argmax(responses[1]) == len(LAMS) - 1

    def test_g2cn_centres(self):
        bank = G2CNFilter(num_hops=20, alpha_low=2.0, alpha_high=2.0)
        responses = bank.channel_responses(LAMS)
        assert LAMS[np.argmax(responses[0])] == pytest.approx(0.0, abs=0.11)
        assert LAMS[np.argmax(responses[1])] == pytest.approx(2.0, abs=0.11)

    def test_gnnlfhf_prefix_tilts_response(self):
        bank = GNNLFHFFilter(num_hops=20, beta_low=0.5, beta_high=0.5)
        responses = bank.channel_responses(LAMS)
        # (I − βL̃) suppresses high frequencies, (I + βL̃) boosts them.
        assert responses[0][-1] < responses[1][-1]

    def test_fagnn_beta_hyperparameter(self):
        assert FAGNNFilter(beta=0.3).hyperparameters() == {"beta": 0.3}


class TestAdaGNN:
    def test_requires_num_features(self):
        with pytest.raises(FilterError):
            AdaGNNFilter(num_hops=3, num_features=0)

    def test_gamma_shape(self):
        spec = AdaGNNFilter(num_hops=5, num_features=7).parameter_spec()
        assert spec["gamma"].shape == (5, 7)

    def test_forward_matches_product_expansion(self, small_graph):
        """Direct recurrence == elementary-symmetric hop recombination."""
        rng = np.random.default_rng(0)
        f = AdaGNNFilter(num_hops=4, num_features=3)
        gamma = rng.uniform(0.05, 0.4, size=(4, 3)).astype(np.float32)
        x = rng.normal(size=(small_graph.num_nodes, 3)).astype(np.float32)

        ctx = PropagationContext.for_graph(small_graph)
        direct = np.asarray(f.forward(ctx, x, {"gamma": gamma}))

        channels = f.precompute(small_graph, x)
        combined = f.batch_combine(Tensor(channels),
                                   {"gamma": Tensor(gamma)}).data
        np.testing.assert_allclose(combined, direct, atol=1e-4)

    def test_response_is_product_form(self):
        f = AdaGNNFilter(num_hops=3, num_features=1)
        gamma = np.full((3, 1), 0.5, dtype=np.float32)
        response = f.response(LAMS, {"gamma": gamma})
        np.testing.assert_allclose(response, (1 - 0.5 * LAMS) ** 3, atol=1e-6)

    def test_gradient_through_gamma(self, small_graph):
        f = AdaGNNFilter(num_hops=3, num_features=2)
        gamma = Tensor(np.full((3, 2), 0.2, dtype=np.float32), requires_grad=True)
        x = Tensor(np.random.default_rng(0).normal(
            size=(small_graph.num_nodes, 2)).astype(np.float32))
        ctx = PropagationContext.for_graph(small_graph)
        f.forward(ctx, x, {"gamma": gamma}).sum().backward()
        assert gamma.grad is not None
        assert np.any(gamma.grad != 0)
