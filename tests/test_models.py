"""Model architectures: decoupled, mini-batch, iterative, baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.errors import TrainingError
from repro.filters import make_filter
from repro.models import (
    ANSGTLite,
    DecoupledModel,
    MiniBatchModel,
    NAGphormerLite,
    make_chebnet,
    make_gcn,
    make_graphsage,
)


class TestDecoupledModel:
    def test_forward_shape(self, small_graph, rng):
        model = DecoupledModel(make_filter("ppr", num_hops=4),
                               in_features=small_graph.num_features,
                               out_features=small_graph.num_classes,
                               hidden=16, rng=rng)
        logits = model(small_graph)
        assert logits.shape == (small_graph.num_nodes, small_graph.num_classes)

    def test_phi0_zero_uses_raw_width(self, small_graph, rng):
        model = DecoupledModel(make_filter("monomial", num_hops=3),
                               in_features=small_graph.num_features,
                               out_features=3, phi0_layers=0, rng=rng)
        assert model._filter_width == small_graph.num_features
        assert model(small_graph).shape == (small_graph.num_nodes, 3)

    def test_concat_bank_widens_phi1(self, small_graph, rng):
        model = DecoupledModel(make_filter("acmgnn1", num_hops=3),
                               in_features=small_graph.num_features,
                               out_features=4, hidden=8, rng=rng)
        assert model(small_graph).shape == (small_graph.num_nodes, 4)

    def test_filter_parameters_separated(self, small_graph, rng):
        model = DecoupledModel(make_filter("chebyshev", num_hops=5),
                               in_features=small_graph.num_features,
                               out_features=3, rng=rng)
        filter_params = model.filter_parameters()
        transform_params = model.transform_parameters()
        assert len(filter_params) == 1
        assert filter_params[0].shape == (6,)
        ids = {id(p) for p in filter_params}
        assert all(id(p) not in ids for p in transform_params)

    def test_fixed_filter_has_no_filter_params(self, small_graph, rng):
        model = DecoupledModel(make_filter("ppr"), small_graph.num_features,
                               3, rng=rng)
        assert model.filter_parameters() == []
        assert model.filter_params() is None

    def test_gradients_flow_everywhere(self, small_graph, rng):
        model = DecoupledModel(make_filter("figure", num_hops=3),
                               in_features=small_graph.num_features,
                               out_features=3, hidden=8, rng=rng)
        model(small_graph).sum().backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name

    def test_missing_features_rejected(self, rng):
        from repro.graph import Graph

        g = Graph.from_edges(4, np.array([[0, 1], [2, 3]]))
        model = DecoupledModel(make_filter("ppr"), 4, 2, rng=rng)
        with pytest.raises(TrainingError):
            model(g)

    def test_numpy_filter_params_copies(self, small_graph, rng):
        model = DecoupledModel(make_filter("chebyshev", num_hops=3),
                               small_graph.num_features, 3, rng=rng)
        params = model.numpy_filter_params()
        params["theta"][:] = 99
        assert not np.any(model.filter_params()["theta"].data == 99)


class TestMiniBatchModel:
    def test_forward_shape(self, small_graph, signal, rng):
        filter_ = make_filter("chebyshev", num_hops=4)
        channels = filter_.precompute(small_graph, signal)
        model = MiniBatchModel(filter_, in_features=signal.shape[1],
                               out_features=5, rng=rng)
        logits = model(Tensor(channels[:16]))
        assert logits.shape == (16, 5)

    def test_rejects_2d_input(self, signal, rng):
        model = MiniBatchModel(make_filter("ppr"), signal.shape[1], 2, rng=rng)
        with pytest.raises(TrainingError):
            model(Tensor(signal))

    def test_bank_concat_width(self, small_graph, signal, rng):
        filter_ = make_filter("fbgnn1", num_hops=3)
        channels = filter_.precompute(small_graph, signal)
        model = MiniBatchModel(filter_, in_features=signal.shape[1],
                               out_features=4, rng=rng)
        assert model(Tensor(channels[:8])).shape == (8, 4)


class TestIterativeBaselines:
    @pytest.mark.parametrize("factory", [make_gcn, make_graphsage, make_chebnet])
    def test_forward_shapes(self, small_graph, rng, factory):
        model = factory(small_graph.num_features, small_graph.num_classes,
                        hidden=16, rng=rng)
        logits = model(small_graph)
        assert logits.shape == (small_graph.num_nodes, small_graph.num_classes)

    def test_layer_validation(self, rng):
        from repro.models import IterativeModel, gcn_propagation

        with pytest.raises(TrainingError):
            IterativeModel(4, 2, gcn_propagation(), num_layers=0, rng=rng)

    def test_backend_equivalence(self, small_graph):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        a = make_gcn(small_graph.num_features, 3, rng=rng_a, backend="csr")
        b = make_gcn(small_graph.num_features, 3, rng=rng_b, backend="coo_gather")
        a.eval()
        b.eval()
        np.testing.assert_allclose(a(small_graph).data, b(small_graph).data,
                                   atol=1e-3)


class TestTransformers:
    def test_nagphormer_tokens_and_forward(self, small_graph, rng):
        model = NAGphormerLite(small_graph.num_features, 4, num_hops=3,
                               hidden=16, rng=rng)
        tokens = model.precompute_tokens(small_graph)
        assert tokens.shape == (small_graph.num_nodes, 4, small_graph.num_features)
        logits = model(Tensor(tokens[:10]))
        assert logits.shape == (10, 4)

    def test_ansgt_sampling_and_forward(self, small_graph, rng):
        model = ANSGTLite(small_graph.num_features, 3, num_neighbors=3,
                          num_anchors=2, hidden=16, rng=rng)
        nodes = np.arange(12)
        tokens = model.sample_tokens(small_graph, nodes)
        assert tokens.shape == (12, 1 + 3 + 2, small_graph.num_features)
        logits = model(Tensor(tokens))
        assert logits.shape == (12, 3)

    def test_ansgt_handles_isolated_nodes(self, rng):
        from repro.graph import Graph

        g = Graph.from_edges(4, np.array([[0, 1]]),
                             features=np.eye(4, dtype=np.float32))
        model = ANSGTLite(4, 2, num_neighbors=2, num_anchors=1, rng=rng)
        tokens = model.sample_tokens(g, np.array([3]))  # node 3 is isolated
        assert tokens.shape == (1, 4, 4)
