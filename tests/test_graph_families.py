"""Canonical graphs: measured spectra vs closed forms.

These are the strongest correctness anchors in the suite: if the
normalization, Laplacian, or eigendecomposition had any systematic error,
the analytic spectra of cycles / complete graphs / stars would expose it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.families import (
    barbell_graph,
    complete_graph,
    complete_spectrum,
    cycle_graph,
    cycle_spectrum,
    grid_graph,
    path_graph,
    star_graph,
    star_spectrum,
)


def measured_spectrum(graph):
    """Spectrum of the self-loop-free normalized Laplacian."""
    lap = np.eye(graph.num_nodes) - graph.normalized_adjacency(
        0.5, self_loops=False).toarray()
    return np.linalg.eigvalsh((lap + lap.T) / 2)


class TestClosedFormSpectra:
    @pytest.mark.parametrize("n", [3, 4, 7, 12, 25])
    def test_cycle(self, n):
        np.testing.assert_allclose(measured_spectrum(cycle_graph(n)),
                                   cycle_spectrum(n), atol=1e-5)

    @pytest.mark.parametrize("n", [2, 3, 5, 10])
    def test_complete(self, n):
        np.testing.assert_allclose(measured_spectrum(complete_graph(n)),
                                   complete_spectrum(n), atol=1e-5)

    @pytest.mark.parametrize("k", [1, 2, 5, 9])
    def test_star(self, k):
        np.testing.assert_allclose(measured_spectrum(star_graph(k)),
                                   star_spectrum(k), atol=1e-5)

    def test_path_extremes(self):
        spectrum = measured_spectrum(path_graph(10))
        assert spectrum[0] == pytest.approx(0.0, abs=1e-6)
        assert spectrum[-1] < 2.0  # paths are not bipartite-regular at 2

    def test_cycle_bipartite_iff_even(self):
        # λ_max = 2 exactly when the cycle is bipartite (even length).
        even = measured_spectrum(cycle_graph(8))
        odd = measured_spectrum(cycle_graph(9))
        assert even[-1] == pytest.approx(2.0, abs=1e-6)
        assert odd[-1] < 2.0 - 1e-3


class TestStructure:
    def test_sizes(self):
        assert cycle_graph(6).num_edges == 12
        assert path_graph(6).num_edges == 10
        assert complete_graph(5).num_edges == 20
        assert star_graph(4).num_nodes == 5
        assert grid_graph(3, 4).num_nodes == 12
        assert grid_graph(3, 4).num_edges == 2 * (3 * 3 + 2 * 4)

    def test_barbell_bottleneck(self):
        graph = barbell_graph(5, bridge_length=2)
        assert graph.num_nodes == 12
        spectrum = measured_spectrum(graph)
        # Algebraic connectivity is tiny relative to a clique's.
        assert spectrum[1] < 0.1
        dense = measured_spectrum(complete_graph(12))
        assert spectrum[1] < dense[1] / 5

    def test_validation(self):
        with pytest.raises(GraphError):
            cycle_graph(2)
        with pytest.raises(GraphError):
            path_graph(1)
        with pytest.raises(GraphError):
            complete_graph(1)
        with pytest.raises(GraphError):
            star_graph(0)
        with pytest.raises(GraphError):
            grid_graph(0, 5)
        with pytest.raises(GraphError):
            barbell_graph(2)


class TestFilterBehaviourOnKnownSpectra:
    def test_linear_filter_kills_bipartite_top(self):
        """g(λ)=2−λ zeroes the λ=2 mode of an even cycle exactly."""
        from repro.filters import make_filter

        graph = cycle_graph(8)
        n = graph.num_nodes
        # The λ=2 eigenvector of an even cycle is the alternating sign
        # vector (for the no-self-loop Laplacian). With self-loops the
        # spectrum contracts, so evaluate via the filter's own response.
        filter_ = make_filter("linear")
        response = filter_.response(np.array([2.0]))
        assert response[0] == pytest.approx(0.0, abs=1e-12)

    def test_heat_kernel_smooths_star(self):
        """Diffusion on a star pulls leaf signals toward the hub mean."""
        from repro.filters import make_filter

        graph = star_graph(8)
        x = np.zeros((9, 1), dtype=np.float32)
        x[1, 0] = 1.0  # one hot leaf
        out = make_filter("hk", num_hops=20, alpha=3.0).propagate(graph, x)
        # Mass spreads: other leaves now see some signal.
        assert out[2, 0] > 0.01
        assert out[1, 0] < 1.0
