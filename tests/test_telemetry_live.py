"""Live sweep observatory (:mod:`repro.telemetry.live`) tests.

Covers the worker-side channel (emitter stamping/throttling/detach, RSS
sampler, worker_session lifecycle, the `tick` global), the parent-side
:class:`SweepMonitor` (stall detection against a fake clock, accounting,
watch-line rendering), the Chrome trace exporter, and the end-to-end
pooled integration: heartbeats for every cell, and a hung cell's stall
event arriving strictly before the timeout kill.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import telemetry
from repro.runtime.pool import OK, TIMEOUT, Cell, PoolConfig, execute_cells
from repro.telemetry import live
from repro.telemetry.live import (
    LIVE_SCHEMA,
    RETRYING,
    LiveConfig,
    LiveEmitter,
    RssSampler,
    SweepMonitor,
    worker_session,
)
from repro.telemetry.sinks import MemorySink
from repro.telemetry.trace_export import (
    SCHEDULER_TID,
    chrome_trace_events,
    export_chrome_trace,
)


@pytest.fixture(autouse=True)
def _clean_state():
    telemetry.shutdown()
    live.uninstall_emitter()
    live.uninstall_monitor()
    yield
    telemetry.shutdown()
    live.uninstall_emitter()
    live.uninstall_monitor()


# --- module-level cell functions: picklable under any start method ------

def _ticking_cell(x, ticks=3):
    for i in range(ticks):
        live.tick("step", step=i)
    return x * x


def _hang(seconds=60.0):
    time.sleep(seconds)
    return "never"


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_monitor(sink=None, clock=None, **config):
    return SweepMonitor(sink=sink or MemorySink(),
                        config=LiveConfig(**config), out=None,
                        clock=clock or FakeClock())


# ======================================================================
# worker side
# ======================================================================
class TestLiveEmitter:
    def test_stamps_cell_attempt_pid_and_time(self):
        events = []
        emitter = LiveEmitter(events.append, "cora/ppr", attempt=2)
        emitter.emit("cell_start")
        (event,) = events
        assert event["type"] == "cell_start"
        assert event["cell"] == "cora/ppr"
        assert event["attempt"] == 2
        assert event["pid"] > 0
        assert isinstance(event["t"], float)

    def test_heartbeat_throttles_but_first_always_sends(self):
        events = []
        emitter = LiveEmitter(events.append, "c", min_interval_s=60.0)
        emitter.heartbeat("epoch", epoch=0)
        emitter.heartbeat("epoch", epoch=1)  # inside the interval: dropped
        assert [e["epoch"] for e in events] == [0]

    def test_failed_send_detaches_permanently(self):
        calls = []

        def broken(event):
            calls.append(event)
            raise BrokenPipeError("parent gone")

        emitter = LiveEmitter(broken, "c")
        emitter.emit("cell_start")   # raises inside, swallowed
        emitter.emit("cell_start")   # already detached: not even attempted
        assert emitter.detached
        assert len(calls) == 1

    def test_heartbeat_carries_counter_deltas(self):
        telemetry.configure()
        telemetry.inc_counter("ops.spmm.calls", 5)
        events = []
        emitter = LiveEmitter(events.append, "c", min_interval_s=0.0)
        emitter.heartbeat()
        telemetry.inc_counter("ops.spmm.calls", 3)
        emitter.heartbeat()
        first, second = events
        assert first["counters"]["ops.spmm.calls"] == 5
        assert second["counters"]["ops.spmm.calls"] == 3  # delta, not total

    def test_heartbeat_without_telemetry_has_no_counters(self):
        events = []
        LiveEmitter(events.append, "c").heartbeat()
        assert events[0]["counters"] is None


class TestRssSampler:
    def test_emits_watermarked_samples(self):
        events = []
        emitter = LiveEmitter(events.append, "c")
        sampler = RssSampler(emitter, interval_s=0.01)
        sampler.start()
        time.sleep(0.08)
        sampler.stop()
        sampler.join(timeout=1.0)
        rss = [e for e in events if e["type"] == "rss"]
        assert rss, "sampler produced no samples"
        assert all(e["rss_bytes"] > 0 for e in rss)
        assert all(e["watermark_bytes"] >= e["rss_bytes"] for e in rss)


class TestWorkerSession:
    def test_installs_emitter_and_brackets_with_events(self):
        events = []
        assert live.current_emitter() is None
        with worker_session(events.append, "cora/ppr", attempt=1,
                            rss_interval_s=10.0):
            assert live.current_emitter() is not None
            live.tick("epoch", epoch=0)
        assert live.current_emitter() is None
        types = [e["type"] for e in events]
        assert types[0] == "cell_start"
        assert "heartbeat" in types
        assert types[-1] == "rss"  # final watermark on exit

    def test_none_send_is_a_noop(self):
        with worker_session(None, "c") as emitter:
            assert emitter is None
            assert live.current_emitter() is None
            live.tick()  # must not raise

    def test_tick_without_session_is_noop(self):
        live.tick("epoch", epoch=1)  # no emitter installed: silent


# ======================================================================
# parent side
# ======================================================================
class TestSweepMonitor:
    def test_sweep_lifecycle_events_reach_sink(self):
        sink = MemorySink()
        monitor = make_monitor(sink=sink)
        monitor.sweep_started(4, 2, cell_timeout=60.0)
        monitor.sweep_finished()
        types = [e["type"] for e in sink.events]
        assert types == ["sweep_start", "sweep_finish"]
        assert sink.events[0]["schema"] == LIVE_SCHEMA
        assert sink.events[0]["stall_threshold_s"] == 30.0
        assert sink.events[1]["summary"]["cells"] == 4

    def test_finish_accounting(self):
        monitor = make_monitor()
        monitor.sweep_started(3, 2)
        for cell, status in (("a", OK), ("b", RETRYING), ("c", "error")):
            monitor.attempt_launched(cell, 1)
            monitor.cell_finished(cell, 1, status, 1.0)
        summary = monitor.summary()
        assert summary["ok"] == 1
        assert summary["failed"] == 1
        assert summary["retried"] == 1
        assert summary["done"] == 2  # a retrying cell is not done

    def test_stall_fires_once_after_threshold(self):
        clock = FakeClock()
        sink = MemorySink()
        monitor = make_monitor(sink=sink, clock=clock, stall_fraction=0.5)
        monitor.sweep_started(1, 1, cell_timeout=10.0)
        monitor.attempt_launched("slow", 1)
        clock.advance(4.9)
        assert monitor.check() == []          # under 5.0s threshold
        clock.advance(0.2)
        raised = monitor.check()
        assert len(raised) == 1
        assert raised[0]["cell"] == "slow"
        assert raised[0]["threshold_s"] == 5.0
        clock.advance(10.0)
        assert monitor.check() == []          # once per attempt
        assert len([e for e in sink.events if e["type"] == "stall"]) == 1

    def test_progress_heartbeat_resets_stall_clock_but_rss_does_not(self):
        clock = FakeClock()
        monitor = make_monitor(clock=clock, stall_after_s=5.0)
        monitor.sweep_started(1, 1)
        monitor.attempt_launched("c", 1)
        clock.advance(4.0)
        monitor.handle_event({"type": "heartbeat", "cell": "c", "attempt": 1,
                              "pid": 42, "t": 0.0})
        clock.advance(4.0)
        assert monitor.check() == []          # heartbeat reset the clock
        clock.advance(0.5)
        monitor.handle_event({"type": "rss", "cell": "c", "attempt": 1,
                              "pid": 42, "watermark_bytes": 1, "t": 0.0})
        clock.advance(0.6)
        assert len(monitor.check()) == 1      # rss did not reset it

    def test_stall_needs_timeout_or_absolute_threshold(self):
        clock = FakeClock()
        monitor = make_monitor(clock=clock)   # no timeout, no stall_after_s
        monitor.sweep_started(1, 1)
        monitor.attempt_launched("c", 1)
        clock.advance(1e6)
        assert monitor.stall_threshold() is None
        assert monitor.check() == []

    def test_rss_watermarks_per_worker_and_summary_peak(self):
        monitor = make_monitor()
        monitor.sweep_started(2, 2)
        for pid, watermark in ((11, 100), (22, 300), (11, 200)):
            monitor.handle_event({"type": "rss", "cell": "c", "attempt": 1,
                                  "pid": pid, "watermark_bytes": watermark,
                                  "t": 0.0})
        assert monitor.rss_watermarks == {11: 200, 22: 300}
        assert monitor.summary()["rss_watermark_bytes"] == 300

    def test_running_cells_ranked_longest_first(self):
        clock = FakeClock()
        monitor = make_monitor(clock=clock)
        monitor.sweep_started(2, 2)
        monitor.attempt_launched("first", 1)
        clock.advance(3.0)
        monitor.attempt_launched("second", 1)
        clock.advance(1.0)
        running = monitor.running_cells()
        assert [r["cell"] for r in running] == ["first", "second"]
        assert running[0]["running_s"] == 4.0
        assert running[1]["running_s"] == 1.0

    def test_render_line_mentions_progress_and_stragglers(self):
        clock = FakeClock()
        monitor = make_monitor(clock=clock, watch=True)
        monitor.sweep_started(3, 2, cell_timeout=60.0)
        monitor.attempt_launched("cora/ppr", 1)
        monitor.cell_finished("cora/ppr", 1, OK, 1.0)
        monitor.attempt_launched("cora/cheb", 1)
        clock.advance(2.0)
        line = monitor.render_line()
        assert "[sweep 1/3]" in line
        assert "ok:1" in line
        assert "cora/cheb#1" in line

    def test_heartbeat_counting_per_cell(self):
        monitor = make_monitor()
        monitor.sweep_started(2, 1)
        for cell in ("a", "a", "b"):
            monitor.handle_event({"type": "heartbeat", "cell": cell,
                                  "attempt": 1, "pid": 1, "t": 0.0})
        assert monitor.heartbeats == {"a": 2, "b": 1}
        assert monitor.summary()["heartbeats"] == 3
        assert monitor.summary()["cells_with_heartbeats"] == 2

    def test_monitoring_scope_installs_and_closes(self):
        sink = MemorySink()
        monitor = make_monitor(sink=sink)
        assert live.current_monitor() is None
        with live.monitoring(monitor) as scoped:
            assert scoped is monitor
            assert live.current_monitor() is monitor
        assert live.current_monitor() is None


# ======================================================================
# Chrome trace export
# ======================================================================
def _synthetic_live_events():
    return [
        {"type": "sweep_start", "cells": 2, "workers": 2, "t": 1000.0},
        {"type": "cell_start", "cell": "a", "attempt": 1, "pid": 11,
         "t": 1000.1},
        {"type": "cell_start", "cell": "b", "attempt": 1, "pid": 22,
         "t": 1000.1},
        {"type": "heartbeat", "cell": "a", "attempt": 1, "pid": 11,
         "kind": "epoch", "epoch": 0, "t": 1000.2},
        {"type": "rss", "cell": "a", "attempt": 1, "pid": 11,
         "rss_bytes": 2 ** 20, "watermark_bytes": 2 ** 20, "t": 1000.3},
        {"type": "stall", "cell": "b", "attempt": 1, "pid": 22,
         "silent_s": 0.5, "threshold_s": 0.4, "t": 1000.6},
        {"type": "cell_finish", "cell": "a", "attempt": 1, "pid": 11,
         "status": "ok", "seconds": 0.5, "t": 1000.6},
        {"type": "cell_finish", "cell": "b", "attempt": 1, "pid": 22,
         "status": "timeout", "seconds": 0.9, "t": 1001.0},
    ]


class TestChromeTraceExport:
    def test_tracks_slices_counters_and_instants(self):
        events = chrome_trace_events(_synthetic_live_events())
        names = {e["args"]["name"] for e in events
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert names == {"scheduler", "worker 11", "worker 22"}

        slices = {e["name"]: e for e in events
                  if e.get("ph") == "X" and e.get("cat") == "cell"}
        assert slices["a"]["tid"] == 11
        assert slices["b"]["tid"] == 22
        assert slices["a"]["args"]["status"] == "ok"
        assert slices["a"]["dur"] == 500_000  # 0.5s in microseconds

        counters = [e for e in events if e.get("ph") == "C"]
        assert counters and counters[0]["name"] == "rss"
        assert counters[0]["args"] == {"w11": 1.0}  # MiB

        stalls = [e for e in events if e.get("name") == "stall"]
        assert stalls[0]["s"] == "g"
        assert stalls[0]["args"]["cell"] == "b"

    def test_worker_spans_rebase_at_cell_start(self):
        span = {"type": "span", "name": "train", "t_start_s": 0.1,
                "duration_s": 0.2, "alloc_bytes": 0,
                "attrs": {"shard": "a"}}
        events = chrome_trace_events(_synthetic_live_events(), [span])
        (out,) = [e for e in events if e.get("cat") == "span"]
        assert out["tid"] == 11
        # cell a starts at 1000.1, sweep t0 = 1000.0 -> 0.1 + 0.1 = 0.2s
        assert out["ts"] == 200_000
        assert out["dur"] == 200_000

    def test_parent_spans_rebase_at_epoch_and_baseless_spans_skipped(self):
        spans = [{"type": "span", "name": "experiment", "t_start_s": 0.0,
                  "duration_s": 1.0, "attrs": {}},
                 {"type": "span", "name": "orphan", "t_start_s": 0.0,
                  "duration_s": 1.0, "attrs": {"shard": "nope"}}]
        with_epoch = chrome_trace_events(_synthetic_live_events(), spans,
                                         span_epoch_wall=1000.0)
        parents = [e for e in with_epoch if e.get("cat") == "span"]
        assert {e["name"] for e in parents} == {"experiment"}
        assert parents[0]["tid"] == SCHEDULER_TID
        without = chrome_trace_events(_synthetic_live_events(), spans)
        assert all(e.get("cat") != "span" for e in without)

    def test_export_writes_valid_json(self, tmp_path):
        path = export_chrome_trace(tmp_path / "trace.json",
                                   _synthetic_live_events())
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert all(e["ts"] >= 0 for e in payload["traceEvents"]
                   if "ts" in e)


# ======================================================================
# pooled integration
# ======================================================================
class TestPooledIntegration:
    def test_every_cell_heartbeats_across_workers(self):
        sink = MemorySink()
        monitor = SweepMonitor(sink=sink, config=LiveConfig(), out=None)
        cells = [Cell(key=("cell", i), fn=_ticking_cell, kwargs={"x": i})
                 for i in range(3)]
        with live.monitoring(monitor):
            results = execute_cells(cells, PoolConfig(workers=2))
        assert [r.status for r in results] == [OK] * 3
        labels = {c.label for c in cells}
        started = {e["cell"] for e in sink.events
                   if e["type"] == "cell_start"}
        beating = {e["cell"] for e in sink.events
                   if e["type"] == "heartbeat"}
        assert started == labels
        assert beating == labels
        assert monitor.summary()["ok"] == 3
        assert monitor.summary()["rss_watermark_bytes"] > 0

    def test_inline_mode_streams_the_same_events(self):
        sink = MemorySink()
        monitor = SweepMonitor(sink=sink, config=LiveConfig(), out=None)
        cells = [Cell(key=("cell", 0), fn=_ticking_cell, kwargs={"x": 2})]
        with live.monitoring(monitor):
            results = execute_cells(cells, PoolConfig(workers=1))
        assert results[0].value == 4
        types = [e["type"] for e in sink.events]
        for expected in ("sweep_start", "cell_launch", "cell_start",
                         "heartbeat", "cell_finish", "sweep_finish"):
            assert expected in types

    def test_hung_cell_stalls_strictly_before_timeout_kill(self):
        sink = MemorySink()
        monitor = SweepMonitor(sink=sink,
                               config=LiveConfig(stall_fraction=0.3),
                               out=None)
        cells = [Cell(key=("hung",), fn=_hang)]
        with live.monitoring(monitor):
            results = execute_cells(
                cells, PoolConfig(workers=2, cell_timeout=2.0,
                                  max_retries=0))
        assert results[0].status == TIMEOUT
        types = [e["type"] for e in sink.events]
        assert "stall" in types, "hung cell was killed without a stall flag"
        assert types.index("stall") < types.index("cell_finish"), \
            "stall event must precede the timeout kill"
        (stall,) = [e for e in sink.events if e["type"] == "stall"]
        assert stall["silent_s"] < 2.0  # flagged before the budget expired
        finish = [e for e in sink.events if e["type"] == "cell_finish"][0]
        assert finish["status"] == TIMEOUT
        assert finish["stalled"] is True
