"""Decomposition-based models (Appendix A.3) and their scaling limits."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.autodiff import Tensor, functional as F, no_grad
from repro.autodiff.optim import Adam
from repro.datasets import synthesize
from repro.errors import TrainingError
from repro.models import (
    LanczosNetLite,
    SpectralCNNLite,
    lanczos_decomposition,
)


class TestLanczos:
    def test_ritz_values_within_spectrum(self, small_graph):
        ritz_values, _ = lanczos_decomposition(small_graph, num_steps=12)
        # Ã's spectrum lives in [-1, 1].
        assert ritz_values.min() >= -1.0 - 1e-5
        assert ritz_values.max() <= 1.0 + 1e-5

    def test_extremal_ritz_accuracy(self, small_graph):
        """Lanczos nails the extremal eigenvalues of Ã quickly."""
        ritz_values, _ = lanczos_decomposition(small_graph, num_steps=30)
        adjacency = small_graph.normalized_adjacency(0.5).toarray()
        exact = np.linalg.eigvalsh((adjacency + adjacency.T) / 2)
        assert abs(ritz_values.max() - exact.max()) < 1e-3

    def test_ritz_vectors_orthonormal(self, small_graph):
        _, vectors = lanczos_decomposition(small_graph, num_steps=10)
        gram = vectors.T @ vectors
        np.testing.assert_allclose(gram, np.eye(vectors.shape[1]), atol=1e-3)

    def test_step_validation(self, small_graph):
        with pytest.raises(TrainingError):
            lanczos_decomposition(small_graph, num_steps=1)


class TestModels:
    def test_spectral_cnn_learns(self, small_graph):
        rng = np.random.default_rng(0)
        model = SpectralCNNLite(small_graph, small_graph.num_features,
                                small_graph.num_classes, num_modes=32,
                                rng=rng)
        optimizer = Adam(model.parameters(), lr=0.02)
        x = Tensor(small_graph.features)
        labels = small_graph.labels
        first_loss = None
        for step in range(40):
            logits = model(x)
            loss = F.cross_entropy(logits, labels)
            if step == 0:
                first_loss = loss.item()
            model.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.8

    def test_spectral_cnn_response_accessible(self, small_graph):
        model = SpectralCNNLite(small_graph, small_graph.num_features, 3,
                                num_modes=8, rng=np.random.default_rng(0))
        eigenvalues, response = model.learned_response()
        assert eigenvalues.shape == response.shape == (8,)

    def test_modes_capped_at_n(self, small_graph):
        model = SpectralCNNLite(small_graph, small_graph.num_features, 3,
                                num_modes=10_000,
                                rng=np.random.default_rng(0))
        assert model.response.shape == (small_graph.num_nodes,)

    def test_lanczosnet_learns(self, small_graph):
        rng = np.random.default_rng(0)
        model = LanczosNetLite(small_graph, small_graph.num_features,
                               small_graph.num_classes, num_steps=12, rng=rng)
        optimizer = Adam(model.parameters(), lr=0.02)
        x = Tensor(small_graph.features)
        labels = small_graph.labels
        losses = []
        for _ in range(40):
            logits = model(x)
            loss = F.cross_entropy(logits, labels)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8


class TestScalingRationale:
    def test_decomposition_cost_grows_superlinearly(self):
        """The Appendix A.3 exclusion argument, measured.

        Dense decomposition time grows much faster than polynomial
        propagation when n quadruples.
        """
        times = {}
        for scale in (0.1, 0.4):
            graph = synthesize("cora", scale=scale, seed=0)
            start = time.perf_counter()
            SpectralCNNLite(graph, graph.num_features, 3, num_modes=16,
                            rng=np.random.default_rng(0))
            decomposition = time.perf_counter() - start

            from repro.filters import make_filter

            start = time.perf_counter()
            make_filter("ppr", num_hops=10).precompute(graph, graph.features)
            propagation = time.perf_counter() - start
            times[scale] = (decomposition, propagation)
        small_ratio = times[0.1][0] / max(times[0.1][1], 1e-9)
        large_ratio = times[0.4][0] / max(times[0.4][1], 1e-9)
        # Relative cost of decomposition worsens with scale.
        assert large_ratio > small_ratio
