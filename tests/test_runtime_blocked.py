"""The blocked tier must be *invisible* — and must actually go out of core.

`repro.runtime.blocked` tiles CSR spmm against a RAM budget and lets the
basis planner spill whole term matrices to mmap-backed files. Contracts:

1. **Bit-identity** (hypothesis + taxonomy sweep): tiled spmm and
   blocked-scope precompute are byte-for-byte identical to the in-core
   path — the same contract the planner and every cache already hold.
2. **Spill round-trip**: a planner chain evicted under a tiny term
   budget lands in the spill store and is served back bit-identical as a
   read-only memmap, with ``plan.terms.spill`` / ``plan.terms.spill_load``
   traffic on the counters.
3. **Atomicity / hygiene**: spill writes land via ``os.replace``; purge
   sweeps payloads and stale temp files.
4. **Budget tuning**: ``choose_block_rows`` respects its bounds.
5. **GP integration**: graph-partition training reports cut-edge
   accounting and OOMs exactly when the largest cluster cannot fit.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.datasets.splits import random_split
from repro.filters.base import PropagationContext
from repro.filters.registry import FILTER_NAMES, make_filter
from repro.graph import Graph
from repro.runtime import blocked, plan
from repro.runtime.blocked import (
    BlockedTier,
    SpillStore,
    blocked_scope,
    blocked_spmm,
    choose_block_rows,
    default_ram_budget,
    spmm_csr,
)
from repro.runtime.device import DeviceModel
from repro.training.loop import TrainConfig
from repro.training.schemes import GraphPartitionTrainer


def _random_graph(n: int, seed: int, num_features: int = 4) -> Graph:
    rng = np.random.default_rng(seed)
    num_edges = max(2 * n, 1)
    edges = np.stack([rng.integers(0, n, size=num_edges),
                      rng.integers(0, n, size=num_edges)], axis=1)
    edges = edges[edges[:, 0] != edges[:, 1]]
    if len(edges) == 0:
        edges = np.array([[0, n - 1]]) if n > 1 else np.zeros((0, 2), int)
    features = rng.normal(size=(n, num_features)).astype(np.float32)
    labels = rng.integers(0, 3, size=n)
    return Graph.from_edges(n, edges, features=features, labels=labels,
                            name=f"rand{seed}")


def _random_csr(n: int, width: int, seed: int):
    rng = np.random.default_rng(seed)
    csr = sp.random(n, n, density=min(1.0, 4.0 / max(n, 1)), format="csr",
                    random_state=np.random.RandomState(seed),
                    dtype=np.float64)
    dense = rng.normal(size=(n, width))
    return csr, dense


# ----------------------------------------------------------------------
# 1. bit-identity
# ----------------------------------------------------------------------
class TestBitIdentity:
    @given(n=st.integers(1, 60), width=st.integers(1, 5),
           block_rows=st.integers(1, 70), seed=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_blocked_spmm_equals_oneshot(self, n, width, block_rows, seed):
        csr, dense = _random_csr(n, width, seed)
        expected = np.asarray(csr @ dense)
        tiled = blocked_spmm(csr, dense, block_rows)
        assert expected.tobytes() == tiled.tobytes()

    def test_blocked_spmm_into_out(self):
        csr, dense = _random_csr(20, 3, 5)
        out = np.empty((20, 3), dtype=np.float64)
        result = blocked_spmm(csr, dense, 7, out=out)
        assert result is out
        assert out.tobytes() == np.asarray(csr @ dense).tobytes()

    def test_spmm_csr_without_scope_is_plain(self):
        csr, dense = _random_csr(15, 2, 9)
        assert blocked.active_tier() is None
        assert spmm_csr(csr, dense).tobytes() == \
            np.asarray(csr @ dense).tobytes()

    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_taxonomy_precompute_blocked_equals_streamed(
            self, name, tmp_path):
        """Every filter's precompute: blocked scope ≡ in-core, byte-wise."""
        graph = _random_graph(24, seed=3)
        x = np.asarray(graph.features, dtype=np.float32)
        filter_ = make_filter(name, num_hops=6, num_features=x.shape[1])
        streamed = filter_.precompute(graph, x, rho=0.5)
        # Tiny budget: single-digit tile heights, term store spills.
        with blocked_scope(ram_budget_bytes=4096,
                           spill_dir=tmp_path / "spill"):
            with plan.plan_scope():
                tiled = filter_.precompute(graph, x, rho=0.5)
        assert streamed.tobytes() == tiled.tobytes()

    def test_blocked_planned_repeat_identical(self, tmp_path):
        """Spill + reload inside one scope never changes a result bit."""
        graph = _random_graph(20, seed=11)
        x = np.asarray(graph.features, dtype=np.float32)
        filter_ = make_filter("monomial", num_hops=8,
                              num_features=x.shape[1])
        baseline = filter_.precompute(graph, x, rho=0.5)
        with blocked_scope(ram_budget_bytes=2048,
                           spill_dir=tmp_path / "spill"):
            with plan.plan_scope():
                first = filter_.precompute(graph, x, rho=0.5)
                second = filter_.precompute(graph, x, rho=0.5)
        assert baseline.tobytes() == first.tobytes()
        assert baseline.tobytes() == second.tobytes()


# ----------------------------------------------------------------------
# 2. planner spill round-trip
# ----------------------------------------------------------------------
class TestPlannerSpill:
    def test_evicted_chain_spills_and_reloads(self, tmp_path):
        graph = _random_graph(16, seed=21)
        matrix = graph.normalized_adjacency(0.5)
        ctx = PropagationContext(matrix)
        x = np.asarray(graph.features, dtype=np.float32)
        expected = np.asarray(matrix @ x)
        telemetry.configure()
        try:
            with blocked_scope(ram_budget_bytes=64 * 2 ** 20,
                               spill_dir=tmp_path / "spill") as tier:
                # Shrink the term budget so the first chain must spill
                # as soon as a second one needs room.
                tier.term_budget_bytes = 1
                with plan.plan_scope() as planner:
                    planner.chain_terms(ctx, x, "monomial_adj", (), 4)
                    planner.chain_terms(ctx, x, "chebyshev", (), 4)
                    stats = planner.stats()
                    assert stats["terms_spilled"] >= 1
                    assert tier.spill.files_stored >= 1
                    # Re-request: terms come back as read-only memmaps,
                    # bit-identical, with zero recomputation of order-1.
                    terms = planner.chain_terms(ctx, x, "monomial_adj",
                                                (), 4)
                    assert terms[1].tobytes() == expected.tobytes()
                    assert planner.stats()["terms_loaded"] >= 1
            counters = telemetry.get_metrics().snapshot()["counters"]
            assert counters["plan.terms.spill"] >= 1
            assert counters["plan.terms.spill_load"] >= 1
            assert counters["blocked.spill_files"] >= 1
        finally:
            telemetry.shutdown()

    def test_resident_bytes_accounting(self, tmp_path):
        graph = _random_graph(16, seed=23)
        ctx = PropagationContext(graph.normalized_adjacency(0.5))
        x = np.asarray(graph.features, dtype=np.float32)
        with blocked_scope(ram_budget_bytes=64 * 2 ** 20,
                           spill_dir=tmp_path / "spill"):
            with plan.plan_scope() as planner:
                terms = planner.chain_terms(ctx, x, "monomial_adj", (), 4)
                computed = sum(int(t.nbytes) for t in terms[1:])
                assert planner.stats()["resident_term_bytes"] == computed

    def test_no_spill_without_blocked_scope(self):
        """Outside a blocked scope eviction drops terms (seed behaviour)."""
        graph = _random_graph(16, seed=25)
        ctx = PropagationContext(graph.normalized_adjacency(0.5))
        x = np.asarray(graph.features, dtype=np.float32)
        with plan.plan_scope(capacity=1) as planner:
            planner.chain_terms(ctx, x, "monomial_adj", (), 4)
            planner.chain_terms(ctx, x, "chebyshev", (), 4)
            stats = planner.stats()
            assert stats["terms_spilled"] == 0
            assert stats["terms_loaded"] == 0


# ----------------------------------------------------------------------
# 3. spill store mechanics
# ----------------------------------------------------------------------
class TestSpillStore:
    def test_roundtrip_is_readonly_memmap(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        nbytes = store.put(("fp", 1), array)
        assert nbytes == array.nbytes
        loaded = store.get(("fp", 1))
        assert isinstance(loaded, np.memmap)
        assert loaded.tobytes() == array.tobytes()
        with pytest.raises((ValueError, OSError)):
            loaded[0, 0] = 99.0

    def test_put_is_idempotent(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        array = np.ones((4, 4))
        assert store.put("k", array) > 0
        assert store.put("k", array) == 0
        assert store.files_stored == 1

    def test_miss_returns_none(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        assert store.get("absent") is None

    def test_no_tmp_residue_after_put(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        store.put("k", np.ones(8))
        assert list(store.root.glob("*.tmp")) == []
        assert len(list(store.root.glob("*.npy"))) == 1

    def test_purge_sweeps_payloads_and_stale_tmp(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        store.put("a", np.ones(4))
        (store.root / "crashed.tmp").write_bytes(b"torn")
        removed = store.purge()
        assert removed == 2
        assert list(store.root.iterdir()) == []

    def test_distinct_keys_distinct_files(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        store.put(("fp", 1), np.ones(4))
        store.put(("fp", 2), np.zeros(4))
        assert len(list(store.root.glob("*.npy"))) == 2
        assert store.get(("fp", 2)).sum() == 0.0


# ----------------------------------------------------------------------
# 4. budget tuning and scope rules
# ----------------------------------------------------------------------
class TestBudget:
    @given(num_rows=st.integers(0, 10 ** 6),
           row_nbytes=st.integers(1, 10 ** 6),
           budget=st.integers(1, 10 ** 9))
    @settings(max_examples=60, deadline=None)
    def test_choose_block_rows_bounds(self, num_rows, row_nbytes, budget):
        rows = choose_block_rows(num_rows, row_nbytes, budget)
        assert 1 <= rows <= max(num_rows, 1)

    def test_large_budget_single_tile(self):
        assert choose_block_rows(100, 8, 2 ** 40) == 100

    def test_default_budget_floored(self):
        assert default_ram_budget() >= blocked.MIN_RAM_BUDGET_BYTES

    def test_tier_counts_tiles(self, tmp_path):
        csr, dense = _random_csr(32, 2, 3)
        tier = BlockedTier(ram_budget_bytes=1, block_rows=8,
                           spill_dir=tmp_path / "spill")
        try:
            tier.spmm(csr, dense)
            stats = tier.stats()
            assert stats["spmm_calls"] == 1
            assert stats["tiles"] == 4
        finally:
            tier.close()

    def test_scope_stack_and_cleanup(self, tmp_path):
        assert blocked.active_tier() is None
        with blocked_scope(ram_budget_bytes=1024) as tier:
            assert blocked.active_tier() is tier
            spill_root = tier.spill.root
            assert spill_root.exists()
        assert blocked.active_tier() is None
        assert not spill_root.exists()  # scope-created tier owns its dir

    def test_caller_tier_left_open(self, tmp_path):
        tier = BlockedTier(ram_budget_bytes=1024,
                           spill_dir=tmp_path / "spill")
        with blocked_scope(tier):
            pass
        assert not tier.closed
        tier.close()

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            BlockedTier(ram_budget_bytes=-5)


# ----------------------------------------------------------------------
# 5. GP training scheme integration
# ----------------------------------------------------------------------
class TestGraphPartitionScheme:
    def _fit(self, graph, device=None, num_parts=3, epochs=2):
        split = random_split(graph.num_nodes, seed=0)
        filter_ = make_filter("monomial", num_hops=3,
                              num_features=graph.num_features)
        config = TrainConfig(epochs=epochs, patience=epochs, seed=0)
        trainer = GraphPartitionTrainer(num_parts=num_parts, device=device)
        return trainer.fit(graph, split, filter_, config)

    def test_cut_edge_accounting(self, small_graph):
        result = self._fit(small_graph)
        assert result.status == "ok"
        assert result.cut_edges is not None and result.cut_edges > 0
        assert 0.0 < result.cut_edge_fraction <= 1.0
        assert result.num_parts == 3
        summary = result.summary()
        assert summary["cut_edges"] == result.cut_edges
        assert summary["num_parts"] == 3

    def test_ooms_iff_largest_cluster_does_not_fit(self, small_graph):
        # Far below one cluster's operator+features: must OOM.
        tight = DeviceModel(capacity_bytes=2048, name="gp-tiny")
        result = self._fit(small_graph, device=tight, epochs=1)
        assert result.status == "oom"
        # Room for the largest cluster (but far less than the full
        # graph's features would need under full-batch): must fit.
        roomy = DeviceModel(capacity_bytes=256 * 2 ** 20, name="gp-ok")
        result = self._fit(small_graph, device=roomy, epochs=1)
        assert result.status == "ok"

    def test_gp_under_blocked_scope_identical(self, small_graph, tmp_path):
        plain = self._fit(small_graph)
        with blocked_scope(ram_budget_bytes=8192,
                           spill_dir=tmp_path / "spill"):
            tiled = self._fit(small_graph)
        assert plain.predictions.tobytes() == tiled.predictions.tobytes()
        assert plain.cut_edges == tiled.cut_edges
