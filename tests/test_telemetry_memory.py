"""The memory observatory: allocation ledger, attribution, and gates.

Four layers under test, mirroring the observatory's data path:

1. **Hook dispatch** (:mod:`repro.autodiff.tensor`): multiple subscribers
   receive every engine allocation; ``DeviceModel.step()`` no longer
   displaces the span tracer's attribution (the bug the multi-hook
   refactor fixes).
2. **Ledger accounting** (:mod:`repro.telemetry.memory`): live/peak
   bytes, weakref-driven free detection, peak attribution snapshots,
   top-N ranking, and worker-shard fold semantics (allocation totals are
   schedule-invariant; peaks max with attribution adopted).
3. **Span attribution** (:mod:`repro.telemetry.spans` / ``report``): the
   exclusive per-span ledger bytes telescope back to the root spans'
   inclusive totals — hypothesis-checked over random span/alloc scripts.
4. **Exports**: the trace report's memory section, the Chrome trace's
   ``ledger_live`` counter track, registry schema v5 ``memory`` blocks
   (with v4 backward compatibility), the memory regression thresholds,
   and the ``--mem-trace`` CLI wiring.
"""

from __future__ import annotations

import gc
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.autodiff import Tensor
from repro.autodiff import tensor as tensor_mod
from repro.runtime.device import DeviceModel
from repro.runtime.pool import Cell, PoolConfig, execute_cells
from repro.telemetry.memory import (
    MEMORY_SCHEMA,
    TOP_PATH,
    AllocationLedger,
    memory_block,
)
from repro.telemetry.report import aggregate_spans, render_memory
from repro.telemetry.rss import current_rss_bytes, peak_rss_bytes


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with telemetry (and all hooks) down."""
    telemetry.shutdown()
    yield
    telemetry.shutdown()
    tensor_mod.set_allocation_hook(None)


def _tensor(kib: int, **kwargs) -> Tensor:
    """One engine allocation of exactly ``kib`` KiB (float32: no cast)."""
    return Tensor(np.zeros(kib * 256, dtype=np.float32), **kwargs)


# --- module-level cell fn: picklable under any pool start method --------

def _alloc_cell(kib):
    with telemetry.span("work", kib=kib):
        t = Tensor(np.zeros(kib * 1024, dtype=np.float32))
        u = t + t
    return float(u.data[0])


# ---------------------------------------------------------------------------
# 1. multi-subscriber allocation hook dispatch
# ---------------------------------------------------------------------------

class TestAllocationHookDispatch:
    def test_all_subscribers_receive_each_allocation(self):
        seen_a, seen_b = [], []
        tensor_mod.add_allocation_hook(
            lambda n, arr, op: seen_a.append((n, op)))
        tensor_mod.add_allocation_hook(
            lambda n, arr, op: seen_b.append((n, op)))
        try:
            _tensor(1)
            assert seen_a == [(1024, "leaf")]
            assert seen_b == [(1024, "leaf")]
        finally:
            tensor_mod._allocation_hooks = ()

    def test_remove_is_equality_based_for_bound_methods(self):
        class Meter:
            def __init__(self):
                self.total = 0

            def on_alloc(self, nbytes, array, op):
                self.total += nbytes

        meter = Meter()
        # Each attribute access creates a fresh bound-method object;
        # removal must pair them up by equality, not identity.
        tensor_mod.add_allocation_hook(meter.on_alloc)
        tensor_mod.remove_allocation_hook(meter.on_alloc)
        _tensor(1)
        assert meter.total == 0
        assert tensor_mod._allocation_hooks == ()

    def test_duplicate_registration_is_single_subscription(self):
        seen = []

        def hook(n, arr, op):
            seen.append(n)

        tensor_mod.add_allocation_hook(hook)
        tensor_mod.add_allocation_hook(hook)
        try:
            _tensor(1)
            assert seen == [1024]
        finally:
            tensor_mod.remove_allocation_hook(hook)

    def test_op_names_flow_through(self):
        ops = []
        tensor_mod.add_allocation_hook(lambda n, arr, op: ops.append(op))
        try:
            t = _tensor(1)
            _ = t + t
        finally:
            tensor_mod._allocation_hooks = ()
        assert ops[0] == "leaf"
        assert "add" in ops

    def test_legacy_setter_still_works_and_replaces_itself(self):
        first, second = [], []
        tensor_mod.set_allocation_hook(first.append)
        tensor_mod.set_allocation_hook(second.append)  # replaces, not stacks
        try:
            _tensor(2)
            assert first == []
            assert second == [2048]
        finally:
            tensor_mod.set_allocation_hook(None)
        _tensor(1)
        assert second == [2048]

    def test_device_step_and_ledger_both_metered_nested(self):
        """Satellite regression: a DeviceModel step inside a traced block
        must not displace the ledger's span attribution (the old
        single-slot hook did exactly that)."""
        telemetry.configure()
        device = DeviceModel()
        with telemetry.span("train"):
            with device.step():
                _tensor(4)
        ledger = telemetry.get_ledger()
        assert device.peak_bytes == 4096
        assert ledger.total_alloc_bytes == 4096
        assert ledger.alloc_by_op == {"leaf": 4096}
        events = telemetry.shutdown()
        (train,) = [e for e in events if e.get("name") == "train"]
        assert train["mem_bytes"] == 4096


# ---------------------------------------------------------------------------
# 2. the allocation ledger
# ---------------------------------------------------------------------------

class TestAllocationLedger:
    def test_alloc_and_free_roundtrip(self):
        ledger = AllocationLedger()
        arr = np.zeros(1024, dtype=np.uint8)
        ledger.on_alloc(arr.nbytes, arr, "leaf", "a/b")
        assert ledger.live_bytes == 1024
        assert ledger.live_by_path == {"a/b": 1024}
        del arr
        gc.collect()
        assert ledger.live_bytes == 0
        assert ledger.live_by_path == {}
        assert ledger.total_freed_bytes == 1024
        assert ledger.free_count == 1
        # Totals never decrease: they are the schedule-invariant side.
        assert ledger.total_alloc_bytes == 1024

    def test_peak_attribution_snapshot(self):
        ledger = AllocationLedger()
        big = np.zeros(4096, dtype=np.uint8)
        small = np.zeros(1024, dtype=np.uint8)
        ledger.on_alloc(small.nbytes, small, "leaf", "setup")
        ledger.on_alloc(big.nbytes, big, "matmul", "train/forward")
        assert ledger.peak_bytes == 5120
        assert ledger.peak_path == "train/forward"
        assert ledger.peak_op == "matmul"
        assert ledger.peak_by_path == {"setup": 1024, "train/forward": 4096}
        # Frees after the peak leave the snapshot untouched.
        del big
        gc.collect()
        assert ledger.peak_bytes == 5120
        assert ledger.peak_by_path == {"setup": 1024, "train/forward": 4096}

    def test_top_allocations_bounded_and_ranked(self):
        ledger = AllocationLedger(top_n=3)
        for i, size in enumerate([10, 50, 20, 40, 30]):
            ledger.on_alloc(size, None, f"op{i}", TOP_PATH)
        sizes = [e["nbytes"] for e in ledger.top_allocations]
        assert sizes == [50, 40, 30]

    def test_close_ignores_late_finalizers(self):
        ledger = AllocationLedger()
        arr = np.zeros(64, dtype=np.uint8)
        ledger.on_alloc(arr.nbytes, arr, "leaf")
        ledger.close()
        del arr
        gc.collect()
        assert ledger.live_bytes == 64  # frozen at close
        assert ledger.free_count == 0

    def test_summary_shape(self):
        ledger = AllocationLedger()
        ledger.on_alloc(100, None, "leaf", "a")
        summary = ledger.summary()
        assert summary["schema"] == MEMORY_SCHEMA
        assert summary["peak_bytes"] == 100
        assert summary["peak_attribution"]["path"] == "a"
        assert summary["rss_peak_bytes"] > 0
        assert "samples" not in summary  # only with sample=True

    def test_sampling_is_throttled_and_bounded(self):
        now = [0.0]
        ledger = AllocationLedger(sample=True, sample_interval_s=1.0,
                                  max_samples=8, clock=lambda: now[0])
        for i in range(40):
            now[0] = float(i)  # 1 tick per alloc: every alloc sampled
            ledger.on_alloc(10, None, "leaf")
        # Decimation keeps the series under the bound and doubles the
        # interval, so it coarsens instead of growing.
        assert len(ledger.samples) < 8
        assert ledger.sample_interval_s > 1.0
        assert ledger.summary()["samples"] == ledger.samples

    def test_merge_summary_adds_totals_and_maxes_peak(self):
        parent = AllocationLedger()
        parent.on_alloc(100, None, "leaf", "parent")
        shard = AllocationLedger()
        shard.on_alloc(300, None, "matmul", "cell/work")
        parent.merge_summary(shard.summary())
        assert parent.total_alloc_bytes == 400
        assert parent.alloc_count == 2
        assert parent.alloc_by_op == {"leaf": 100, "matmul": 300}
        # Shard's higher peak adopted wholesale, with its attribution.
        assert parent.peak_bytes == 300
        assert parent.peak_path == "cell/work"
        assert parent.peak_op == "matmul"
        # Residual worker live bytes die with the worker: not added.
        assert parent.live_bytes == 100

    def test_merge_summary_keeps_higher_parent_peak(self):
        parent = AllocationLedger()
        parent.on_alloc(500, None, "leaf", "parent")
        shard = AllocationLedger()
        shard.on_alloc(100, None, "matmul", "cell")
        parent.merge_summary(shard.summary())
        assert parent.peak_bytes == 500
        assert parent.peak_path == "parent"

    def test_merge_summary_ranks_shard_top_allocations(self):
        parent = AllocationLedger(top_n=2)
        parent.on_alloc(10, None, "leaf", "p")
        shard = AllocationLedger(top_n=2)
        shard.on_alloc(1000, None, "matmul", "c")
        parent.merge_summary(shard.summary())
        assert [e["nbytes"] for e in parent.top_allocations] == [1000, 10]


# ---------------------------------------------------------------------------
# 3. span attribution: inclusive/exclusive telescoping
# ---------------------------------------------------------------------------

class TestSpanMemoryAttribution:
    def test_mem_bytes_inclusive_and_exclusive(self):
        telemetry.configure()
        with telemetry.span("outer"):
            _tensor(1)
            with telemetry.span("inner"):
                _tensor(2)
        events = telemetry.shutdown()
        stats = aggregate_spans(events)
        assert stats["outer"]["mem_bytes"] == 3072
        assert stats["inner"]["mem_bytes"] == 2048
        assert stats["outer"]["self_mem_bytes"] == 1024
        assert stats["inner"]["self_mem_bytes"] == 2048

    def test_mem_peak_is_live_high_water_mark(self):
        telemetry.configure()
        with telemetry.span("stage"):
            _tensor(8)
        events = telemetry.shutdown()
        (stage,) = [e for e in events if e.get("name") == "stage"]
        assert stage["mem_peak_bytes"] >= 8 * 1024

    def test_ledger_paths_follow_span_tree(self):
        telemetry.configure()
        with telemetry.span("a"):
            with telemetry.span("b"):
                _tensor(1)
        ledger_summary = [e for e in telemetry.shutdown()
                          if e.get("type") == "memory"][-1]["memory"]
        assert "a/b" in ledger_summary["peak_attribution"]["live_by_path"]

    def test_top_level_allocations_use_sentinel_path(self):
        telemetry.configure()
        _tensor(1)
        summary = [e for e in telemetry.shutdown()
                   if e.get("type") == "memory"][-1]["memory"]
        assert TOP_PATH in summary["peak_attribution"]["live_by_path"]

    @given(script=st.lists(
        st.tuples(st.integers(0, 2), st.integers(1, 64)),
        min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_exclusive_mem_telescopes_to_root_inclusive(self, script):
        """For ANY nesting/allocation interleaving, the sum of exclusive
        per-span ledger bytes equals the sum of the root spans' inclusive
        bytes — allocation is attributed exactly once at every depth."""
        telemetry.shutdown()
        telemetry.configure()
        stack = []
        try:
            for action, arg in script:
                if action == 0 and len(stack) < 6:
                    span = telemetry.span(f"s{len(stack)}.{arg % 3}")
                    span.__enter__()
                    stack.append(span)
                elif action == 1 and stack:
                    stack.pop().__exit__(None, None, None)
                else:
                    _tensor(arg)
        finally:
            while stack:
                stack.pop().__exit__(None, None, None)
        events = telemetry.shutdown()
        stats = aggregate_spans(events)
        total_exclusive = sum(e["self_mem_bytes"] for e in stats.values())
        root_inclusive = sum(e["mem_bytes"] for e in events
                             if e.get("type") == "span"
                             and e.get("parent") is None)
        assert total_exclusive == root_inclusive


# ---------------------------------------------------------------------------
# worker-shard folding: pooled totals equal serial totals
# ---------------------------------------------------------------------------

def _run_alloc_cells(workers):
    telemetry.configure()
    try:
        cells = [Cell(key=("cell", i), fn=_alloc_cell,
                      kwargs={"kib": 4 * (i + 1)}) for i in range(3)]
        with telemetry.span("experiment"):
            execute_cells(cells, PoolConfig(workers=workers))
    finally:
        events = telemetry.shutdown()
    memory_events = [e for e in events if e.get("type") == "memory"]
    return memory_events


class TestLedgerShardFolding:
    def test_single_memory_event_per_run(self):
        memory_events = _run_alloc_cells(workers=1)
        assert len(memory_events) == 1  # shard summaries fold, not re-emit

    def test_pooled_alloc_totals_equal_serial(self):
        serial = _run_alloc_cells(workers=1)[-1]["memory"]
        pooled = _run_alloc_cells(workers=3)[-1]["memory"]
        assert pooled["total_alloc_bytes"] == serial["total_alloc_bytes"]
        assert pooled["alloc_count"] == serial["alloc_count"]
        assert pooled["alloc_by_op"] == serial["alloc_by_op"]
        # Each cell: one leaf + one add of 4(i+1) KiB float32.
        expected = sum(2 * 4 * (i + 1) * 1024 * 4 for i in range(3))
        assert serial["total_alloc_bytes"] == expected

    def test_shard_capture_restores_parent_ledger(self):
        telemetry.configure()
        parent_ledger = telemetry.get_ledger()
        _tensor(1)
        shard = {}
        with telemetry.shard_capture(shard):
            child_ledger = telemetry.get_ledger()
            assert child_ledger is not parent_ledger
            _tensor(2)
        assert telemetry.get_ledger() is parent_ledger
        # The child's summary rides the shard events…
        child_summary = [e for e in shard["events"]
                         if e.get("type") == "memory"][-1]["memory"]
        assert child_summary["total_alloc_bytes"] == 2048
        # …and fold_shard merges it into the parent's totals.
        telemetry.fold_shard(shard["events"], shard["metrics"], label="c")
        assert parent_ledger.total_alloc_bytes == 1024 + 2048
        telemetry.shutdown()


# ---------------------------------------------------------------------------
# 4a. memory_block: the registry's memory column
# ---------------------------------------------------------------------------

class TestMemoryBlock:
    def test_empty_without_ledger(self):
        assert memory_block([], {}) == {}

    def test_strips_samples_and_adds_coverage(self):
        ledger = AllocationLedger(sample=True, sample_interval_s=0.0)
        ledger.on_alloc(2 ** 20, None, "leaf", "a")
        events = [{"type": "memory", "memory": ledger.summary()}]
        metrics = {"gauges": {"device.d.peak_bytes":
                              {"value": 2 ** 19, "max": 2 ** 19}}}
        block = memory_block(events, metrics)
        assert "samples" not in block
        assert block["device_peak_bytes"] == 2 ** 19
        assert block["coverage"]["device_vs_ledger"] == pytest.approx(0.5)
        ratio = block["coverage"]["ledger_vs_rss"]
        assert ratio is not None and 0 < ratio <= 1.0

    def test_blocked_subblock_absent_when_tier_never_ran(self):
        ledger = AllocationLedger(sample=True, sample_interval_s=0.0)
        ledger.on_alloc(2 ** 20, None, "leaf", "a")
        events = [{"type": "memory", "memory": ledger.summary()}]
        block = memory_block(events, {"counters": {}, "gauges": {}})
        assert "blocked" not in block

    def test_blocked_subblock_carries_spill_traffic(self):
        ledger = AllocationLedger(sample=True, sample_interval_s=0.0)
        ledger.on_alloc(2 ** 20, None, "leaf", "a")
        events = [{"type": "memory", "memory": ledger.summary()}]
        metrics = {
            "counters": {"blocked.spmm_calls": 7, "blocked.tiles": 21,
                         "blocked.spill_bytes": 4096,
                         "plan.terms.spill": 3, "plan.terms.spill_load": 2},
            "gauges": {"blocked.mmap_peak_bytes":
                       {"value": 1024, "max": 2048}},
        }
        block = memory_block(events, metrics)
        assert block["blocked"] == {
            "spmm_calls": 7, "tiles": 21, "spill_bytes": 4096,
            "spill_terms": 3, "spill_loads": 2, "mmap_bytes": 2048}
        # Spill/mmap bytes sit next to the peak, never inside it.
        assert block["peak_bytes"] == 2 ** 20

    def test_registry_record_carries_memory_block(self, tmp_path):
        telemetry.configure()
        with telemetry.span("stage"):
            _tensor(16)
        events = telemetry.shutdown()
        record = telemetry.record_run(
            telemetry.build_manifest(extra={"experiment": "mem"}),
            events=events, registry_dir=tmp_path)
        assert record.schema.endswith("/v6")
        assert record.memory["peak_bytes"] >= 16 * 1024
        loaded = telemetry.RunRegistry(tmp_path).load()[0]
        assert loaded.memory["peak_bytes"] == record.memory["peak_bytes"]
        assert "coverage" in loaded.memory

    def test_v4_line_loads_with_empty_memory(self, tmp_path):
        """A registry written before the observatory still loads (and the
        memory thresholds skip on it rather than fail)."""
        from repro.telemetry.registry import REGISTRY_FILENAME

        registry = telemetry.RunRegistry(tmp_path)
        record = telemetry.build_record(
            telemetry.build_manifest(extra={"experiment": "mem"}),
            timestamp=1.0)
        v4 = record.to_dict()
        v4["schema"] = "repro.telemetry.registry/v4"
        del v4["memory"]
        with (tmp_path / REGISTRY_FILENAME).open("a") as handle:
            handle.write(json.dumps(v4) + "\n")
        (loaded,) = registry.load()
        assert registry.corrupt_lines == 0
        assert loaded.memory == {}

    def test_memory_outside_config_fingerprint(self, tmp_path):
        manifest = telemetry.build_manifest(extra={"experiment": "mem"})
        lean = telemetry.build_record(manifest, timestamp=1.0)
        fat = telemetry.build_record(manifest, timestamp=2.0,
                                     memory={"peak_bytes": 123})
        assert lean.config_fingerprint == fat.config_fingerprint


# ---------------------------------------------------------------------------
# 4b. memory regression thresholds
# ---------------------------------------------------------------------------

def _memory_record(timestamp, peak, total=None):
    return telemetry.build_record(
        telemetry.build_manifest(extra={"experiment": "mem"}),
        timestamp=timestamp,
        memory={"peak_bytes": peak,
                "total_alloc_bytes": total if total is not None else peak})


class TestMemoryGate:
    def test_doubled_peak_fails_default_gate(self):
        baseline = _memory_record(1.0, 64 * 2 ** 20)
        candidate = _memory_record(2.0, 128 * 2 ** 20)
        verdicts = telemetry.evaluate_pair(baseline, candidate)
        failed = {v.metric for v in verdicts if v.failed}
        assert "memory.peak_bytes" in failed

    def test_clean_pair_passes_gate(self):
        from repro.telemetry.regression import passed

        baseline = _memory_record(1.0, 64 * 2 ** 20)
        candidate = _memory_record(2.0, 66 * 2 ** 20)
        assert passed(telemetry.evaluate_pair(baseline, candidate))

    def test_pre_v5_baseline_skips_not_fails(self):
        baseline = telemetry.build_record(
            telemetry.build_manifest(extra={"experiment": "mem"}),
            timestamp=1.0)  # no memory block: pre-observatory
        candidate = _memory_record(2.0, 512 * 2 ** 20)
        verdicts = telemetry.evaluate_pair(baseline, candidate)
        memory_verdicts = [v for v in verdicts
                           if v.metric.startswith("memory.")]
        assert memory_verdicts
        assert all(v.status == "skip" for v in memory_verdicts)

    def test_small_baselines_under_noise_floor_skip(self):
        baseline = _memory_record(1.0, 2 ** 20)       # 1 MiB < 16 MiB floor
        candidate = _memory_record(2.0, 8 * 2 ** 20)  # 8x, but tiny
        verdicts = telemetry.evaluate_pair(baseline, candidate)
        assert all(v.status == "skip" for v in verdicts
                   if v.metric.startswith("memory."))

    def test_pinned_thresholds_include_memory_rules(self):
        from repro.telemetry.regression import pinned_thresholds

        for experiment in ("efficiency", "effectiveness"):
            metrics = {t.metric for t in pinned_thresholds(experiment)}
            assert "memory.peak_bytes" in metrics
            assert "memory.total_alloc_bytes" in metrics

    def test_compare_rows_include_memory_metrics(self):
        from repro.bench.compare import registry_delta_rows

        baseline = _memory_record(1.0, 100, total=400)
        candidate = _memory_record(2.0, 150, total=500)
        rows = registry_delta_rows(baseline, candidate)
        deltas = {r["metric"]: r["delta"] for r in rows}
        assert deltas["memory.peak_bytes"] == 50
        assert deltas["memory.total_alloc_bytes"] == 100


# ---------------------------------------------------------------------------
# 4c. rendering + Chrome trace export
# ---------------------------------------------------------------------------

class TestMemoryReporting:
    def test_render_memory_sections(self):
        telemetry.configure()
        device = DeviceModel(name="dev")
        with telemetry.span("train"):
            with device.step():
                _tensor(64)
        events = telemetry.shutdown()
        text = render_memory(events)
        assert "allocation ledger" in text
        assert "peak accounted" in text
        assert "largest allocations" in text
        assert "train" in text

    def test_render_memory_without_ledger(self):
        assert "no allocation ledger" in render_memory([])

    def test_trace_report_includes_memory_section(self):
        telemetry.configure()
        with telemetry.span("stage"):
            _tensor(1)
        events = telemetry.shutdown()
        assert "allocation ledger" in telemetry.render_trace_report(events)

    def test_trace_report_omits_memory_when_absent(self):
        events = [{"type": "span", "name": "s", "id": 1, "parent": None,
                   "duration_s": 1.0, "alloc_bytes": 0}]
        assert "allocation ledger" not in \
            telemetry.render_trace_report(events)

    def test_chrome_trace_has_ledger_live_counter_track(self):
        telemetry.configure(mem_trace=True)
        ledger = telemetry.get_ledger()
        ledger.sample_interval_s = 0.0  # sample every allocation
        with telemetry.span("stage"):
            for _ in range(4):
                _tensor(8)
        events = telemetry.shutdown()
        trace = telemetry.chrome_trace_events(
            [], events, span_epoch_wall=None)
        counters = [e for e in trace if e.get("name") == "ledger_live"
                    and e.get("ph") == "C"]
        assert counters
        assert all("MiB" in e["args"] for e in counters)
        assert [e["ts"] for e in counters] \
            == sorted(e["ts"] for e in counters)

    def test_no_counter_track_without_mem_trace(self):
        telemetry.configure()  # ledger on, timeline sampling off
        with telemetry.span("stage"):
            _tensor(8)
        events = telemetry.shutdown()
        trace = telemetry.chrome_trace_events([], events)
        assert not [e for e in trace if e.get("name") == "ledger_live"]


# ---------------------------------------------------------------------------
# rss helper
# ---------------------------------------------------------------------------

class TestRssHelpers:
    def test_current_and_peak_positive(self):
        current = current_rss_bytes()
        peak = peak_rss_bytes()
        assert current > 0
        assert peak > 0

    def test_peak_at_least_roughly_current(self):
        # ru_maxrss is a lifetime high-water mark; current RSS can only
        # exceed it transiently between kernel accounting updates.
        assert peak_rss_bytes() >= current_rss_bytes() * 0.5


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

class TestMemTraceCli:
    def test_mem_trace_conflicts_with_no_telemetry(self, capsys):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["efficiency", "--mem-trace", "--no-telemetry"])
        assert "--mem-trace requires telemetry" in capsys.readouterr().err

    def test_parser_accepts_mem_trace(self):
        from repro.bench.__main__ import build_parser

        args = build_parser().parse_args(["efficiency", "--mem-trace"])
        assert args.mem_trace
        assert not build_parser().parse_args(["efficiency"]).mem_trace

    def test_mem_trace_run_writes_memory_artifacts(self, tmp_path, capsys):
        from repro.bench.__main__ import main
        from repro.bench.io import load_jsonl

        trace = tmp_path / "run.jsonl"
        code = main(["efficiency", "--datasets", "cora", "--filters", "ppr",
                     "--schemes", "mini_batch", "--epochs", "2",
                     "--trace", str(trace), "--mem-trace",
                     "--registry-dir", str(tmp_path / "registry")])
        assert code == 0
        out = capsys.readouterr().out
        assert "allocation ledger" in out
        events = load_jsonl(trace)
        (memory_event,) = [e for e in events if e.get("type") == "memory"]
        summary = memory_event["memory"]
        assert summary["schema"] == MEMORY_SCHEMA
        assert summary["peak_bytes"] > 0
        assert summary["samples"], "--mem-trace must record the timeline"
        record = telemetry.RunRegistry(tmp_path / "registry").load()[-1]
        assert record.memory["peak_bytes"] == summary["peak_bytes"]
        assert "samples" not in record.memory
        assert record.memory["coverage"]["ledger_vs_rss"] is not None
