"""Variable filters: basis identities, initializations, adaptive bases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.errors import FilterError
from repro.filters import (
    BernsteinFilter,
    ChebInterpFilter,
    ChebyshevFilter,
    ClenshawFilter,
    FavardFilter,
    HornerFilter,
    JacobiFilter,
    LegendreFilter,
    LinearVariableFilter,
    MonomialVariableFilter,
    OptBasisFilter,
)
from repro.filters.base import PropagationContext, SpectralContext
from repro.filters.variable import chebyshev_nodes

LAMS = np.linspace(0.0, 2.0, 41)


def basis_values(filter_, lams):
    """Evaluate each basis function on the grid via the spectral context."""
    ctx = SpectralContext(lams)
    return [np.asarray(b, dtype=np.float64) for b in filter_._bases(ctx, np.ones_like(lams))]


class TestChebyshev:
    def test_bases_are_cosines(self):
        f = ChebyshevFilter(num_hops=6)
        bases = basis_values(f, LAMS)
        theta = np.arccos(np.clip(LAMS - 1.0, -1, 1))
        for k, basis in enumerate(bases):
            np.testing.assert_allclose(basis, np.cos(k * theta), atol=1e-8)

    def test_bases_bounded(self):
        for basis in basis_values(ChebyshevFilter(num_hops=10), LAMS):
            assert np.abs(basis).max() <= 1.0 + 1e-9

    def test_default_is_low_pass(self):
        f = ChebyshevFilter(num_hops=6)
        response = f.response(LAMS)
        assert response[0] > response[-1]
        np.testing.assert_allclose(response, 2.0 - LAMS, atol=1e-8)


class TestChebInterp:
    def test_nodes_in_open_interval(self):
        nodes = chebyshev_nodes(9)
        assert np.all(nodes > -1) and np.all(nodes < 1)
        assert len(nodes) == 10

    def test_interpolation_reproduces_node_values(self):
        """g(x_κ + 1) ≈ θ_κ: the filter interpolates its own parameters."""
        f = ChebInterpFilter(num_hops=8)
        rng = np.random.default_rng(0)
        theta = rng.normal(size=9).astype(np.float32)
        nodes = chebyshev_nodes(8)
        response = f.response(nodes + 1.0, {"theta": theta})
        np.testing.assert_allclose(response, theta, atol=1e-4)

    def test_transform_shape(self):
        transform = ChebInterpFilter(num_hops=5).coefficient_transform()
        assert transform.shape == (6, 6)


class TestClenshaw:
    def test_bases_are_second_kind(self):
        f = ClenshawFilter(num_hops=5)
        bases = basis_values(f, LAMS[1:-1])
        theta = np.arccos(np.clip(LAMS[1:-1] - 1.0, -1, 1))
        for k, basis in enumerate(bases):
            expected = np.sin((k + 1) * theta) / np.sin(theta)
            np.testing.assert_allclose(basis, expected, atol=1e-6)


class TestLegendre:
    def test_matches_numpy_legendre(self):
        from numpy.polynomial import legendre

        f = LegendreFilter(num_hops=5)
        bases = basis_values(f, LAMS)
        for k, basis in enumerate(bases):
            coeffs = np.zeros(k + 1)
            coeffs[k] = 1.0
            expected = legendre.legval(LAMS - 1.0, coeffs)
            np.testing.assert_allclose(basis, expected, atol=1e-8)


class TestJacobi:
    def test_reduces_to_legendre_at_zero(self):
        jac = JacobiFilter(num_hops=5, a=0.0, b=0.0)
        leg = LegendreFilter(num_hops=5)
        # Jacobi argument is (1−λ); Legendre argument is (λ−1): P_k(−x) =
        # (−1)^k P_k(x), so they agree up to alternating signs.
        jac_bases = basis_values(jac, LAMS)
        leg_bases = basis_values(leg, LAMS)
        for k, (jb, lb) in enumerate(zip(jac_bases, leg_bases)):
            np.testing.assert_allclose(jb, (-1.0) ** k * lb, atol=1e-7)

    def test_hyperparameters(self):
        assert JacobiFilter(a=0.5, b=-0.25).hyperparameters() == {"a": 0.5, "b": -0.25}


class TestBernstein:
    def test_partition_of_unity(self):
        f = BernsteinFilter(num_hops=7)
        total = np.sum(basis_values(f, LAMS), axis=0)
        np.testing.assert_allclose(total, np.ones_like(LAMS), atol=1e-8)

    def test_bases_nonnegative(self):
        for basis in basis_values(BernsteinFilter(num_hops=7), LAMS):
            assert basis.min() >= -1e-9

    def test_peak_positions_increase(self):
        bases = basis_values(BernsteinFilter(num_hops=6), LAMS)
        peaks = [LAMS[np.argmax(b)] for b in bases]
        assert peaks == sorted(peaks)

    def test_theta_is_pointwise_response(self):
        """θ_k directly sets the response near λ = 2k/K."""
        f = BernsteinFilter(num_hops=10)
        theta = np.linspace(1.0, 0.0, 11).astype(np.float32)  # ramp
        response = f.response(LAMS, {"theta": theta})
        np.testing.assert_allclose(response, 1.0 - LAMS / 2.0, atol=1e-6)


class TestHorner:
    def test_bases_are_geometric_partial_sums(self):
        f = HornerFilter(num_hops=4)
        bases = basis_values(f, LAMS)
        running = np.zeros_like(LAMS)
        for k, basis in enumerate(bases):
            running = running * 0 + sum((1 - LAMS) ** j for j in range(k + 1))
            np.testing.assert_allclose(basis, running, atol=1e-7)


class TestMonomialVariable:
    def test_default_init_is_ppr_decay(self):
        theta = MonomialVariableFilter(num_hops=4, alpha=0.5).default_coefficients()
        np.testing.assert_allclose(theta[:4], [0.5, 0.25, 0.125, 0.0625])
        assert theta[4] == pytest.approx(0.5 ** 4)


class TestLinearVariable:
    def test_two_bases(self):
        assert LinearVariableFilter().basis_count() == 2

    def test_theta_zero_is_adjacency(self):
        f = LinearVariableFilter()
        response = f.response(LAMS)  # default theta = [0, 1]
        np.testing.assert_allclose(response, 1.0 - LAMS, atol=1e-8)


class TestFavard:
    def test_parameter_spec_names(self):
        spec = FavardFilter(num_hops=5).parameter_spec()
        assert set(spec) == {"theta", "alpha_raw", "beta"}
        assert spec["alpha_raw"].shape == (6,)

    def test_default_recurrence_is_monomial_like(self):
        """α=1, β=0 gives T_k = Ã T_{k−1} − T_{k−2}: degree-k polynomials."""
        f = FavardFilter(num_hops=4)
        params = {name: s.init for name, s in f.parameter_spec().items()}
        response = f.response(LAMS, params)
        assert np.all(np.isfinite(response))

    def test_tensor_and_numpy_paths_agree(self, small_graph):
        rng = np.random.default_rng(2)
        f = FavardFilter(num_hops=4)
        spec = f.parameter_spec()
        raw = {n: (s.init + 0.2 * rng.normal(size=s.shape)).astype(np.float32)
               for n, s in spec.items()}
        x = rng.normal(size=(small_graph.num_nodes, 3)).astype(np.float32)
        ctx = PropagationContext.for_graph(small_graph)
        out_np = np.asarray(f.forward(ctx, x, raw))
        ctx2 = PropagationContext.for_graph(small_graph)
        tensors = {n: Tensor(v) for n, v in raw.items()}
        out_t = f.forward(ctx2, Tensor(x), tensors).data
        np.testing.assert_allclose(out_t, out_np, atol=1e-4)

    def test_gradients_reach_recurrence_params(self, small_graph):
        f = FavardFilter(num_hops=3)
        spec = f.parameter_spec()
        params = {n: Tensor(s.init.copy(), requires_grad=True)
                  for n, s in spec.items()}
        x = Tensor(np.random.default_rng(0).normal(
            size=(small_graph.num_nodes, 2)).astype(np.float32))
        ctx = PropagationContext.for_graph(small_graph)
        f.forward(ctx, x, params).sum().backward()
        for name, p in params.items():
            assert p.grad is not None, name

    def test_missing_params_rejected(self, small_graph, signal):
        ctx = PropagationContext.for_graph(small_graph)
        with pytest.raises(FilterError):
            FavardFilter(num_hops=3).forward(ctx, signal, None)


class TestOptBasis:
    def test_bases_orthonormal_per_channel(self, small_graph):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(small_graph.num_nodes, 3)).astype(np.float64)
        f = OptBasisFilter(num_hops=6)
        ctx = PropagationContext.for_graph(small_graph)
        bases = list(f._bases(ctx, x))
        for c in range(3):
            stacked = np.stack([b[:, c] for b in bases], axis=1)
            gram = stacked.T @ stacked
            np.testing.assert_allclose(gram, np.eye(7), atol=5e-2)

    def test_response_replays_last_run(self, small_graph):
        f = OptBasisFilter(num_hops=4)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(small_graph.num_nodes, 1)).astype(np.float32)
        ctx = PropagationContext.for_graph(small_graph)
        theta = rng.normal(size=5).astype(np.float32)
        f.forward(ctx, x, {"theta": theta})
        # With a single channel the replayed response is exact.
        from repro.spectral import laplacian_eigendecomposition

        eigenvalues, eigenvectors = laplacian_eigendecomposition(small_graph)
        response = f.response(eigenvalues, {"theta": theta})
        expected = eigenvectors @ (
            (response * (eigenvectors.T @ (x[:, 0] / np.linalg.norm(x[:, 0])))))
        ctx2 = PropagationContext.for_graph(small_graph)
        actual = np.asarray(f.forward(ctx2, x, {"theta": theta}))[:, 0]
        np.testing.assert_allclose(actual, expected * np.linalg.norm(x[:, 0]) /
                                   np.linalg.norm(x[:, 0]), atol=2e-2)

    def test_requires_2d_signal(self, small_graph):
        ctx = PropagationContext.for_graph(small_graph)
        with pytest.raises(FilterError):
            list(OptBasisFilter(num_hops=2)._bases(
                ctx, np.ones(small_graph.num_nodes)))
