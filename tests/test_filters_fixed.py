"""Fixed filters: closed-form responses and coefficient identities."""

from __future__ import annotations

from math import factorial

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import (
    GaussianFilter,
    HeatKernelFilter,
    IdentityFilter,
    ImpulseFilter,
    LinearFilter,
    MonomialFilter,
    PPRFilter,
)

LAMS = np.linspace(0.0, 2.0, 21)


class TestIdentity:
    def test_response_is_one(self):
        np.testing.assert_allclose(IdentityFilter().response(LAMS), np.ones_like(LAMS))

    def test_propagate_is_identity(self, small_graph, signal):
        out = IdentityFilter().propagate(small_graph, signal)
        np.testing.assert_allclose(out, signal, atol=1e-6)

    def test_single_basis(self):
        assert IdentityFilter(num_hops=10).basis_count() == 1


class TestLinear:
    def test_response_two_minus_lambda(self):
        np.testing.assert_allclose(LinearFilter().response(LAMS), 2.0 - LAMS,
                                   atol=1e-12)

    def test_zero_at_highest_frequency(self):
        assert LinearFilter().response(np.array([2.0]))[0] == pytest.approx(0.0)


class TestImpulse:
    def test_response_is_power(self):
        f = ImpulseFilter(num_hops=5)
        np.testing.assert_allclose(f.response(LAMS), (1.0 - LAMS) ** 5, atol=1e-10)

    def test_coefficients_one_hot(self):
        theta = ImpulseFilter(num_hops=4).fixed_coefficients()
        np.testing.assert_array_equal(theta, [0, 0, 0, 0, 1])

    def test_propagate_equals_repeated_adjacency(self, small_graph, signal):
        f = ImpulseFilter(num_hops=3)
        out = f.propagate(small_graph, signal)
        adj = small_graph.normalized_adjacency(0.5)
        expected = signal
        for _ in range(3):
            expected = adj @ expected
        np.testing.assert_allclose(out, expected, atol=1e-4)


class TestMonomial:
    def test_coefficients_uniform(self):
        theta = MonomialFilter(num_hops=4).fixed_coefficients()
        np.testing.assert_allclose(theta, np.full(5, 0.2))

    def test_response_at_zero_is_one(self):
        # Σ 1/(K+1) · 1^k = 1 at λ = 0.
        assert MonomialFilter(num_hops=7).response(np.array([0.0]))[0] == pytest.approx(1.0)


class TestPPR:
    def test_coefficients_geometric(self):
        theta = PPRFilter(num_hops=3, alpha=0.2).fixed_coefficients()
        np.testing.assert_allclose(theta, [0.2, 0.16, 0.128, 0.1024])

    def test_response_approaches_closed_form(self):
        # K large: Σ α(1−α)^k (1−λ)^k → α / (1 − (1−α)(1−λ)).
        f = PPRFilter(num_hops=80, alpha=0.3)
        expected = 0.3 / (1.0 - 0.7 * (1.0 - LAMS))
        np.testing.assert_allclose(f.response(LAMS), expected, atol=1e-6)

    def test_alpha_validation(self):
        with pytest.raises(FilterError):
            PPRFilter(alpha=1.5)

    def test_alpha_one_is_identity(self):
        f = PPRFilter(num_hops=5, alpha=1.0)
        np.testing.assert_allclose(f.response(LAMS), np.ones_like(LAMS))

    def test_hyperparameters_exposed(self):
        assert PPRFilter(alpha=0.25).hyperparameters() == {"alpha": 0.25}


class TestHeatKernel:
    def test_response_is_exp_decay(self):
        f = HeatKernelFilter(num_hops=30, alpha=1.5)
        np.testing.assert_allclose(f.response(LAMS), np.exp(-1.5 * LAMS), atol=1e-8)

    def test_coefficients_poisson(self):
        theta = HeatKernelFilter(num_hops=3, alpha=2.0).fixed_coefficients()
        expected = [np.exp(-2) * 2 ** k / factorial(k) for k in range(4)]
        np.testing.assert_allclose(theta, expected)

    def test_negative_alpha_rejected(self):
        with pytest.raises(FilterError):
            HeatKernelFilter(alpha=-1.0)


class TestGaussian:
    def test_bump_centered_at_one_plus_beta(self):
        f = GaussianFilter(num_hops=20, alpha=2.0, beta=-0.5)  # centre 0.5
        response = f.response(LAMS)
        assert LAMS[np.argmax(response)] == pytest.approx(0.5, abs=0.1)

    def test_matches_product_closed_form(self):
        f = GaussianFilter(num_hops=30, alpha=1.0, beta=0.0)  # centre 1
        layers = f.num_layers
        expected = (1.0 - (1.0 - LAMS) ** 2 / layers) ** layers
        np.testing.assert_allclose(f.response(LAMS), expected, atol=1e-8)

    def test_approximates_gaussian(self):
        f = GaussianFilter(num_hops=60, alpha=1.0, beta=0.0)
        np.testing.assert_allclose(f.response(LAMS),
                                   np.exp(-((LAMS - 1.0) ** 2)), atol=0.02)

    def test_two_hops_per_layer(self, small_graph, signal):
        from repro.filters.base import PropagationContext

        f = GaussianFilter(num_hops=10, alpha=1.0)
        ctx = PropagationContext.for_graph(small_graph)
        f.forward(ctx, signal)
        assert ctx.hops == 2 * f.num_layers

    def test_validation(self):
        with pytest.raises(FilterError):
            GaussianFilter(alpha=-0.1)


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", [IdentityFilter, LinearFilter, ImpulseFilter,
                                     MonomialFilter, PPRFilter, HeatKernelFilter,
                                     GaussianFilter])
    def test_no_trainable_parameters(self, cls):
        assert cls().parameter_spec() == {}

    @pytest.mark.parametrize("cls", [MonomialFilter, PPRFilter, HeatKernelFilter])
    def test_precompute_single_channel(self, small_graph, signal, cls):
        channels = cls(num_hops=4).precompute(small_graph, signal)
        assert channels.shape == (small_graph.num_nodes, 1, signal.shape[1])

    def test_propagate_rejected_for_variable(self, small_graph, signal):
        from repro.filters import ChebyshevFilter

        with pytest.raises(FilterError):
            ChebyshevFilter().propagate(small_graph, signal)

    def test_negative_hops_rejected(self):
        with pytest.raises(FilterError):
            MonomialFilter(num_hops=-1)
