"""Dataset registry, synthesis fidelity, splits, and signal tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    DATASETS,
    SIGNAL_FUNCTIONS,
    SIGNAL_NAMES,
    SynthesisConfig,
    by_homophily,
    by_scale,
    edge_split,
    get_spec,
    make_regression_task,
    random_split,
    stratified_split,
    synthesize,
)
from repro.errors import DatasetError
from repro.graph import node_homophily


class TestRegistry:
    def test_twenty_two_datasets(self):
        assert len(DATASET_NAMES) == 22

    def test_scale_partition(self):
        assert len(by_scale("S")) == 11
        assert len(by_scale("M")) == 6
        assert len(by_scale("L")) == 5

    def test_homophily_partition_covers_all(self):
        assert len(by_homophily("homo")) + len(by_homophily("hetero")) == 22

    def test_known_stats(self):
        cora = get_spec("cora")
        assert cora.nodes == 2708
        assert cora.edges == 10556
        assert cora.num_classes == 7
        assert cora.metric == "accuracy"

    def test_roc_auc_datasets_binary(self):
        for spec in DATASETS.values():
            if spec.metric == "roc_auc":
                assert spec.is_binary

    def test_case_insensitive_lookup(self):
        assert get_spec("CORA").name == "cora"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_spec("imagenet")

    def test_average_degree(self):
        assert get_spec("wiki").average_degree > get_spec("cora").average_degree


class TestSynthesis:
    @pytest.mark.parametrize("name", ["cora", "roman", "penn94", "genius"])
    def test_homophily_within_tolerance(self, name):
        spec = get_spec(name)
        scale = {"S": 0.5, "M": 0.02, "L": 0.005}[spec.scale_class]
        graph = synthesize(name, scale=scale, seed=0)
        assert abs(node_homophily(graph) - spec.homophily) < 0.08

    def test_node_count_scales(self):
        spec = get_spec("pubmed")
        graph = synthesize("pubmed", scale=0.1, seed=0)
        assert abs(graph.num_nodes - spec.nodes * 0.1) < 2

    def test_feature_width_faithful(self):
        graph = synthesize("citeseer", scale=0.1, seed=0)
        assert graph.num_features == get_spec("citeseer").num_features

    def test_all_classes_present(self):
        graph = synthesize("roman", scale=0.05, seed=0)
        assert len(np.unique(graph.labels)) == graph.num_classes

    def test_deterministic(self):
        a = synthesize("cora", scale=0.1, seed=9)
        b = synthesize("cora", scale=0.1, seed=9)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.features, b.features)
        assert (a.adjacency != b.adjacency).nnz == 0

    def test_seed_changes_graph(self):
        a = synthesize("cora", scale=0.1, seed=1)
        b = synthesize("cora", scale=0.1, seed=2)
        assert (a.adjacency != b.adjacency).nnz > 0

    def test_minimum_floors(self):
        graph = synthesize("cora", scale=0.001, seed=0)
        assert graph.num_nodes >= 60

    def test_degree_tail_widens_distribution(self):
        flat = synthesize("cora", scale=0.3, seed=0,
                          config=SynthesisConfig(degree_tail=0.05))
        heavy = synthesize("cora", scale=0.3, seed=0,
                           config=SynthesisConfig(degree_tail=1.5))
        assert heavy.degrees.std() > flat.degrees.std()

    def test_feature_signal_controls_separability(self):
        weak = synthesize("cora", scale=0.2, seed=0,
                          config=SynthesisConfig(feature_signal=0.05))
        strong = synthesize("cora", scale=0.2, seed=0,
                            config=SynthesisConfig(feature_signal=3.0))

        def centroid_spread(graph):
            means = np.stack([
                graph.features[graph.labels == c].mean(axis=0)
                for c in range(graph.num_classes)])
            return np.linalg.norm(means - means.mean(axis=0), axis=1).mean()

        assert centroid_spread(strong) > centroid_spread(weak)


class TestSplits:
    def test_random_split_disjoint_and_complete(self):
        split = random_split(100, seed=0)
        assert split.num_nodes == 100
        combined = np.concatenate([split.train, split.valid, split.test])
        assert len(np.unique(combined)) == 100

    def test_default_fractions(self):
        split = random_split(1000, seed=0)
        assert len(split.train) == 600
        assert len(split.valid) == 200

    def test_fraction_validation(self):
        with pytest.raises(DatasetError):
            random_split(10, fractions=(0.5, 0.5, 0.5))
        with pytest.raises(DatasetError):
            stratified_split(np.zeros(10, dtype=int), fractions=(0.9, 0.2, -0.1))

    def test_split_seeded(self):
        a = random_split(50, seed=3)
        b = random_split(50, seed=3)
        np.testing.assert_array_equal(a.train, b.train)

    def test_stratified_balances_classes(self):
        labels = np.array([0] * 50 + [1] * 10)
        split = stratified_split(labels, seed=0)
        train_fraction_minor = (labels[split.train] == 1).sum() / 10
        assert train_fraction_minor == pytest.approx(0.6, abs=0.1)

    def test_stratified_less_variance_than_random(self):
        labels = np.array([0] * 90 + [1] * 10)
        random_counts, stratified_counts = [], []
        for seed in range(10):
            random_counts.append((labels[random_split(100, seed=seed).train] == 1).sum())
            stratified_counts.append(
                (labels[stratified_split(labels, seed=seed).train] == 1).sum())
        assert np.std(stratified_counts) <= np.std(random_counts)

    def test_split_overlap_detected(self):
        from repro.datasets import Split

        with pytest.raises(DatasetError):
            Split(train=np.array([0, 1]), valid=np.array([1]), test=np.array([2]))

    def test_edge_split(self):
        edges = np.arange(40).reshape(20, 2)
        train, valid, test = edge_split(edges, seed=0)
        assert len(train) == 16 and len(valid) == 2 and len(test) == 2
        combined = np.concatenate([train, valid, test])
        assert len(np.unique(combined, axis=0)) == 20


class TestSignals:
    def test_five_functions(self):
        assert len(SIGNAL_NAMES) == 5
        assert set(SIGNAL_NAMES) == {"band", "combine", "high", "low", "reject"}

    def test_function_shapes(self):
        lams = np.linspace(0, 2, 50)
        assert SIGNAL_FUNCTIONS["low"](lams)[0] == pytest.approx(1.0)
        assert SIGNAL_FUNCTIONS["low"](lams)[-1] == pytest.approx(0.0, abs=1e-8)
        assert SIGNAL_FUNCTIONS["high"](lams)[0] == pytest.approx(0.0)
        assert SIGNAL_FUNCTIONS["band"](np.array([1.0]))[0] == pytest.approx(1.0)
        assert SIGNAL_FUNCTIONS["reject"](np.array([1.0]))[0] == pytest.approx(0.0)

    def test_regression_task_exactness(self, small_graph):
        """Target must equal exact spectral filtering of the input."""
        from repro.spectral import laplacian_eigendecomposition

        task = make_regression_task(small_graph, "low", seed=0)
        eigenvalues, eigenvectors = laplacian_eigendecomposition(small_graph)
        response = SIGNAL_FUNCTIONS["low"](eigenvalues)
        expected = eigenvectors @ (response[:, None] *
                                   (eigenvectors.T @ task.input_signal))
        np.testing.assert_allclose(task.target_signal, expected, atol=1e-3)

    def test_unknown_signal(self, small_graph):
        with pytest.raises(DatasetError):
            make_regression_task(small_graph, "notch")

    def test_task_shapes(self, small_graph):
        task = make_regression_task(small_graph, "band", num_channels=3)
        assert task.input_signal.shape == (small_graph.num_nodes, 3)
        assert task.target_signal.shape == (small_graph.num_nodes, 3)
        assert task.eigenvalues.shape == (small_graph.num_nodes,)


class TestGraphIO:
    def test_round_trip(self, small_graph, tmp_path):
        from repro.datasets import load_graph, save_graph

        path = tmp_path / "graph.npz"
        save_graph(small_graph, path, metadata={"spec": "cora", "scale": 0.1})
        loaded, metadata = load_graph(path)
        assert metadata == {"spec": "cora", "scale": 0.1}
        assert loaded.name == small_graph.name
        assert (loaded.adjacency != small_graph.adjacency).nnz == 0
        np.testing.assert_array_equal(loaded.features, small_graph.features)
        np.testing.assert_array_equal(loaded.labels, small_graph.labels)

    def test_featureless_graph(self, tmp_path):
        from repro.datasets import load_graph, save_graph
        from repro.graph import Graph

        g = Graph.from_edges(4, np.array([[0, 1], [2, 3]]))
        path = tmp_path / "bare.npz"
        save_graph(g, path)
        loaded, metadata = load_graph(path)
        assert loaded.features is None
        assert loaded.labels is None
        assert metadata == {}

    def test_non_graph_file_rejected(self, tmp_path):
        from repro.datasets import load_graph

        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(DatasetError):
            load_graph(path)

    def test_loaded_graph_trains(self, small_graph, tmp_path):
        from repro.datasets import load_graph, save_graph
        from repro.tasks import run_node_classification
        from repro.training import TrainConfig

        path = tmp_path / "graph.npz"
        save_graph(small_graph, path)
        loaded, _ = load_graph(path)
        result = run_node_classification(
            loaded, "ppr", config=TrainConfig(epochs=5, patience=0))
        assert result.status == "ok"
