"""Graph container: construction, normalization, spectral properties."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import Graph


class TestConstruction:
    def test_from_edges_symmetrizes(self):
        g = Graph.from_edges(3, np.array([[0, 1], [1, 2]]))
        dense = g.adjacency.toarray()
        np.testing.assert_array_equal(dense, dense.T)
        assert g.num_edges == 4  # both directions counted

    def test_duplicate_edges_collapse(self):
        g = Graph.from_edges(2, np.array([[0, 1], [0, 1], [1, 0]]))
        assert g.num_edges == 2
        assert g.adjacency.max() == 1.0

    def test_self_loops_removed(self):
        adj = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        g = Graph(adj)
        assert g.adjacency.diagonal().sum() == 0.0

    def test_bad_edge_shape(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, np.array([0, 1, 2]))

    def test_out_of_range_edges(self):
        with pytest.raises(GraphError):
            Graph.from_edges(2, np.array([[0, 5]]))

    def test_nonsquare_rejected(self):
        with pytest.raises(GraphError):
            Graph(sp.csr_matrix(np.zeros((2, 3))))

    def test_feature_row_mismatch(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, np.array([[0, 1]]), features=np.zeros((2, 4)))

    def test_label_shape_mismatch(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, np.array([[0, 1]]), labels=np.zeros((2,)))

    def test_degrees(self, tiny_graph):
        degrees = tiny_graph.degrees
        assert degrees[0] == 2  # triangle corner
        assert degrees[2] == 3  # triangle + bridge
        assert degrees[7] == 1  # tail end

    def test_num_features_and_classes(self, tiny_graph):
        assert tiny_graph.num_features == 8
        assert tiny_graph.num_classes == 2

    def test_missing_features_raise(self):
        g = Graph.from_edges(2, np.array([[0, 1]]))
        with pytest.raises(GraphError):
            g.num_features
        with pytest.raises(GraphError):
            g.num_classes


class TestNormalization:
    def test_rho_one_columns_sum_to_one(self, tiny_graph):
        # Ã = D̄^0 Ā D̄^{-1}: column-stochastic.
        adj = tiny_graph.normalized_adjacency(rho=1.0)
        np.testing.assert_allclose(np.asarray(adj.sum(axis=0)).ravel(),
                                   np.ones(8), rtol=1e-5)

    def test_rho_zero_rows_sum_to_one(self, tiny_graph):
        # Ã = D̄^{-1} Ā D̄^0: row-stochastic (random walk).
        adj = tiny_graph.normalized_adjacency(rho=0.0)
        np.testing.assert_allclose(np.asarray(adj.sum(axis=1)).ravel(),
                                   np.ones(8), rtol=1e-5)

    def test_symmetric_at_half(self, tiny_graph):
        adj = tiny_graph.normalized_adjacency(rho=0.5).toarray()
        np.testing.assert_allclose(adj, adj.T, atol=1e-6)

    def test_laplacian_eigenvalues_in_range(self, tiny_graph):
        lap = tiny_graph.laplacian(rho=0.5).toarray()
        eigenvalues = np.linalg.eigvalsh((lap + lap.T) / 2)
        assert eigenvalues.min() >= -1e-5
        assert eigenvalues.max() <= 2.0 + 1e-5

    def test_smallest_eigenvalue_is_zero(self, tiny_graph):
        lap = tiny_graph.laplacian(rho=0.5).toarray()
        eigenvalues = np.linalg.eigvalsh((lap + lap.T) / 2)
        assert abs(eigenvalues[0]) < 1e-5

    def test_cache_returns_same_object(self, tiny_graph):
        a = tiny_graph.normalized_adjacency(0.5)
        b = tiny_graph.normalized_adjacency(0.5)
        assert a is b
        c = tiny_graph.normalized_adjacency(0.25)
        assert c is not a

    def test_invalid_rho(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.normalized_adjacency(rho=1.5)

    def test_no_self_loops_variant(self, tiny_graph):
        with_loops = tiny_graph.normalized_adjacency(0.5, self_loops=True)
        without = tiny_graph.normalized_adjacency(0.5, self_loops=False)
        assert with_loops.diagonal().sum() > 0
        assert without.diagonal().sum() == 0

    def test_isolated_node_handled(self):
        g = Graph.from_edges(3, np.array([[0, 1]]))
        adj = g.normalized_adjacency(0.5)
        assert np.all(np.isfinite(adj.toarray()))


class TestStructure:
    def test_subgraph_preserves_edges(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 6  # triangle, both directions
        np.testing.assert_array_equal(sub.labels, [0, 0, 0])

    def test_subgraph_severs_external_edges(self, tiny_graph):
        sub = tiny_graph.subgraph(np.array([2, 3]))
        assert sub.num_edges == 2  # only the bridge

    def test_edge_list_unique_upper(self, tiny_graph):
        edges = tiny_graph.edge_list()
        assert edges.shape == (9, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_memory_bytes_positive(self, tiny_graph):
        assert tiny_graph.memory_bytes() > 0

    def test_repr(self, tiny_graph):
        assert "tiny" in repr(tiny_graph)
