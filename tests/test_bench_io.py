"""Experiment persistence: JSON round trips including numpy payloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import load_metadata, load_rows, save_rows
from repro.errors import ReproError


class TestRoundTrip:
    def test_plain_rows(self, tmp_path):
        rows = [{"filter": "ppr", "mean": 0.86, "epochs": 50, "oom": False}]
        path = tmp_path / "rows.json"
        save_rows(rows, path, metadata={"experiment": "t"})
        loaded = load_rows(path)
        assert loaded == rows
        assert load_metadata(path) == {"experiment": "t"}

    def test_numpy_scalars(self, tmp_path):
        rows = [{"mean": np.float32(0.5), "count": np.int64(3)}]
        path = tmp_path / "rows.json"
        save_rows(rows, path)
        loaded = load_rows(path)
        assert loaded[0]["mean"] == pytest.approx(0.5)
        assert loaded[0]["count"] == 3

    def test_ndarray_payload(self, tmp_path):
        embedding = np.arange(6, dtype=np.float64).reshape(3, 2)
        path = tmp_path / "rows.json"
        save_rows([{"embedding": embedding}], path)
        loaded = load_rows(path)
        np.testing.assert_array_equal(loaded[0]["embedding"], embedding)
        assert loaded[0]["embedding"].dtype == np.float64

    def test_nested_structures(self, tmp_path):
        rows = [{"params": {"theta": np.ones(3)}, "trace": [1.0, 2.0]}]
        path = tmp_path / "rows.json"
        save_rows(rows, path)
        loaded = load_rows(path)
        np.testing.assert_array_equal(loaded[0]["params"]["theta"], np.ones(3))
        assert loaded[0]["trace"] == [1.0, 2.0]

    def test_unserializable_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            save_rows([{"bad": object()}], tmp_path / "x.json")

    def test_non_experiment_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ReproError):
            load_rows(path)

    def test_cli_output_flag(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "tax.json"
        assert main(["taxonomy", "--output", str(out)]) == 0
        assert len(load_rows(out)) == 27
        assert load_metadata(out)["experiment"] == "taxonomy"
