"""Example scripts: syntax, structure, and importability.

Full example runs take minutes; these tests verify every example compiles,
exposes a ``main()``, and documents itself — the cheap part of "runnable".
"""

from __future__ import annotations

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples():
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestEveryExample:
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"),
                           doraise=True)

    def test_has_main_and_guard(self, path):
        tree = ast.parse(path.read_text())
        functions = [node.name for node in ast.walk(tree)
                     if isinstance(node, ast.FunctionDef)]
        assert "main" in functions
        assert '__name__ == "__main__"' in path.read_text()

    def test_has_docstring_with_run_instructions(self, path):
        tree = ast.parse(path.read_text())
        docstring = ast.get_docstring(tree)
        assert docstring, f"{path.name} missing module docstring"
        assert "Run:" in docstring

    def test_only_public_repro_imports(self, path):
        """Examples should read like user code: repro + numpy only."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    assert root in ("numpy", "repro", "time"), alias.name
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                assert root in ("numpy", "repro", "__future__"), node.module
