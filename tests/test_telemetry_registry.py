"""Run registry + regression observatory tests.

Covers the durability contract of the append-only index (interleaved
writers, truncated tails), fingerprint identity, history queries, and the
declarative regression gate built on top.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ReproError
from repro.telemetry.registry import (
    FINGERPRINT_KEYS,
    REGISTRY_FILENAME,
    RunRegistry,
    build_record,
    config_fingerprint,
    default_registry_dir,
    metric_value,
    record_run,
)
from repro.telemetry.regression import (
    Threshold,
    default_thresholds,
    evaluate_pair,
    evaluate_registry,
    load_thresholds,
    passed,
    render_verdict_table,
    save_thresholds,
)

BASE_MANIFEST = {
    "schema": "repro.telemetry.manifest/v1",
    "experiment": "efficiency",
    "artifact": "table-3",
    "config": {"datasets": ["cora"], "filters": ["ppr"], "epochs": 2},
    "seed": 0,
    "datasets": ["cora"],
    "cache": True,
    "git_sha": "abc123",
    "platform": {"python": "3.11", "machine": "x86_64"},
}


def make_manifest(**overrides):
    manifest = json.loads(json.dumps(BASE_MANIFEST))
    manifest.update(overrides)
    return manifest


def make_record(timestamp, *, seconds=1.0, manifest=None, **stage_fields):
    stages = {"train": {"seconds": seconds, "self_seconds": seconds / 2,
                        "ram_delta_bytes": 0, **stage_fields}}
    return build_record(manifest or make_manifest(), stages=stages,
                        metrics={"counters": {"ops.eig.flops": 900.0}},
                        summary={"mean": 0.8}, timestamp=timestamp)


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_deterministic(self):
        assert config_fingerprint(make_manifest()) \
            == config_fingerprint(make_manifest())

    def test_config_change_alters_it(self):
        base = config_fingerprint(make_manifest())
        assert config_fingerprint(make_manifest(seed=1)) != base
        assert config_fingerprint(make_manifest(datasets=["pubmed"])) != base
        changed = make_manifest()
        changed["config"]["epochs"] = 50
        assert config_fingerprint(changed) != base

    def test_code_identity_does_not(self):
        """Same config on another commit/host keeps the fingerprint."""
        base = config_fingerprint(make_manifest())
        assert config_fingerprint(make_manifest(git_sha="fff999")) == base
        assert config_fingerprint(
            make_manifest(platform={"python": "3.12"})) == base
        assert "git_sha" not in FINGERPRINT_KEYS

    def test_env_var_controls_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "reg"))
        assert default_registry_dir() == tmp_path / "reg"
        assert default_registry_dir(tmp_path / "explicit") \
            == tmp_path / "explicit"


# ---------------------------------------------------------------------------
# append / load / queries
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_round_trip(self, tmp_path):
        registry = RunRegistry(tmp_path)
        record = registry.append(make_record(100.0, seconds=2.5))
        loaded = registry.load()
        assert len(loaded) == 1
        assert loaded[0].run_id == record.run_id
        assert loaded[0].stages["train"]["seconds"] == 2.5
        assert loaded[0].git_sha == "abc123"

    def test_latest_and_by_config(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.append(make_record(1.0))
        registry.append(make_record(2.0, manifest=make_manifest(seed=9)))
        registry.append(make_record(3.0))
        fp = config_fingerprint(make_manifest())
        assert len(registry.by_config(fp)) == 2
        assert registry.latest().timestamp == 3.0
        other = config_fingerprint(make_manifest(seed=9))
        assert registry.latest(other).timestamp == 2.0
        # Prefix match resolves too.
        assert len(registry.by_config(fp[:6])) == 2

    def test_history_series(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for ts, secs in [(1.0, 1.0), (2.0, 2.0), (3.0, 4.0)]:
            registry.append(make_record(ts, seconds=secs))
        series = registry.history("stages.train.seconds")
        assert series == [(1.0, 1.0), (2.0, 2.0), (3.0, 4.0)]
        # Dotted counter names resolve through the dotted-leaf fallback.
        flops = registry.history("metrics.counters.ops.eig.flops")
        assert [v for _, v in flops] == [900.0, 900.0, 900.0]

    def test_history_order_stable_under_identical_timestamps(self, tmp_path):
        """Append order is the tiebreak when wall clocks collide."""
        registry = RunRegistry(tmp_path)
        for secs in (1.0, 2.0, 3.0):
            registry.append(make_record(42.0, seconds=secs))
        series = registry.history("stages.train.seconds")
        assert [v for _, v in series] == [1.0, 2.0, 3.0]
        baseline, candidate = registry.resolve_pair(
            config_fingerprint(make_manifest()))
        assert baseline.stages["train"]["seconds"] == 2.0
        assert candidate.stages["train"]["seconds"] == 3.0

    def test_interleaved_writers(self, tmp_path):
        """Two writer instances appending concurrently shear no records."""
        writers = [RunRegistry(tmp_path), RunRegistry(tmp_path)]
        errors = []

        def spin(writer, offset):
            try:
                for i in range(25):
                    writer.append(make_record(float(offset + i)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=spin, args=(w, k * 1000))
                   for k, w in enumerate(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        reader = RunRegistry(tmp_path)
        records = reader.load()
        assert len(records) == 50
        assert reader.corrupt_lines == 0
        assert len({r.run_id for r in records}) == 50

    def test_truncated_last_line_tolerated_and_repaired(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.append(make_record(1.0))
        registry.append(make_record(2.0))
        # Simulate a writer that died mid-line.
        path = tmp_path / REGISTRY_FILENAME
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"config_fingerprint": "dead", "timest')
        assert len(registry.load()) == 2
        assert registry.corrupt_lines == 1
        # The next append repairs the tail: new record lands on its own
        # line instead of extending the broken one.
        registry.append(make_record(3.0))
        records = registry.load()
        assert [r.timestamp for r in records] == [1.0, 2.0, 3.0]
        assert registry.corrupt_lines == 1

    def test_resolve_pair_needs_two_runs(self, tmp_path):
        registry = RunRegistry(tmp_path)
        with pytest.raises(ReproError, match="need 2"):
            registry.resolve_pair("efficiency")
        registry.append(make_record(1.0))
        with pytest.raises(ReproError, match="1 run"):
            registry.resolve_pair(config_fingerprint(make_manifest()))

    def test_resolve_by_experiment_picks_newest_config(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.append(make_record(1.0))
        registry.append(make_record(2.0))
        registry.append(make_record(3.0, manifest=make_manifest(seed=9)))
        registry.append(make_record(4.0, manifest=make_manifest(seed=9)))
        matched = registry.resolve("efficiency")
        assert {r.config_fingerprint for r in matched} \
            == {config_fingerprint(make_manifest(seed=9))}

    def test_record_run_extracts_trace_events(self, tmp_path):
        events = [
            {"type": "span", "name": "train", "id": 1, "parent": None,
             "duration_s": 2.0, "alloc_bytes": 100},
            {"type": "metrics",
             "metrics": {"counters": {"ops.spmm.calls": 3}}},
        ]
        record = record_run(make_manifest(), events=events,
                            registry_dir=tmp_path)
        loaded = RunRegistry(tmp_path).load()
        assert loaded[0].run_id == record.run_id
        assert loaded[0].stages["train"]["seconds"] == 2.0
        assert loaded[0].metrics["counters"]["ops.spmm.calls"] == 3

    def test_metric_value_paths(self):
        record = make_record(1.0, seconds=3.0)
        assert metric_value(record, "stages.train.seconds") == 3.0
        assert metric_value(record, "metrics.counters.ops.eig.flops") == 900.0
        assert metric_value(record, "summary.mean") == 0.8
        assert metric_value(record, "stages.nope.seconds") is None
        assert metric_value(record, "no.such.path") is None


# ---------------------------------------------------------------------------
# schema v2: workers/pool annotations + pre-v2 backward compatibility
# ---------------------------------------------------------------------------

class TestSchemaV2:
    def test_workers_and_pool_round_trip(self, tmp_path):
        record = record_run(make_manifest(), registry_dir=tmp_path,
                            workers=4,
                            pool={"workers": 4, "cell_timeout": 600.0,
                                  "max_retries": 1, "retries": 0})
        loaded = RunRegistry(tmp_path).load()[0]
        assert loaded.run_id == record.run_id
        assert loaded.schema == "repro.telemetry.registry/v6"
        assert loaded.workers == 4
        assert loaded.pool["cell_timeout"] == 600.0

    def test_workers_outside_config_fingerprint(self, tmp_path):
        """Execution strategy must not fork a run's registry lineage."""
        registry = RunRegistry(tmp_path)
        serial = registry.append(build_record(make_manifest(), timestamp=1.0,
                                              workers=1))
        pooled = registry.append(build_record(make_manifest(), timestamp=2.0,
                                              workers=8, pool={"workers": 8}))
        assert serial.config_fingerprint == pooled.config_fingerprint
        baseline, candidate = registry.resolve_pair(
            serial.config_fingerprint)
        assert (baseline.workers, candidate.workers) == (1, 8)

    def test_v1_line_loads_with_serial_defaults(self, tmp_path):
        """A registry written before PR 4 still loads (and gates)."""
        registry = RunRegistry(tmp_path)
        registry.append(make_record(2.0))
        v1 = make_record(1.0).to_dict()
        v1["schema"] = "repro.telemetry.registry/v1"
        del v1["workers"]
        del v1["pool"]
        with (tmp_path / REGISTRY_FILENAME).open("a") as handle:
            handle.write(json.dumps(v1) + "\n")

        records = registry.load()
        assert len(records) == 2
        assert registry.corrupt_lines == 0
        old = next(r for r in records if r.schema.endswith("/v1"))
        assert old.workers == 1
        assert old.pool == {}
        # Mixed-generation lineage still resolves and gates as one config:
        # the v1 line is the baseline, the v2 append the candidate.
        baseline, candidate = registry.resolve_pair(old.config_fingerprint)
        assert baseline.schema.endswith("/v1")
        assert candidate.schema.endswith("/v6")
        assert passed(evaluate_pair(baseline, candidate, default_thresholds()))


class TestSchemaV3:
    def test_live_artifact_pointers_round_trip(self, tmp_path):
        record = record_run(make_manifest(), registry_dir=tmp_path,
                            workers=2, live_path="out/live.jsonl",
                            chrome_trace_path="out/live.trace.json")
        loaded = RunRegistry(tmp_path).load()[0]
        assert loaded.run_id == record.run_id
        assert loaded.live_path == "out/live.jsonl"
        assert loaded.chrome_trace_path == "out/live.trace.json"

    def test_unmonitored_run_has_no_pointers(self, tmp_path):
        record_run(make_manifest(), registry_dir=tmp_path)
        loaded = RunRegistry(tmp_path).load()[0]
        assert loaded.live_path is None
        assert loaded.chrome_trace_path is None

    def test_v2_line_loads_with_none_pointers(self, tmp_path):
        """A registry written before PR 6 still loads cleanly."""
        registry = RunRegistry(tmp_path)
        v2 = make_record(1.0).to_dict()
        v2["schema"] = "repro.telemetry.registry/v2"
        del v2["live_path"]
        del v2["chrome_trace_path"]
        with (tmp_path / REGISTRY_FILENAME).open("a") as handle:
            handle.write(json.dumps(v2) + "\n")
        (loaded,) = registry.load()
        assert registry.corrupt_lines == 0
        assert loaded.live_path is None
        assert loaded.chrome_trace_path is None


# ---------------------------------------------------------------------------
# schema v4: resumable-sweep artifact accounting + v3 compatibility
# ---------------------------------------------------------------------------

class TestSchemaV4:
    def test_artifacts_block_round_trips(self, tmp_path):
        record = record_run(make_manifest(), registry_dir=tmp_path,
                            workers=2,
                            artifacts={"mode": "resume", "dir": "store",
                                       "hit": 3, "miss": 1, "stored": 1})
        loaded = RunRegistry(tmp_path).load()[0]
        assert loaded.run_id == record.run_id
        assert loaded.schema == "repro.telemetry.registry/v6"
        assert loaded.artifacts["mode"] == "resume"
        assert loaded.artifacts["hit"] == 3

    def test_artifacts_outside_config_fingerprint(self, tmp_path):
        fresh = record_run(make_manifest(), registry_dir=tmp_path,
                           artifacts={"mode": "fresh", "hit": 0})
        resumed = record_run(make_manifest(), registry_dir=tmp_path,
                             artifacts={"mode": "resume", "hit": 4})
        assert fresh.config_fingerprint == resumed.config_fingerprint, \
            "serving cells from the store must not change what was measured"

    def test_storeless_run_has_empty_block(self, tmp_path):
        record_run(make_manifest(), registry_dir=tmp_path)
        assert RunRegistry(tmp_path).load()[0].artifacts == {}

    def test_v3_line_loads_with_empty_artifacts(self, tmp_path):
        """A registry written before PR 7 still loads cleanly."""
        registry = RunRegistry(tmp_path)
        v3 = make_record(1.0).to_dict()
        v3["schema"] = "repro.telemetry.registry/v3"
        del v3["artifacts"]
        with (tmp_path / REGISTRY_FILENAME).open("a") as handle:
            handle.write(json.dumps(v3) + "\n")
        (loaded,) = registry.load()
        assert registry.corrupt_lines == 0
        assert loaded.artifacts == {}
        assert loaded.schema.endswith("/v3")


# ---------------------------------------------------------------------------
# regression gate
# ---------------------------------------------------------------------------

class TestRegression:
    def test_unmodified_pair_passes(self):
        base, cand = make_record(1.0, seconds=1.0), make_record(2.0, seconds=1.1)
        verdicts = evaluate_pair(base, cand, default_thresholds())
        assert passed(verdicts)
        assert any(v.status == "pass" for v in verdicts)

    def test_double_slowdown_fails(self):
        base, cand = make_record(1.0, seconds=1.0), make_record(2.0, seconds=2.0)
        verdicts = evaluate_pair(base, cand, default_thresholds())
        assert not passed(verdicts)
        failed = [v for v in verdicts if v.failed]
        assert [v.metric for v in failed] == ["stages.train.seconds"]
        assert "+100%" in failed[0].reason

    def test_ignore_below_skips_noise(self):
        base = make_record(1.0, seconds=0.001)
        cand = make_record(2.0, seconds=0.005)  # 5x, but microscopic
        verdicts = evaluate_pair(base, cand, default_thresholds())
        assert passed(verdicts)
        seconds = [v for v in verdicts if v.metric == "stages.train.seconds"]
        assert seconds[0].status == "skip"
        assert "noise floor" in seconds[0].reason

    def test_min_value_floor(self):
        base, cand = make_record(1.0), make_record(2.0)
        floor = [Threshold("summary.mean", min_value=0.9)]
        verdicts = evaluate_pair(base, cand, floor)
        assert not passed(verdicts)
        assert "floor" in verdicts[0].reason
        assert passed(evaluate_pair(
            base, cand, [Threshold("summary.mean", min_value=0.5)]))

    def test_absent_metric_skips(self):
        base, cand = make_record(1.0), make_record(2.0)
        verdicts = evaluate_pair(
            base, cand, [Threshold("stages.ghost.seconds",
                                   max_rel_increase=0.1)])
        assert verdicts[0].status == "skip"
        assert passed(verdicts)

    def test_wildcard_expands_over_both_records(self):
        base = make_record(1.0)
        cand = make_record(2.0)
        cand.stages["eval"] = {"seconds": 9.0}
        verdicts = evaluate_pair(
            base, cand, [Threshold("stages.*.seconds", max_rel_increase=0.75)])
        assert {v.metric for v in verdicts} \
            == {"stages.train.seconds", "stages.eval.seconds"}

    def test_evaluate_registry_gates_latest_pair(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.append(make_record(1.0, seconds=1.0))
        registry.append(make_record(2.0, seconds=5.0))
        verdicts, baseline, candidate = evaluate_registry(
            config_fingerprint(make_manifest()), registry_dir=tmp_path)
        assert baseline.timestamp == 1.0 and candidate.timestamp == 2.0
        assert not passed(verdicts)

    def test_verdict_table_renders_failures_first(self):
        base, cand = make_record(1.0, seconds=1.0), make_record(2.0, seconds=9.0)
        text = render_verdict_table(evaluate_pair(base, cand))
        assert "FAILURE(S)" in text
        lines = text.splitlines()
        assert lines[2].startswith("FAIL")
        clean = render_verdict_table(
            evaluate_pair(base, make_record(3.0, seconds=1.0)))
        assert "all clear" in clean

    def test_thresholds_json_round_trip(self, tmp_path):
        thresholds = default_thresholds() + [
            Threshold("summary.mean", min_value=0.6),
            Threshold("stages.train.seconds", max_abs_increase=0.5,
                      ignore_below=0.01),
        ]
        path = save_thresholds(thresholds, tmp_path / "gates" / "pin.json")
        assert load_thresholds(path) == thresholds
