"""Spectral utilities: decomposition, response analysis, t-SNE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, ReproError
from repro.filters import make_filter
from repro.spectral import (
    MAX_DENSE_NODES,
    clear_eig_cache,
    cluster_separation,
    eig_cache_stats,
    extremal_eigenvalues,
    laplacian_eigendecomposition,
    low_frequency_mass,
    response_alignment,
    response_on_grid,
    response_on_spectrum,
    spectral_density,
    tsne,
)


class TestDecomposition:
    def test_eigenvalues_sorted_and_bounded(self, small_graph):
        eigenvalues, _ = laplacian_eigendecomposition(small_graph)
        assert np.all(np.diff(eigenvalues) >= -1e-9)
        assert eigenvalues[0] == pytest.approx(0.0, abs=1e-5)
        assert eigenvalues[-1] <= 2.0 + 1e-6

    def test_eigenvectors_orthonormal(self, small_graph):
        _, eigenvectors = laplacian_eigendecomposition(small_graph)
        gram = eigenvectors.T @ eigenvectors
        np.testing.assert_allclose(gram, np.eye(small_graph.num_nodes), atol=1e-8)

    def test_reconstruction(self, tiny_graph):
        eigenvalues, eigenvectors = laplacian_eigendecomposition(tiny_graph)
        reconstructed = eigenvectors @ np.diag(eigenvalues) @ eigenvectors.T
        lap = tiny_graph.laplacian(0.5).toarray()
        np.testing.assert_allclose(reconstructed, (lap + lap.T) / 2, atol=1e-5)

    def test_large_graph_guardrail(self):
        from repro.graph import Graph
        import scipy.sparse as sp

        n = MAX_DENSE_NODES + 1
        g = Graph(sp.identity(n, format="csr") * 0)
        with pytest.raises(GraphError):
            laplacian_eigendecomposition(g)

    def test_extremal_matches_dense(self, small_graph):
        eigenvalues, _ = laplacian_eigendecomposition(small_graph)
        small, large = extremal_eigenvalues(small_graph, k=2)
        np.testing.assert_allclose(small, eigenvalues[:2], atol=1e-4)
        np.testing.assert_allclose(large, eigenvalues[-2:], atol=1e-4)

    def test_spectral_density_normalized(self, small_graph):
        density = spectral_density(small_graph, bins=10)
        assert density.shape == (10,)
        assert density.sum() == pytest.approx(1.0)


class TestEigObservability:
    """The decomposition path is instrumented: op counters + memoization."""

    @pytest.fixture(autouse=True)
    def _fresh(self):
        from repro import telemetry

        telemetry.shutdown()
        clear_eig_cache()
        yield
        telemetry.shutdown()
        clear_eig_cache()

    def test_dense_eig_flops_counted(self, tiny_graph):
        from repro import telemetry
        from repro.spectral.decomposition import DENSE_EIG_FLOPS_PER_N3

        telemetry.configure()
        eigenvalues, eigenvectors = laplacian_eigendecomposition(tiny_graph)
        metrics = telemetry.get_metrics()
        n = tiny_graph.num_nodes
        assert metrics.counter("ops.eig.calls").value == 1
        assert metrics.counter("ops.eig.flops").value \
            == DENSE_EIG_FLOPS_PER_N3 * n ** 3
        assert metrics.counter("ops.eig.bytes").value \
            == eigenvalues.nbytes + eigenvectors.nbytes

    def test_extremal_eig_flops_counted(self, small_graph):
        from repro import telemetry

        telemetry.configure()
        extremal_eigenvalues(small_graph, k=2)
        metrics = telemetry.get_metrics()
        assert metrics.counter("ops.eig.calls").value == 1
        assert metrics.counter("ops.eig.flops").value > 0

    def test_memoized_second_call_skips_solve(self, tiny_graph):
        from repro import telemetry

        telemetry.configure()
        first = laplacian_eigendecomposition(tiny_graph)
        second = laplacian_eigendecomposition(tiny_graph)
        metrics = telemetry.get_metrics()
        # One actual O(n^3) solve; the second call is a cache hit.
        assert metrics.counter("ops.eig.calls").value == 1
        assert metrics.counter("cache.eig.hit").value == 1
        assert metrics.counter("cache.eig.miss").value == 1
        assert first[0] is second[0] and first[1] is second[1]
        stats = eig_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cached_arrays_are_read_only(self, tiny_graph):
        eigenvalues, eigenvectors = laplacian_eigendecomposition(tiny_graph)
        with pytest.raises(ValueError):
            eigenvalues[0] = 99.0
        with pytest.raises(ValueError):
            eigenvectors[0, 0] = 99.0

    def test_distinct_rho_distinct_entries(self, tiny_graph):
        laplacian_eigendecomposition(tiny_graph, rho=0.5)
        laplacian_eigendecomposition(tiny_graph, rho=1.0)
        assert eig_cache_stats()["misses"] == 2
        assert eig_cache_stats()["entries"] == 2

    def test_mutation_invalidates(self, tiny_graph):
        from repro import telemetry

        telemetry.configure()
        laplacian_eigendecomposition(tiny_graph)
        tiny_graph.adjacency.data[0] += 1.0  # mutate in place
        laplacian_eigendecomposition(tiny_graph)
        metrics = telemetry.get_metrics()
        assert metrics.counter("ops.eig.calls").value == 2
        assert metrics.counter("cache.eig.hit").value == 0

    def test_disabled_caches_bypass_memo(self, tiny_graph):
        from repro import telemetry
        from repro.runtime.cache import caches_disabled

        telemetry.configure()
        with caches_disabled():
            first = laplacian_eigendecomposition(tiny_graph)
            second = laplacian_eigendecomposition(tiny_graph)
        metrics = telemetry.get_metrics()
        assert metrics.counter("ops.eig.calls").value == 2
        assert first[0] is not second[0]
        # Seed behaviour restored: the caller may mutate its result.
        assert first[0].flags.writeable and first[1].flags.writeable


class TestResponseAnalysis:
    def test_grid_shape(self):
        lams, response = response_on_grid(make_filter("ppr"), num_points=31)
        assert lams.shape == response.shape == (31,)

    def test_on_spectrum(self, small_graph):
        lams, response = response_on_spectrum(make_filter("linear"), small_graph)
        np.testing.assert_allclose(response, 2.0 - lams, atol=1e-8)

    def test_low_frequency_mass_orders_filters(self):
        low_pass = low_frequency_mass(make_filter("hk", alpha=2.0))
        from repro.filters.bank import LaplacianMonomialFilter

        high_pass = low_frequency_mass(LaplacianMonomialFilter(num_hops=10))
        assert low_pass > 0.8
        assert high_pass < 0.4

    def test_alignment_prefers_matching_filter(self, small_graph):
        """A smooth signal aligns better with a low-pass filter."""
        eigenvalues, eigenvectors = laplacian_eigendecomposition(small_graph)
        smooth = eigenvectors[:, :5] @ np.ones(5)  # low-frequency signal
        low = response_alignment(make_filter("hk", alpha=2.0), small_graph, smooth)
        from repro.filters.bank import LaplacianMonomialFilter

        high = response_alignment(LaplacianMonomialFilter(num_hops=10),
                                  small_graph, smooth)
        assert low > high


class TestTsne:
    def test_separates_gaussian_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(size=(40, 10)) + 8.0
        blob_b = rng.normal(size=(40, 10)) - 8.0
        points = np.concatenate([blob_a, blob_b])
        labels = np.array([0] * 40 + [1] * 40)
        embedding = tsne(points, perplexity=15, num_iterations=150, seed=0)
        assert embedding.shape == (80, 2)
        assert cluster_separation(embedding, labels) > 2.0

    def test_deterministic(self, rng):
        points = rng.normal(size=(30, 5))
        a = tsne(points, perplexity=10, num_iterations=50, seed=1)
        b = tsne(points, perplexity=10, num_iterations=50, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_input_validation(self):
        with pytest.raises(ReproError):
            tsne(np.zeros(10))
        with pytest.raises(ReproError):
            tsne(np.zeros((5, 2)), perplexity=10)

    def test_centered_output(self, rng):
        embedding = tsne(rng.normal(size=(40, 4)), perplexity=10,
                         num_iterations=60)
        np.testing.assert_allclose(embedding.mean(axis=0), [0, 0], atol=1e-8)

    def test_cluster_separation_validation(self):
        with pytest.raises(ReproError):
            cluster_separation(np.zeros((4, 2)), np.zeros(4, dtype=int))
