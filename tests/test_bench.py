"""Bench harness: experiment runners produce well-formed paper rows."""

from __future__ import annotations

import numpy as np

from repro.bench import (
    DEFAULT_SCALES,
    REPRESENTATIVE_FILTERS,
    dataset_scale,
    effectiveness_experiment,
    efficiency_experiment,
    format_memory,
    format_score_cell,
    format_seconds,
    linkpred_experiment,
    load_dataset,
    pivot,
    regression_experiment,
    render_table,
    taxonomy_experiment,
)
from repro.datasets import get_spec
from repro.training import TrainConfig

TINY = TrainConfig(epochs=2, patience=0, eval_every=5)


class TestFormatting:
    def test_score_cell(self):
        assert format_score_cell(0.8658, 0.0196) == "86.58±1.96"
        assert format_score_cell(0.5, 0.0, percent=False) == "0.50±0.00"

    def test_memory(self):
        assert format_memory(2 * 1024 ** 3) == "2.00GB"

    def test_seconds(self):
        assert format_seconds(1.5) == "1.50s"
        assert format_seconds(0.0123) == "12.3ms"

    def test_render_table_aligns(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert len({len(line) for line in lines[1:]}) == 1

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_pivot(self):
        rows = [
            {"filter": "ppr", "dataset": "cora", "cell": "1"},
            {"filter": "ppr", "dataset": "roman", "cell": "2"},
            {"filter": "hk", "dataset": "cora", "cell": "3"},
        ]
        wide = pivot(rows, index="filter", column="dataset", value="cell")
        assert wide[0] == {"filter": "ppr", "cora": "1", "roman": "2"}
        assert wide[1]["cora"] == "3"


class TestScaling:
    def test_default_scales_ordered(self):
        assert DEFAULT_SCALES["S"] > DEFAULT_SCALES["M"] > DEFAULT_SCALES["L"]

    def test_dataset_scale_override(self):
        spec = get_spec("cora")
        assert dataset_scale(spec) == DEFAULT_SCALES["S"]
        assert dataset_scale(spec, 0.7) == 0.7

    def test_scaled_sizes_preserve_ordering(self):
        small = load_dataset("cora")
        medium = load_dataset("arxiv")
        large = load_dataset("pokec")
        assert small.num_nodes < medium.num_nodes < large.num_nodes


class TestExperiments:
    def test_taxonomy_has_all_filters(self):
        rows = taxonomy_experiment(num_hops=4)
        assert len(rows) == 27
        quadratic = [r for r in rows if r["quadratic_hops"]]
        names = {r["filter"] for r in quadratic}
        assert "Bernstein" in names

    def test_representative_filters_valid(self):
        from repro.filters import FILTER_NAMES

        assert set(REPRESENTATIVE_FILTERS) <= set(FILTER_NAMES)
        # At least one of each category.
        from repro.filters import REGISTRY

        categories = {REGISTRY[n].category for n in REPRESENTATIVE_FILTERS}
        assert categories == {"fixed", "variable", "bank"}

    def test_efficiency_rows(self):
        rows = efficiency_experiment(
            dataset_names=("cora",), filters=("ppr", "chebyshev"),
            schemes=("full_batch", "mini_batch"), config=TINY)
        assert len(rows) == 4
        for row in rows:
            assert row["status"] == "ok"
            assert row["train_s_per_epoch"] > 0
        mb_rows = [r for r in rows if r["scheme"] == "mini_batch"]
        assert all(r["precompute_s"] > 0 for r in mb_rows)

    def test_efficiency_oom_rows(self):
        rows = efficiency_experiment(
            dataset_names=("cora",), filters=("ppr",),
            schemes=("full_batch",), config=TINY,
            device_capacity_gib=1e-6)
        assert rows[0]["status"] == "oom"

    def test_effectiveness_cells(self):
        rows = effectiveness_experiment(
            dataset_names=("cora",), filters=("identity", "monomial"),
            seeds=(0,), config=TrainConfig(epochs=15, patience=0))
        assert len(rows) == 2
        for row in rows:
            assert "±" in row["cell"]
            assert 0 <= row["mean"] <= 1

    def test_regression_rows_have_all_signals(self):
        rows = regression_experiment(filters=("ppr", "chebyshev"),
                                     scale=0.05, epochs=20, num_hops=4)
        for row in rows:
            for signal in ("band", "combine", "high", "low", "reject"):
                assert signal in row

    def test_linkpred_rows(self):
        rows = linkpred_experiment(filters=("identity",), scale=0.0004,
                                   config=TrainConfig(epochs=2,
                                                      metric="roc_auc"))
        assert rows[0]["status"] == "ok"
        assert 0 <= rows[0]["auc"] <= 1
