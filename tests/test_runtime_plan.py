"""The basis-term planner must be *invisible* — and must actually share.

`repro.runtime.plan` serves recurrence chains from a bounded term store
so a sweep computes each distinct ``T^(k)(L̃)·X`` once. These tests prove
its contracts:

1. **Bit-identity** (hypothesis property tests): planned and unplanned
   propagation produce byte-for-byte identical outputs across the filter
   taxonomy — mini-batch numpy precompute (where the planner engages,
   including the all-hits second pass) and full-batch autodiff forward
   (where it must stay out of the way).
2. **Invalidation**: an in-place graph mutation or a different / mutated
   signal never serves a stale chain.
3. **Boundedness**: the chain store is a bounded LRU; evicted chains
   report their dropped terms on ``plan.terms.evict``.
4. **Sharing**: monomial-family filters reuse one adjacency chain — the
   second filter's chain terms cost zero spmm calls.
5. **Bypass**: ``--no-plan`` / ``--no-cache`` semantics and scope rules
   (no scope → stream; nested scopes reuse; ``fresh=True`` isolates).
"""

from __future__ import annotations

import gc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.autodiff import Tensor
from repro.filters.base import PropagationContext
from repro.filters.registry import FILTER_NAMES, make_filter
from repro.graph import Graph
from repro.runtime import cache, plan


@pytest.fixture(autouse=True)
def _clean_plan_state():
    """Isolate tests from each other's global planner/cache switches."""
    plan.set_enabled(True)
    cache.set_enabled(True)
    yield
    plan.set_enabled(True)
    cache.set_enabled(True)


def _random_graph(n: int, seed: int, num_features: int = 3) -> Graph:
    rng = np.random.default_rng(seed)
    num_edges = max(2 * n, 1)
    edges = np.stack([rng.integers(0, n, size=num_edges),
                      rng.integers(0, n, size=num_edges)], axis=1)
    edges = edges[edges[:, 0] != edges[:, 1]]
    if len(edges) == 0:
        edges = np.array([[0, n - 1]]) if n > 1 else np.zeros((0, 2), int)
    features = rng.normal(size=(n, num_features)).astype(np.float32)
    return Graph.from_edges(n, edges, features=features, name=f"rand{seed}")


def _filter_for(name: str, num_hops: int, num_features: int):
    return make_filter(name, num_hops=num_hops, num_features=num_features)


#: Filters whose basis chains route through the planner, spanning every
#: chain family (monomial adj/lap, three-term recurrences, horner,
#: shifted-monomial, gaussian) and all three taxonomy categories.
PLANNED_FILTERS = (
    "linear", "impulse", "monomial", "ppr", "hk", "gaussian",   # fixed
    "linear_var", "monomial_var", "horner", "chebyshev",        # variable
    "chebinterp", "clenshaw", "bernstein", "legendre", "jacobi",
    "favard",
    "fbgnn2", "acmgnn1", "fagnn", "g2cn", "gnnlfhf", "figure",  # banks
    "adagnn",
)


# ----------------------------------------------------------------------
# 1. bit-identity across the taxonomy
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_mb_precompute_bit_identical(self, name):
        """Planned == unplanned == all-hits repeat, for all 27 filters."""
        graph = _random_graph(24, seed=3)
        x = np.asarray(graph.features, dtype=np.float32)
        filter_ = _filter_for(name, num_hops=6, num_features=x.shape[1])
        unplanned = filter_.precompute(graph, x, rho=0.5)
        with plan.plan_scope():
            planned = filter_.precompute(graph, x, rho=0.5)
            repeat = filter_.precompute(graph, x, rho=0.5)
        assert unplanned.tobytes() == planned.tobytes()
        assert unplanned.tobytes() == repeat.tobytes()

    @given(seed=st.integers(0, 50), num_hops=st.integers(0, 8),
           rho=st.sampled_from([0.0, 0.25, 0.5, 1.0]))
    @settings(max_examples=25, deadline=None)
    def test_planned_chains_bit_identical_property(self, seed, num_hops, rho):
        """Random graph/order/ρ: every planned family == streamed."""
        graph = _random_graph(12 + seed % 9, seed=seed)
        x = np.asarray(graph.features, dtype=np.float32)
        for name in ("monomial", "gaussian", "horner", "chebyshev",
                     "clenshaw", "legendre", "jacobi", "fagnn", "fbgnn2"):
            filter_ = _filter_for(name, num_hops=num_hops,
                                  num_features=x.shape[1])
            unplanned = filter_.precompute(graph, x, rho=rho)
            with plan.plan_scope():
                planned = filter_.precompute(graph, x, rho=rho)
            assert unplanned.tobytes() == planned.tobytes(), name

    @pytest.mark.parametrize("name", PLANNED_FILTERS)
    def test_fb_autodiff_forward_unaffected(self, name):
        """Tensor signals stream: forward (and grads) identical in-scope."""
        graph = _random_graph(16, seed=7)
        x_data = np.asarray(graph.features, dtype=np.float32)
        filter_ = _filter_for(name, num_hops=4, num_features=x_data.shape[1])
        params = {p: Tensor(s.init.copy(), requires_grad=True)
                  for p, s in filter_.parameter_spec().items()}

        def run_once():
            ctx = PropagationContext.for_graph(graph, 0.5)
            x = Tensor(x_data.copy(), requires_grad=True)
            out = filter_.forward(ctx, x, params or None)
            out.sum().backward()
            grad = x.grad.copy() if x.grad is not None else None
            for p in params.values():
                p.grad = None
            return np.asarray(out.data), grad

        out_plain, grad_plain = run_once()
        with plan.plan_scope() as planner:
            out_planned, grad_planned = run_once()
            assert planner.terms_computed == 0, \
                "planner must not capture autodiff signals"
        assert out_plain.tobytes() == out_planned.tobytes()
        if grad_plain is not None:
            assert grad_plain.tobytes() == grad_planned.tobytes()

    def test_spectral_context_streams(self):
        """Response grids never enter the term store."""
        lams = np.linspace(0.0, 2.0, 33)
        filter_ = _filter_for("chebyshev", num_hops=5, num_features=3)
        plain = filter_.response(lams)
        with plan.plan_scope() as planner:
            planned = filter_.response(lams)
            assert planner.terms_computed == 0
        assert plain.tobytes() == planned.tobytes()


# ----------------------------------------------------------------------
# 2. invalidation
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_matrix_mutation_invalidates_chain(self):
        graph = _random_graph(20, seed=11)
        x = np.asarray(graph.features, dtype=np.float32)
        matrix = graph.normalized_adjacency(0.5)
        ctx = PropagationContext(matrix)
        with plan.plan_scope() as planner:
            before = [t.copy() for t in
                      planner.chain_terms(ctx, x, "monomial_adj", (), 4)]
            matrix.data *= 2.0  # in-place mutation, same object identity
            after = planner.chain_terms(ctx, x, "monomial_adj", (), 4)
            # Chain was recomputed against the mutated operator.
            assert after[1].tobytes() != before[1].tobytes()
            expected = matrix @ x
            assert after[1].tobytes() == np.asarray(expected).tobytes()

    def test_different_signal_gets_its_own_chain(self):
        graph = _random_graph(20, seed=12)
        matrix = graph.normalized_adjacency(0.5)
        ctx = PropagationContext(matrix)
        x1 = np.asarray(graph.features, dtype=np.float32)
        x2 = x1 + 1.0
        with plan.plan_scope() as planner:
            t1 = planner.chain_terms(ctx, x1, "monomial_adj", (), 3)
            t2 = planner.chain_terms(ctx, x2, "monomial_adj", (), 3)
            assert planner.stats()["chains"] == 2
            assert t1[1].tobytes() != t2[1].tobytes()
            assert t2[1].tobytes() == np.asarray(matrix @ x2).tobytes()

    def test_signal_mutation_invalidates_chain(self):
        graph = _random_graph(20, seed=13)
        matrix = graph.normalized_adjacency(0.5)
        ctx = PropagationContext(matrix)
        x = np.asarray(graph.features, dtype=np.float32).copy()
        with plan.plan_scope() as planner:
            planner.chain_terms(ctx, x, "monomial_adj", (), 3)
            x += 1.0  # same object identity, new payload
            terms = planner.chain_terms(ctx, x, "monomial_adj", (), 3)
            assert terms[1].tobytes() == np.asarray(matrix @ x).tobytes()

    def test_dead_matrix_purges_chain(self):
        graph = _random_graph(18, seed=14)
        x = np.asarray(graph.features, dtype=np.float32)
        with plan.plan_scope() as planner:
            matrix = graph.normalized_adjacency(0.5).copy()
            ctx = PropagationContext(matrix)
            planner.chain_terms(ctx, x, "monomial_adj", (), 3)
            assert planner.stats()["chains"] == 1
            del ctx, matrix
            gc.collect()
            assert planner.stats()["chains"] == 0


# ----------------------------------------------------------------------
# 3. LRU bound + eviction accounting
# ----------------------------------------------------------------------
class TestBoundedStore:
    def test_chain_capacity_bound_and_evict_counter(self):
        graph = _random_graph(16, seed=21)
        matrix = graph.normalized_adjacency(0.5)
        ctx = PropagationContext(matrix)
        x = np.asarray(graph.features, dtype=np.float32)
        telemetry.configure()
        try:
            with plan.plan_scope(capacity=2) as planner:
                # Three distinct chains through a capacity-2 store.
                planner.chain_terms(ctx, x, "monomial_adj", (), 4)
                planner.chain_terms(ctx, x, "monomial_lap", (), 4)
                planner.chain_terms(ctx, x, "chebyshev", (), 4)
                assert planner.stats()["chains"] == 2
                # The evicted monomial_adj chain held 3 order-k terms.
                counters = telemetry.get_metrics().snapshot()["counters"]
                assert counters["plan.chains.evict"] == 1
                assert counters["plan.terms.evict"] == 3
                # Re-requesting the evicted chain recomputes, bit-identical.
                terms = planner.chain_terms(ctx, x, "monomial_adj", (), 4)
                assert terms[1].tobytes() == \
                    np.asarray(matrix @ x).tobytes()
        finally:
            telemetry.shutdown()

    def test_served_terms_are_read_only(self):
        graph = _random_graph(16, seed=22)
        ctx = PropagationContext(graph.normalized_adjacency(0.5))
        x = np.asarray(graph.features, dtype=np.float32)
        with plan.plan_scope() as planner:
            terms = planner.chain_terms(ctx, x, "monomial_adj", (), 3)
            assert terms[0] is x  # the signal itself, flags untouched
            for term in terms[1:]:
                with pytest.raises(ValueError):
                    term += 1.0


# ----------------------------------------------------------------------
# 4. sharing: the point of the whole module
# ----------------------------------------------------------------------
class TestSharing:
    def test_monomial_filters_share_one_chain(self):
        graph = _random_graph(20, seed=31)
        x = np.asarray(graph.features, dtype=np.float32)
        telemetry.configure()
        try:
            with plan.plan_scope() as planner:
                _filter_for("ppr", 6, x.shape[1]).precompute(graph, x)
                after_first = telemetry.get_metrics() \
                    .snapshot()["counters"].get("ops.spmm.calls", 0)
                _filter_for("monomial", 6, x.shape[1]).precompute(graph, x)
                _filter_for("impulse", 6, x.shape[1]).precompute(graph, x)
                after_all = telemetry.get_metrics() \
                    .snapshot()["counters"]
            assert after_first == 6
            # monomial + impulse rode the ppr chain: zero extra spmm.
            assert after_all["ops.spmm.calls"] == after_first
            assert after_all["plan.terms.hit"] == 12
            assert after_all["plan.spmm_avoided"] == 12
            assert planner.stats()["spmm_avoided"] == 12
        finally:
            telemetry.shutdown()

    def test_deeper_request_extends_incrementally(self):
        graph = _random_graph(20, seed=32)
        x = np.asarray(graph.features, dtype=np.float32)
        telemetry.configure()
        try:
            with plan.plan_scope():
                _filter_for("ppr", 4, x.shape[1]).precompute(graph, x)
                _filter_for("ppr", 9, x.shape[1]).precompute(graph, x)
                counters = telemetry.get_metrics().snapshot()["counters"]
            # 4 spmm for K=4, then only the 5-term suffix for K=9.
            assert counters["ops.spmm.calls"] == 9
            assert counters["plan.terms.hit"] == 4
            assert counters["plan.terms.miss"] == 9
        finally:
            telemetry.shutdown()

    def test_chebinterp_shares_chebyshev_chain(self):
        graph = _random_graph(20, seed=33)
        x = np.asarray(graph.features, dtype=np.float32)
        telemetry.configure()
        try:
            with plan.plan_scope():
                _filter_for("chebyshev", 5, x.shape[1]).precompute(graph, x)
                _filter_for("chebinterp", 5, x.shape[1]).precompute(graph, x)
                counters = telemetry.get_metrics().snapshot()["counters"]
            assert counters["ops.spmm.calls"] == 5
            assert counters["plan.terms.hit"] == 5
        finally:
            telemetry.shutdown()


# ----------------------------------------------------------------------
# 5. bypass + scope rules
# ----------------------------------------------------------------------
class TestBypassAndScopes:
    def test_no_scope_no_planner(self):
        assert plan.active_planner() is None

    def test_disabled_planner_streams(self):
        graph = _random_graph(16, seed=41)
        ctx = PropagationContext(graph.normalized_adjacency(0.5))
        x = np.asarray(graph.features, dtype=np.float32)
        with plan.plan_scope() as planner:
            with plan.plans_disabled():
                assert plan.active_planner() is None
                list(plan.chain_bases(ctx, x, "monomial_adj", (), 3))
            assert planner.stats()["terms_computed"] == 0

    def test_no_cache_disables_planner_at_serve_time(self):
        with plan.plan_scope():
            with cache.caches_disabled():
                assert plan.active_planner() is None
            assert plan.active_planner() is not None

    def test_nested_scope_reuses_planner(self):
        with plan.plan_scope() as outer:
            with plan.plan_scope() as inner:
                assert inner is outer
            assert plan.active_planner() is outer

    def test_fresh_scope_isolates(self):
        graph = _random_graph(16, seed=42)
        ctx = PropagationContext(graph.normalized_adjacency(0.5))
        x = np.asarray(graph.features, dtype=np.float32)
        with plan.plan_scope() as outer:
            outer.chain_terms(ctx, x, "monomial_adj", (), 3)
            with plan.plan_scope(fresh=True) as worker:
                assert worker is not outer
                assert worker.stats()["chains"] == 0
                assert plan.active_planner() is worker
            assert plan.active_planner() is outer

    def test_scope_exit_clears_chains(self):
        graph = _random_graph(16, seed=43)
        ctx = PropagationContext(graph.normalized_adjacency(0.5))
        x = np.asarray(graph.features, dtype=np.float32)
        with plan.plan_scope() as planner:
            planner.chain_terms(ctx, x, "monomial_adj", (), 3)
        assert planner.stats()["chains"] == 0

    def test_unknown_family_raises(self):
        graph = _random_graph(12, seed=44)
        ctx = PropagationContext(graph.normalized_adjacency(0.5))
        x = np.asarray(graph.features, dtype=np.float32)
        with pytest.raises(KeyError):
            list(plan.chain_bases(ctx, x, "not_a_family", (), 3))


# ----------------------------------------------------------------------
# token fingerprints
# ----------------------------------------------------------------------
class TestArrayToken:
    def test_token_changes_on_mutation(self):
        x = np.arange(12, dtype=np.float32).reshape(4, 3)
        before = plan.array_token(x)
        x[2, 1] += 1.0
        assert plan.array_token(x) != before

    def test_token_stable_and_shape_sensitive(self):
        x = np.ones((5, 2), dtype=np.float32)
        assert plan.array_token(x) == plan.array_token(x)
        assert plan.array_token(x) != plan.array_token(x.reshape(2, 5))
        assert plan.array_token(np.empty((0, 3), dtype=np.float32)) \
            == plan.array_token(np.empty((0, 3), dtype=np.float32))
