"""Registry: the Table 1 inventory and the factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import (
    BANK_NAMES,
    FILTER_NAMES,
    FIXED_NAMES,
    REGISTRY,
    VARIABLE_NAMES,
    SpectralFilter,
    make_filter,
    taxonomy_table,
)


class TestInventory:
    def test_total_is_27(self):
        assert len(FILTER_NAMES) == 27

    def test_category_counts_match_paper(self):
        assert len(FIXED_NAMES) == 7
        assert len(VARIABLE_NAMES) == 11
        assert len(BANK_NAMES) == 9

    def test_names_unique(self):
        assert len(set(FILTER_NAMES)) == len(FILTER_NAMES)

    def test_every_entry_has_models(self):
        for entry in REGISTRY.values():
            assert entry.models, entry.name

    def test_categories_consistent_with_classes(self):
        for name, entry in REGISTRY.items():
            instance = make_filter(name, num_hops=3, num_features=4)
            assert isinstance(instance, SpectralFilter)
            assert instance.category == entry.category, name


class TestFactory:
    @pytest.mark.parametrize("name", FILTER_NAMES)
    def test_build_all(self, name):
        instance = make_filter(name, num_hops=5, num_features=8)
        assert instance.num_hops == 5 or name == "identity"

    def test_unknown_name(self):
        with pytest.raises(FilterError):
            make_filter("butterworth")

    def test_hyperparameter_override(self):
        f = make_filter("ppr", alpha=0.42)
        assert f.alpha == 0.42

    def test_adagnn_needs_width(self):
        with pytest.raises(FilterError):
            make_filter("adagnn")
        f = make_filter("adagnn", num_features=12)
        assert f.num_features == 12

    def test_variants_distinct(self):
        one = make_filter("fbgnn1", num_hops=3)
        two = make_filter("fbgnn2", num_hops=3)
        assert one.fusion != two.fusion


class TestTaxonomyTable:
    def test_row_count(self):
        assert len(taxonomy_table()) == 27

    def test_row_fields(self):
        row = taxonomy_table()[0]
        assert set(row) == {"filter", "type", "hyperparameters", "time",
                            "memory", "models"}

    def test_bernstein_flagged_quadratic(self):
        rows = {r["filter"]: r for r in taxonomy_table()}
        assert "K^2" in rows["Bernstein"]["time"]

    def test_bank_memory_is_q_scaled(self):
        rows = {r["filter"]: r for r in taxonomy_table()}
        assert "Q" in rows["FiGURe"]["memory"]
