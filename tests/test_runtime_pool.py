"""Process-pool grid executor (:mod:`repro.runtime.pool`) tests.

Covers the three guarantees the parallel sweeps depend on: deterministic
per-cell seeding and grid-order assembly (serial ≡ parallel), crash/
timeout isolation with bounded retries (one bad cell never aborts its
siblings), and telemetry shard fold-in (merged counters, histograms, and
spans match a serial run of the same cells).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro import telemetry
from repro.runtime.pool import (
    CACHED,
    CRASHED,
    ERROR,
    OK,
    STRAGGLER_TOP_N,
    TIMEOUT,
    Cell,
    CellResult,
    PoolConfig,
    derive_cell_seed,
    execute_cells,
    last_run_stats,
    pool_stats,
)


# --- module-level cell functions: picklable under any start method ------

def _square(x, seed=0):
    return {"x": x, "seed": seed, "value": x * x}


def _staggered_square(x, delay):
    time.sleep(delay)
    return x * x


def _raise(msg):
    raise ValueError(msg)


def _hard_exit(code):
    os._exit(code)  # no exception, no result message: a genuine crash


def _sleep(seconds):
    time.sleep(seconds)
    return "done"


def _fail_first(marker, value):
    path = Path(marker)
    if not path.exists():
        path.write_text("seen")
        raise RuntimeError("transient failure")
    return value


def _ops_cell(amount):
    with telemetry.span("work", amount=amount):
        telemetry.inc_counter("ops.matmul.calls", amount)
        telemetry.inc_counter("ops.matmul.flops", 100.0 * amount)
        telemetry.observe("epoch.loss", float(amount))
    return amount


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.shutdown()
    yield
    telemetry.shutdown()


def make_cells(count, fn=_square, **extra):
    return [Cell(key=("cell", i), fn=fn, kwargs={"x": i, **extra})
            for i in range(count)]


# ---------------------------------------------------------------------------
# seed derivation
# ---------------------------------------------------------------------------

class TestDeriveCellSeed:
    def test_pure_function_of_inputs(self):
        assert derive_cell_seed(0, "cora", "ppr", 2) \
            == derive_cell_seed(0, "cora", "ppr", 2)

    def test_in_bitgenerator_range(self):
        for repeat in range(50):
            seed = derive_cell_seed(7, "cora", "ppr", repeat)
            assert 0 <= seed < 2 ** 31 - 1

    def test_distinct_coordinates_distinct_seeds(self):
        seeds = {derive_cell_seed(0, dataset, flt, repeat)
                 for dataset in ("cora", "citeseer", "pubmed")
                 for flt in ("ppr", "chebyshev")
                 for repeat in range(5)}
        assert len(seeds) == 3 * 2 * 5

    def test_root_seed_and_order_matter(self):
        assert derive_cell_seed(0, "cora", "ppr") \
            != derive_cell_seed(1, "cora", "ppr")
        assert derive_cell_seed(0, "cora", "ppr") \
            != derive_cell_seed(0, "ppr", "cora")


# ---------------------------------------------------------------------------
# inline mode (workers=1): the exact serial path
# ---------------------------------------------------------------------------

class TestInline:
    def test_results_in_cell_order(self):
        results = execute_cells(make_cells(4), PoolConfig(workers=1))
        assert [r.key for r in results] == [("cell", i) for i in range(4)]
        assert all(r.status == OK and r.attempts == 1 for r in results)
        assert [r.value["value"] for r in results] == [0, 1, 4, 9]
        assert all(r.worker_pid is None for r in results)

    def test_exceptions_propagate(self):
        cells = [Cell(key=("bad",), fn=_raise, kwargs={"msg": "inline boom"})]
        with pytest.raises(ValueError, match="inline boom"):
            execute_cells(cells, PoolConfig(workers=1))


# ---------------------------------------------------------------------------
# pooled mode: ordering, isolation, retries
# ---------------------------------------------------------------------------

class TestPooled:
    def test_grid_order_independent_of_completion_order(self):
        # The first cell is the slowest: it *completes* last but must
        # still come back first.
        delays = [0.25, 0.0, 0.0, 0.0]
        cells = [Cell(key=("cell", i), fn=_staggered_square,
                      kwargs={"x": i, "delay": delays[i]})
                 for i in range(4)]
        results = execute_cells(cells, PoolConfig(workers=4))
        assert [r.key for r in results] == [("cell", i) for i in range(4)]
        assert [r.value for r in results] == [0, 1, 4, 9]
        assert all(r.status == OK for r in results)
        assert any(r.worker_pid not in (None, os.getpid()) for r in results)

    def test_raising_cell_is_isolated_and_retry_bounded(self):
        cells = make_cells(3)
        cells[1] = Cell(key=("cell", 1), fn=_raise, kwargs={"msg": "boom"})
        results = execute_cells(cells, PoolConfig(workers=2, max_retries=2))

        assert [r.key for r in results] == [("cell", i) for i in range(3)]
        failed = results[1]
        assert failed.status == ERROR
        assert failed.attempts == 3          # 1 original + 2 retries
        assert "ValueError: boom" in failed.error
        assert results[0].ok and results[2].ok, \
            "a raising cell must not abort its siblings"

        stats = pool_stats(results)
        stragglers = stats.pop("stragglers")
        assert stats == {"cells": 3, "ok": 2, "cached": 0, "failed": 1,
                         "attempts": 5, "retries": 2, "timeouts": 0}
        assert len(stragglers) == 3

    def test_hard_crash_reported_not_raised(self):
        cells = make_cells(2)
        cells[0] = Cell(key=("cell", 0), fn=_hard_exit, kwargs={"code": 17})
        results = execute_cells(cells, PoolConfig(workers=2, max_retries=1))
        assert results[0].status == CRASHED
        assert results[0].attempts == 2
        assert "exitcode" in results[0].error
        assert results[1].ok

    def test_timeout_terminates_and_retries_to_bound(self):
        cells = make_cells(2)
        cells[0] = Cell(key=("cell", 0), fn=_sleep, kwargs={"seconds": 30.0})
        started = time.monotonic()
        results = execute_cells(
            cells, PoolConfig(workers=2, cell_timeout=0.3, max_retries=1))
        elapsed = time.monotonic() - started

        assert results[0].status == TIMEOUT
        assert results[0].attempts == 2
        assert "0.3" in results[0].error
        assert results[1].ok
        assert elapsed < 10.0, "timed-out workers were not terminated"
        assert pool_stats(results)["timeouts"] == 1

    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        marker = tmp_path / "attempted"
        cells = [Cell(key=("flaky",), fn=_fail_first,
                      kwargs={"marker": str(marker), "value": 42})]
        results = execute_cells(cells, PoolConfig(workers=2, max_retries=1))
        assert results[0].status == OK
        assert results[0].value == 42
        assert results[0].attempts == 2
        assert pool_stats(results)["retries"] == 1


# ---------------------------------------------------------------------------
# straggler ranking: the slowest cells surface in pool stats
# ---------------------------------------------------------------------------

def _result(label, seconds, status=OK, attempts=1):
    return CellResult(key=(label,), status=status, attempts=attempts,
                      seconds=seconds)


class TestStragglerRanking:
    def test_slowest_first_with_labels_and_attempts(self):
        results = [_result("fast", 0.1), _result("slow", 9.0, attempts=2),
                   _result("mid", 3.0, status=TIMEOUT)]
        stragglers = pool_stats(results)["stragglers"]
        assert [s["cell"] for s in stragglers] == ["slow", "mid", "fast"]
        assert stragglers[0] == {"cell": "slow", "status": OK,
                                 "attempts": 2, "seconds": 9.0}
        assert stragglers[1]["status"] == TIMEOUT

    def test_top_n_bound_and_tie_stability(self):
        results = [_result(f"c{i}", 1.0) for i in range(STRAGGLER_TOP_N + 3)]
        stragglers = pool_stats(results)["stragglers"]
        assert len(stragglers) == STRAGGLER_TOP_N
        # Equal times keep grid order (sorted() is stable).
        assert [s["cell"] for s in stragglers] == \
            [f"c{i}" for i in range(STRAGGLER_TOP_N)]
        assert pool_stats(results, top_n=2)["stragglers"][0]["cell"] == "c0"
        assert pool_stats([], top_n=3)["stragglers"] == []

    def test_stragglers_persisted_in_last_run_stats(self):
        delays = {0: 0.0, 1: 0.2}
        cells = [Cell(key=("cell", i), fn=_staggered_square,
                      kwargs={"x": i, "delay": delays[i]})
                 for i in range(2)]
        execute_cells(cells, PoolConfig(workers=2))
        stats = last_run_stats()
        assert stats is not None
        stragglers = stats["stragglers"]
        assert stragglers[0]["cell"] == "cell/1", \
            "the delayed cell must rank as the top straggler"
        assert all(s["seconds"] >= 0 for s in stragglers)


# ---------------------------------------------------------------------------
# telemetry shard fold-in: pooled run reads like a serial run
# ---------------------------------------------------------------------------

def _run_ops_cells(workers):
    telemetry.configure()
    try:
        cells = [Cell(key=("cell", i), fn=_ops_cell,
                      kwargs={"amount": i + 1}) for i in range(3)]
        with telemetry.span("experiment"):
            results = execute_cells(cells, PoolConfig(workers=workers))
        state = telemetry.get_metrics().to_state()
    finally:
        events = telemetry.shutdown()
    return results, state, events


class TestTelemetryFold:
    def test_merged_counters_match_serial(self):
        _, serial, _ = _run_ops_cells(workers=1)
        _, pooled, _ = _run_ops_cells(workers=3)
        for name in ("ops.matmul.calls", "ops.matmul.flops",
                     "pool.cells.ok"):
            assert pooled["counters"][name] == serial["counters"][name], name
        assert serial["counters"]["ops.matmul.calls"] == 1 + 2 + 3

    def test_merged_histograms_match_serial(self):
        _, serial, _ = _run_ops_cells(workers=1)
        _, pooled, _ = _run_ops_cells(workers=3)
        s, p = (state["histograms"]["epoch.loss"] for state in (serial, pooled))
        assert (p["count"], p["total"], p["min"], p["max"]) \
            == (s["count"], s["total"], s["min"], s["max"])

    def test_folded_spans_are_remapped_into_parent_trace(self):
        _, _, serial_events = _run_ops_cells(workers=1)
        _, _, pooled_events = _run_ops_cells(workers=3)

        def spans(events):
            return [e for e in events if e.get("type") == "span"]

        assert sorted(s["name"] for s in spans(pooled_events)) \
            == sorted(s["name"] for s in spans(serial_events))
        ids = [s["id"] for s in spans(pooled_events)]
        assert len(ids) == len(set(ids)), "folded span ids must not collide"

        folded = [s for s in spans(pooled_events)
                  if s.get("attrs", {}).get("shard")]
        assert len(folded) == 6  # per worker shard: one cell + one work span
        experiment = next(s for s in spans(pooled_events)
                          if s["name"] == "experiment")
        cell_spans = [s for s in spans(pooled_events) if s["name"] == "cell"]
        assert all(s["parent"] == experiment["id"] for s in cell_spans)

    def test_failed_attempt_telemetry_is_discarded(self, tmp_path):
        telemetry.configure()
        try:
            marker = tmp_path / "attempted"
            cells = [Cell(key=("flaky",), fn=_fail_first,
                          kwargs={"marker": str(marker), "value": 1})]
            execute_cells(cells, PoolConfig(workers=2, max_retries=1))
            counters = telemetry.get_metrics().to_state()["counters"]
        finally:
            telemetry.shutdown()
        # Only the successful second attempt contributes a shard, so the
        # merged totals stay equal to what a clean serial run would count.
        assert counters.get("pool.cells.ok") == 1
        assert counters.get("pool.cells.retried") == 1
        assert "pool.cells.failed" not in counters


# ---------------------------------------------------------------------------
# artifact-store integration: cached cells, fold parity, kill-and-resume
# ---------------------------------------------------------------------------

def _flaky_ops_cell(marker, amount):
    # Counts *before* possibly failing: the first attempt's counter must
    # be discarded by retry handling and never reach the store.
    telemetry.inc_counter("ops.matmul.calls", amount)
    path = Path(marker)
    if not path.exists():
        path.write_text("seen")
        raise RuntimeError("transient failure")
    return amount


def _make_sweep(tmp_path, fingerprint="fp-test", rev="rev1", consult=True):
    from repro.runtime.artifacts import ArtifactStore, SweepArtifacts

    store = ArtifactStore(tmp_path / "store")
    return SweepArtifacts(store=store, config_fingerprint=fingerprint,
                          code_rev=rev, consult=consult)


class TestCachedCells:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_second_run_serves_every_cell_from_store(self, tmp_path,
                                                     workers):
        from repro.runtime.artifacts import sweep_scope

        sweep = _make_sweep(tmp_path)
        cells = make_cells(3)
        config = PoolConfig(workers=workers)
        with sweep_scope(sweep):
            first = execute_cells(cells, config)
        with sweep_scope(_make_sweep(tmp_path)):
            second = execute_cells(cells, config)

        assert all(r.status == OK for r in first)
        assert all(r.status == CACHED and r.attempts == 0 for r in second)
        assert [r.value for r in second] == [r.value for r in first]
        stats = pool_stats(second)
        assert (stats["ok"], stats["cached"], stats["failed"]) == (0, 3, 0)
        assert stats["ok"] + stats["cached"] + stats["failed"] \
            == stats["cells"]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_cached_shards_fold_identically_to_live(self, tmp_path, workers):
        """PR 4 fold parity extended to store-served cells: merged op
        counters/histograms must not depend on whether a cell executed
        or was decoded from disk."""
        from repro.runtime.artifacts import sweep_scope

        cells = [Cell(key=("cell", i), fn=_ops_cell,
                      kwargs={"amount": i + 1}) for i in range(3)]
        config = PoolConfig(workers=workers)

        def run(sweep):
            telemetry.configure()
            try:
                with sweep_scope(sweep), telemetry.span("experiment"):
                    execute_cells(cells, config)
                state = telemetry.get_metrics().to_state()
            finally:
                events = telemetry.shutdown()
            return state, events

        live_state, live_events = run(_make_sweep(tmp_path))
        cached_state, cached_events = run(_make_sweep(tmp_path))

        assert cached_state["counters"].get("pool.cells.cached") == 3
        assert "pool.cells.ok" not in cached_state["counters"]
        for name in ("ops.matmul.calls", "ops.matmul.flops"):
            assert cached_state["counters"][name] \
                == live_state["counters"][name], name
        live_hist = live_state["histograms"]["epoch.loss"]
        cached_hist = cached_state["histograms"]["epoch.loss"]
        for field in ("count", "total", "min", "max"):
            assert cached_hist[field] == live_hist[field], field
        # The persisted shard replays the cell's spans into the trace.
        names = sorted(e["name"] for e in cached_events
                       if e.get("type") == "span")
        assert names.count("work") == 3 and names.count("cell") == 3

    def test_retried_attempt_counters_never_reach_the_store(self, tmp_path):
        from repro.runtime.artifacts import sweep_scope

        marker = tmp_path / "attempted"
        cells = [Cell(key=("flaky",), fn=_flaky_ops_cell,
                      kwargs={"marker": str(marker), "amount": 5})]

        telemetry.configure()
        try:
            with sweep_scope(_make_sweep(tmp_path)):
                results = execute_cells(
                    cells, PoolConfig(workers=2, max_retries=1))
            live = telemetry.get_metrics().to_state()["counters"]
        finally:
            telemetry.shutdown()
        assert results[0].status == OK and results[0].attempts == 2
        assert live.get("ops.matmul.calls") == 5, \
            "the failed attempt's counters must be discarded live"

        telemetry.configure()
        try:
            with sweep_scope(_make_sweep(tmp_path)):
                resumed = execute_cells(
                    cells, PoolConfig(workers=2, max_retries=1))
            cached = telemetry.get_metrics().to_state()["counters"]
        finally:
            telemetry.shutdown()
        assert resumed[0].status == CACHED
        assert cached.get("ops.matmul.calls") == 5, \
            "the persisted shard must hold only the successful attempt"

    def test_failed_cells_are_never_persisted(self, tmp_path):
        from repro.runtime.artifacts import sweep_scope

        sweep = _make_sweep(tmp_path)
        cells = make_cells(2)
        cells[1] = Cell(key=("cell", 1), fn=_raise, kwargs={"msg": "boom"})
        with sweep_scope(sweep):
            results = execute_cells(cells, PoolConfig(workers=2,
                                                      max_retries=0))
        assert results[1].status == ERROR
        assert len(sweep.store) == 1
        assert sweep.address_for(cells[1]) not in sweep.store

    def test_no_consult_reexecutes_but_repopulates(self, tmp_path):
        from repro.runtime.artifacts import sweep_scope

        cells = make_cells(2)
        with sweep_scope(_make_sweep(tmp_path)):
            execute_cells(cells, PoolConfig(workers=1))
        fresh = _make_sweep(tmp_path, consult=False)
        with sweep_scope(fresh):
            results = execute_cells(cells, PoolConfig(workers=1))
        assert all(r.status == OK for r in results), \
            "--fresh mode must execute every cell live"
        assert fresh.store.misses == 2 and fresh.store.stores == 2


@pytest.mark.slow
class TestKillAndResume:
    """SIGKILL a pooled sweep partway; resume must run only the rest."""

    CELLS = 6
    DELAY = 0.4

    def _cell_module(self, tmp_path):
        path = tmp_path / "resume_cells.py"
        path.write_text(
            "import time\n"
            "def slow_cell(x, seed=0, delay=0.0):\n"
            "    time.sleep(delay)\n"
            "    return {'x': x, 'seed': seed, 'value': x * x}\n")
        return path

    def _import_cells(self, path):
        import importlib.util
        import sys

        spec = importlib.util.spec_from_file_location("resume_cells", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules["resume_cells"] = module
        spec.loader.exec_module(module)
        return module

    def _make_cells(self, module, delay):
        return [Cell(key=("cell", i), fn=module.slow_cell,
                     kwargs={"x": i, "seed": derive_cell_seed(0, "cell", i),
                             "delay": delay})
                for i in range(self.CELLS)]

    def test_sigkill_midsweep_then_resume_runs_only_remainder(self, tmp_path):
        import signal
        import subprocess
        import sys

        module_path = self._cell_module(tmp_path)
        store_dir = tmp_path / "store"
        driver = tmp_path / "driver.py"
        driver.write_text(
            f"import sys\n"
            f"sys.path.insert(0, {str(tmp_path)!r})\n"
            f"import resume_cells\n"
            f"from repro import telemetry\n"
            f"from repro.runtime import artifacts\n"
            f"from repro.runtime.pool import (Cell, PoolConfig,\n"
            f"                                derive_cell_seed,\n"
            f"                                execute_cells)\n"
            f"telemetry.configure()\n"
            f"sweep = artifacts.SweepArtifacts(\n"
            f"    store=artifacts.ArtifactStore({str(store_dir)!r}),\n"
            f"    config_fingerprint='fp-kill', code_rev='rev1')\n"
            f"cells = [Cell(key=('cell', i), fn=resume_cells.slow_cell,\n"
            f"              kwargs={{'x': i,\n"
            f"                      'seed': derive_cell_seed(0, 'cell', i),\n"
            f"                      'delay': {self.DELAY}}})\n"
            f"         for i in range({self.CELLS})]\n"
            f"with artifacts.sweep_scope(sweep):\n"
            f"    execute_cells(cells, PoolConfig(workers=2,\n"
            f"                                    start_method='fork'))\n")

        from repro.runtime.artifacts import (ArtifactStore, SweepArtifacts,
                                             sweep_scope)

        src = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen([sys.executable, str(driver)],
                                env={**os.environ, "PYTHONPATH": src},
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        # Wait until at least two cells have committed, then SIGKILL the
        # sweep — no cleanup handlers run, exactly like a dead node.
        store = ArtifactStore(store_dir)
        deadline = time.monotonic() + 60.0
        try:
            while len(store) < 2:
                if proc.poll() is not None or time.monotonic() > deadline:
                    pytest.fail("driver exited or stalled before storing "
                                f"2 cells (stored {len(store)})")
                time.sleep(0.02)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        stored = len(store)
        assert 0 < stored < self.CELLS, \
            f"kill must land mid-sweep (stored {stored}/{self.CELLS})"

        module = self._import_cells(module_path)
        cells = self._make_cells(module, self.DELAY)

        # Uninterrupted reference run (no store) for the byte gate.
        reference = execute_cells(cells, PoolConfig(workers=2))

        resumed_sweep = SweepArtifacts(store=ArtifactStore(store_dir),
                                       config_fingerprint="fp-kill",
                                       code_rev="rev1")
        with sweep_scope(resumed_sweep):
            resumed = execute_cells(cells, PoolConfig(workers=2))

        stats = pool_stats(resumed)
        assert stats["cached"] == stored, \
            "every committed cell must be served from the store"
        assert stats["ok"] == self.CELLS - stored, \
            "only the remainder may execute"
        assert stats["failed"] == 0
        assert stats["cached"] + stats["ok"] == stats["cells"] == self.CELLS

        from repro.bench.io import canonical_payload
        assert canonical_payload([r.value for r in resumed]) \
            == canonical_payload([r.value for r in reference]), \
            "resumed payload must be byte-identical to a never-killed run"


@pytest.mark.slow
class TestShmKillMidAttach:
    """SIGKILL a worker mid-attach; store cleanup must stay airtight.

    The victim attaches a shared blob (live mapping into a data segment)
    and then dies while HOLDING the cross-process store lock — the worst
    case a dead node leaves behind. The owner's scope exit must still
    unlink every segment of the run (cleanup is lock-free by design),
    the driver must exit cleanly, and stderr must carry no
    resource_tracker warnings or KeyError tracebacks (the tracker
    bookkeeping bugs this guards against are silent leaks in CI logs).
    """

    DRIVER = """\
import multiprocessing as mp
import os
import signal
import sys
import time

import numpy as np

from repro.runtime import shm
from repro.runtime.shm import SharedTermStore, StoreConfig, blob_fingerprint

assert shm.supported()
ctx = mp.get_context("fork")
store = SharedTermStore(config=StoreConfig(lock_timeout_s=1.0),
                        mp_context=ctx)
fp = blob_fingerprint("norm", ("kill-mid-attach",))


def victim(handle, ready):
    with shm.worker_scope(handle) as active:
        got, _meta = active.fetch_blob(fp)  # live view into a segment
        active._lock.acquire()              # die holding the store lock
        ready.send(float(np.asarray(got["a"]).sum()))
        time.sleep(300)


with shm.store_scope(store):
    assert store.publish_blob(fp, {"a": np.arange(6.0)})
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=victim,
                       args=(store.worker_handle(), child_conn))
    proc.start()
    child_conn.close()
    assert parent_conn.poll(30.0), "victim never attached"
    assert parent_conn.recv() == 15.0
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=30.0)
    assert proc.exitcode == -signal.SIGKILL
# Scope exit closed the store: stats snapshot hit the dead holder's
# lock (bounded by lock_timeout_s), cleanup ran lock-free regardless.
prefix = shm.SEGMENT_PREFIX + store.run_id
leftovers = [name for name in os.listdir("/dev/shm")
             if name.startswith(prefix)]
assert not leftovers, f"leaked segments: {leftovers}"
print("CLEAN")
"""

    def test_sigkill_holding_lock_never_leaks_or_warns(self, tmp_path):
        import subprocess
        import sys

        from repro.runtime import shm as shm_mod
        if not shm_mod.supported():
            pytest.skip("POSIX shared memory unavailable")
        driver = tmp_path / "kill_mid_attach.py"
        driver.write_text(self.DRIVER)
        src = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.run([sys.executable, str(driver)],
                              env={**os.environ, "PYTHONPATH": src},
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "CLEAN" in proc.stdout
        for marker in ("resource_tracker", "KeyError", "leaked"):
            assert marker not in proc.stderr, (
                f"store cleanup emitted {marker!r} on stderr:\n"
                f"{proc.stderr}")
