"""Property-based tests (hypothesis) on core invariants.

These fuzz the substrate where hand-picked examples are weakest: autodiff
gradients on random graphs of ops, broadcasting, filter linearity and
response consistency, split partitions, and metric bounds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import Tensor
from repro.autodiff import functional as F
from repro.datasets import random_split, stratified_split
from repro.filters import FIXED_NAMES, make_filter
from repro.graph import Graph, node_homophily
from repro.training import accuracy, r2_score, roc_auc

floats = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                   allow_infinity=False, width=32)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=floats)


class TestAutodiffProperties:
    @given(arrays((3, 4)), arrays((3, 4)))
    @settings(max_examples=30, deadline=None)
    def test_addition_gradient_is_ones(self, a, b):
        ta = Tensor(a, requires_grad=True, dtype=np.float64)
        tb = Tensor(b, requires_grad=True, dtype=np.float64)
        (ta + tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones_like(a))
        np.testing.assert_allclose(tb.grad, np.ones_like(b))

    @given(arrays((3, 4)), arrays((3, 4)))
    @settings(max_examples=30, deadline=None)
    def test_product_rule(self, a, b):
        ta = Tensor(a, requires_grad=True, dtype=np.float64)
        tb = Tensor(b, requires_grad=True, dtype=np.float64)
        (ta * tb).sum().backward()
        np.testing.assert_allclose(ta.grad, b, atol=1e-10)
        np.testing.assert_allclose(tb.grad, a, atol=1e-10)

    @given(arrays((4, 3)))
    @settings(max_examples=30, deadline=None)
    def test_tanh_gradient_bounded(self, a):
        t = Tensor(a, requires_grad=True, dtype=np.float64)
        t.tanh().sum().backward()
        assert np.all(t.grad <= 1.0 + 1e-9)
        assert np.all(t.grad >= 0.0 - 1e-9)

    @given(arrays((2, 5)))
    @settings(max_examples=30, deadline=None)
    def test_softmax_is_distribution(self, a):
        out = F.softmax(Tensor(a), axis=1).data
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(2), rtol=1e-5)

    @given(arrays((6,)), st.integers(min_value=0, max_value=1))
    @settings(max_examples=30, deadline=None)
    def test_bce_nonnegative(self, logits, label):
        targets = np.full(6, float(label))
        loss = F.binary_cross_entropy_with_logits(
            Tensor(logits, dtype=np.float64), targets).item()
        assert loss >= -1e-9

    @given(arrays((3, 4)), arrays((4, 2)))
    @settings(max_examples=20, deadline=None)
    def test_matmul_matches_numpy(self, a, b):
        out = (Tensor(a, dtype=np.float64) @ Tensor(b, dtype=np.float64)).data
        np.testing.assert_allclose(out, a @ b, atol=1e-10)


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=5, max_value=30))
    num_edges = draw(st.integers(min_value=n, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=1000))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(num_edges, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    if len(edges) == 0:
        edges = np.array([[0, 1]])
    labels = rng.integers(0, 3, size=n)
    return Graph.from_edges(n, edges, labels=labels)


class TestGraphProperties:
    @given(random_graphs())
    @settings(max_examples=25, deadline=None)
    def test_homophily_bounded(self, graph):
        assert 0.0 <= node_homophily(graph) <= 1.0

    @given(random_graphs(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_laplacian_spectrum_bounded(self, graph, rho):
        lap = graph.laplacian(rho=0.5).toarray()
        eigenvalues = np.linalg.eigvalsh((lap + lap.T) / 2)
        assert eigenvalues.min() >= -1e-4
        assert eigenvalues.max() <= 2.0 + 1e-4

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_adjacency_symmetric(self, graph):
        diff = graph.adjacency - graph.adjacency.T
        assert abs(diff).max() == 0


class TestFilterProperties:
    @given(st.sampled_from(FIXED_NAMES), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_fixed_filter_scaling_equivariance(self, name, num_hops):
        """g(L̃)(c·x) == c·g(L̃)x for fixed filters."""
        rng = np.random.default_rng(0)
        graph = Graph.from_edges(12, rng.integers(0, 12, size=(30, 2)))
        filter_ = make_filter(name, num_hops=num_hops, num_features=2)
        x = rng.normal(size=(12, 2)).astype(np.float32)
        a = filter_.propagate(graph, 3.0 * x)
        b = 3.0 * filter_.propagate(graph, x)
        np.testing.assert_allclose(a, b, atol=1e-3)

    @given(st.sampled_from(FIXED_NAMES))
    @settings(max_examples=20, deadline=None)
    def test_response_independent_of_grid_density(self, name):
        filter_ = make_filter(name, num_hops=6, num_features=2)
        coarse = filter_.response(np.array([0.0, 1.0, 2.0]))
        fine = filter_.response(np.linspace(0, 2, 201))
        np.testing.assert_allclose(coarse, fine[[0, 100, 200]], atol=1e-8)


class TestSplitProperties:
    @given(st.integers(min_value=10, max_value=500),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_random_split_partitions(self, n, seed):
        split = random_split(n, seed=seed)
        combined = np.concatenate([split.train, split.valid, split.test])
        assert len(combined) == n
        assert len(np.unique(combined)) == n

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_stratified_split_partitions(self, seed):
        labels = np.random.default_rng(seed).integers(0, 4, size=120)
        split = stratified_split(labels, seed=seed)
        combined = np.concatenate([split.train, split.valid, split.test])
        assert len(np.unique(combined)) == 120


class TestMetricProperties:
    @given(st.integers(min_value=2, max_value=50),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_accuracy_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(n, 3))
        labels = rng.integers(0, 3, size=n)
        assert 0.0 <= accuracy(logits, labels) <= 1.0

    @given(st.integers(min_value=4, max_value=100),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_auc_symmetry(self, n, seed):
        """AUC(scores) + AUC(-scores) == 1."""
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        labels = np.r_[np.zeros(n // 2, dtype=int), np.ones(n - n // 2, dtype=int)]
        forward = roc_auc(scores, labels)
        backward = roc_auc(-scores, labels)
        assert forward + backward == pytest.approx(1.0, abs=1e-9)

    @given(arrays((20,)))
    @settings(max_examples=30, deadline=None)
    def test_r2_of_self_is_one(self, y):
        if np.std(y) < 1e-6:
            return  # degenerate constant target
        assert r2_score(y, y) == pytest.approx(1.0)
