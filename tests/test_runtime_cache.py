"""The sparse-compute cache layer must be *invisible*.

`repro.runtime.cache` memoizes the spmm-backward transpose and the
per-graph normalized operators. These tests prove the three contracts the
layer makes:

1. **Bit-identity** (hypothesis property tests): cached and uncached
   paths — ``spmm`` forward/backward, ``normalized_adjacency``,
   ``laplacian`` — produce byte-for-byte identical arrays across random
   graphs, ρ values, and self-loop settings.
2. **Invalidation**: mutating a cached matrix in place never serves a
   stale transpose.
3. **Boundedness**: every cache is a bounded LRU; entry counts never
   exceed capacity no matter the access sequence, and dead matrices are
   purged.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.autodiff import Tensor
from repro.autodiff.sparse import spmm
from repro.graph import Graph
from repro.runtime import cache


@pytest.fixture(autouse=True)
def _clean_cache_state():
    """Isolate tests from each other's global transpose-cache traffic."""
    cache.set_enabled(True)
    cache.clear_transpose_cache()
    yield
    cache.set_enabled(True)
    cache.clear_transpose_cache()


def _random_graph(n: int, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    num_edges = max(n - 1, 1)
    edges = np.stack([rng.integers(0, n, size=num_edges),
                      rng.integers(0, n, size=num_edges)], axis=1)
    edges = edges[edges[:, 0] != edges[:, 1]]
    if len(edges) == 0:
        edges = np.array([[0, n - 1]]) if n > 1 else np.zeros((0, 2), int)
    features = rng.normal(size=(n, 3)).astype(np.float32)
    return Graph.from_edges(n, edges, features=features, name=f"rand{seed}")


def _random_csr(n: int, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    matrix = sp.random(n, n, density=0.3, format="csr",
                       random_state=np.random.RandomState(seed),
                       dtype=np.float64).astype(np.float32)
    if matrix.nnz == 0:
        matrix = sp.csr_matrix(
            ([np.float32(rng.normal())], ([0], [n - 1])), shape=(n, n))
    return matrix


# ----------------------------------------------------------------------
# LRUCache mechanics
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_hit_miss_counts(self):
        lru = cache.LRUCache(4)
        assert lru.get("a") is cache.MISSING
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.stats()["hits"] == 1
        assert lru.stats()["misses"] == 1

    def test_capacity_bound_and_eviction_order(self):
        lru = cache.LRUCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")            # refresh "a" → "b" becomes LRU
        lru.put("c", 3)
        assert len(lru) == 2
        assert "b" not in lru
        assert lru.get("a") == 1
        assert lru.stats()["evictions"] == 1

    def test_get_or_compute_calls_factory_once(self):
        lru = cache.LRUCache(4)
        calls = []
        for _ in range(3):
            value = lru.get_or_compute("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1

    def test_validate_rejection_is_a_miss_and_drops_entry(self):
        lru = cache.LRUCache(4)
        lru.put("k", "stale")
        assert lru.get("k", validate=lambda v: False) is cache.MISSING
        assert "k" not in lru
        assert lru.stats()["misses"] == 1

    def test_clear_resets_entries_and_stats(self):
        lru = cache.LRUCache(2)
        lru.put("a", 1)
        lru.get("a")
        lru.get("zzz")
        lru.clear()
        stats = lru.stats()
        assert stats == {"entries": 0, "capacity": 2, "hits": 0,
                         "misses": 0, "evictions": 0}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            cache.LRUCache(0)

    @settings(max_examples=30, deadline=None)
    @given(capacity=st.integers(1, 8),
           keys=st.lists(st.integers(0, 20), max_size=60))
    def test_property_entry_count_never_exceeds_capacity(self, capacity, keys):
        lru = cache.LRUCache(capacity)
        for key in keys:
            if lru.get(key) is cache.MISSING:
                lru.put(key, key * 2)
            assert len(lru) <= capacity
        for key in keys[-capacity:]:
            # the most recent `capacity` distinct puts must still resolve
            if len(set(keys[-capacity:])) <= capacity:
                assert lru.get(key) == key * 2


# ----------------------------------------------------------------------
# mutation fingerprint
# ----------------------------------------------------------------------
class TestMatrixToken:
    def test_stable_across_calls(self):
        matrix = _random_csr(12, seed=0)
        assert cache.matrix_token(matrix) == cache.matrix_token(matrix)

    def test_changes_on_value_mutation(self):
        matrix = _random_csr(12, seed=1)
        before = cache.matrix_token(matrix)
        matrix.data[0] += 1.0
        assert cache.matrix_token(matrix) != before

    def test_changes_on_structure_change(self):
        matrix = _random_csr(12, seed=2)
        before = cache.matrix_token(matrix)
        matrix.setdiag(1.0)
        assert cache.matrix_token(matrix) != before


# ----------------------------------------------------------------------
# transpose cache
# ----------------------------------------------------------------------
class TestTransposeCache:
    def test_correct_and_served_from_cache(self):
        matrix = _random_csr(16, seed=3)
        first = cache.transpose_csr(matrix)
        second = cache.transpose_csr(matrix)
        assert first is second
        assert cache.transpose_build_count() == 1
        expected = matrix.T.tocsr()
        np.testing.assert_array_equal(first.toarray(), expected.toarray())

    def test_mutation_invalidates(self):
        matrix = _random_csr(16, seed=4)
        stale = cache.transpose_csr(matrix).toarray().copy()
        matrix.data *= 2.0
        fresh = cache.transpose_csr(matrix)
        assert cache.transpose_build_count() == 2
        np.testing.assert_array_equal(fresh.toarray(), matrix.T.toarray())
        assert not np.array_equal(fresh.toarray(), stale)

    def test_disabled_bypasses_cache(self):
        matrix = _random_csr(16, seed=5)
        with cache.caches_disabled():
            a = cache.transpose_csr(matrix)
            b = cache.transpose_csr(matrix)
        assert a is not b
        assert cache.transpose_build_count() == 2
        assert cache.transpose_cache_stats()["entries"] == 0

    def test_bounded_entries_with_eviction(self):
        matrices = [_random_csr(6, seed=100 + i)
                    for i in range(cache.TRANSPOSE_CACHE_ENTRIES + 5)]
        for matrix in matrices:
            cache.transpose_csr(matrix)
        stats = cache.transpose_cache_stats()
        assert stats["entries"] <= cache.TRANSPOSE_CACHE_ENTRIES
        assert stats["evictions"] >= 5

    def test_dead_matrix_entry_purged(self):
        matrix = _random_csr(10, seed=6)
        cache.transpose_csr(matrix)
        assert cache.transpose_cache_stats()["entries"] == 1
        del matrix
        gc.collect()
        assert cache.transpose_cache_stats()["entries"] == 0

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 24), seed=st.integers(0, 10_000),
           scale=st.floats(1.5, 4.0))
    def test_property_mutation_never_serves_stale(self, n, seed, scale):
        cache.clear_transpose_cache()
        matrix = _random_csr(n, seed=seed)
        cache.transpose_csr(matrix)
        matrix.data *= np.float32(scale)
        refreshed = cache.transpose_csr(matrix).toarray()
        np.testing.assert_array_equal(refreshed, matrix.T.toarray())


# ----------------------------------------------------------------------
# normalization memo
# ----------------------------------------------------------------------
class TestNormalizationMemo:
    def test_hit_returns_same_object(self):
        graph = _random_graph(20, seed=7)
        a = graph.normalized_adjacency(0.5)
        b = graph.normalized_adjacency(0.5)
        assert a is b
        stats = graph.norm_memo_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_laplacian_memoized(self):
        graph = _random_graph(20, seed=8)
        assert graph.laplacian(0.5) is graph.laplacian(0.5)

    def test_distinct_keys_distinct_entries(self):
        graph = _random_graph(20, seed=9)
        a = graph.normalized_adjacency(0.5, self_loops=True)
        b = graph.normalized_adjacency(0.5, self_loops=False)
        c = graph.normalized_adjacency(1.0, self_loops=True)
        assert a is not b and a is not c
        assert graph.norm_memo_stats()["entries"] == 3

    def test_disabled_recomputes_equal_values(self):
        graph = _random_graph(20, seed=10)
        cached = graph.normalized_adjacency(0.5)
        with cache.caches_disabled():
            fresh = graph.normalized_adjacency(0.5)
        assert fresh is not cached
        np.testing.assert_array_equal(fresh.toarray(), cached.toarray())

    def test_lru_bound_over_rho_sweep(self):
        graph = _random_graph(16, seed=11)
        rhos = np.linspace(0.0, 1.0, cache.NORM_MEMO_ENTRIES * 2 + 1)
        for rho in rhos:
            graph.normalized_adjacency(float(rho))
        assert graph.norm_memo_stats()["entries"] <= cache.NORM_MEMO_ENTRIES

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 30), seed=st.integers(0, 10_000),
           rho=st.floats(0.0, 1.0), self_loops=st.booleans())
    def test_property_normalized_adjacency_bit_identical(self, n, seed, rho,
                                                         self_loops):
        """Memoized and bypass paths agree byte-for-byte on CSR payloads."""
        graph = _random_graph(n, seed=seed)
        cached = graph.normalized_adjacency(rho, self_loops)
        cached_again = graph.normalized_adjacency(rho, self_loops)
        with cache.caches_disabled():
            fresh = graph.normalized_adjacency(rho, self_loops)
        assert cached is cached_again
        np.testing.assert_array_equal(cached.data, fresh.data)
        np.testing.assert_array_equal(cached.indices, fresh.indices)
        np.testing.assert_array_equal(cached.indptr, fresh.indptr)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 24), seed=st.integers(0, 10_000),
           rho=st.floats(0.0, 1.0))
    def test_property_laplacian_bit_identical(self, n, seed, rho):
        graph = _random_graph(n, seed=seed)
        cached = graph.laplacian(rho)
        with cache.caches_disabled():
            fresh = graph.laplacian(rho)
        np.testing.assert_array_equal(cached.toarray(), fresh.toarray())


# ----------------------------------------------------------------------
# spmm: cached vs uncached forward/backward bit-identity
# ----------------------------------------------------------------------
class TestSpmmCacheInvisibility:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 24), width=st.integers(1, 5),
           seed=st.integers(0, 10_000))
    def test_property_forward_backward_bit_identical(self, n, width, seed):
        """Gradients through cached spmm == gradients with caches bypassed."""
        cache.clear_transpose_cache()
        matrix = _random_csr(n, seed=seed)
        rng = np.random.default_rng(seed)
        payload = rng.normal(size=(n, width)).astype(np.float32)
        weight = rng.normal(size=(n, width)).astype(np.float32)

        def run() -> tuple:
            x = Tensor(payload.copy(), requires_grad=True)
            out = spmm(matrix, x)
            (out * Tensor(weight)).sum().backward()
            return out.data, x.grad

        cached_out, cached_grad = run()
        with cache.caches_disabled():
            plain_out, plain_grad = run()

        np.testing.assert_array_equal(cached_out, plain_out)
        np.testing.assert_array_equal(cached_grad, plain_grad)

    def test_repeated_backward_builds_transpose_once(self):
        matrix = _random_csr(20, seed=12)
        for _ in range(6):
            x = Tensor(np.ones((20, 3), dtype=np.float32), requires_grad=True)
            spmm(matrix, x).sum().backward()
        assert cache.transpose_build_count() == 1

    def test_disabled_builds_once_per_closure(self):
        """Seed behaviour under --no-cache: one build per forward closure."""
        matrix = _random_csr(20, seed=13)
        with cache.caches_disabled():
            for _ in range(3):
                x = Tensor(np.ones((20, 3), dtype=np.float32),
                           requires_grad=True)
                spmm(matrix, x).sum().backward()
        assert cache.transpose_build_count() == 3


# ----------------------------------------------------------------------
# telemetry counter names (pinned: dashboards and the CI gate read these)
# ----------------------------------------------------------------------
class TestCounterNames:
    def test_cache_and_op_counter_names(self):
        telemetry.configure()
        try:
            graph = _random_graph(18, seed=14)
            graph.normalized_adjacency(0.5)
            graph.normalized_adjacency(0.5)
            matrix = graph.normalized_adjacency(0.5)
            x = Tensor(np.ones((18, 2), dtype=np.float32), requires_grad=True)
            out = spmm(matrix, x)
            (out * 2.0).sum().backward()
            spmm(matrix, Tensor(np.ones((18, 2), dtype=np.float32),
                                requires_grad=True)).sum().backward()
            counters = telemetry.get_metrics().snapshot()["counters"]
        finally:
            telemetry.shutdown()
        assert counters["cache.norm_adj.miss"] == 1
        assert counters["cache.norm_adj.hit"] == 2
        assert counters["cache.spmm_t.miss"] == 1
        assert counters["cache.spmm_t.hit"] == 1
        assert counters["ops.spmm.transpose_builds"] == 1
        assert counters["ops.spmm.transpose_bytes"] > 0
        # elementwise ops feed the same hook (ROADMAP coverage gap closed)
        for name in ("ops.ewise.calls", "ops.ewise.flops", "ops.ewise.bytes"):
            assert counters[name] > 0
