"""Learning schemes end-to-end: FB / MB / GP training, OOM handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import random_split
from repro.filters import make_filter
from repro.tasks import run_node_classification
from repro.training import (
    EarlyStopper,
    FullBatchTrainer,
    GraphPartitionTrainer,
    MiniBatchTrainer,
    TrainConfig,
    build_optimizer,
    make_device,
)

FAST = TrainConfig(epochs=15, patience=10)


class TestFullBatch:
    def test_learns_above_chance(self, small_graph):
        result = run_node_classification(small_graph, "ppr",
                                         scheme="full_batch", config=FAST)
        assert result.status == "ok"
        assert result.test_score > 1.5 / small_graph.num_classes

    def test_records_stages(self, small_graph):
        result = run_node_classification(small_graph, "ppr",
                                         scheme="full_batch", config=FAST)
        assert result.profiler.seconds("train") > 0
        assert result.profiler.seconds("inference") > 0
        assert result.epochs_run >= 1

    def test_predictions_full_shape(self, small_graph):
        result = run_node_classification(small_graph, "monomial",
                                         scheme="full_batch", config=FAST)
        assert result.predictions.shape == (small_graph.num_nodes,
                                            small_graph.num_classes)

    def test_variable_filter_params_returned(self, small_graph):
        result = run_node_classification(small_graph, "chebyshev",
                                         scheme="full_batch", config=FAST)
        assert "theta" in result.filter_params
        # θ moved away from initialization during training.
        init = make_filter("chebyshev", num_hops=10).default_coefficients()
        assert not np.allclose(result.filter_params["theta"], init)

    def test_oom_status(self, small_graph):
        result = run_node_classification(small_graph, "ppr",
                                         scheme="full_batch", config=FAST,
                                         device_capacity_gib=1e-6)
        assert result.is_oom
        assert np.isnan(result.test_score)

    def test_device_accounts_graph_residency(self, small_graph):
        result = run_node_classification(small_graph, "ppr",
                                         scheme="full_batch", config=FAST)
        assert result.device_peak_bytes > small_graph.features.nbytes

    def test_seeded_reproducibility(self, small_graph):
        split = random_split(small_graph.num_nodes, seed=0)
        a = run_node_classification(small_graph, "ppr", scheme="full_batch",
                                    config=FAST, split=split)
        b = run_node_classification(small_graph, "ppr", scheme="full_batch",
                                    config=FAST, split=split)
        assert a.test_score == b.test_score


class TestMiniBatch:
    def test_learns_above_chance(self, small_graph):
        result = run_node_classification(small_graph, "ppr",
                                         scheme="mini_batch", config=FAST)
        assert result.status == "ok"
        assert result.test_score > 1.5 / small_graph.num_classes

    def test_has_precompute_stage(self, small_graph):
        result = run_node_classification(small_graph, "ppr",
                                         scheme="mini_batch", config=FAST)
        assert result.precompute_seconds > 0

    def test_device_independent_of_graph(self):
        """MB device peak barely grows with graph size (the paper's RQ2)."""
        from repro.datasets import synthesize

        small = synthesize("cora", scale=0.1, seed=0)
        large = synthesize("cora", scale=0.6, seed=0)
        config = TrainConfig(epochs=3, patience=0, batch_size=64, eval_every=10)
        r_small = run_node_classification(small, "ppr", scheme="mini_batch",
                                          config=config)
        r_large = run_node_classification(large, "ppr", scheme="mini_batch",
                                          config=config)
        assert r_large.device_peak_bytes < 2 * r_small.device_peak_bytes
        # ...but RAM grows with n.
        assert r_large.ram_peak_bytes > r_small.ram_peak_bytes

    def test_variable_filter_ram_exceeds_fixed(self, small_graph):
        fixed = run_node_classification(small_graph, "ppr",
                                        scheme="mini_batch", config=FAST)
        variable = run_node_classification(small_graph, "chebyshev",
                                           scheme="mini_batch", config=FAST)
        assert variable.ram_peak_bytes > 3 * fixed.ram_peak_bytes

    def test_comparable_to_full_batch(self, small_graph):
        fb = run_node_classification(small_graph, "monomial",
                                     scheme="full_batch", config=FAST)
        mb = run_node_classification(small_graph, "monomial",
                                     scheme="mini_batch", config=FAST)
        assert abs(fb.test_score - mb.test_score) < 0.25


class TestGraphPartition:
    def test_trains(self, small_graph):
        result = run_node_classification(small_graph, "ppr",
                                         scheme="graph_partition",
                                         config=FAST, num_parts=3)
        assert result.status == "ok"
        assert result.test_score > 1.0 / small_graph.num_classes

    def test_device_smaller_than_full_batch(self, small_graph):
        fb = run_node_classification(small_graph, "ppr", scheme="full_batch",
                                     config=FAST)
        gp = run_node_classification(small_graph, "ppr",
                                     scheme="graph_partition", config=FAST,
                                     num_parts=4)
        assert gp.device_peak_bytes < fb.device_peak_bytes

    def test_invalid_parts(self):
        with pytest.raises(Exception):
            GraphPartitionTrainer(num_parts=0)


class TestEarlyStopping:
    def test_stops_after_patience(self, small_graph):
        config = TrainConfig(epochs=200, patience=3)
        result = run_node_classification(small_graph, "identity",
                                         scheme="full_batch", config=config)
        assert result.epochs_run < 200

    def test_stopper_restores_best(self, rng):
        from repro.nn import Linear

        model = Linear(2, 2, rng=rng)
        stopper = EarlyStopper(patience=2)
        stopper.update(0.9, model)
        best = model.weight.data.copy()
        model.weight.data = model.weight.data + 1.0
        stopper.update(0.1, model)
        stopper.restore(model)
        np.testing.assert_array_equal(model.weight.data, best)

    def test_patience_zero_never_stops(self, rng):
        from repro.nn import Linear

        model = Linear(2, 2, rng=rng)
        stopper = EarlyStopper(patience=0)
        assert not stopper.update(0.5, model)
        assert not stopper.update(0.4, model)
        assert not stopper.update(0.3, model)


class TestOptimizerGroups:
    def test_decoupled_model_gets_two_groups(self, small_graph, rng):
        from repro.models import DecoupledModel

        model = DecoupledModel(make_filter("chebyshev", num_hops=4),
                               in_features=small_graph.num_features,
                               out_features=small_graph.num_classes, rng=rng)
        config = TrainConfig(lr=0.01, lr_filter=0.2)
        optimizer = build_optimizer(model, config)
        assert len(optimizer.groups) == 2
        assert optimizer.groups[0]["lr"] == 0.01
        assert optimizer.groups[1]["lr"] == 0.2

    def test_fixed_filter_single_group(self, small_graph, rng):
        from repro.models import DecoupledModel

        model = DecoupledModel(make_filter("ppr"),
                               in_features=small_graph.num_features,
                               out_features=small_graph.num_classes, rng=rng)
        optimizer = build_optimizer(model, TrainConfig())
        assert len(optimizer.groups) == 1


class TestCacheInvisibility:
    """The sparse-compute cache layer must not change training numerics."""

    def _paired_runs(self, filter_name, scheme):
        from repro.datasets import synthesize
        from repro.runtime import cache

        split = random_split(270, seed=1)
        config = TrainConfig(epochs=2, patience=0, eval_every=1)
        cache.clear_transpose_cache()
        cached = run_node_classification(
            synthesize("cora", scale=0.1, seed=3), filter_name,
            scheme=scheme, config=config, split=split)
        with cache.caches_disabled():
            plain = run_node_classification(
                synthesize("cora", scale=0.1, seed=3), filter_name,
                scheme=scheme, config=config, split=split)
        return cached, plain

    @pytest.mark.parametrize("filter_name", ["ppr", "chebyshev"])
    def test_full_batch_epoch_identical_on_and_off(self, filter_name):
        cached, plain = self._paired_runs(filter_name, "full_batch")
        assert cached.test_score == plain.test_score
        assert cached.valid_score == plain.valid_score
        np.testing.assert_array_equal(cached.predictions, plain.predictions)

    @pytest.mark.parametrize("filter_name", ["ppr", "chebyshev"])
    def test_mini_batch_epoch_identical_on_and_off(self, filter_name):
        cached, plain = self._paired_runs(filter_name, "mini_batch")
        assert cached.test_score == plain.test_score
        assert cached.valid_score == plain.valid_score
        np.testing.assert_array_equal(cached.predictions, plain.predictions)

    def test_full_batch_transpose_built_once(self):
        from repro.datasets import synthesize
        from repro.runtime import cache

        cache.clear_transpose_cache()
        run_node_classification(
            synthesize("cora", scale=0.1, seed=3), "ppr",
            scheme="full_batch",
            config=TrainConfig(epochs=4, patience=0, eval_every=10))
        # one propagation matrix → at most one Pᵀ materialization
        assert cache.transpose_build_count() <= 1


class TestDeviceFactory:
    def test_unbounded(self):
        assert make_device(None).capacity_bytes is None

    def test_bounded(self):
        assert make_device(2.0).capacity_bytes == 2 * 1024 ** 3
