"""Composite-graph gradient checks: random expression trees vs finite diff.

The single-op gradient tests catch local mistakes; these catch graph-level
ones (wrong accumulation across shared subexpressions, broadcasting in
deep chains) by building random expressions from a safe op vocabulary and
checking the full Jacobian-vector product numerically.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor

# Each op is (name, callable); all are smooth and bounded on bounded input
# so finite differences behave.
UNARY_OPS = [
    ("tanh", lambda t: t.tanh()),
    ("sigmoid", lambda t: t.sigmoid()),
    ("exp_small", lambda t: (t * 0.3).exp()),
    ("softplus", lambda t: ((t.clip(-20, 20)).exp() + 1.0).log()),
    ("square", lambda t: t * t),
    ("affine", lambda t: t * 1.7 - 0.3),
]

BINARY_OPS = [
    ("add", lambda a, b: a + b),
    ("mul", lambda a, b: a * b),
    ("sub", lambda a, b: a - b),
    ("blend", lambda a, b: a * 0.25 + b * 0.75),
]


def build_expression(tensor: Tensor, plan) -> Tensor:
    """Apply a plan of (kind, index) steps, reusing intermediates."""
    values = [tensor]
    for kind, index, left, right in plan:
        if kind == "unary":
            _, op = UNARY_OPS[index % len(UNARY_OPS)]
            values.append(op(values[left % len(values)]))
        else:
            _, op = BINARY_OPS[index % len(BINARY_OPS)]
            values.append(op(values[left % len(values)],
                             values[right % len(values)]))
    return values[-1]


@st.composite
def plans(draw):
    steps = draw(st.integers(min_value=1, max_value=6))
    plan = []
    for _ in range(steps):
        kind = draw(st.sampled_from(["unary", "binary"]))
        plan.append((
            kind,
            draw(st.integers(min_value=0, max_value=10)),
            draw(st.integers(min_value=0, max_value=10)),
            draw(st.integers(min_value=0, max_value=10)),
        ))
    return plan


class TestCompositeGradients:
    @given(plans(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_random_expression_gradient(self, plan, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1.0, 1.0, size=(3, 2))
        t = Tensor(x.copy(), requires_grad=True, dtype=np.float64)
        out = build_expression(t, plan).sum()
        out.backward()

        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                bumped = x.copy()
                bumped[i, j] += eps
                hi = build_expression(
                    Tensor(bumped, dtype=np.float64), plan).sum().item()
                bumped[i, j] -= 2 * eps
                lo = build_expression(
                    Tensor(bumped, dtype=np.float64), plan).sum().item()
                numeric[i, j] = (hi - lo) / (2 * eps)
        scale = max(np.abs(numeric).max(), 1.0)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-4 * scale)

    def test_deep_chain(self):
        t = Tensor(np.array([0.5]), requires_grad=True, dtype=np.float64)
        out = t
        for _ in range(50):
            out = out.tanh() + out * 0.1
        out.sum().backward()
        assert np.isfinite(t.grad).all()

    def test_wide_fanout(self):
        t = Tensor(np.ones(4), requires_grad=True, dtype=np.float64)
        total = (t * 0.0).sum()
        for i in range(20):
            total = total + (t * float(i)).sum()
        total.backward()
        np.testing.assert_allclose(t.grad, np.full(4, sum(range(20))))
