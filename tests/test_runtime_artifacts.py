"""Content-addressed cell artifact store (:mod:`repro.runtime.artifacts`).

The store is a correctness-critical cache: a hit substitutes bytes a live
execution would have produced. The suite therefore leans on invariants,
not examples — round trips are exact, any change to config / seed /
coordinates / code rev flips the content address (staleness), torn files
read as misses, and (hypothesis) a sweep resumed from any interruption
point is byte-identical to an uninterrupted one across worker counts.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.bench.io import canonical_payload
from repro.runtime.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    CellArtifact,
    SweepArtifacts,
    active_sweep,
    cell_address,
    default_artifact_dir,
    default_code_rev,
    sweep_scope,
)
from repro.runtime.pool import Cell, PoolConfig, derive_cell_seed, execute_cells


def _value_cell(x, seed=0):
    rng = np.random.default_rng(seed)
    return {"x": x, "seed": seed,
            "score": float(rng.normal()),
            "hist": rng.integers(0, 10, size=4)}


def _make_cells(count, root_seed=0):
    return [Cell(key=("cell", i), fn=_value_cell,
                 kwargs={"x": i, "seed": derive_cell_seed(root_seed,
                                                          "cell", i)})
            for i in range(count)]


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.shutdown()
    yield
    telemetry.shutdown()


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _sweep(store, fingerprint="fp", rev="rev1", consult=True):
    return SweepArtifacts(store=store, config_fingerprint=fingerprint,
                          code_rev=rev, consult=consult)


# ---------------------------------------------------------------------------
# directory resolution
# ---------------------------------------------------------------------------

class TestDefaultDir:
    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "env"))
        assert default_artifact_dir(tmp_path / "x") == tmp_path / "x"
        assert default_artifact_dir() == tmp_path / "env"

    def test_code_rev_is_stable_and_nonempty(self):
        assert default_code_rev() == default_code_rev()
        assert default_code_rev()


# ---------------------------------------------------------------------------
# round trip
# ---------------------------------------------------------------------------

class TestRoundTrip:
    def test_value_events_metrics_survive(self, store):
        value = {"acc": np.float32(0.75), "hist": np.arange(3),
                 "nested": {"k": [1, 2.5, "s", None]}}
        events = [{"type": "span", "id": 1, "name": "cell", "depth": 0}]
        metrics = {"counters": {"ops.matmul.calls": 3.0}}
        address = "a" * 64
        store.put(address, value, events=events, metrics_state=metrics,
                  meta={"cell": "cell/0"})

        artifact = store.get(address)
        assert isinstance(artifact, CellArtifact)
        assert artifact.value["acc"] == 0.75
        np.testing.assert_array_equal(artifact.value["hist"], np.arange(3))
        assert artifact.value["nested"] == {"k": [1, 2.5, "s", None]}
        assert artifact.events == events
        assert artifact.metrics_state == metrics
        assert artifact.meta["cell"] == "cell/0"
        assert store.stats()["hit"] == 1 and store.stats()["stored"] == 1

    def test_value_key_order_is_preserved(self, store):
        value = {"zeta": 1, "alpha": 2, "mid": 3}
        store.put("b" * 64, value)
        assert list(store.get("b" * 64).value) == ["zeta", "alpha", "mid"], \
            "cached rows must decode in live insertion order"

    def test_missing_address_is_a_miss(self, store):
        assert store.get("c" * 64) is None
        assert store.stats()["miss"] == 1

    def test_canonical_payload_identity_through_store(self, store):
        rows = [_value_cell(i, seed=derive_cell_seed(0, i)) for i in range(3)]
        store.put("d" * 64, rows)
        assert canonical_payload(store.get("d" * 64).value) \
            == canonical_payload(rows)


# ---------------------------------------------------------------------------
# durability: atomic write, torn files, orphan sidecars
# ---------------------------------------------------------------------------

class TestDurability:
    def test_torn_payload_reads_as_miss_and_is_dropped(self, store):
        address = "e" * 64
        store.put(address, {"v": 1})
        path = store.payload_path(address)
        path.write_text(path.read_text()[:15])  # truncated mid-write
        assert store.get(address) is None
        assert store.torn == 1
        assert not path.exists(), "a torn payload must be swept"
        store.put(address, {"v": 1})
        assert store.get(address).value == {"v": 1}

    def test_schema_or_address_mismatch_is_a_miss(self, store):
        address = "f" * 64
        store.put(address, {"v": 1})
        payload = json.loads(store.payload_path(address).read_text())
        payload["schema"] = "repro.runtime.artifacts/v999"
        store.payload_path(address).write_text(json.dumps(payload))
        assert store.get(address) is None

        store.put(address, {"v": 1})
        payload = json.loads(store.payload_path(address).read_text())
        payload["address"] = "0" * 64
        store.payload_path(address).write_text(json.dumps(payload))
        assert store.get(address) is None

    def test_orphan_sidecar_is_not_a_committed_cell(self, store):
        # Crash between the sidecar write and the payload rename.
        address = "1" * 64
        store.root.mkdir(parents=True, exist_ok=True)
        store.meta_path(address).write_text(json.dumps(
            {"schema": ARTIFACT_SCHEMA, "address": address}))
        assert address not in store
        assert store.addresses() == []
        assert store.get(address) is None

    def test_tmp_files_never_read_as_artifacts(self, store):
        store.put("2" * 64, {"v": 1})
        stray = store.root / f"{'3' * 64}.json.tmp.{os.getpid()}"
        stray.write_text("{")
        assert store.addresses() == ["2" * 64]

    def test_put_is_atomic_replace(self, store):
        address = "4" * 64
        store.put(address, {"v": 1})
        store.put(address, {"v": 2})
        assert store.get(address).value == {"v": 2}
        assert len(store) == 1


# ---------------------------------------------------------------------------
# content-address staleness: every component flips the key
# ---------------------------------------------------------------------------

class TestAddressSensitivity:
    BASE = dict(config_fingerprint="fp-a", coordinates=("cora", "ppr", 0),
                seed=123, code_rev="rev-a", cell_token="tok-a")

    def test_deterministic(self):
        assert cell_address(**self.BASE) == cell_address(**self.BASE)
        assert len(cell_address(**self.BASE)) == 64

    @pytest.mark.parametrize("field,changed", [
        ("config_fingerprint", "fp-b"),
        ("coordinates", ("cora", "ppr", 1)),
        ("seed", 124),
        ("code_rev", "rev-b"),
        ("cell_token", "tok-b"),
    ])
    def test_each_component_flips_the_address(self, field, changed):
        assert cell_address(**{**self.BASE, field: changed}) \
            != cell_address(**self.BASE), field

    def test_sweep_staleness_config_seed_coords_rev_kwargs(self, store):
        cell = Cell(key=("cora", "ppr"), fn=_value_cell,
                    kwargs={"x": 1, "seed": 7})
        base = _sweep(store).address_for(cell)

        assert _sweep(store, fingerprint="fp2").address_for(cell) != base
        assert _sweep(store, rev="rev2").address_for(cell) != base
        other_coords = Cell(key=("cora", "chebyshev"), fn=cell.fn,
                            kwargs=cell.kwargs)
        assert _sweep(store).address_for(other_coords) != base
        other_seed = Cell(key=cell.key, fn=cell.fn,
                          kwargs={"x": 1, "seed": 8})
        assert _sweep(store).address_for(other_seed) != base
        # Knobs outside the run config but inside kwargs (scale_override
        # and friends) must miss too.
        other_kwargs = Cell(key=cell.key, fn=cell.fn,
                            kwargs={"x": 2, "seed": 7})
        assert _sweep(store).address_for(other_kwargs) != base

    def test_stale_store_reexecutes_on_new_rev(self, store):
        cells = _make_cells(2)
        with sweep_scope(_sweep(store, rev="rev1")):
            execute_cells(cells, PoolConfig(workers=1))
        new_rev = _sweep(ArtifactStore(store.root), rev="rev2")
        with sweep_scope(new_rev):
            results = execute_cells(cells, PoolConfig(workers=1))
        assert all(r.status == "ok" for r in results), \
            "new code must never trust old bytes"
        assert new_rev.store.hits == 0 and new_rev.store.misses == 2


# ---------------------------------------------------------------------------
# eviction and purge (--fresh)
# ---------------------------------------------------------------------------

class TestEvictionAndPurge:
    def test_bounded_store_evicts_oldest(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_cells=2)
        addresses = [c * 64 for c in "abc"]
        for i, address in enumerate(addresses):
            store.put(address, {"v": i})
            os.utime(store.payload_path(address), (i, i))
        assert len(store) == 2
        assert addresses[0] not in store, "the oldest payload is evicted"
        assert addresses[2] in store, "the just-written cell is protected"
        assert store.evictions == 1

    def test_identical_mtimes_evict_in_address_order(self, tmp_path):
        """FAT/coarse-clock filesystems: ties break on the address.

        With every payload stamped the same mtime the LRU key degenerates
        to its ``(mtime, addr)`` tiebreaker — victim selection must be
        the lexicographically smallest addresses, on every platform, or
        resumed sweeps would serve different survivors per filesystem.
        """
        store = ArtifactStore(tmp_path / "store", max_cells=2)
        addresses = [c * 64 for c in "dbca"]
        for address in addresses:
            store.put(address, {"v": address[0]})
            # Same second-granularity timestamp for every payload, as a
            # coarse-clock filesystem would report.
            os.utime(store.payload_path(address), (1000, 1000))
        # Victims at each over-bound check are the lexicographically
        # smallest tied addresses ("b" when "c" lands, then "c" when "a"
        # lands); the just-written cell is always protected.
        assert sorted(store.addresses()) == ["a" * 64, "d" * 64]
        assert store.evictions == 2

    def test_identical_mtimes_eviction_is_reproducible(self, tmp_path):
        """Two identical insert sequences pick identical victims."""
        def run():
            root = tmp_path / f"store-{run.count}"
            run.count += 1
            store = ArtifactStore(root, max_cells=3)
            for c in "fbeadc":
                store.put(c * 64, {"v": c})
                os.utime(store.payload_path(c * 64), (1000, 1000))
            return sorted(store.addresses())
        run.count = 0
        assert run() == run()

    def test_purge_drops_everything_and_strays(self, store):
        for c in "ab":
            store.put(c * 64, {"v": c})
        (store.root / f"{'c' * 64}.json.tmp.123").write_text("{")
        store.meta_path("d" * 64).write_text("{}")  # orphan sidecar
        assert store.purge() == 2
        assert len(store) == 0
        assert list(store.root.iterdir()) == []

    def test_purge_on_missing_dir_is_a_noop(self, tmp_path):
        assert ArtifactStore(tmp_path / "never-created").purge() == 0

    def test_unstorable_value_is_skipped_not_fatal(self, store):
        telemetry.configure()
        try:
            sweep = _sweep(store)
            cell = Cell(key=("bad",), fn=_value_cell, kwargs={"x": 0})
            assert sweep.save(cell, {"obj": object()}) is None
            counters = telemetry.get_metrics().to_state()["counters"]
        finally:
            telemetry.shutdown()
        assert len(store) == 0
        assert counters.get("artifacts.unstorable") == 1


# ---------------------------------------------------------------------------
# scope semantics
# ---------------------------------------------------------------------------

class TestSweepScope:
    def test_nesting_restores_previous(self, store):
        outer, inner = _sweep(store), _sweep(store, fingerprint="fp-inner")
        assert active_sweep() is None
        with sweep_scope(outer):
            assert active_sweep() is outer
            with sweep_scope(inner):
                assert active_sweep() is inner
            assert active_sweep() is outer
        assert active_sweep() is None

    def test_none_scope_disables_the_store(self, store):
        with sweep_scope(_sweep(store)):
            with sweep_scope(None):
                results = execute_cells(_make_cells(1),
                                        PoolConfig(workers=1))
        assert results[0].status == "ok"
        assert len(store) == 0


# ---------------------------------------------------------------------------
# hypothesis: resumed == uninterrupted, byte for byte
# ---------------------------------------------------------------------------

class TestResumeByteIdentity:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(cell_count=st.integers(min_value=1, max_value=5),
           interrupt_after=st.integers(min_value=0, max_value=5),
           workers=st.sampled_from([1, 2]),
           root_seed=st.integers(min_value=0, max_value=3))
    def test_any_interruption_point_resumes_byte_identical(
            self, tmp_path_factory, cell_count, interrupt_after, workers,
            root_seed):
        """Simulate a crash after K committed cells: populate the store,
        drop all but the first K artifacts, resume, and require the
        resumed sweep's canonical payload to equal an uninterrupted
        run's bytes — for every (grid size, K, worker count, seed)."""
        tmp_path = tmp_path_factory.mktemp("resume")
        cells = _make_cells(cell_count, root_seed=root_seed)
        config = PoolConfig(workers=workers)
        keep = min(interrupt_after, cell_count)

        uninterrupted = execute_cells(cells, config)

        first = _sweep(ArtifactStore(tmp_path / "store"))
        with sweep_scope(first):
            execute_cells(cells, config)
        committed = {first.address_for(cell) for cell in cells[:keep]}
        for address in first.store.addresses():
            if address not in committed:
                first.store.discard(address)

        resumed_sweep = _sweep(ArtifactStore(tmp_path / "store"))
        with sweep_scope(resumed_sweep):
            resumed = execute_cells(cells, config)

        assert sum(1 for r in resumed if r.status == "cached") == keep
        assert sum(1 for r in resumed if r.status == "ok") \
            == cell_count - keep
        assert canonical_payload([r.value for r in resumed]) \
            == canonical_payload([r.value for r in uninterrupted])
