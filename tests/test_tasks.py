"""Task entry points: node classification, link prediction, regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthesize
from repro.errors import TrainingError
from repro.tasks import (
    SeedSummary,
    build_task_filter,
    run_link_prediction,
    run_node_classification,
    run_seeds,
    run_signal_regression,
)
from repro.training import TrainConfig

FAST = TrainConfig(epochs=10, patience=5)


class TestNodeClassification:
    def test_roc_auc_metric_path(self):
        graph = synthesize("tolokers", scale=0.05, seed=0)
        config = TrainConfig(epochs=10, patience=5, metric="roc_auc")
        result = run_node_classification(graph, "linear", scheme="mini_batch",
                                         config=config)
        assert 0.0 <= result.test_score <= 1.0

    def test_filter_hp_passthrough(self, small_graph):
        result = run_node_classification(small_graph, "ppr", config=FAST,
                                         filter_hp={"alpha": 0.5})
        assert result.status == "ok"

    def test_adagnn_width_fb_vs_mb(self, small_graph):
        fb = build_task_filter("adagnn", small_graph, TrainConfig(hidden=32),
                               scheme="full_batch")
        mb = build_task_filter("adagnn", small_graph, TrainConfig(hidden=32),
                               scheme="mini_batch")
        assert fb.num_features == 32
        assert mb.num_features == small_graph.num_features

    def test_run_seeds_aggregates(self, small_graph):
        summary = run_seeds(small_graph, "monomial", scheme="mini_batch",
                            config=FAST, seeds=(0, 1))
        assert len(summary.scores) == 2
        assert summary.status == "ok"
        assert 0 <= summary.mean <= 1

    def test_shared_split_pins_split(self, small_graph):
        summary = run_seeds(small_graph, "identity", config=FAST,
                            seeds=(0, 1), shared_split_seed=7)
        assert len(summary.results) == 2

    def test_cell_formats(self):
        ok = SeedSummary(scores=[0.5, 0.6], results=[])
        assert ok.cell() == "55.00±5.00"
        from repro.training import RunResult

        oom = SeedSummary(scores=[], results=[RunResult(status="oom")])
        assert oom.cell() == "(OOM)"

    def test_empty_summary_nan(self):
        empty = SeedSummary(scores=[], results=[])
        assert np.isnan(empty.mean)


class TestLinkPrediction:
    def test_learns_structure(self):
        graph = synthesize("cora", scale=0.15, seed=0)
        result = run_link_prediction(graph, "ppr",
                                     config=TrainConfig(epochs=8), kappa=2)
        assert result.status == "ok"
        assert result.test_auc > 0.6  # well above random

    def test_identity_weaker_than_structural(self):
        graph = synthesize("cora", scale=0.15, seed=0)
        structural = run_link_prediction(graph, "ppr",
                                         config=TrainConfig(epochs=8))
        baseline = run_link_prediction(graph, "identity",
                                       config=TrainConfig(epochs=8))
        assert structural.test_auc > baseline.test_auc - 0.05

    def test_kappa_validation(self, small_graph):
        with pytest.raises(TrainingError):
            run_link_prediction(small_graph, "ppr", kappa=0)

    def test_kappa_scales_train_volume(self):
        graph = synthesize("cora", scale=0.15, seed=0)
        lean = run_link_prediction(graph, "identity",
                                   config=TrainConfig(epochs=2), kappa=1)
        heavy = run_link_prediction(graph, "identity",
                                    config=TrainConfig(epochs=2), kappa=8)
        assert heavy.profiler.seconds("train") > lean.profiler.seconds("train")

    def test_oom_status(self):
        graph = synthesize("cora", scale=0.15, seed=0)
        result = run_link_prediction(graph, "ppr",
                                     config=TrainConfig(epochs=2),
                                     device_capacity_gib=1e-7)
        assert result.is_oom


class TestSignalRegression:
    def test_low_pass_fits_low_signal(self, small_graph):
        result = run_signal_regression(small_graph, "hk", "low", epochs=0)
        assert result.r2 > 0.5

    def test_low_pass_fails_high_signal(self, small_graph):
        result = run_signal_regression(small_graph, "hk", "high", epochs=0)
        assert result.r2 < 0.5

    def test_variable_filter_beats_fixed_on_band(self, small_graph):
        fixed = run_signal_regression(small_graph, "ppr", "band", epochs=0)
        variable = run_signal_regression(small_graph, "chebyshev", "band",
                                         epochs=120)
        assert variable.r2 > fixed.r2

    def test_learned_params_returned(self, small_graph):
        result = run_signal_regression(small_graph, "chebyshev", "low",
                                       epochs=30)
        assert "theta" in result.learned_params

    def test_identity_only_fits_allpass(self, small_graph):
        low = run_signal_regression(small_graph, "identity", "low", epochs=0)
        assert low.r2 < 0.6
