"""Checkpoints and the tune-then-evaluate protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.filters import make_filter
from repro.models import DecoupledModel
from repro.nn import MLP
from repro.tasks import tune_and_run
from repro.training import TrainConfig, load_checkpoint, save_checkpoint


class TestCheckpoint:
    def test_round_trip(self, tmp_path, rng):
        model = MLP(6, 3, hidden=8, num_layers=2, rng=rng)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path, metadata={"filter": "ppr", "seed": 3})
        # Perturb, then restore.
        expected = model.state_dict()
        for p in model.parameters():
            p.data = p.data + 1.0
        metadata = load_checkpoint(model, path)
        assert metadata == {"filter": "ppr", "seed": 3}
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(p.data, expected[name])

    def test_decoupled_model_with_filter_params(self, tmp_path, small_graph, rng):
        model = DecoupledModel(make_filter("chebyshev", num_hops=4),
                               in_features=small_graph.num_features,
                               out_features=3, rng=rng)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        theta = model.filter_params()["theta"].data.copy()
        model.filter_params()["theta"].data += 5.0
        load_checkpoint(model, path)
        np.testing.assert_array_equal(model.filter_params()["theta"].data, theta)

    def test_architecture_mismatch_detected(self, tmp_path, rng):
        small = MLP(6, 3, num_layers=1, rng=rng)
        big = MLP(6, 3, hidden=8, num_layers=2, rng=rng)
        path = tmp_path / "model.npz"
        save_checkpoint(small, path)
        with pytest.raises(TrainingError):
            load_checkpoint(big, path)

    def test_shape_mismatch_detected(self, tmp_path, rng):
        a = MLP(6, 3, num_layers=1, rng=rng)
        b = MLP(6, 4, num_layers=1, rng=rng)
        path = tmp_path / "model.npz"
        save_checkpoint(a, path)
        with pytest.raises(TrainingError):
            load_checkpoint(b, path)

    def test_empty_metadata(self, tmp_path, rng):
        model = MLP(4, 2, num_layers=1, rng=rng)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        assert load_checkpoint(model, path) == {}


class TestTuneAndRun:
    def test_protocol(self, small_graph):
        outcome = tune_and_run(
            small_graph, "ppr", scheme="mini_batch",
            base_config=TrainConfig(epochs=6, patience=0, eval_every=1),
            budget=3, seed=0)
        assert len(outcome.trace) == 3
        assert np.isfinite(outcome.test_score)
        assert outcome.best_valid_score >= outcome.trace[0] - 1e-9

    def test_search_never_worse_than_base(self, small_graph):
        outcome = tune_and_run(
            small_graph, "chebyshev", scheme="mini_batch",
            base_config=TrainConfig(epochs=6, patience=0, eval_every=1),
            budget=4, seed=1)
        assert outcome.best_valid_score >= outcome.trace[0]

    def test_filter_hp_ranges_used(self, small_graph):
        outcome = tune_and_run(
            small_graph, "ppr", scheme="mini_batch",
            base_config=TrainConfig(epochs=4, patience=0, eval_every=1),
            budget=4, seed=2)
        # Either the base (no HP) or a sampled config with alpha won.
        if outcome.best_filter_hp:
            assert 0.05 <= outcome.best_filter_hp["alpha"] <= 0.95
