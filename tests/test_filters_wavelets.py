"""Spectral graph wavelets: frame quality, band placement, integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FilterError
from repro.filters import (
    WaveletFilterBank,
    dyadic_scales,
    scaling_kernel,
    wavelet_kernel,
)
from repro.spectral import laplacian_eigendecomposition

LAMS = np.linspace(0.0, 2.0, 101)


class TestKernels:
    def test_scaling_is_low_pass(self):
        values = scaling_kernel(LAMS)
        assert values[0] == pytest.approx(1.0)
        assert values[-1] < 0.01
        assert np.all(np.diff(values) <= 1e-12)

    def test_wavelet_peaks_at_inverse_scale(self):
        for scale in (1.0, 2.0, 4.0):
            values = wavelet_kernel(LAMS, scale)
            peak = LAMS[np.argmax(values)]
            assert peak == pytest.approx(1.0 / scale, abs=0.03)
            # Grid point nearest the peak (sharp for large s): within 2%.
            assert values.max() == pytest.approx(1.0, abs=0.02)

    def test_wavelet_vanishes_at_zero(self):
        # Zero DC response: wavelets carry no constant component.
        assert wavelet_kernel(np.array([0.0]), 2.0)[0] == 0.0

    def test_dyadic_scales_halve_centres(self):
        scales = dyadic_scales(4)
        centres = 1.0 / scales
        np.testing.assert_allclose(centres, [2.0, 1.0, 0.5, 0.25])

    def test_scale_validation(self):
        with pytest.raises(FilterError):
            dyadic_scales(0)


class TestBank:
    @pytest.fixture(scope="class")
    def bank(self):
        return WaveletFilterBank(num_scales=3, num_hops=12)

    def test_channel_count(self, bank):
        assert len(bank.channels) == 4  # scaling + 3 wavelets

    def test_design_residuals_small(self, bank):
        for channel in bank.channels:
            assert channel.design_residual() < 0.02

    def test_frame_is_well_conditioned(self, bank):
        lower, upper = bank.frame_bounds()
        assert lower > 0.5           # no spectral blind spots
        assert upper / lower < 4.0   # decently tight frame

    def test_channels_cover_disjoint_bands(self, bank):
        responses = bank.channel_responses(LAMS)
        peaks = [LAMS[np.argmax(np.abs(r))] for r in responses]
        assert peaks[0] <= 0.1  # scaling at/near DC (Chebyshev-fit ripple)
        # Wavelet centres at 2.0, 1.0, 0.5: strictly decreasing.
        np.testing.assert_allclose(peaks[1:], [2.0, 1.0, 0.5], atol=0.05)

    def test_concat_output_width(self, bank, small_graph, signal):
        assert bank.output_width(signal.shape[1]) == 4 * signal.shape[1]
        channels = bank.precompute(small_graph, signal)
        assert channels.shape == (small_graph.num_nodes, 4, signal.shape[1])

    def test_transform_matches_exact_wavelets(self, small_graph):
        """Chebyshev-approximated transform ≈ exact spectral wavelets."""
        rng = np.random.default_rng(0)
        bank = WaveletFilterBank(num_scales=2, num_hops=16)
        x = rng.normal(size=(small_graph.num_nodes, 1)).astype(np.float32)
        channels = bank.precompute(small_graph, x)
        eigenvalues, eigenvectors = laplacian_eigendecomposition(small_graph)
        coefficients = eigenvectors.T @ x
        kernels = [lambda lam: scaling_kernel(lam)] + [
            (lambda lam, s=s: wavelet_kernel(lam, s)) for s in bank.scales]
        for q, kernel in enumerate(kernels):
            exact = eigenvectors @ (kernel(eigenvalues)[:, None] * coefficients)
            np.testing.assert_allclose(channels[:, q, :], exact, atol=0.02)

    def test_trains_as_filter(self, small_graph):
        """The bank drops into the standard training pipeline."""
        from repro.models import MiniBatchModel
        from repro.autodiff import Tensor

        bank = WaveletFilterBank(num_scales=2, num_hops=8)
        channels = bank.precompute(small_graph, small_graph.features)
        model = MiniBatchModel(bank, in_features=small_graph.num_features,
                               out_features=small_graph.num_classes,
                               rng=np.random.default_rng(0))
        logits = model(Tensor(channels[:32]))
        assert logits.shape == (32, small_graph.num_classes)

    def test_sum_fusion_variant(self, small_graph, signal):
        bank = WaveletFilterBank(num_scales=2, num_hops=8, fusion="sum")
        from repro.filters.base import PropagationContext

        ctx = PropagationContext.for_graph(small_graph)
        out = bank.forward(ctx, signal)
        assert np.asarray(out).shape == signal.shape
