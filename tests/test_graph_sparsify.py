"""Sparsifier: edge budgets, unbiasedness, spectral distortion trends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthesize
from repro.errors import GraphError
from repro.graph import (
    Graph,
    edge_importance,
    sparsify,
    spectral_distortion,
)


@pytest.fixture(scope="module")
def dense_graph():
    return synthesize("tolokers", scale=0.15, seed=0)


class TestEdgeImportance:
    def test_one_per_undirected_edge(self, dense_graph):
        importance = edge_importance(dense_graph)
        assert importance.shape == (dense_graph.edge_list().shape[0],)
        assert np.all(importance > 0)

    def test_low_degree_edges_more_important(self):
        # A star: hub-leaf edges all share a leaf of degree 1 and are the
        # most important; add a hub-hub style triangle to compare.
        edges = np.array([[0, 1], [0, 2], [0, 3], [1, 2]])
        g = Graph.from_edges(4, edges)
        importance = edge_importance(g)
        pairs = {tuple(e): i for e, i in zip(g.edge_list(), importance)}
        assert pairs[(0, 3)] > pairs[(1, 2)]  # leaf edge beats triangle edge


class TestSparsify:
    def test_keep_one_is_identity(self, dense_graph):
        assert sparsify(dense_graph, 1.0) is dense_graph

    def test_edge_budget_respected(self, dense_graph):
        sparse = sparsify(dense_graph, 0.4, rng=np.random.default_rng(0))
        ratio = sparse.num_edges / dense_graph.num_edges
        assert 0.25 < ratio < 0.55

    def test_keeps_features_and_labels(self, dense_graph):
        sparse = sparsify(dense_graph, 0.5, rng=np.random.default_rng(0))
        assert sparse.features is dense_graph.features
        np.testing.assert_array_equal(sparse.labels, dense_graph.labels)

    def test_reweighting_approximately_unbiased(self, dense_graph):
        """Across samples, total reweighted edge mass ≈ original mass."""
        masses = []
        for seed in range(8):
            sparse = sparsify(dense_graph, 0.5,
                              rng=np.random.default_rng(seed))
            masses.append(sparse.adjacency.sum())
        original = dense_graph.adjacency.sum()
        assert abs(np.mean(masses) - original) / original < 0.1

    def test_unweighted_mode(self, dense_graph):
        sparse = sparsify(dense_graph, 0.5, rng=np.random.default_rng(0),
                          reweight=False)
        assert sparse.adjacency.max() == 1.0

    def test_invalid_fraction(self, dense_graph):
        with pytest.raises(GraphError):
            sparsify(dense_graph, 0.0)
        with pytest.raises(GraphError):
            sparsify(dense_graph, 1.5)

    def test_distortion_decreases_with_budget(self, dense_graph):
        rng = np.random.default_rng(0)
        light = spectral_distortion(
            dense_graph, sparsify(dense_graph, 0.8, rng=rng))
        heavy = spectral_distortion(
            dense_graph, sparsify(dense_graph, 0.2, rng=rng))
        assert light < heavy

    def test_sparsified_training_still_learns(self, dense_graph):
        from repro.tasks import run_node_classification
        from repro.training import TrainConfig

        sparse = sparsify(dense_graph, 0.5, rng=np.random.default_rng(0))
        config = TrainConfig(epochs=15, patience=10, metric="roc_auc")
        full = run_node_classification(dense_graph, "monomial", config=config)
        light = run_node_classification(sparse, "monomial", config=config)
        assert light.test_score > 0.5  # still above chance
        assert abs(full.test_score - light.test_score) < 0.25
