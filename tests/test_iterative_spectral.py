"""Iterative spectral architecture: layer stacking, response composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import functional as F
from repro.autodiff.optim import Adam
from repro.errors import TrainingError
from repro.filters import make_filter
from repro.models import IterativeSpectralModel


def linear_factory():
    return make_filter("linear_var")


def cheb_factory():
    return make_filter("chebyshev", num_hops=2)


class TestStructure:
    def test_forward_shape(self, small_graph, rng):
        model = IterativeSpectralModel(linear_factory,
                                       in_features=small_graph.num_features,
                                       out_features=4, hidden=16,
                                       num_layers=3, rng=rng)
        logits = model(small_graph)
        assert logits.shape == (small_graph.num_nodes, 4)

    def test_layer_validation(self, rng):
        with pytest.raises(TrainingError):
            IterativeSpectralModel(linear_factory, 4, 2, num_layers=0, rng=rng)

    def test_each_layer_owns_filter_params(self, small_graph, rng):
        model = IterativeSpectralModel(cheb_factory,
                                       in_features=small_graph.num_features,
                                       out_features=3, num_layers=2, rng=rng)
        assert len(model.filter_parameters()) == 2  # one θ per layer
        names = dict(model.named_parameters())
        assert any("0.filter_theta" in k for k in names)
        assert any("1.filter_theta" in k for k in names)

    def test_parameter_groups_disjoint(self, small_graph, rng):
        model = IterativeSpectralModel(cheb_factory,
                                       in_features=small_graph.num_features,
                                       out_features=3, num_layers=2, rng=rng)
        filter_ids = {id(p) for p in model.filter_parameters()}
        assert all(id(p) not in filter_ids
                   for p in model.transform_parameters())

    def test_fixed_filter_layers_have_no_filter_params(self, small_graph, rng):
        model = IterativeSpectralModel(lambda: make_filter("ppr", num_hops=2),
                                       in_features=small_graph.num_features,
                                       out_features=3, num_layers=2, rng=rng)
        assert model.filter_parameters() == []
        assert model.numpy_filter_params() is None


class TestComposedResponse:
    def test_product_of_layer_responses(self, rng):
        model = IterativeSpectralModel(lambda: make_filter("linear"),
                                       in_features=4, out_features=2,
                                       num_layers=3, rng=rng)
        lams = np.linspace(0, 2, 11)
        np.testing.assert_allclose(model.composed_response(lams),
                                   (2.0 - lams) ** 3, atol=1e-8)

    def test_composition_deepens_low_pass(self, rng):
        shallow = IterativeSpectralModel(lambda: make_filter("linear"),
                                         4, 2, num_layers=1, rng=rng)
        deep = IterativeSpectralModel(lambda: make_filter("linear"),
                                      4, 2, num_layers=3, rng=rng)
        lams = np.array([1.5])
        # Each extra layer multiplies the (2-λ) < 1 response at λ = 1.5.
        assert deep.composed_response(lams)[0] < shallow.composed_response(lams)[0]


class TestTraining:
    def test_learns(self, small_graph, rng):
        labels = small_graph.labels
        model = IterativeSpectralModel(linear_factory,
                                       in_features=small_graph.num_features,
                                       out_features=small_graph.num_classes,
                                       hidden=16, num_layers=2, dropout=0.1,
                                       rng=rng)
        optimizer = Adam(model.parameters(), lr=0.01)
        losses = []
        for _ in range(30):
            logits = model(small_graph)
            loss = F.cross_entropy(logits, labels)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8

    def test_gradients_reach_all_layers(self, small_graph, rng):
        model = IterativeSpectralModel(cheb_factory,
                                       in_features=small_graph.num_features,
                                       out_features=3, num_layers=2, rng=rng)
        model(small_graph).sum().backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name

    def test_comparable_to_decoupled(self, small_graph):
        """Appendix A.1: the two architectures reach similar accuracy."""
        from repro.tasks import run_node_classification
        from repro.training import TrainConfig
        from repro.datasets import random_split
        from repro.training.metrics import accuracy

        config = TrainConfig(epochs=40, patience=0, eval_every=100)
        split = random_split(small_graph.num_nodes, seed=0)
        decoupled = run_node_classification(small_graph, "monomial_var",
                                            config=config, split=split)
        rng = np.random.default_rng(0)
        model = IterativeSpectralModel(
            lambda: make_filter("monomial_var", num_hops=3),
            in_features=small_graph.num_features,
            out_features=small_graph.num_classes,
            hidden=64, num_layers=2, dropout=0.5, rng=rng)
        optimizer = Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
        labels = small_graph.labels
        for _ in range(40):
            model.train()
            logits = model(small_graph)
            loss = F.cross_entropy(logits[split.train], labels[split.train])
            model.zero_grad()
            loss.backward()
            optimizer.step()
        model.eval()
        from repro.autodiff import no_grad

        with no_grad():
            iterative_acc = accuracy(model(small_graph).data[split.test],
                                     labels[split.test])
        assert abs(iterative_acc - decoupled.test_score) < 0.25
