"""Shared fixtures: small deterministic graphs and signals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthesize
from repro.graph import Graph
from repro.runtime.artifacts import ARTIFACT_DIR_ENV
from repro.telemetry.registry import REGISTRY_DIR_ENV


@pytest.fixture(autouse=True)
def _isolated_run_registry(tmp_path_factory, monkeypatch):
    """Point the run registry at a per-session tmp dir.

    Unit tests exercise the bench CLI end-to-end; without this they would
    append records to the real ``benchmarks/results/registry`` index.
    """
    monkeypatch.setenv(REGISTRY_DIR_ENV,
                       str(tmp_path_factory.getbasetemp() / "run-registry"))


@pytest.fixture(autouse=True)
def _isolated_artifact_store(tmp_path, monkeypatch):
    """Point the cell artifact store at a per-*test* tmp dir.

    Per-test (not per-session): a stale artifact from one test served as
    a hit in another would make resume tests order-dependent. Tests that
    need a shared store across multiple CLI invocations pass an explicit
    ``--artifact-dir`` instead.
    """
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path / "artifact-store"))


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def tiny_graph():
    """A fixed 8-node graph with two triangles and a bridge."""
    edges = np.array([
        [0, 1], [1, 2], [2, 0],      # triangle A
        [3, 4], [4, 5], [5, 3],      # triangle B
        [2, 3],                      # bridge
        [5, 6], [6, 7],              # tail
    ])
    labels = np.array([0, 0, 0, 1, 1, 1, 1, 1])
    features = np.eye(8, dtype=np.float32)
    return Graph.from_edges(8, edges, features=features, labels=labels,
                            name="tiny")


@pytest.fixture
def small_graph():
    """A ~270-node cora-like synthetic graph (homophilous)."""
    return synthesize("cora", scale=0.1, seed=3)


@pytest.fixture
def hetero_graph():
    """A chameleon-like heterophilous synthetic graph."""
    return synthesize("chameleon", scale=0.5, seed=3)


@pytest.fixture
def signal(small_graph, rng):
    return rng.normal(size=(small_graph.num_nodes, 6)).astype(np.float32)
