"""Design-time tooling: recommend filters and design responses, no training.

Two extension features built on the benchmark's machinery:

1. :func:`repro.spectral.recommend_filters` — the paper's C5 guideline as
   a function: rank all 27 filters for a given graph by spectral alignment
   discounted by taxonomy cost.
2. :func:`repro.filters.fit_filter_to_response` — closed-form filter
   design: solve for θ so a chosen basis family realizes a target transfer
   function (here: a band-reject / notch filter), then verify by actual
   graph propagation.

Run:  python examples/design_and_recommend.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import render_table
from repro.datasets import synthesize
from repro.filters import design_error, fit_filter_to_response, make_filter
from repro.spectral import recommend_filters, response_on_grid
from repro.tasks import run_node_classification
from repro.training import TrainConfig


def show_recommendations() -> None:
    graph = synthesize("roman", scale=0.2, seed=0)
    recommendations = recommend_filters(graph, num_hops=10)
    rows = [
        {
            "rank": index + 1,
            "filter": rec.display,
            "type": rec.category,
            "alignment": f"{rec.alignment:.3f}",
            "score": f"{rec.score:.3f}",
        }
        for index, rec in enumerate(recommendations[:8])
    ]
    print(render_table(rows, title="top filter recommendations for "
                                   "roman-empire-like heterophily"))

    # Spot-check the guideline: train the top pick against the worst-ranked
    # fixed filter (fixed responses cannot adapt, so their alignment score
    # is exact; adaptive filters near the bottom may still recover).
    config = TrainConfig(epochs=50, patience=25, seed=0)
    top = recommendations[0]
    bottom = [r for r in recommendations if r.category == "fixed"][-1]
    top_result = run_node_classification(graph, top.filter_name, config=config)
    bottom_result = run_node_classification(graph, bottom.filter_name,
                                            config=config)
    print(f"\ntrained: {top.display} -> {top_result.test_score:.3f}   vs   "
          f"{bottom.display} -> {bottom_result.test_score:.3f}")


def design_notch_filter() -> None:
    """Design a band-reject filter (kill mid frequencies) in closed form."""
    target = lambda lam: 1.0 - np.exp(-10.0 * (lam - 1.0) ** 2)
    rows = []
    for name in ("monomial_var", "chebyshev", "bernstein", "figure"):
        filter_ = make_filter(name, num_hops=10)
        params = fit_filter_to_response(filter_, target)
        rows.append(
            {
                "basis": name,
                "design_rms": f"{design_error(filter_, params, target):.4f}",
            }
        )
    print()
    print(render_table(rows, title="notch-filter design error per basis"))

    # Verify the designed Chebyshev filter on an actual graph signal.
    graph = synthesize("cora", scale=0.1, seed=0)
    filter_ = make_filter("chebyshev", num_hops=10)
    from repro.spectral import laplacian_eigendecomposition

    eigenvalues, eigenvectors = laplacian_eigendecomposition(graph)
    params = fit_filter_to_response(filter_, target, grid=eigenvalues)
    from repro.filters.base import PropagationContext

    rng = np.random.default_rng(0)
    x = rng.normal(size=(graph.num_nodes, 1)).astype(np.float32)
    out = np.asarray(filter_.forward(
        PropagationContext.for_graph(graph), x, params))
    expected = eigenvectors @ (target(eigenvalues)[:, None] *
                               (eigenvectors.T @ x))
    error = np.linalg.norm(out - expected) / np.linalg.norm(expected)
    print(f"\npropagation vs exact spectral notch: relative error {error:.4f}")


def main() -> None:
    show_recommendations()
    design_notch_filter()


if __name__ == "__main__":
    main()
