"""Filter selection by graph spectrum: the paper's C5 guideline, executable.

The benchmark's core practical advice: *understand the graph first, then
pick the simplest filter whose frequency response matches it*. This script
walks that workflow on one homophilous and one heterophilous dataset:

1. measure homophily and decompose the label signal on the Laplacian
   eigenbasis;
2. screen the **fixed** filters by the alignment between their frequency
   response and the label signal's spectral energy — no training needed;
3. train everything (fixed + adaptive) and confirm that (a) the screening
   ranks the fixed filters correctly and (b) the alignment of the *learned*
   responses tracks accuracy across all filters (RQ6/C5).

Run:  python examples/filter_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import render_table
from repro.datasets import synthesize
from repro.filters import REGISTRY, make_filter
from repro.graph import node_homophily
from repro.spectral import response_alignment
from repro.tasks import run_node_classification
from repro.training import TrainConfig

FIXED_CANDIDATES = ("impulse", "ppr", "monomial", "hk")
ADAPTIVE_CANDIDATES = ("chebyshev", "bernstein", "fagnn")


def label_signal(graph) -> np.ndarray:
    one_hot = np.zeros((graph.num_nodes, graph.num_classes))
    one_hot[np.arange(graph.num_nodes), graph.labels] = 1.0
    return one_hot - one_hot.mean(axis=0, keepdims=True)


def analyze(name: str, scale: float) -> None:
    graph = synthesize(name, scale=scale, seed=0)
    signal = label_signal(graph)
    print(f"\n=== {name}: H = {node_homophily(graph):.2f} ===")

    config = TrainConfig(epochs=60, patience=30, seed=0)
    rows = []
    for filter_name in FIXED_CANDIDATES + ADAPTIVE_CANDIDATES:
        filter_ = make_filter(filter_name, num_hops=10,
                              num_features=graph.num_features)
        screening = response_alignment(filter_, graph, signal)
        result = run_node_classification(graph, filter_name,
                                         scheme="full_batch", config=config)
        learned = response_alignment(filter_, graph, signal,
                                     params=result.filter_params)
        rows.append(
            {
                "filter": filter_name,
                "type": REGISTRY[filter_name].category,
                "screen_alignment": f"{screening:.3f}",
                "learned_alignment": f"{learned:.3f}",
                "test_acc": f"{result.test_score:.3f}",
            }
        )
    rows.sort(key=lambda r: -float(r["learned_alignment"]))
    print(render_table(rows, title="spectral alignment vs trained accuracy"))

    fixed = [r for r in rows if r["type"] == "fixed"]
    screened_best = max(fixed, key=lambda r: float(r["screen_alignment"]))
    actual_best_fixed = max(fixed, key=lambda r: float(r["test_acc"]))
    print(f"fixed-filter screening suggested: {screened_best['filter']}; "
          f"best fixed after training: {actual_best_fixed['filter']}")

    alignment = np.array([float(r["learned_alignment"]) for r in rows])
    accuracy = np.array([float(r["test_acc"]) for r in rows])
    corr = np.corrcoef(alignment, accuracy)[0, 1]
    print(f"corr(learned alignment, accuracy) = {corr:.2f} "
          "(C5: response/graph match drives effectiveness)")


def main() -> None:
    analyze("cora", scale=0.5)       # homophilous: low-pass aligns
    analyze("chameleon", scale=1.0)  # heterophilous: high-frequency aligns


if __name__ == "__main__":
    main()
