"""Quickstart: train one spectral filter on a synthetic cora and inspect it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import render_table
from repro.datasets import synthesize
from repro.graph import node_homophily
from repro.spectral import response_on_grid
from repro.tasks import run_node_classification
from repro.training import TrainConfig


def main() -> None:
    # 1. A cora-like graph (the registry mirrors the paper's Table 3).
    graph = synthesize("cora", scale=0.5, seed=0)
    print(f"graph: {graph}")
    print(f"node homophily: {node_homophily(graph):.3f} (target 0.83)\n")

    # 2. Train the PPR filter (APPNP's kernel) under both learning schemes.
    config = TrainConfig(epochs=60, patience=30, seed=0)
    rows = []
    for scheme in ("full_batch", "mini_batch"):
        result = run_node_classification(graph, "ppr", scheme=scheme,
                                         config=config, filter_hp={"alpha": 0.1})
        rows.append(
            {
                "scheme": scheme,
                "test_acc": f"{result.test_score:.3f}",
                "epochs": result.epochs_run,
                "precompute_s": f"{result.precompute_seconds:.2f}",
                "train_ms_per_epoch": f"{result.train_seconds_per_epoch * 1e3:.1f}",
                "device_MB": f"{result.device_peak_bytes / 2**20:.1f}",
                "ram_MB": f"{result.ram_peak_bytes / 2**20:.1f}",
            }
        )
    print(render_table(rows, title="PPR filter, full-batch vs mini-batch"))

    # 3. The same filter object answers spectral questions exactly.
    from repro.filters import make_filter

    lams, response = response_on_grid(make_filter("ppr", alpha=0.1),
                                      num_points=9)
    print("\nPPR frequency response g(λ):")
    for lam, value in zip(lams, response):
        bar = "#" * int(40 * value / response.max())
        print(f"  λ={lam:4.2f}  {value:6.3f}  {bar}")


if __name__ == "__main__":
    main()
