"""Scaling study: why mini-batch is the spectral GNN superpower (RQ1/RQ2).

Trains the same filter under full-batch and mini-batch across three graph
scales (S/M/L stand-ins) and prints the paper's Figure 2 story in one
table: FB device memory grows with the graph and eventually OOMs, MB keeps
the device footprint flat and shifts cost into a one-off CPU precompute —
winning big exactly where propagation dominates.

Run:  python examples/scaling_minibatch.py
"""

from __future__ import annotations

from repro.bench import load_dataset, render_table
from repro.tasks import run_node_classification
from repro.training import TrainConfig

DATASETS = ("cora", "arxiv", "pokec")   # S, M, L at default bench scales
FILTER = "chebyshev"                    # a variable filter: the harder case
CAPACITY_GIB = 0.10                     # scaled stand-in for a 24 GB card


def main() -> None:
    config = TrainConfig(epochs=10, patience=0, eval_every=100,
                         batch_size=512, seed=0)
    rows = []
    for dataset in DATASETS:
        graph = load_dataset(dataset, seed=0)
        for scheme in ("full_batch", "mini_batch"):
            result = run_node_classification(
                graph, FILTER, scheme=scheme, config=config,
                device_capacity_gib=CAPACITY_GIB)
            rows.append(
                {
                    "dataset": dataset,
                    "n": graph.num_nodes,
                    "m": graph.num_edges,
                    "scheme": scheme,
                    "status": result.status,
                    "acc": "-" if result.is_oom else f"{result.test_score:.3f}",
                    "precompute_s": f"{result.precompute_seconds:.2f}",
                    "train_ms/ep": f"{result.train_seconds_per_epoch * 1e3:.0f}",
                    "device_MB": f"{result.device_peak_bytes / 2**20:.0f}",
                    "ram_MB": f"{result.ram_peak_bytes / 2**20:.0f}",
                }
            )
    print(render_table(
        rows, title=f"{FILTER} under FB vs MB across scales "
                    f"(simulated {CAPACITY_GIB} GiB device)"))
    print(
        "\nReading guide (matches the paper's RQ1/RQ2):\n"
        " - FB device memory scales with n·m and hits (OOM) on the largest"
        " graph;\n"
        " - MB device memory is flat: only weights + one batch live on"
        " device;\n"
        " - MB trades that for RAM (the K+1 stored hop channels) and a"
        " one-off precompute;\n"
        " - the MB speedup grows with graph size because it removes the"
        " per-epoch propagation."
    )


if __name__ == "__main__":
    main()
