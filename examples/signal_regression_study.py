"""Signal-regression study: what can each filter family express? (Table 7)

Fits representative filters to the five spectral transfer functions and
prints the R² matrix plus each learned filter's frequency response, making
the paper's RQ7 conclusion tangible: effectiveness is the match between a
filter's *attainable* response shape and the target signal.

Run:  python examples/signal_regression_study.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import render_table
from repro.datasets import SIGNAL_NAMES, synthesize
from repro.filters import make_filter
from repro.tasks import run_signal_regression

FILTERS = ("ppr", "hk", "monomial_var", "horner", "chebyshev", "bernstein",
           "optbasis")


def sparkline(values: np.ndarray, width: int = 24) -> str:
    """Render a response curve as a compact unicode sparkline."""
    blocks = " ▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=float)
    picked = values[np.linspace(0, len(values) - 1, width).astype(int)]
    low, high = picked.min(), picked.max()
    span = max(high - low, 1e-9)
    return "".join(blocks[int((v - low) / span * (len(blocks) - 1))]
                   for v in picked)


def main() -> None:
    graph = synthesize("cora", scale=0.1, seed=0)
    lams = np.linspace(0.0, 2.0, 48)

    rows = []
    responses = {}
    for filter_name in FILTERS:
        row = {"filter": filter_name}
        for signal_name in SIGNAL_NAMES:
            result = run_signal_regression(graph, filter_name, signal_name,
                                           num_hops=10, epochs=150, seed=0)
            row[signal_name] = f"{100 * result.r2:6.1f}"
            if signal_name == "band":
                filter_ = make_filter(filter_name, num_hops=10,
                                      num_features=4)
                responses[filter_name] = filter_.response(
                    lams, result.learned_params or None)
        rows.append(row)
    print(render_table(rows, title="R² (×100) per filter × signal"))

    print("\nLearned responses after fitting the BAND signal "
          "(target: bump at λ=1):")
    from repro.datasets import SIGNAL_FUNCTIONS

    print(f"  {'target':12s} {sparkline(SIGNAL_FUNCTIONS['band'](lams))}")
    for name, response in responses.items():
        print(f"  {name:12s} {sparkline(response)}")
    print(
        "\nFixed low-pass filters (ppr, hk) cannot bend toward the band"
        " target;\nvariable bases reshape themselves to it — the expressive"
        " gap Table 7 quantifies."
    )


if __name__ == "__main__":
    main()
