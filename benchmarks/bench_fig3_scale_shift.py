"""Figure 3 — shift of filter effectiveness across graph scales.

Regenerates the relative-accuracy-vs-n series: one homophilous dataset per
scale class (S/M/L), each filter's accuracy normalized to the per-dataset
best. The paper's observation: the spread between suitable and unsuitable
filters widens as n grows.
"""

from __future__ import annotations

import numpy as np

from repro.bench import scale_shift_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once


def test_fig3_scale_shift(benchmark):
    config = TrainConfig(epochs=env_epochs(40), patience=20, batch_size=512)
    rows = run_once(
        benchmark, scale_shift_experiment,
        filters=("linear", "impulse", "monomial", "ppr", "monomial_var",
                 "chebyshev"),
        dataset_names=("cora", "arxiv", "products"),
        seeds=(0, 1),
        config=config,
    )
    emit(rows, title="Fig 3: relative accuracy vs graph scale")

    spreads = {}
    for dataset in ("cora", "arxiv", "products"):
        rel = [r["relative_accuracy"] for r in rows if r["dataset"] == dataset]
        spreads[dataset] = 1.0 - min(rel)
    # Divergence grows with scale: the large graph separates filters at
    # least as much as the small one (the paper's Figure 3 trend).
    assert spreads["products"] >= spreads["cora"] - 0.02
    sizes = {r["dataset"]: r["n"] for r in rows}
    assert sizes["cora"] < sizes["arxiv"] < sizes["products"]
