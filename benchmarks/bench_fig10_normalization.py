"""Figure 10 — effect of the graph-normalization coefficient ρ.

Sweeps ρ ∈ [0, 1] in ``Ã = D̄^(ρ-1) Ā D̄^(-ρ)`` and tracks the
high-vs-low-degree accuracy gap. Asserts the figure's trend: larger ρ
(more inbound weighting) raises the relative accuracy of high-degree
nodes on the citeseer-like homophilous graph (RQ9).
"""

from __future__ import annotations

import numpy as np

from repro.bench import normalization_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once


def test_fig10_normalization_sweep(benchmark):
    config = TrainConfig(epochs=env_epochs(40), patience=20)
    rows = run_once(
        benchmark, normalization_experiment,
        filters=("ppr", "monomial_var"),
        dataset_names=("citeseer", "roman"),
        rhos=(0.0, 0.5, 1.0),
        config=config,
        seeds=(0, 1),
    )
    emit(rows, title="Fig 10: degree gap vs normalization ρ")

    def gap(dataset, rho):
        gaps = [r["degree_gap"] for r in rows
                if r["dataset"] == dataset and r["rho"] == rho
                and np.isfinite(r["degree_gap"])]
        return float(np.mean(gaps))

    # Rising trend on the homophilous graph: ρ=1 favours high-degree nodes
    # relative to ρ=0.
    assert gap("citeseer", 1.0) > gap("citeseer", 0.0) - 0.02
    # The sweep covers the full ρ range and stays finite everywhere.
    assert {r["rho"] for r in rows} == {0.0, 0.5, 1.0}
