"""Figure 6 — mini-batch link prediction efficiency on the PPA stand-in.

Regenerates the per-filter precompute/train breakdown for the κm-sample
link-prediction task. Asserts the section's claim: efficiency is dominated
by the transformation stage (the edge-wise MLP), not by graph propagation —
the opposite of node classification on large graphs.
"""

from __future__ import annotations

from repro.bench import linkpred_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once

COLUMNS = ["dataset", "filter", "type", "status", "auc", "precompute_s",
           "train_s_per_epoch", "ram_bytes", "device_bytes"]


def test_fig6_link_prediction(benchmark):
    config = TrainConfig(epochs=env_epochs(3), patience=0, metric="roc_auc",
                         batch_size=1024)
    rows = run_once(
        benchmark, linkpred_experiment,
        filters=("identity", "impulse", "ppr", "monomial_var", "chebyshev",
                 "fagnn"),
        scale=0.003,
        kappa=3,
        config=config,
    )
    emit(rows, columns=COLUMNS, title="Fig 6: MB link prediction on PPA")

    assert all(r["status"] == "ok" for r in rows)
    # Transformation dominates: per-epoch training cost exceeds the
    # one-off propagation precompute even for fixed filters.
    for r in rows:
        if r["type"] == "fixed" and r["filter"] != "Identity":
            assert r["train_s_per_epoch"] > 0.5 * r["precompute_s"]
    # Structural filters beat the featureless-identity baseline on AUC.
    identity_auc = next(r["auc"] for r in rows if r["filter"] == "Identity")
    best_structural = max(r["auc"] for r in rows if r["filter"] != "Identity")
    assert best_structural >= identity_auc - 0.02
