"""Crash/resume byte-identity gate for the cell artifact store.

Simulates the workflow the store exists for — a sweep that dies partway —
through the real CLI, and holds :mod:`repro.runtime.artifacts` +
:mod:`repro.runtime.pool` to the resumable-sweep contract:

1. ``--fresh`` populates the store: one small efficiency sweep (2
   datasets × 2 filters × 1 scheme = 4 grid cells) runs live and
   persists all 4 cell artifacts.
2. Half the artifacts are deleted — the on-disk state an interrupted
   sweep leaves behind (cells commit atomically, so a kill leaves some
   complete artifacts and nothing else).
3. ``--resume`` reruns the same configuration: the surviving cells are
   served from the store (``artifacts.hit == 2``), only the remainder
   executes (``miss == stored == 2``), and ``pool.stats`` reports
   ``cached`` + ``ok`` summing to the grid size.
4. **The gate**: after stripping execution-dependent fields
   (:func:`repro.bench.io.canonical_rows`), the resumed run's payload is
   *byte-identical* to the uninterrupted ``--fresh`` run's — a hit
   substitutes exactly the bytes a live execution would have produced.
5. Both registry records (schema v4) share one config fingerprint; the
   resume mode and store traffic live in the ``artifacts`` block outside
   it.

The normalized payloads are persisted under
``benchmarks/results/resume_smoke/`` so the ``bench-resume`` CI job can
upload them for post-mortem diffing.
"""

from __future__ import annotations

import shutil

from repro.bench.__main__ import main as bench_main
from repro.bench.io import canonical_payload, load_rows
from repro.runtime.artifacts import ArtifactStore
from repro.telemetry.registry import RunRegistry

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 3
RESUME_DIR = RESULTS_DIR / "resume_smoke"
STORE_DIR = RESUME_DIR / "artifacts"
GRID_CELLS = 4   # 2 datasets x 2 filters x 1 scheme
DELETED = 2      # artifacts removed to simulate the mid-sweep kill


def _one_cli_run(mode: str, epochs: int) -> int:
    return bench_main([
        "efficiency", "--datasets", "cora", "citeseer",
        "--filters", "ppr", "chebyshev", "--schemes", "mini_batch",
        "--epochs", str(epochs), "--workers", "2",
        f"--{mode}", "--artifact-dir", str(STORE_DIR),
        "--registry-dir", str(RESUME_DIR),
        "--output", str(RESUME_DIR / f"{mode}.json"),
    ])


def _resume_smoke(epochs: int) -> dict:
    if RESUME_DIR.exists():
        shutil.rmtree(RESUME_DIR)
    RESUME_DIR.mkdir(parents=True)

    exit_codes = {"fresh": _one_cli_run("fresh", epochs)}

    store = ArtifactStore(STORE_DIR)
    populated = len(store)
    for address in store.addresses()[:DELETED]:
        store.discard(address)
    survivors = len(store)

    exit_codes["resume"] = _one_cli_run("resume", epochs)

    payloads = {}
    for mode in ("fresh", "resume"):
        payload = canonical_payload(load_rows(RESUME_DIR / f"{mode}.json"))
        payloads[mode] = payload
        (RESUME_DIR / f"payload_{mode}.json").write_bytes(payload)

    registry = RunRegistry(RESUME_DIR)
    records = {record.artifacts.get("mode"): record
               for record in registry.load()}

    return {
        "exit_codes": exit_codes,
        "populated": populated,
        "survivors": survivors,
        "payloads": payloads,
        "records": records,
        "corrupt_lines": registry.corrupt_lines,
    }


def test_resume_smoke_gate(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _resume_smoke, epochs)

    emit([{"mode": mode,
           **{k: record.artifacts.get(k)
              for k in ("hit", "miss", "stored", "cells")},
           "pool_ok": record.pool["stats"]["ok"],
           "pool_cached": record.pool["stats"]["cached"]}
          for mode, record in sorted(report["records"].items())],
         title="artifact-store traffic, fresh vs resumed")

    # Both CLI invocations completed and were indexed cleanly.
    assert report["exit_codes"] == {"fresh": 0, "resume": 0}
    assert report["corrupt_lines"] == 0
    assert set(report["records"]) == {"fresh", "resume"}

    # The fresh run stored every cell; the deletion left exactly half.
    assert report["populated"] == GRID_CELLS
    assert report["survivors"] == GRID_CELLS - DELETED

    # --- store traffic: survivors hit, the remainder re-executed.
    fresh, resumed = report["records"]["fresh"], report["records"]["resume"]
    assert fresh.artifacts["hit"] == 0
    assert fresh.artifacts["stored"] == GRID_CELLS
    assert resumed.artifacts["hit"] == GRID_CELLS - DELETED
    assert resumed.artifacts["hit"] > 0, "resume gate is vacuous: no hits"
    assert resumed.artifacts["miss"] == DELETED
    assert resumed.artifacts["stored"] == DELETED, \
        "re-executed cells must repopulate the store"

    # --- pool accounting: cached + ok == grid size.
    stats = resumed.pool["stats"]
    assert stats["cached"] == GRID_CELLS - DELETED
    assert stats["ok"] == DELETED
    assert stats["cached"] + stats["ok"] == stats["cells"] == GRID_CELLS
    assert stats["failed"] == 0

    # --- the byte gate: resumed == uninterrupted after normalization.
    assert report["payloads"]["fresh"], "fresh run produced an empty payload"
    assert report["payloads"]["fresh"] == report["payloads"]["resume"], (
        "resumed sweep diverged from the uninterrupted run; diff "
        f"{RESUME_DIR / 'payload_fresh.json'} against "
        f"{RESUME_DIR / 'payload_resume.json'}")

    # --- registry: one config, two modes (schema v4).
    assert fresh.config_fingerprint == resumed.config_fingerprint, \
        "resume mode leaked into the config fingerprint"
    assert fresh.schema.endswith("/v6")
    assert resumed.artifacts["mode"] == "resume"
