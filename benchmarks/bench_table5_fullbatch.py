"""Table 5 — effectiveness of all filter types under full-batch training.

Regenerates the paper's accuracy matrix (filters × datasets, mean±std
cells) on one homophilous and two heterophilous synthetic datasets, and
asserts the paper's headline effectiveness shapes:

- under homophily, graph filters beat the Identity/MLP baseline and most
  filters bunch near the top (RQ3);
- under heterophily, pure low-pass filters (Impulse) collapse — sometimes
  below Identity — while filters with high-frequency components recover
  (RQ3/RQ4).
"""

from __future__ import annotations

import numpy as np

from repro.bench import REPRESENTATIVE_FILTERS, effectiveness_experiment, pivot
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once

DATASETS = ("cora", "citeseer", "chameleon", "roman")


def test_table5_fullbatch_effectiveness(benchmark):
    config = TrainConfig(epochs=env_epochs(40), patience=20)
    rows = run_once(
        benchmark, effectiveness_experiment,
        dataset_names=DATASETS,
        filters=REPRESENTATIVE_FILTERS,
        scheme="full_batch",
        seeds=(0, 1),
        config=config,
    )
    wide = pivot(rows, index="filter", column="dataset", value="cell")
    emit(wide, title="Table 5: full-batch effectiveness (mean±std %)")

    score = {(r["dataset"], r["filter"]): r["mean"] for r in rows}

    # Homophily: structure helps — the best graph filter clearly beats MLP.
    for dataset in ("cora", "citeseer"):
        best_graph = max(v for (d, f), v in score.items()
                         if d == dataset and f != "Identity")
        assert best_graph > score[(dataset, "Identity")] + 0.03

    # Heterophily: K-hop low-pass (Impulse) loses badly to the best filter,
    # and ranks at (or near) the bottom.
    for dataset in ("chameleon", "roman"):
        dataset_scores = {f: v for (d, f), v in score.items() if d == dataset}
        best = max(dataset_scores.values())
        assert dataset_scores["Impulse"] < best - 0.10
        order = sorted(dataset_scores, key=dataset_scores.get)
        assert "Impulse" in order[:4]
