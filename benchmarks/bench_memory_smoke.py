"""Memory-observatory smoke gate: the ledger must *account* and *gate*.

Exercises the full memory vertical on a small efficiency slice:

- **Accounting sanity** (controlled, not workload-noise-driven): a single
  64 MiB engine allocation inside a span is accounted byte-exactly by the
  ledger, attributed to the right span path, and the ledger peak never
  exceeds the measured RSS peak (accounted ⊆ measured).
- **CLI vertical**: two real CLI runs — one with ``--mem-trace``, one
  without — both append registry records whose schema-v5 ``memory`` block
  carries the ledger peak and the accounting-coverage ratios; the
  ``--mem-trace`` run's Chrome trace contains the ``ledger_live`` counter
  track next to the RSS track.
- **Payload isolation**: the canonical result payloads of the two runs
  are byte-identical — the observatory is observability, never payload.
- **Gate calibration**: the pinned ``benchmarks/thresholds/efficiency
  .json`` memory rules pass on the clean pair and fail when a synthetic
  2× ledger-peak inflation is injected into the candidate — the memory
  gate is neither vacuous nor trigger-happy.

Artifacts (registry, traces, verdict tables) persist under
``benchmarks/results/memory_smoke/`` for the ``bench-memory`` CI job.
"""

from __future__ import annotations

import copy
import json
import shutil

import numpy as np

from repro import telemetry
from repro.autodiff import Tensor
from repro.bench.__main__ import main as bench_main
from repro.bench.io import canonical_payload, load_rows
from repro.telemetry.regression import (
    evaluate_pair,
    passed,
    pinned_thresholds,
    render_verdict_table,
)
from repro.telemetry.registry import RunRegistry

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 4
MEMORY_DIR = RESULTS_DIR / "memory_smoke"
THRESHOLDS_DIR = RESULTS_DIR.parent / "thresholds"

#: The controlled allocation: large enough that allocator reuse and
#: interpreter noise cannot hide it, small enough for any CI runner.
PROBE_BYTES = 64 * 2 ** 20


def _controlled_accounting() -> dict:
    """One 64 MiB allocation, accounted end to end."""
    telemetry.shutdown()
    telemetry.configure()
    with telemetry.span("probe"):
        tensor = Tensor(np.zeros(PROBE_BYTES // 4, dtype=np.float32))
    ledger = telemetry.get_ledger()
    out = {
        "peak_bytes": ledger.peak_bytes,
        "peak_path": ledger.peak_path,
        "live_bytes": ledger.live_bytes,
        "rss_peak_bytes": telemetry.peak_rss_bytes(),
    }
    del tensor
    events = telemetry.shutdown()
    out["span_mem_bytes"] = next(
        e["mem_bytes"] for e in events if e.get("name") == "probe")
    return out


def _cli_run(index: int, epochs: int, mem_trace: bool) -> int:
    argv = [
        "efficiency", "--datasets", "cora", "--filters", "ppr",
        "--schemes", "mini_batch", "--epochs", str(epochs),
        "--registry-dir", str(MEMORY_DIR),
        "--trace", str(MEMORY_DIR / f"run{index}.jsonl"),
        "--output", str(MEMORY_DIR / f"run{index}.json"),
        "--live", str(MEMORY_DIR / f"run{index}.live.jsonl"),
    ]
    if mem_trace:
        argv.append("--mem-trace")
    return bench_main(argv)


def _memory_smoke(epochs: int) -> dict:
    if MEMORY_DIR.exists():
        shutil.rmtree(MEMORY_DIR)
    probe = _controlled_accounting()

    # Run 1 untraced timeline, run 2 with --mem-trace: the pair doubles as
    # the payload-isolation check and the registry's (baseline, candidate).
    exit_codes = [_cli_run(1, epochs, mem_trace=False),
                  _cli_run(2, epochs, mem_trace=True)]

    payloads = [canonical_payload(load_rows(MEMORY_DIR / f"run{i}.json"))
                for i in (1, 2)]

    trace_json = json.loads(
        (MEMORY_DIR / "run2.live.trace.json").read_text())
    counter_tracks = {e.get("name") for e in trace_json["traceEvents"]
                      if e.get("ph") == "C"}

    registry = RunRegistry(MEMORY_DIR)
    records = registry.load()
    baseline, candidate = registry.resolve_pair(
        records[-1].config_fingerprint)

    thresholds = pinned_thresholds("efficiency", directory=THRESHOLDS_DIR)
    clean_verdicts = evaluate_pair(baseline, candidate, thresholds)

    # Synthetic memory regression: a candidate whose accounted peak (and
    # total) is 2× the baseline's — +100%, past the 50%/75% memory gates.
    inflated = copy.deepcopy(candidate)
    for field in ("peak_bytes", "total_alloc_bytes"):
        if field in inflated.memory and field in baseline.memory:
            inflated.memory[field] = 2 * baseline.memory[field]
    inflated_verdicts = evaluate_pair(baseline, inflated, thresholds)

    return {
        "probe": probe,
        "exit_codes": exit_codes,
        "payloads": payloads,
        "counter_tracks": counter_tracks,
        "entries": len(records),
        "baseline": baseline,
        "candidate": candidate,
        "thresholds": thresholds,
        "clean_verdicts": clean_verdicts,
        "inflated_verdicts": inflated_verdicts,
    }


def test_memory_smoke_gate(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _memory_smoke, epochs)
    probe = report["probe"]
    baseline, candidate = report["baseline"], report["candidate"]

    emit([{"check": "probe.peak_bytes", "value": probe["peak_bytes"]},
          {"check": "probe.rss_peak_bytes", "value": probe["rss_peak_bytes"]},
          {"check": "candidate.memory.peak_bytes",
           "value": candidate.memory.get("peak_bytes")},
          {"check": "candidate.memory.coverage.ledger_vs_rss",
           "value": (candidate.memory.get("coverage") or {})
           .get("ledger_vs_rss")},
          {"check": "candidate.memory.device_peak_bytes",
           "value": candidate.memory.get("device_peak_bytes")}],
         title="memory observatory smoke")

    verdict_text = (render_verdict_table(report["clean_verdicts"])
                    + "\n\n-- with synthetic 2x ledger-peak inflation --\n"
                    + render_verdict_table(report["inflated_verdicts"]))
    (MEMORY_DIR / "verdicts.txt").write_text(verdict_text + "\n")
    print()
    print(verdict_text)

    # --- accounting sanity: the controlled 64 MiB probe is byte-exact.
    assert probe["peak_bytes"] >= PROBE_BYTES
    assert probe["span_mem_bytes"] >= PROBE_BYTES
    assert probe["peak_path"] == "probe"
    # Accounted memory can never exceed what the OS actually measured.
    assert probe["peak_bytes"] <= probe["rss_peak_bytes"]

    # --- CLI vertical: both runs indexed, memory blocks populated.
    assert report["exit_codes"] == [0, 0]
    assert report["entries"] == 2
    for record in (baseline, candidate):
        assert record.schema.endswith("/v6")
        assert record.memory["peak_bytes"] > 0
        assert record.memory["total_alloc_bytes"] \
            >= record.memory["peak_bytes"]
        coverage = record.memory["coverage"]
        assert coverage["ledger_vs_rss"] is not None
        assert 0.0 < coverage["ledger_vs_rss"] <= 1.0
    # Allocation totals are schedule-invariant, so the paired runs agree.
    assert baseline.memory["total_alloc_bytes"] \
        == candidate.memory["total_alloc_bytes"]
    assert baseline.memory["alloc_count"] == candidate.memory["alloc_count"]

    # --- Chrome trace: accounted + measured tracks side by side.
    assert "ledger_live" in report["counter_tracks"], \
        "--mem-trace run's Chrome trace is missing the ledger counter track"
    assert "rss" in report["counter_tracks"]

    # --- payload isolation: --mem-trace must not move a single result
    # byte (the observatory is observability, never payload).
    assert report["payloads"][0] == report["payloads"][1]

    # --- gate calibration: clean pair passes, 2x inflation fails on the
    # memory axis specifically.
    assert any(t.metric.startswith("memory.") for t in report["thresholds"]), \
        "pinned benchmarks/thresholds/efficiency.json lacks memory rules"
    assert passed(report["clean_verdicts"]), \
        render_verdict_table(report["clean_verdicts"])
    assert not passed(report["inflated_verdicts"]), \
        "a synthetic 2x ledger-peak inflation must trip the memory gate"
    failed = [v for v in report["inflated_verdicts"] if v.failed]
    assert failed and all(v.metric.startswith("memory.") for v in failed)
