"""Shared benchmark plumbing.

Every bench runs its experiment exactly once under pytest-benchmark
(``pedantic`` mode — these are minutes-long macro experiments, not
micro-kernels) and prints the paper-style table so the output can be put
side by side with the published artifact.

Environment knobs:

- ``REPRO_BENCH_EPOCHS``: training epochs per run (default 5 for
  efficiency benches, 40 for effectiveness benches).
- ``REPRO_BENCH_SCALE``: dataset scale override (default: per-class
  DEFAULT_SCALES).
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

from repro.bench import render_table

#: Rendered tables are also persisted here, because pytest captures stdout
#: of passing tests — `pytest benchmarks/` leaves one .txt per bench with
#: the paper-style tables for EXPERIMENTS.md.
RESULTS_DIR = Path(__file__).parent / "results"

_started_files: set = set()


def run_once(benchmark, fn, *args, **kwargs):
    """Execute an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1, warmup_rounds=0)


def _current_test_slug() -> str:
    current = os.environ.get("PYTEST_CURRENT_TEST", "bench")
    name = current.split("::")[-1].split(" ")[0]
    return re.sub(r"[^A-Za-z0-9_]+", "_", name) or "bench"


def emit(rows, columns=None, title=None):
    """Print a rendered table and persist it under benchmarks/results/."""
    text = render_table(rows, columns=columns, title=title)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{_current_test_slug()}.txt"
    mode = "a" if path in _started_files else "w"
    _started_files.add(path)
    with open(path, mode) as handle:
        handle.write(text + "\n\n")


def env_epochs(default: int) -> int:
    return int(os.environ.get("REPRO_BENCH_EPOCHS", default))


def env_scale():
    value = os.environ.get("REPRO_BENCH_SCALE")
    return float(value) if value else None
