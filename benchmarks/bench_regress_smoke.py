"""Regression-observatory smoke gate: the registry must *record* and *gate*.

Runs the same small efficiency bench twice through the real CLI (so the
full vertical is exercised: telemetry → trace → manifest → registry
append), then checks the contract the run observatory
(:mod:`repro.telemetry.registry` / :mod:`repro.telemetry.regression`)
makes:

- **recording**: both invocations appended a record to the registry under
  the same config fingerprint — a silently-skipped append would make
  every longitudinal comparison vacuous, so this is the canary.
- **resolution**: ``python -m repro.bench compare --registry <config>``
  resolves the two runs *by fingerprint* (no file paths) and exits 0.
- **gate calibration**: the *pinned* per-bench thresholds
  (``benchmarks/thresholds/efficiency.json`` — stage time/RAM growth plus
  exact op-counter equality) pass on the unmodified pair, and fail when a
  synthetic 2× slowdown is injected into every stage of the candidate —
  i.e. the gate is neither vacuous nor trigger-happy.

The registry index, both traces, and the rendered trace diff + verdict
tables are persisted under ``benchmarks/results/regress_smoke/`` so the
``bench-regress`` CI job can upload them as workflow artifacts.
"""

from __future__ import annotations

import copy
import shutil

from repro.bench.__main__ import main as bench_main
from repro.bench.compare import compare_registry
from repro.telemetry.regression import (
    evaluate_pair,
    passed,
    pinned_thresholds,
    render_verdict_table,
)
from repro.telemetry.registry import RunRegistry
from repro.telemetry.report import render_run_diff
from repro.telemetry.sinks import load_events

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 4
REGRESS_DIR = RESULTS_DIR / "regress_smoke"
THRESHOLDS_DIR = RESULTS_DIR.parent / "thresholds"


def _one_cli_run(index: int, epochs: int) -> int:
    return bench_main([
        "efficiency", "--datasets", "cora", "--filters", "ppr",
        "--schemes", "mini_batch", "--epochs", str(epochs),
        "--registry-dir", str(REGRESS_DIR),
        "--trace", str(REGRESS_DIR / f"run{index}.jsonl"),
    ])


def _regress_smoke(epochs: int) -> dict:
    if REGRESS_DIR.exists():
        shutil.rmtree(REGRESS_DIR)
    exit_codes = [_one_cli_run(index, epochs) for index in (1, 2)]

    registry = RunRegistry(REGRESS_DIR)
    records = registry.load()
    baseline, candidate, delta_rows = compare_registry(
        records[-1].config_fingerprint, registry_dir=REGRESS_DIR)

    compare_exit = bench_main([
        "compare", "--registry", candidate.config_fingerprint,
        "--registry-dir", str(REGRESS_DIR),
    ])

    thresholds = pinned_thresholds("efficiency", directory=THRESHOLDS_DIR)
    clean_verdicts = evaluate_pair(baseline, candidate, thresholds)

    # Synthetic regression: a candidate that takes 2× the *baseline* time
    # in every stage (+100% relative — comfortably past the 75% gate).
    slowed = copy.deepcopy(candidate)
    for name, stage in slowed.stages.items():
        base_stage = baseline.stages.get(name, {})
        for field in ("seconds", "self_seconds", "max_seconds"):
            if field in stage and field in base_stage:
                stage[field] = 2.0 * base_stage[field]
    slowed_verdicts = evaluate_pair(baseline, slowed, thresholds)

    return {
        "exit_codes": exit_codes,
        "compare_exit": compare_exit,
        "thresholds": thresholds,
        "entries": len(records),
        "corrupt_lines": registry.corrupt_lines,
        "fingerprints": registry.fingerprints(),
        "baseline": baseline,
        "candidate": candidate,
        "delta_rows": delta_rows,
        "clean_verdicts": clean_verdicts,
        "slowed_verdicts": slowed_verdicts,
    }


def test_regress_smoke_gate(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _regress_smoke, epochs)
    baseline, candidate = report["baseline"], report["candidate"]

    emit(report["delta_rows"],
         title="registry diff: two most recent runs of one fingerprint")

    # Persist the artifact bundle the CI job uploads.
    trace_diff = render_run_diff(load_events(baseline.trace_path),
                                 load_events(candidate.trace_path))
    verdict_text = (render_verdict_table(report["clean_verdicts"])
                    + "\n\n-- with synthetic 2x stage slowdown injected --\n"
                    + render_verdict_table(report["slowed_verdicts"]))
    (REGRESS_DIR / "trace_diff.txt").write_text(trace_diff + "\n")
    (REGRESS_DIR / "verdicts.txt").write_text(verdict_text + "\n")
    print()
    print(trace_diff)
    print()
    print(verdict_text)

    # --- recording: both CLI runs succeeded and were indexed together.
    assert report["exit_codes"] == [0, 0]
    assert report["entries"] == 2, \
        "registry did not gain one entry per bench invocation"
    assert report["corrupt_lines"] == 0
    assert baseline.config_fingerprint == candidate.config_fingerprint
    assert report["fingerprints"] == {candidate.config_fingerprint: 2}
    assert baseline.run_id != candidate.run_id

    # --- resolution: compare --registry works with no file-path argument.
    assert report["compare_exit"] == 0
    assert report["delta_rows"], "registry diff produced no delta rows"
    assert any(r["metric"].startswith("stages.") for r in report["delta_rows"])

    # --- gate calibration: the *pinned* per-bench thresholds were loaded
    # (they carry exact op-counter equality rules the stock defaults lack),
    # the clean pair passes them, and a 2x slowdown fails them.
    assert any(t.metric.startswith("metrics.counters.")
               for t in report["thresholds"]), \
        "pinned benchmarks/thresholds/efficiency.json was not picked up"
    assert passed(report["clean_verdicts"]), \
        render_verdict_table(report["clean_verdicts"])
    assert not passed(report["slowed_verdicts"]), \
        "a synthetic 2x stage slowdown must trip the regression gate"
    failed = [v for v in report["slowed_verdicts"] if v.failed]
    assert all(v.metric.endswith(".seconds") for v in failed)

    # The records carry enough observability surface to gate on: per-stage
    # exclusive timings and the op counters (eig/spmm FLOPs included).
    assert "self_seconds" in candidate.stages["train"]
    assert candidate.metrics["counters"]["ops.spmm.flops"] > 0
