"""Figure 2 / Tables 9 & 11 — filter time and memory efficiency, FB vs MB.

Regenerates the stage-level breakdown (precompute / train / inference),
peak RAM and device memory, and the OOM pattern of the paper: full batch
on the large graphs exhausts the (scaled) device capacity for
memory-intensive filters, while mini-batch runs them all.

The simulated capacity of 0.30 GiB is calibrated to the default dataset
scales the same way the paper's 24 GB A30 relates to the full-size
graphs; see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.bench import REPRESENTATIVE_FILTERS, efficiency_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, env_scale, run_once

CAPACITY_GIB = 0.30

COLUMNS = ["dataset", "filter", "type", "scheme", "status", "precompute_s",
           "train_s_per_epoch", "inference_s", "ram_bytes", "device_bytes"]


def test_fig2_efficiency_fb_vs_mb(benchmark):
    config = TrainConfig(epochs=env_epochs(4), patience=0, eval_every=100,
                         batch_size=128)
    rows = run_once(
        benchmark, efficiency_experiment,
        dataset_names=("penn94", "arxiv", "pokec", "snap-patents"),
        filters=REPRESENTATIVE_FILTERS,
        schemes=("full_batch", "mini_batch"),
        config=config,
        scale_override=env_scale(),
        device_capacity_gib=CAPACITY_GIB,
    )
    emit(rows, columns=COLUMNS, title="Fig 2 / Tables 9+11: efficiency")

    def rows_for(**conditions):
        return [r for r in rows
                if all(r[k] == v for k, v in conditions.items())]

    # Shape 1 (RQ2): MB never OOMs; FB OOMs on large graphs for heavy filters.
    assert all(r["status"] == "ok" for r in rows_for(scheme="mini_batch"))
    fb_large = [r for r in rows_for(scheme="full_batch")
                if r["dataset"] in ("pokec", "snap-patents")]
    assert any(r["status"] == "oom" for r in fb_large)

    # Shape 2 (RQ1): on large graphs, MB fixed filters train much faster
    # than FB (propagation is the bottleneck and MB removed it).
    for dataset in ("pokec", "snap-patents"):
        fb = rows_for(scheme="full_batch", dataset=dataset, filter="PPR")[0]
        mb = rows_for(scheme="mini_batch", dataset=dataset, filter="PPR")[0]
        assert mb["train_s_per_epoch"] < fb["train_s_per_epoch"]

    # Shape 3: variable filters need several-fold more RAM than fixed under MB.
    mb_pokec = rows_for(scheme="mini_batch", dataset="pokec")
    fixed_ram = [r["ram_bytes"] for r in mb_pokec if r["type"] == "fixed"]
    variable_ram = [r["ram_bytes"] for r in mb_pokec if r["type"] == "variable"]
    assert min(variable_ram) > 2 * max(fixed_ram) / 3
    assert max(variable_ram) > max(fixed_ram)
