"""Figure 7 — effect of propagation hops K.

Sweeps K for representative fixed and variable filters on homophilous and
heterophilous datasets. Asserts the paper's over-smoothing shape: the
effectiveness of pure low-pass filters (Impulse) decays with K, while
decaying (PPR) and orthogonal-basis (Chebyshev) filters stay stable.
"""

from __future__ import annotations

import numpy as np

from repro.bench import hop_sweep_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once


def test_fig7_hop_sweep(benchmark):
    config = TrainConfig(epochs=env_epochs(40), patience=20)
    rows = run_once(
        benchmark, hop_sweep_experiment,
        filters=("impulse", "ppr", "chebyshev"),
        dataset_names=("cora", "chameleon"),
        hops=(2, 6, 10, 16),
        config=config,
        seeds=(0, 1),
    )
    emit(rows, title="Fig 7: accuracy vs propagation hops K")

    def series(dataset, filter_display):
        points = [(r["K"], r["accuracy"]) for r in rows
                  if r["dataset"] == dataset and r["filter"] == filter_display]
        return [acc for _, acc in sorted(points)]

    # Over-smoothing: Impulse decays from K=2 to K=16 on both graph types.
    for dataset in ("cora", "chameleon"):
        impulse = series(dataset, "Impulse")
        assert impulse[-1] < impulse[0]

    # Stability: PPR's decay factor shields it — its K=16 accuracy stays
    # within a few points of its best.
    for dataset in ("cora", "chameleon"):
        ppr = series(dataset, "PPR")
        assert ppr[-1] > max(ppr) - 0.12

    # Orthogonal variable basis is the most K-robust on the hetero graph.
    cheb = series("chameleon", "Chebyshev")
    assert min(cheb) > max(cheb) - 0.15
