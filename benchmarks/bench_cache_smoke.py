"""Cache-layer smoke gate: the caches must be *on* and must be *free*.

Runs the same small full-batch training twice — sparse-compute caches on
and bypassed — under telemetry, then checks the contract the cache layer
(:mod:`repro.runtime.cache`) makes:

- **regression gate** (wired into CI): ``cache.spmm_t.hit`` must be
  non-zero during a training run. A silently-disabled cache would pass
  every numeric test while regressing every efficiency number, so this is
  the canary.
- **invisibility**: final epoch losses and test scores are identical to
  the last bit with the caches on and off.
- **delta**: the transpose-materialization count drops from one per epoch
  to ≤ 1 per matrix, measured with the ``ops.spmm.*`` counters.

The before/after counter comparison is emitted as a table and persisted
as JSON under ``benchmarks/results/cache_smoke.json`` so the FLOP/byte
delta is diffable across commits.
"""

from __future__ import annotations

import json

import numpy as np

from repro import telemetry
from repro.datasets import random_split, synthesize
from repro.runtime import cache
from repro.tasks import run_node_classification
from repro.training import TrainConfig

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 6
SPMM_COUNTERS = ("ops.spmm.calls", "ops.spmm.flops", "ops.spmm.bytes",
                 "ops.spmm.transpose_builds", "ops.spmm.transpose_bytes",
                 "cache.spmm_t.hit", "cache.spmm_t.miss",
                 "cache.norm_adj.hit", "cache.norm_adj.miss")


def _one_run(cache_on: bool, epochs: int):
    """Train once on a fresh synthetic graph; return (result, counters)."""
    graph = synthesize("cora", scale=0.15, seed=5)
    split = random_split(graph.num_nodes, seed=0)
    config = TrainConfig(epochs=epochs, patience=0, eval_every=epochs)
    cache.clear_transpose_cache()
    telemetry.configure()
    try:
        if cache_on:
            result = run_node_classification(
                graph, "ppr", scheme="full_batch", config=config, split=split)
        else:
            with cache.caches_disabled():
                result = run_node_classification(
                    graph, "ppr", scheme="full_batch", config=config,
                    split=split)
        counters = dict(telemetry.get_metrics().snapshot()["counters"])
    finally:
        telemetry.shutdown()
    counters["transpose_builds_process"] = cache.transpose_build_count()
    return result, counters


def _cache_smoke(epochs: int) -> dict:
    cached_result, cached_counters = _one_run(cache_on=True, epochs=epochs)
    plain_result, plain_counters = _one_run(cache_on=False, epochs=epochs)
    return {
        "epochs": epochs,
        "cached": {"test_score": cached_result.test_score,
                   "counters": cached_counters},
        "uncached": {"test_score": plain_result.test_score,
                     "counters": plain_counters},
        "predictions_bit_identical": bool(
            np.array_equal(cached_result.predictions,
                           plain_result.predictions)),
    }


def test_cache_smoke_gate(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _cache_smoke, epochs)
    cached = report["cached"]["counters"]
    plain = report["uncached"]["counters"]

    rows = [{"mode": mode,
             **{name.split(".")[-1] if name.startswith("ops.spmm")
                else name.replace("cache.", ""): counters.get(name, 0)
                for name in SPMM_COUNTERS}}
            for mode, counters in (("cached", cached), ("uncached", plain))]
    emit(rows, title="cache layer: spmm counters, cache on vs off")
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "cache_smoke.json", "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    # --- CI regression gate: a training run must actually hit the cache.
    assert cached.get("cache.spmm_t.hit", 0) > 0, \
        "cache.spmm_t.hit == 0: the transpose cache is silently disabled"
    assert cached.get("cache.norm_adj.hit", 0) > 0, \
        "cache.norm_adj.hit == 0: the normalization memo is silently disabled"

    # --- invisibility: numerics unchanged to the last bit.
    assert report["predictions_bit_identical"]
    assert report["cached"]["test_score"] == report["uncached"]["test_score"]

    # --- delta: one propagation matrix → ≤ 1 transpose materialization,
    # versus one per epoch (per backward closure) without the cache.
    assert cached["ops.spmm.transpose_builds"] <= 1
    assert plain["ops.spmm.transpose_builds"] >= report["epochs"]
    assert cached["ops.spmm.transpose_bytes"] < plain["ops.spmm.transpose_bytes"]
    # forward spmm volume itself is identical — the cache only removes
    # redundant transpose materializations, it does not change propagation
    assert cached["ops.spmm.calls"] == plain["ops.spmm.calls"]
    assert cached["ops.spmm.flops"] == plain["ops.spmm.flops"]
