"""Blocked-tier smoke gate: out of core, under budget, not a bit moved.

Two real CLI runs of a tiny efficiency slice (cora at scale 0.05, three
monomial-family filters, MB + GP schemes):

- **in-core** — the plain path, no blocked tier.
- **blocked** — ``--blocked --ram-budget 2`` (MiB): an artificially low
  budget whose 1 MiB term-store share cannot hold one ~0.8 MB basis
  chain next to another, forcing the planner to spill ≥1 whole term to
  disk and reload it for the filter that re-requests the chain.

Gates:

- Both runs exit 0 and their canonical result payloads are
  **byte-identical** — tiling and spilling never move a result bit.
- The blocked run's registry record (schema v6) carries a ``blocked``
  memory sub-block with ``spill_terms ≥ 1``, ``spill_loads ≥ 1`` and
  ``tiles`` > ``spmm_calls`` (real multi-tile products); the in-core
  record has no such key (v5-shaped when the tier is off).
- The blocked run's ``memory.peak_bytes`` stays under a pinned ceiling.
- GP rows carry the cut-edge expressiveness accounting, identically in
  both runs.

Artifacts persist under ``benchmarks/results/blocked_smoke/`` for the
``bench-blocked`` CI job.
"""

from __future__ import annotations

import shutil

from repro.bench.__main__ import main as bench_main
from repro.bench.io import canonical_payload, load_rows
from repro.telemetry.registry import RunRegistry

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 2
BLOCKED_DIR = RESULTS_DIR / "blocked_smoke"

#: Artificially low tier budget (MiB): the 50% term-store share is 1 MiB,
#: below two resident ~0.8 MB cora@0.05 basis chains — guarantees spills.
RAM_BUDGET_MIB = 2

#: Pinned ceiling for the blocked run's accounted memory peak. The slice
#: allocates ~15 MB of engine tensors; 256 MiB is ~16x headroom that
#: still catches an accidental full-scale materialization.
PEAK_BYTES_CEILING = 256 * 2 ** 20

#: Filter order matters: ppr fills the shared monomial-adjacency chain,
#: chebyshev's distinct chain evicts-and-spills it under the tiny term
#: budget, monomial re-requests the same fingerprint and must reload.
FILTERS = ("ppr", "chebyshev", "monomial")


def _cli_run(tag: str, epochs: int, blocked: bool) -> int:
    argv = [
        "efficiency", "--datasets", "cora", "--filters", *FILTERS,
        "--schemes", "mini_batch", "graph_partition",
        "--scale", "0.05", "--epochs", str(epochs),
        "--registry-dir", str(BLOCKED_DIR),
        "--trace", str(BLOCKED_DIR / f"{tag}.jsonl"),
        "--output", str(BLOCKED_DIR / f"{tag}.json"),
    ]
    if blocked:
        argv += ["--blocked", "--ram-budget", str(RAM_BUDGET_MIB),
                 "--spill-dir", str(BLOCKED_DIR / "spill")]
    return bench_main(argv)


def _blocked_smoke(epochs: int) -> dict:
    if BLOCKED_DIR.exists():
        shutil.rmtree(BLOCKED_DIR)

    exit_codes = [_cli_run("incore", epochs, blocked=False),
                  _cli_run("blocked", epochs, blocked=True)]

    rows = {tag: load_rows(BLOCKED_DIR / f"{tag}.json")
            for tag in ("incore", "blocked")}
    payloads = {tag: canonical_payload(r) for tag, r in rows.items()}

    records = RunRegistry(BLOCKED_DIR).load()
    incore_rec, blocked_rec = records[-2], records[-1]

    return {
        "exit_codes": exit_codes,
        "rows": rows,
        "payloads": payloads,
        "entries": len(records),
        "incore": incore_rec,
        "blocked": blocked_rec,
        "spill_dir_entries": sorted(
            p.name for p in (BLOCKED_DIR / "spill").glob("*")),
    }


def test_blocked_smoke_gate(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _blocked_smoke, epochs)
    blocked_rec, incore_rec = report["blocked"], report["incore"]
    tier = blocked_rec.memory.get("blocked") or {}

    emit([{"check": "blocked.spmm_calls", "value": tier.get("spmm_calls")},
          {"check": "blocked.tiles", "value": tier.get("tiles")},
          {"check": "blocked.spill_terms", "value": tier.get("spill_terms")},
          {"check": "blocked.spill_loads", "value": tier.get("spill_loads")},
          {"check": "blocked.spill_bytes", "value": tier.get("spill_bytes")},
          {"check": "blocked.mmap_bytes", "value": tier.get("mmap_bytes")},
          {"check": "memory.peak_bytes",
           "value": blocked_rec.memory.get("peak_bytes")}],
         title="blocked tier smoke")

    # --- both verticals ran end to end and were indexed.
    assert report["exit_codes"] == [0, 0]
    assert report["entries"] == 2
    assert blocked_rec.schema.endswith("/v6")

    # --- byte-identity: out-of-core execution never moves a result bit.
    assert report["payloads"]["incore"] == report["payloads"]["blocked"], \
        "blocked-tier payload diverged from the in-core path"

    # --- the tier actually went out of core under the low budget.
    assert tier, "blocked run's memory block lacks the v6 'blocked' sub-block"
    assert tier["spill_terms"] >= 1, "low budget must spill ≥1 planner term"
    assert tier["spill_loads"] >= 1, \
        "a re-requested spilled chain must reload from disk"
    assert tier["spill_bytes"] > 0
    assert tier["mmap_bytes"] > 0
    assert tier["spmm_calls"] >= 1
    assert tier["tiles"] > tier["spmm_calls"], \
        "tiles must exceed spmm calls — otherwise nothing was ever split"

    # --- tier-off records stay v5-shaped: no 'blocked' key at all.
    assert "blocked" not in incore_rec.memory

    # --- pinned memory gate.
    peak = blocked_rec.memory.get("peak_bytes") or 0
    assert 0 < peak <= PEAK_BYTES_CEILING, \
        f"memory.peak_bytes {peak} exceeds pinned {PEAK_BYTES_CEILING}"

    # --- spill-dir hygiene: the run purges its payloads on close.
    assert report["spill_dir_entries"] == [], \
        f"stale spill files: {report['spill_dir_entries']}"

    # --- GP rows carry cut-edge accounting, identically across paths.
    for tag in ("incore", "blocked"):
        gp_rows = [r for r in report["rows"][tag]
                   if r.get("scheme") == "graph_partition"]
        assert gp_rows, f"{tag}: no graph_partition rows"
        for row in gp_rows:
            assert row.get("status") == "ok"
            assert row.get("cut_edges", 0) > 0
            assert 0.0 < row.get("cut_edge_fraction", 0.0) <= 1.0
            assert row.get("num_parts", 0) >= 2
