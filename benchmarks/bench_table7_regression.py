"""Table 7 — R² of graph regression on five spectral signal functions.

Fits every filter family to the band / combine / high / low / reject
transfer functions. Asserts the paper's shapes: most filters score highest
on LOW/REJECT; fixed low-pass filters fail on HIGH/BAND; adaptive bases
(OptBasis) lead across the board.
"""

from __future__ import annotations

import numpy as np

from repro.bench import regression_experiment

from .conftest import emit, env_epochs, run_once

FILTERS = ("ppr", "linear", "impulse", "monomial", "hk", "gaussian",
           "monomial_var", "horner", "chebyshev", "clenshaw", "chebinterp",
           "bernstein", "legendre", "jacobi", "favard", "optbasis")


def test_table7_signal_regression(benchmark):
    rows = run_once(
        benchmark, regression_experiment,
        filters=FILTERS,
        scale=0.08,
        num_hops=10,
        epochs=env_epochs(150),
    )
    emit(rows, title="Table 7: signal-regression R² (×100)")
    table = {r["filter"]: r for r in rows}

    # Fixed low-pass filters: good on LOW, poor on HIGH and BAND.
    for name in ("PPR", "HK", "Impulse"):
        assert table[name]["low"] > 60
        assert table[name]["high"] < 50
        assert table[name]["band"] < 50

    # OptBasis outperforms every fixed filter on the high-frequency signals.
    fixed = ("PPR", "Linear", "Impulse", "Monomial", "HK", "Gaussian")
    for signal in ("band", "high", "combine"):
        assert table["OptBasis"][signal] > max(table[f][signal] for f in fixed)

    # Variable bases dominate fixed ones on the hard signals on average.
    variable = ("Chebyshev", "ChebInterp", "Bernstein", "Jacobi", "OptBasis")
    hard = ("band", "high", "combine")
    var_mean = np.mean([[table[f][s] for s in hard] for f in variable])
    fixed_mean = np.mean([[table[f][s] for s in hard] for f in fixed])
    assert var_mean > fixed_mean
