"""Table 6 — models outside the unified framework.

GCN / GraphSAGE / ChebNet on the SP (csr) vs EI (gather-scatter) backends
plus the NAGphormer / ANS-GT graph-transformer baselines. Asserts the
table's cost structure: EI inflates device memory by its O(mF) message
buffers, and transformers pay a long precompute / slow epochs.
"""

from __future__ import annotations

from repro.bench import baseline_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once

COLUMNS = ["dataset", "model", "backend", "status", "accuracy",
           "precompute_s", "train_s_per_epoch", "inference_s", "device_bytes"]


def test_table6_baselines(benchmark):
    config = TrainConfig(epochs=env_epochs(3), patience=0, eval_every=100)
    rows = run_once(
        benchmark, baseline_experiment,
        dataset_names=("penn94",),
        backends=("csr", "coo_gather"),
        config=config,
    )
    emit(rows, columns=COLUMNS, title="Table 6: out-of-framework baselines")

    def row(model, backend):
        return next(r for r in rows
                    if r["model"] == model and r["backend"] == backend)

    # EI's O(mF) message buffers dominate its device footprint.
    assert row("GCN", "EI")["device_bytes"] > 4 * row("GCN", "SP")["device_bytes"]
    assert (row("ChebNet", "EI")["device_bytes"]
            > 4 * row("ChebNet", "SP")["device_bytes"])

    # NAGphormer pays a separate precompute stage; ANS-GT trains slower
    # per epoch than the SP message-passing models.
    nag = next(r for r in rows if r["model"] == "NAGphormer")
    assert nag["precompute_s"] > 0
    ansgt = next(r for r in rows if r["model"] == "ANS-GT")
    assert ansgt["train_s_per_epoch"] > row("GCN", "SP")["train_s_per_epoch"]
