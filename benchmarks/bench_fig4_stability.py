"""Figure 4 — statistical significance of filter effectiveness.

Per-seed scores under the two split regimes: cora-style uniform random
splits (high between-seed variance, shared across filters) and
arxiv-style stratified splits (concentrated scores). Asserts the paper's
observation that split randomness, not filter randomness, drives most of
the variance on cora-like data.
"""

from __future__ import annotations

import numpy as np

from repro.bench import stability_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once


def test_fig4_stability(benchmark):
    config = TrainConfig(epochs=env_epochs(40), patience=20)
    rows = run_once(
        benchmark, stability_experiment,
        filters=("monomial", "ppr", "chebyshev", "bernstein"),
        dataset_names=("cora", "arxiv"),
        seeds=(0, 1, 2, 3, 4),
        config=config,
    )
    emit(rows, title="Fig 4: per-seed scores under random vs stable splits")

    def scores(dataset):
        table = {}
        for row in rows:
            if row["dataset"] == dataset:
                table.setdefault(row["filter"], {})[row["seed"]] = row["score"]
        return table

    cora = scores("cora")
    # Seed effects are shared: per-seed filter means vary across seeds.
    seed_means = [np.mean([cora[f][s] for f in cora]) for s in range(5)]
    between_seed = np.std(seed_means)
    within_seed = np.mean([
        np.std([cora[f][s] for f in cora]) for s in range(5)])
    emit([{"between_seed_std": between_seed, "within_seed_std": within_seed}],
         title="cora variance decomposition")
    assert between_seed > 0  # split-driven variance exists
    assert all(np.isfinite(list(v.values())).all() for v in cora.values())
