"""Figure 8 — t-SNE clusters of learned representations.

Embeds each filter's learned logits with (from-scratch) t-SNE and scores
cluster sharpness. Asserts the figure's quantitative reading: cluster
separation tracks classification accuracy, and the homophilous dataset
produces sharper clusters for low-pass filters than the heterophilous one.
"""

from __future__ import annotations

import numpy as np

from repro.bench import tsne_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once


def test_fig8_tsne_clusters(benchmark):
    config = TrainConfig(epochs=env_epochs(40), patience=20)
    rows = run_once(
        benchmark, tsne_experiment,
        filters=("impulse", "ppr", "monomial", "chebyshev"),
        dataset_names=("cora", "chameleon"),
        config=config,
        tsne_iterations=200,
    )
    printable = [{k: v for k, v in r.items() if k != "embedding"}
                 for r in rows]
    emit(printable, title="Fig 8: cluster separation of learned embeddings")

    for row in rows:
        assert row["embedding"].shape[1] == 2
        assert np.all(np.isfinite(row["embedding"]))

    # Separation correlates with accuracy across (filter, dataset) cells.
    accuracy = np.array([r["accuracy"] for r in rows])
    separation = np.array([r["cluster_separation"] for r in rows])
    correlation = np.corrcoef(accuracy, separation)[0, 1]
    emit([{"accuracy_separation_correlation": correlation}])
    assert correlation > 0.2

    # PPR clusters sharply on cora, much less so on chameleon.
    by_key = {(r["dataset"], r["filter"]): r["cluster_separation"]
              for r in rows}
    assert by_key[("cora", "PPR")] > by_key[("chameleon", "PPR")]
