"""Serial ≡ parallel determinism gate — now with the planner ON.

Runs one small efficiency sweep (2 datasets × 3 chain-sharing filters ×
1 scheme = 6 grid cells) three times through the real CLI:

- ``--workers 1`` — serial, the planner shares basis chains across
  cells in-process (the historical best case);
- ``--workers 4`` — pooled with the cross-process shared term store
  (:mod:`repro.runtime.shm`, on by default for pooled sweeps);
- ``--workers 4 --no-shared-terms`` — pooled with per-worker
  recomputation, the pre-shm baseline that quantifies the gap.

and holds the executor + store to their joint contract:

- **payload determinism**: after stripping execution-dependent fields
  (:func:`repro.bench.io.canonical_rows`), all three result files are
  *byte-identical*. Shared-memory term views must be bit-equal to
  locally computed chains — worker scheduling and claim adoption can
  never perturb a result bit.
- **schedule-invariant counters**: ``ops.{matmul,ewise}.*`` and
  ``pool.cells.ok`` match exactly across all three runs. ``ops.spmm.*``
  is *schedule-variant* with the planner on (serial sweeps share chains
  across cells; isolated workers cannot), so it gets a ratio gate
  instead:
- **spmm ratio**: the shared-store pooled run's ``ops.spmm.calls`` must
  come in at ≤ ``SPMM_RATIO_LIMIT`` × the serial count (the store
  actually closes the cross-worker gap), while the ``--no-shared-terms``
  baseline must sit *above* that limit (the gate is not vacuous —
  filters ppr/hk/monomial share one monomial chain per dataset, so the
  unshared pool pays for it once per worker).
- **registry annotation**: all three runs share one config fingerprint
  (workers/shared-terms are execution strategy, not configuration)
  while the pooled records' ``pool.shared_terms`` flag tells the two
  pool modes apart.

The normalized payloads, the counter table, and a ``counter_delta.json``
report (per-mode counters + both spmm ratios) are persisted under
``benchmarks/results/parallel_smoke/`` so the ``bench-parallel`` CI job
can upload them as artifacts for post-mortem diffing.
"""

from __future__ import annotations

import json
import shutil

from repro.bench.__main__ import main as bench_main
from repro.bench.io import canonical_payload, deterministic_counters, load_rows
from repro.telemetry.registry import RunRegistry

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 3
PARALLEL_DIR = RESULTS_DIR / "parallel_smoke"
GRID_CELLS = 6  # 2 datasets x 3 filters x 1 scheme
#: Pooled-with-store ops.spmm.calls must stay within this factor of the
#: serial count (ISSUE 9 acceptance criterion).
SPMM_RATIO_LIMIT = 1.25

#: label -> extra CLI flags; run order is registry record order.
RUN_MODES = (
    ("serial", ["--workers", "1"]),
    ("pooled_shared", ["--workers", "4"]),
    ("pooled_unshared", ["--workers", "4", "--no-shared-terms"]),
)


def _one_cli_run(label: str, flags: list, epochs: int) -> int:
    return bench_main([
        "efficiency", "--datasets", "cora", "citeseer",
        "--filters", "ppr", "hk", "monomial", "--schemes", "mini_batch",
        "--epochs", str(epochs), *flags,
        "--registry-dir", str(PARALLEL_DIR),
        "--output", str(PARALLEL_DIR / f"{label}.json"),
        "--trace", str(PARALLEL_DIR / f"{label}.jsonl"),
    ])


def _parallel_smoke(epochs: int) -> dict:
    if PARALLEL_DIR.exists():
        shutil.rmtree(PARALLEL_DIR)
    PARALLEL_DIR.mkdir(parents=True)

    exit_codes, payloads = {}, {}
    for label, flags in RUN_MODES:
        exit_codes[label] = _one_cli_run(label, flags, epochs)
        payload = canonical_payload(load_rows(PARALLEL_DIR / f"{label}.json"))
        payloads[label] = payload
        (PARALLEL_DIR / f"payload_{label}.json").write_bytes(payload)

    registry = RunRegistry(PARALLEL_DIR)
    loaded = registry.load()
    records = dict(zip((label for label, _ in RUN_MODES), loaded))
    counters = {
        label: deterministic_counters(record.metrics.get("counters", {}))
        for label, record in records.items()
    }

    serial_spmm = counters["serial"].get("ops.spmm.calls", 0)
    delta = {
        "grid_cells": GRID_CELLS,
        "spmm_ratio_limit": SPMM_RATIO_LIMIT,
        "counters": counters,
        "spmm_ratio_shared": (
            counters["pooled_shared"].get("ops.spmm.calls", 0) / serial_spmm
            if serial_spmm else None),
        "spmm_ratio_unshared": (
            counters["pooled_unshared"].get("ops.spmm.calls", 0) / serial_spmm
            if serial_spmm else None),
        "shm": (records["pooled_shared"].pool or {}).get("shm"),
    }
    (PARALLEL_DIR / "counter_delta.json").write_text(
        json.dumps(delta, indent=2, sort_keys=True))

    return {
        "exit_codes": exit_codes,
        "payloads": payloads,
        "records": records,
        "counters": counters,
        "delta": delta,
        "record_count": len(loaded),
        "corrupt_lines": registry.corrupt_lines,
    }


def test_parallel_smoke_gate(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _parallel_smoke, epochs)
    labels = [label for label, _ in RUN_MODES]
    counters = report["counters"]

    emit([{"counter": name,
           **{label: counters[label].get(name) for label in labels}}
          for name in sorted(counters["serial"])],
         title="deterministic counters, serial vs pooled shared/unshared")

    # All three CLI invocations completed and were indexed cleanly.
    assert report["exit_codes"] == {label: 0 for label in labels}
    assert report["corrupt_lines"] == 0
    assert report["record_count"] == len(labels), \
        "expected one registry record per run mode"

    # --- payload determinism: byte-identical after normalization.
    assert report["payloads"]["serial"], \
        "serial run produced an empty payload"
    for label in labels[1:]:
        assert report["payloads"]["serial"] == report["payloads"][label], (
            f"serial and {label} sweeps diverged after normalization; diff "
            f"{PARALLEL_DIR / 'payload_serial.json'} against "
            f"{PARALLEL_DIR / f'payload_{label}.json'}")

    # --- schedule-invariant counters: exact across every mode.
    def invariant(label):
        return {name: value for name, value in counters[label].items()
                if not name.startswith("ops.spmm.")}

    for label in labels[1:]:
        assert invariant("serial") == invariant(label), \
            f"schedule-invariant counters drifted between serial and {label}"
    assert counters["serial"].get("ops.matmul.calls", 0) > 0, \
        "determinism gate is vacuous: no matmul ops were counted"
    assert counters["serial"].get("pool.cells.ok") == GRID_CELLS

    # --- spmm ratio: the shared store closes the cross-worker gap.
    serial_spmm = counters["serial"].get("ops.spmm.calls", 0)
    assert serial_spmm > 0, "spmm ratio gate is vacuous: no spmm counted"
    ratio_shared = report["delta"]["spmm_ratio_shared"]
    ratio_unshared = report["delta"]["spmm_ratio_unshared"]
    assert ratio_shared <= SPMM_RATIO_LIMIT, (
        f"pooled ops.spmm.calls is {ratio_shared:.2f}x serial with the "
        f"shared term store on (limit {SPMM_RATIO_LIMIT}x); see "
        f"{PARALLEL_DIR / 'counter_delta.json'}")
    assert ratio_unshared > SPMM_RATIO_LIMIT, (
        "the --no-shared-terms baseline no longer exceeds the ratio "
        "limit; the smoke slice stopped exercising cross-worker chain "
        "sharing and the gate above is vacuous")

    # --- the store actually served terms in the shared pooled run.
    shared_counters = (report["records"]["pooled_shared"]
                       .metrics.get("counters", {}))
    assert shared_counters.get("shm.terms.hit", 0) > 0, \
        "shared run served no terms from the cross-process store"
    assert shared_counters.get("shm.terms.publish", 0) > 0, \
        "shared run published no terms to the cross-process store"

    # --- registry annotation: one config, three execution strategies.
    fingerprints = {record.config_fingerprint
                    for record in report["records"].values()}
    assert len(fingerprints) == 1, \
        "workers/shared-terms leaked into the config fingerprint"
    assert report["records"]["serial"].workers == 1
    for label in labels[1:]:
        assert report["records"][label].workers == 4
    assert report["records"]["pooled_shared"].pool.get("shared_terms") is True
    assert (report["records"]["pooled_unshared"].pool.get("shared_terms")
            is False)
    shm_block = report["records"]["pooled_shared"].pool.get("shm") or {}
    assert shm_block.get("segments_unlinked", 0) > 0, \
        "store scope exit unlinked no segments"
