"""Serial ≡ parallel determinism gate for the process-pool sweep executor.

Runs one small efficiency sweep (2 datasets × 2 filters × 1 scheme = 4
grid cells) twice through the real CLI — once serial (``--workers 1``,
the exact historical code path) and once fanned out to a process pool
(``--workers 4``, one cell per worker) — and holds the pool executor
(:mod:`repro.runtime.pool`) to its contract:

- **payload determinism**: after stripping execution-dependent fields
  (wall times, RSS peaks, file paths, timestamps —
  :func:`repro.bench.io.canonical_rows`), the two result files are
  *byte-identical*. Cell seeds are derived from grid coordinates and
  results are reassembled in grid order, so worker scheduling must not
  be able to perturb a single result bit.
- **counter determinism**: the schedule-invariant telemetry counters
  (``ops.{matmul,spmm,ewise}.{calls,flops,bytes}`` plus
  ``pool.cells.ok`` — :func:`repro.bench.io.deterministic_counters`)
  folded in from the worker shards match the serial totals exactly and
  are non-trivial (``ops.spmm.calls > 0``). Cache-traffic counters are
  deliberately out of scope: per-process memos hit/miss differently
  across worker counts without affecting results.
- **registry annotation**: both runs share one config fingerprint
  (``workers`` is execution strategy, not configuration) while their
  records carry ``workers``/``pool`` fields telling the two modes apart.

The normalized payloads and the counter table are persisted under
``benchmarks/results/parallel_smoke/`` so the ``bench-parallel`` CI job
can upload them as artifacts for post-mortem diffing.
"""

from __future__ import annotations

import shutil

from repro.bench.__main__ import main as bench_main
from repro.bench.io import canonical_payload, deterministic_counters, load_rows
from repro.telemetry.registry import RunRegistry

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 3
PARALLEL_DIR = RESULTS_DIR / "parallel_smoke"
WORKER_COUNTS = (1, 4)
GRID_CELLS = 4  # 2 datasets x 2 filters x 1 scheme


def _one_cli_run(workers: int, epochs: int) -> int:
    # --no-plan: the basis planner shares chains across cells in serial
    # mode but per-cell in workers, so ops.spmm.calls parity between
    # worker counts only holds (and is only meaningful) unplanned. The
    # planner's own serial-vs-planned gate is bench_plan_smoke.py.
    return bench_main([
        "efficiency", "--datasets", "cora", "citeseer",
        "--filters", "ppr", "chebyshev", "--schemes", "mini_batch",
        "--epochs", str(epochs), "--workers", str(workers), "--no-plan",
        "--registry-dir", str(PARALLEL_DIR),
        "--output", str(PARALLEL_DIR / f"w{workers}.json"),
        "--trace", str(PARALLEL_DIR / f"w{workers}.jsonl"),
    ])


def _parallel_smoke(epochs: int) -> dict:
    if PARALLEL_DIR.exists():
        shutil.rmtree(PARALLEL_DIR)
    PARALLEL_DIR.mkdir(parents=True)

    exit_codes = {w: _one_cli_run(w, epochs) for w in WORKER_COUNTS}

    payloads = {}
    for workers in WORKER_COUNTS:
        payload = canonical_payload(load_rows(PARALLEL_DIR / f"w{workers}.json"))
        payloads[workers] = payload
        (PARALLEL_DIR / f"payload_w{workers}.json").write_bytes(payload)

    registry = RunRegistry(PARALLEL_DIR)
    records = {record.workers: record for record in registry.load()}
    counters = {
        workers: deterministic_counters(
            records[workers].metrics.get("counters", {}))
        for workers in WORKER_COUNTS
    }

    return {
        "exit_codes": exit_codes,
        "payloads": payloads,
        "records": records,
        "counters": counters,
        "corrupt_lines": registry.corrupt_lines,
    }


def test_parallel_smoke_gate(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _parallel_smoke, epochs)
    serial, pooled = WORKER_COUNTS

    emit([{"counter": name,
           **{f"workers_{w}": report["counters"][w].get(name)
              for w in WORKER_COUNTS}}
          for name in sorted(report["counters"][serial])],
         title="schedule-invariant counters, serial vs pooled")

    # Both CLI invocations completed and were indexed cleanly.
    assert report["exit_codes"] == {w: 0 for w in WORKER_COUNTS}
    assert report["corrupt_lines"] == 0
    assert set(report["records"]) == set(WORKER_COUNTS), \
        "expected one registry record per worker count"

    # --- payload determinism: byte-identical after normalization.
    assert report["payloads"][serial], "serial run produced an empty payload"
    assert report["payloads"][serial] == report["payloads"][pooled], (
        "serial and parallel sweeps diverged after normalization; diff "
        f"{PARALLEL_DIR / f'payload_w{serial}.json'} against "
        f"{PARALLEL_DIR / f'payload_w{pooled}.json'}")

    # --- counter determinism: folded worker shards == serial totals.
    assert report["counters"][serial] == report["counters"][pooled], \
        "merged op counters drifted between serial and pooled execution"
    assert report["counters"][serial].get("ops.spmm.calls", 0) > 0, \
        "determinism gate is vacuous: no spmm ops were counted"
    assert report["counters"][serial].get("pool.cells.ok") == GRID_CELLS

    # --- registry annotation: one config, two execution strategies.
    serial_record, pooled_record = (report["records"][serial],
                                    report["records"][pooled])
    assert (serial_record.config_fingerprint
            == pooled_record.config_fingerprint), \
        "worker count leaked into the config fingerprint"
    assert serial_record.workers == serial
    assert pooled_record.workers == pooled
    assert pooled_record.pool.get("workers") == pooled
