"""Ablations of the design choices called out in DESIGN.md §5.

1. **Recurrence-as-coefficients (Favard).** Our Favard runs its learnable
   three-term recurrence on (K+1)-dim coefficient vectors over monomial
   hops instead of n×F matrices. The ablation verifies the two give
   identical outputs and that the coefficient form does not add graph
   propagations.
2. **CSR vs gather-scatter backend.** Same numerics, very different
   footprint: the gather backend materializes O(mF) messages.
3. **Streaming vs stored combination (fixed vs variable memory).** Fixed
   filters' streaming accumulation holds one channel; storing every hop
   (what variable filters must do) costs (K+1)×.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor
from repro.filters import FavardFilter, make_filter
from repro.filters.base import PropagationContext
from repro.bench import load_dataset
from repro.runtime import DeviceModel

from .conftest import emit, run_once


def _favard_naive_forward(filter_, graph, x, params):
    """Reference Favard: run the recurrence on full n×F matrices."""
    alpha = np.log1p(np.exp(params["alpha_raw"].astype(np.float64)))
    beta = params["beta"].astype(np.float64)
    theta = params["theta"].astype(np.float64)
    sqrt_alpha = np.sqrt(alpha + 1e-6)
    adjacency = graph.normalized_adjacency(0.5)
    terms = [x.astype(np.float64) / sqrt_alpha[0]]
    hops = 0
    for k in range(1, filter_.num_hops + 1):
        propagated = adjacency @ terms[-1]
        hops += 1
        term = propagated - beta[k] * terms[-1]
        if k >= 2:
            term = term - sqrt_alpha[k - 1] * terms[-2]
        terms.append(term / sqrt_alpha[k])
    out = sum(theta[k] * terms[k] for k in range(filter_.num_hops + 1))
    return out, hops


def test_ablation_favard_coefficient_recurrence(benchmark):
    graph = load_dataset("cora", scale=0.1)
    rng = np.random.default_rng(0)
    filter_ = FavardFilter(num_hops=8)
    params = {n: (s.init + 0.2 * rng.normal(size=s.shape)).astype(np.float32)
              for n, s in filter_.parameter_spec().items()}
    x = rng.normal(size=(graph.num_nodes, 16)).astype(np.float32)

    def run_both():
        ctx = PropagationContext.for_graph(graph)
        ours = np.asarray(filter_.forward(ctx, x, params), dtype=np.float64)
        naive, naive_hops = _favard_naive_forward(filter_, graph, x, params)
        return ours, ctx.hops, naive, naive_hops

    ours, our_hops, naive, naive_hops = run_once(benchmark, run_both)
    emit([{"impl": "coefficient-recurrence", "hops": our_hops},
          {"impl": "matrix-recurrence", "hops": naive_hops}],
         title="Ablation: Favard implementations")
    scale = max(np.abs(naive).max(), 1.0)
    np.testing.assert_allclose(ours, naive, atol=1e-3 * scale)
    assert our_hops == naive_hops  # same K propagations, no extra graph work


def test_ablation_backend_memory(benchmark):
    graph = load_dataset("tolokers", scale=0.3)  # dense: m/n ≈ 88
    filter_ = make_filter("ppr", num_hops=8)
    x = graph.features

    def run_backends():
        peaks = {}
        for backend in ("csr", "coo_gather"):
            device = DeviceModel()
            with device.step():
                filter_.forward(
                    PropagationContext.for_graph(graph, backend=backend),
                    Tensor(x))
            peaks[backend] = device.peak_bytes
        return peaks

    peaks = run_once(benchmark, run_backends)
    emit([{"backend": b, "peak_bytes": p} for b, p in peaks.items()],
         title="Ablation: propagation backend footprint")
    # The gather backend's O(mF) message buffers dominate on dense graphs.
    assert peaks["coo_gather"] > 2 * peaks["csr"]


def test_ablation_streaming_vs_stored(benchmark):
    graph = load_dataset("arxiv", scale=0.01)
    x = graph.features

    def run_both():
        fixed = make_filter("ppr", num_hops=10).precompute(graph, x)
        variable = make_filter("monomial_var", num_hops=10).precompute(graph, x)
        return fixed.nbytes, variable.nbytes

    fixed_bytes, variable_bytes = run_once(benchmark, run_both)
    emit([{"strategy": "streaming (fixed θ)", "bytes": fixed_bytes},
          {"strategy": "stored per hop (learnable θ)", "bytes": variable_bytes}],
         title="Ablation: channel storage")
    assert variable_bytes == 11 * fixed_bytes


def test_ablation_sparsification(benchmark):
    """Extension ablation: importance-sampling sparsification (§2.3).

    Sweeps the edge budget on a dense graph and records the propagation
    speed / accuracy trade — the orthogonal acceleration the paper says
    its pipeline can incorporate.
    """
    import time

    from repro.graph import sparsify, spectral_distortion
    from repro.tasks import run_node_classification
    from repro.training import TrainConfig

    graph = load_dataset("tolokers", scale=0.15)
    config = TrainConfig(epochs=8, patience=0, eval_every=100,
                         metric="roc_auc")

    def sweep():
        rows = []
        for keep in (1.0, 0.5, 0.25):
            rng = np.random.default_rng(0)
            lighter = sparsify(graph, keep, rng=rng)
            start = time.perf_counter()
            result = run_node_classification(lighter, "monomial",
                                             scheme="full_batch",
                                             config=config)
            rows.append(
                {
                    "keep": keep,
                    "edges": lighter.num_edges,
                    "auc": result.test_score,
                    "train_s_per_epoch": result.train_seconds_per_epoch,
                    "wall_s": time.perf_counter() - start,
                    "distortion": 0.0 if keep == 1.0 else
                        spectral_distortion(graph, lighter),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(rows, title="Ablation: sparsification budget sweep")
    assert rows[0]["edges"] > rows[1]["edges"] > rows[2]["edges"]
    # Propagation gets cheaper with fewer edges...
    assert rows[2]["train_s_per_epoch"] < rows[0]["train_s_per_epoch"] * 1.05
    # ...while a 50% budget keeps effectiveness close to the full graph.
    assert abs(rows[1]["auc"] - rows[0]["auc"]) < 0.15


def test_ablation_decomposition_cost(benchmark):
    """Appendix A.3's exclusion rationale, measured.

    Full eigendecomposition (SpectralCNN-style setup) vs polynomial
    propagation across graph scales: the decomposition-to-propagation cost
    ratio explodes with n, which is why decomposition-based models are
    outside the benchmark's scope.
    """
    import time

    from repro.datasets import synthesize
    from repro.models import SpectralCNNLite, lanczos_decomposition

    def sweep():
        rows = []
        for scale in (0.1, 0.3, 0.9):
            graph = synthesize("cora", scale=scale, seed=0)
            start = time.perf_counter()
            SpectralCNNLite(graph, graph.num_features, 4, num_modes=16,
                            rng=np.random.default_rng(0))
            dense_s = time.perf_counter() - start

            start = time.perf_counter()
            lanczos_decomposition(graph, num_steps=16)
            lanczos_s = time.perf_counter() - start

            start = time.perf_counter()
            make_filter("ppr", num_hops=10).precompute(graph, graph.features)
            polynomial_s = time.perf_counter() - start
            rows.append(
                {
                    "n": graph.num_nodes,
                    "dense_decomposition_s": dense_s,
                    "lanczos_s": lanczos_s,
                    "polynomial_propagation_s": polynomial_s,
                    "dense_over_polynomial": dense_s / max(polynomial_s, 1e-9),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(rows, title="Ablation: decomposition vs polynomial filtering cost")
    # The dense-decomposition penalty grows with n...
    assert rows[-1]["dense_over_polynomial"] > rows[0]["dense_over_polynomial"]
    # ...while the Lanczos shortcut stays cheaper than dense at the top size.
    assert rows[-1]["lanczos_s"] < rows[-1]["dense_decomposition_s"]


def test_ablation_architecture(benchmark):
    """Iterative vs decoupled architecture (Appendix A.1).

    Same filter family under both architectures: comparable accuracy (the
    paper's equal-expressiveness claim), different per-epoch cost, and the
    iterative model's composed response deepens with layers.
    """
    from repro.autodiff import Tensor, functional as F, no_grad
    from repro.autodiff.optim import Adam
    from repro.datasets import random_split
    from repro.models import IterativeSpectralModel
    from repro.tasks import run_node_classification
    from repro.training import TrainConfig
    from repro.training.metrics import accuracy

    graph = load_dataset("cora", scale=0.35)
    split = random_split(graph.num_nodes, seed=0)
    config = TrainConfig(epochs=30, patience=0, eval_every=100)

    def run_both():
        decoupled = run_node_classification(
            graph, "monomial_var", scheme="full_batch", config=config,
            split=split)

        import time

        model = IterativeSpectralModel(
            lambda: make_filter("monomial_var", num_hops=3),
            in_features=graph.num_features,
            out_features=graph.num_classes,
            hidden=64, num_layers=2, dropout=0.5,
            rng=np.random.default_rng(0))
        optimizer = Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
        labels = graph.labels
        start = time.perf_counter()
        for _ in range(config.epochs):
            model.train()
            logits = model(graph)
            loss = F.cross_entropy(logits[split.train], labels[split.train])
            model.zero_grad()
            loss.backward()
            optimizer.step()
        iterative_epoch_s = (time.perf_counter() - start) / config.epochs
        model.eval()
        with no_grad():
            iterative_acc = accuracy(model(graph).data[split.test],
                                     labels[split.test])
        return [
            {"architecture": "decoupled (K=10)",
             "accuracy": decoupled.test_score,
             "train_s_per_epoch": decoupled.train_seconds_per_epoch},
            {"architecture": "iterative (J=2, K=3)",
             "accuracy": iterative_acc,
             "train_s_per_epoch": iterative_epoch_s},
        ]

    rows = run_once(benchmark, run_both)
    emit(rows, title="Ablation: decoupled vs iterative architecture")
    # Equal-expressiveness in practice: accuracies land close together.
    assert abs(rows[0]["accuracy"] - rows[1]["accuracy"]) < 0.15


def test_ablation_wavelet_frame(benchmark):
    """Extension: SGWT wavelet frame as a multi-band front end (App. A.3).

    Compares a single low-pass filter against the wavelet filter bank's
    concatenated sub-bands on a heterophilous graph, where coverage of
    high-frequency bands should pay off; also reports the frame bounds
    (information preservation).
    """
    from repro.filters import WaveletFilterBank
    from repro.tasks import run_node_classification
    from repro.training import TrainConfig
    from repro.datasets import random_split
    from repro.models import MiniBatchModel
    from repro.autodiff import Tensor, functional as F, no_grad
    from repro.autodiff.optim import Adam
    from repro.training.metrics import accuracy

    graph = load_dataset("chameleon", scale=1.0)
    split = random_split(graph.num_nodes, seed=0)
    config = TrainConfig(epochs=40, patience=0, eval_every=100)

    def run_both():
        low_pass = run_node_classification(
            graph, "hk", scheme="mini_batch", config=config, split=split)

        bank = WaveletFilterBank(num_scales=3, num_hops=10)
        lower, upper = bank.frame_bounds()
        channels = bank.precompute(graph, graph.features)
        model = MiniBatchModel(bank, in_features=graph.num_features,
                               out_features=graph.num_classes,
                               phi1_layers=2,
                               rng=np.random.default_rng(0))
        optimizer = Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
        labels = graph.labels
        for _ in range(config.epochs):
            model.train()
            logits = model(Tensor(channels[split.train]))
            loss = F.cross_entropy(logits, labels[split.train])
            model.zero_grad()
            loss.backward()
            optimizer.step()
        model.eval()
        with no_grad():
            wavelet_acc = accuracy(model(Tensor(channels[split.test])).data,
                                   labels[split.test])
        return [
            {"front_end": "HK low-pass", "accuracy": low_pass.test_score,
             "frame_lower": "-", "frame_upper": "-"},
            {"front_end": "SGWT frame (4 bands)", "accuracy": wavelet_acc,
             "frame_lower": round(lower, 3), "frame_upper": round(upper, 3)},
        ]

    rows = run_once(benchmark, run_both)
    emit(rows, title="Ablation: wavelet frame vs single low-pass front end")
    # Multi-band coverage does not lose to the single low-pass under
    # heterophily (usually wins).
    assert rows[1]["accuracy"] > rows[0]["accuracy"] - 0.05
    assert rows[1]["frame_lower"] > 0.5
