"""Figure 9 — degree-specific effectiveness under homophily/heterophily.

Measures the accuracy gap between high- and low-degree test nodes.
Asserts the paper's amendment to prior work (RQ8): high-degree nodes are
*not* universally easier — their advantage on homophilous graphs flips
into a deficit under strong heterophily.
"""

from __future__ import annotations

import numpy as np

from repro.bench import degree_bias_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once

FILTERS = ("linear", "impulse", "monomial", "ppr", "monomial_var",
           "chebyshev")


def test_fig9_degree_bias(benchmark):
    config = TrainConfig(epochs=env_epochs(40), patience=20)
    rows = run_once(
        benchmark, degree_bias_experiment,
        filters=FILTERS,
        dataset_names=("citeseer", "cora", "chameleon", "roman"),
        config=config,
        seeds=(0, 1, 2),
    )
    emit(rows, title="Fig 9: high-minus-low-degree accuracy gap")

    def mean_gap(homophily_class):
        gaps = [r["degree_gap"] for r in rows
                if r["homophily_class"] == homophily_class
                and np.isfinite(r["degree_gap"])]
        return float(np.mean(gaps))

    homo_gap = mean_gap("homo")
    hetero_gap = mean_gap("hetero")
    emit([{"homo_mean_gap": homo_gap, "hetero_mean_gap": hetero_gap}])
    # The paper's RQ8 contrast: the degree advantage shrinks (and typically
    # flips negative) moving from homophilous to heterophilous graphs.
    assert homo_gap > hetero_gap
