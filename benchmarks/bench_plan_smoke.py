"""Planned ≡ unplanned determinism + spmm-reduction gate for the planner.

Runs one multi-filter efficiency slice (2 datasets × 5 filters × 1
scheme = 10 grid cells) twice through the real CLI — once with the basis
planner on (the default) and once under ``--no-plan`` (the exact
pre-planner code path) — and holds the propagation planner
(:mod:`repro.runtime.plan`) to its two contracts:

- **bit-identity**: the planner must NEVER change numerics. After
  stripping execution-dependent fields (wall times, RSS peaks, paths,
  timestamps — :func:`repro.bench.io.canonical_rows`), the planned and
  unplanned result payloads must be *byte-identical*. Scores, statuses,
  modeled bytes, FLOP counts: not one bit of drift is tolerated.
- **spmm reduction**: the planner must actually pay for itself. The
  filter slice is chosen so chains overlap — ``ppr``/``monomial_var``/
  ``hk`` share one monomial adjacency chain and ``chebyshev``/
  ``chebinterp`` share one Chebyshev chain per dataset — so the planned
  run's ``ops.spmm.calls`` must come in at least ``MIN_SPMM_REDUCTION``
  (40%) below the unplanned run's. At K=10 the slice does 50 unplanned
  precompute spmm per dataset vs 20 planned (one 10-term adjacency chain
  + one 10-term Chebyshev chain): a 60% reduction, so the gate has slack
  without being vacuous.

The two runs use *separate* registry directories: the ``plan`` manifest
field is execution strategy, not configuration, so both runs share one
config fingerprint and would otherwise collapse into one history.

The normalized payloads and a ``spmm_delta.json`` report (per-mode spmm
calls, absolute and relative reduction, ``plan.*`` term-store counters)
are persisted under ``benchmarks/results/plan_smoke/`` so the
``bench-plan`` CI job can upload them as artifacts for post-mortem
diffing.
"""

from __future__ import annotations

import json
import shutil

from repro.bench.__main__ import main as bench_main
from repro.bench.io import canonical_payload, load_rows
from repro.telemetry.registry import RunRegistry

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 3
PLAN_DIR = RESULTS_DIR / "plan_smoke"
MODES = ("planned", "unplanned")
#: Chosen for chain overlap: three monomial-adjacency filters plus two
#: Chebyshev-recurrence filters (chebinterp subclasses chebyshev).
FILTERS = ("ppr", "monomial_var", "chebyshev", "chebinterp", "hk")
DATASETS = ("cora", "citeseer")
#: The acceptance bar: planned ops.spmm.calls must drop by at least this
#: fraction relative to --no-plan on this slice.
MIN_SPMM_REDUCTION = 0.40


def _one_cli_run(mode: str, epochs: int) -> int:
    args = [
        "efficiency", "--datasets", *DATASETS,
        "--filters", *FILTERS, "--schemes", "mini_batch",
        "--epochs", str(epochs),
        "--registry-dir", str(PLAN_DIR / mode),
        "--output", str(PLAN_DIR / f"{mode}.json"),
        "--trace", str(PLAN_DIR / f"{mode}.jsonl"),
    ]
    if mode == "unplanned":
        args.append("--no-plan")
    return bench_main(args)


def _plan_smoke(epochs: int) -> dict:
    if PLAN_DIR.exists():
        shutil.rmtree(PLAN_DIR)
    PLAN_DIR.mkdir(parents=True)

    exit_codes = {mode: _one_cli_run(mode, epochs) for mode in MODES}

    payloads = {}
    for mode in MODES:
        payload = canonical_payload(load_rows(PLAN_DIR / f"{mode}.json"))
        payloads[mode] = payload
        (PLAN_DIR / f"payload_{mode}.json").write_bytes(payload)

    records, counters = {}, {}
    for mode in MODES:
        registry = RunRegistry(PLAN_DIR / mode)
        records[mode] = registry.load()[-1]
        counters[mode] = records[mode].metrics.get("counters", {})

    spmm = {mode: counters[mode].get("ops.spmm.calls", 0) for mode in MODES}
    reduction = (1.0 - spmm["planned"] / spmm["unplanned"]
                 if spmm["unplanned"] else 0.0)
    delta = {
        "spmm_calls": spmm,
        "spmm_avoided": counters["planned"].get("plan.spmm_avoided", 0),
        "reduction": round(reduction, 6),
        "min_reduction": MIN_SPMM_REDUCTION,
        "plan_counters": {name: value
                          for name, value in sorted(counters["planned"].items())
                          if name.startswith("plan.")},
    }
    (PLAN_DIR / "spmm_delta.json").write_text(json.dumps(delta, indent=1))

    return {
        "exit_codes": exit_codes,
        "payloads": payloads,
        "records": records,
        "counters": counters,
        "delta": delta,
    }


def test_plan_smoke_gate(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _plan_smoke, epochs)
    delta = report["delta"]

    emit([{"metric": "ops.spmm.calls",
           **{mode: delta["spmm_calls"][mode] for mode in MODES},
           "reduction": f"{delta['reduction']:.1%}"}]
         + [{"metric": name, "planned": value, "unplanned": "-",
             "reduction": "-"}
            for name, value in delta["plan_counters"].items()],
         title="planner spmm reduction, planned vs --no-plan")

    # Both CLI invocations completed and were indexed cleanly.
    assert report["exit_codes"] == {mode: 0 for mode in MODES}

    # --- bit-identity: planned results byte-identical to unplanned.
    assert report["payloads"]["unplanned"], \
        "unplanned run produced an empty payload"
    assert report["payloads"]["planned"] == report["payloads"]["unplanned"], (
        "the planner changed numerics; diff "
        f"{PLAN_DIR / 'payload_planned.json'} against "
        f"{PLAN_DIR / 'payload_unplanned.json'}")

    # --- the planner actually engaged and the gate is not vacuous.
    assert delta["spmm_calls"]["unplanned"] > 0, \
        "reduction gate is vacuous: no spmm ops were counted"
    assert delta["plan_counters"].get("plan.terms.hit", 0) > 0, \
        "planner never served a shared term (plan.terms.hit == 0)"
    assert delta["spmm_avoided"] > 0

    # --- spmm reduction: the headline acceptance criterion.
    assert delta["reduction"] >= MIN_SPMM_REDUCTION, (
        f"planned run avoided only {delta['reduction']:.1%} of spmm calls "
        f"(gate: {MIN_SPMM_REDUCTION:.0%}); see "
        f"{PLAN_DIR / 'spmm_delta.json'}")

    # --- registry annotation: one config, two execution strategies.
    planned, unplanned = (report["records"]["planned"],
                          report["records"]["unplanned"])
    assert planned.config_fingerprint == unplanned.config_fingerprint, \
        "--no-plan leaked into the config fingerprint"
