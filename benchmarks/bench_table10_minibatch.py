"""Table 10 — effectiveness under mini-batch training.

The MB counterpart of Table 5: the same filters deliver comparable
accuracy without φ0 (RQ5), with the paper's caveat that MB degrades on
low-attribute-dimension datasets (over-squashing through the raw-feature
filtering).
"""

from __future__ import annotations

from repro.bench import effectiveness_experiment, pivot
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once

FILTERS = ("identity", "linear", "impulse", "monomial", "ppr", "hk",
           "monomial_var", "horner", "chebyshev", "bernstein", "jacobi",
           "favard", "optbasis", "fagnn", "g2cn", "gnnlfhf", "figure")
DATASETS = ("cora", "chameleon", "roman")


def test_table10_minibatch_effectiveness(benchmark):
    config = TrainConfig(epochs=env_epochs(40), patience=20, batch_size=512)
    rows = run_once(
        benchmark, effectiveness_experiment,
        dataset_names=DATASETS,
        filters=FILTERS,
        scheme="mini_batch",
        seeds=(0, 1),
        config=config,
    )
    wide = pivot(rows, index="filter", column="dataset", value="cell")
    emit(wide, title="Table 10: mini-batch effectiveness (mean±std %)")

    score = {(r["dataset"], r["filter"]): r["mean"] for r in rows}

    # RQ5 shape: MB keeps the homophily ordering — graph filters beat MLP.
    best_graph = max(v for (d, f), v in score.items()
                     if d == "cora" and f != "Identity")
    assert best_graph > score[("cora", "Identity")] + 0.03

    # Heterophily shape survives the scheme change.
    chameleon = {f: v for (d, f), v in score.items() if d == "chameleon"}
    assert chameleon["Impulse"] < max(chameleon.values()) - 0.10
