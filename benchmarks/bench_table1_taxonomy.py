"""Table 1 — taxonomy of spectral filters, verified by metered execution.

Regenerates the complexity columns of the paper's Table 1 and checks the
measured propagation-hop counts and mini-batch channel counts against the
declared O(·) classes.
"""

from __future__ import annotations

from repro.bench import taxonomy_experiment

from .conftest import emit, run_once


def test_table1_taxonomy(benchmark):
    rows = run_once(benchmark, taxonomy_experiment, num_hops=10)
    emit(rows, title="Table 1: filter taxonomy (measured)")
    assert len(rows) == 27
    by_name = {r["filter"]: r for r in rows}
    # O(K²mF) filters are the only ones with quadratic hop counts.
    assert by_name["Bernstein"]["quadratic_hops"]
    assert not by_name["Chebyshev"]["quadratic_hops"]
    # Fixed filters combine during precompute (1 channel); variable keep K+1.
    assert by_name["PPR"]["mb_channels"] == 1
    assert by_name["Monomial (var)"]["mb_channels"] == 11
