#!/usr/bin/env python
"""Nightly driver: slow suite, every bench smoke gate, cross-night gate.

Runs the full second-tier battery back-to-back in one process tree so the
scheduled ``nightly`` workflow (and anyone locally) needs exactly one
entry point::

    python benchmarks/run_nightly.py --registry-dir /tmp/nightly

Steps, in order:

1. the slow-marker integration suite (``pytest tests -m slow``) —
   skippable with ``--skip-slow`` for local iteration;
2. every ``benchmarks/bench_*_smoke.py`` CI gate, discovered by glob so
   new gates are picked up without touching this driver;
3. a pinned nightly efficiency sweep through the real CLI, recorded into
   one *persistent* registry directory (the workflow restores/saves it
   with ``actions/cache``, so records accumulate across nights);
4. ``python -m repro.bench compare --registry efficiency --gate`` over
   that registry — the two most recent nightly records are diffed and
   the pinned thresholds (``benchmarks/thresholds/efficiency.json``)
   must pass. The first night (a single record) skips the gate with a
   note instead of failing.

Every step's exit code and duration land in ``nightly_report.json``
inside the registry dir; the driver exits non-zero if any step failed.
All child processes run with ``src`` prepended to ``PYTHONPATH``, so no
environment setup is needed beyond a working interpreter.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
DEFAULT_REGISTRY = BENCH_DIR / "results" / "nightly_registry"

#: The cross-night sweep. The slice must stay constant between nights —
#: the regression gate diffs consecutive registry records of one config
#: fingerprint, and a slice change starts a fresh comparison lineage.
NIGHTLY_SWEEP = [
    "efficiency", "--datasets", "cora", "citeseer",
    "--filters", "ppr", "hk", "monomial", "--schemes", "mini_batch",
    "--workers", "4",
]


def _child_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not extra else f"{src}{os.pathsep}{extra}"
    return env


def _record_count(registry_dir: Path) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.telemetry.registry import RunRegistry
        return len(RunRegistry(registry_dir).load())
    except Exception:
        return 0
    finally:
        sys.path.pop(0)


def _run(name: str, argv: list, results: list) -> int:
    print(f"== nightly step: {name}\n   $ {' '.join(argv)}", flush=True)
    start = time.monotonic()
    code = subprocess.call(argv, cwd=REPO_ROOT, env=_child_env())
    elapsed = round(time.monotonic() - start, 2)
    print(f"== nightly step: {name} -> exit {code} in {elapsed}s", flush=True)
    results.append({"step": name, "exit_code": code, "seconds": elapsed})
    return code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the nightly battery: slow suite + bench gates + "
                    "cross-night regression gate.")
    parser.add_argument(
        "--registry-dir", default=str(DEFAULT_REGISTRY), metavar="DIR",
        help="persistent registry the nightly sweeps accumulate in "
             "(default: %(default)s)")
    parser.add_argument(
        "--epochs", type=int, default=3,
        help="epochs for the nightly sweep (default: %(default)s; must "
             "stay constant across nights for the gate to be comparable)")
    parser.add_argument(
        "--skip-slow", action="store_true",
        help="skip the slow-marker suite (local iteration)")
    args = parser.parse_args(argv)

    registry_dir = Path(args.registry_dir).resolve()
    registry_dir.mkdir(parents=True, exist_ok=True)
    python = sys.executable
    results: list = []

    if args.skip_slow:
        results.append({"step": "slow-suite", "exit_code": None,
                        "seconds": 0.0, "skipped": "--skip-slow"})
    else:
        _run("slow-suite",
             [python, "-m", "pytest", "tests", "-q", "-m", "slow"], results)

    gates = sorted(BENCH_DIR.glob("bench_*_smoke.py"))
    if not gates:
        print("== nightly: no bench_*_smoke.py gates found", flush=True)
        results.append({"step": "bench-gates", "exit_code": 1,
                        "seconds": 0.0})
    for gate in gates:
        name = gate.stem.removeprefix("bench_").removesuffix("_smoke")
        _run(f"bench-{name}",
             [python, "-m", "pytest", str(gate), "-x", "-q"], results)

    # Full-scale Table 5 gate (not a *_smoke, so chained explicitly):
    # chameleon at scale=1.0 through the blocked tier, under its pinned
    # memory ceiling — the nightly proof that full-size size-S rows stay
    # measurable, not extrapolated.
    _run("bench-table5-fullscale",
         [python, "-m", "pytest",
          str(BENCH_DIR / "bench_table5_fullscale.py"), "-x", "-q"],
         results)

    before = _record_count(registry_dir)
    sweep_ok = _run(
        "nightly-sweep",
        [python, "-m", "repro.bench", *NIGHTLY_SWEEP,
         "--epochs", str(args.epochs),
         "--registry-dir", str(registry_dir),
         "--output", str(registry_dir / "nightly_sweep.json"),
         "--trace", str(registry_dir / "nightly_sweep.jsonl")],
        results) == 0
    after = _record_count(registry_dir)

    if sweep_ok and after >= 2:
        _run("cross-night-gate",
             [python, "-m", "repro.bench", "compare",
              "--registry", "efficiency",
              "--registry-dir", str(registry_dir), "--gate"], results)
    else:
        why = (f"sweep failed" if not sweep_ok
               else f"{after} registry record(s); needs two nights")
        print(f"== nightly step: cross-night-gate skipped ({why})",
              flush=True)
        results.append({"step": "cross-night-gate", "exit_code": None,
                        "seconds": 0.0, "skipped": why})

    report = {"registry_dir": str(registry_dir),
              "records_before": before, "records_after": after,
              "steps": results}
    (registry_dir / "nightly_report.json").write_text(
        json.dumps(report, indent=2))

    print("\n== nightly summary", flush=True)
    for entry in results:
        status = ("SKIP" if entry.get("skipped")
                  else "ok" if entry["exit_code"] == 0 else "FAIL")
        print(f"   {entry['step']:<20} {status:<5} {entry['seconds']}s",
              flush=True)
    failed = [e["step"] for e in results
              if e["exit_code"] not in (0, None)]
    if failed:
        print(f"== nightly FAILED: {', '.join(failed)}", flush=True)
        return 1
    print("== nightly passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
