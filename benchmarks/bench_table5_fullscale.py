"""Table 5 at ``scale=1.0``: a full-size size-S row, measured not extrapolated.

The paper's efficiency/memory tables are defined on full-size graphs;
before the blocked tier, nothing downstream of the synthesizer survived
``scale=1.0``. This bench runs one Table 5-shaped slice — chameleon
(size S, 890 nodes, F=2325: the largest feature volume of the S class)
at the paper's full scale, three monomial-family filters under all three
training schemes — through ``--blocked --ram-budget 64``, where the
32 MiB term-store share cannot hold one ~91 MB variable-filter basis
chain, so the planner demonstrably spills at full scale.

Gates (the ISSUE 10 acceptance criteria):

- every (filter, scheme) cell completes with ``status == "ok"`` — the
  full-scale run is *measured*, no OOM and no extrapolation;
- the GP scheme reports cut-edge expressiveness accounting;
- the blocked tier actually engaged (``tiles ≥ 1``) and spilled;
- the accounted ``memory.peak_bytes`` stays under a pinned ceiling.

Artifacts persist under ``benchmarks/results/table5_fullscale/``.
"""

from __future__ import annotations

import shutil

from repro.bench.__main__ import main as bench_main
from repro.bench.io import load_rows
from repro.telemetry.registry import RunRegistry

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 3
FULLSCALE_DIR = RESULTS_DIR / "table5_fullscale"

#: Tier budget (MiB). Term-store share = 32 MiB < one full-scale
#: chameleon basis chain (~8.3 MB/term x K+1 terms) — spills at scale.
RAM_BUDGET_MIB = 64

#: Pinned ceiling for the run's accounted memory peak: the blocked tier
#: must keep the full-scale slice's engine allocations bounded.
PEAK_BYTES_CEILING = 1024 * 2 ** 20

DATASET = "chameleon"
FILTERS = ("ppr", "chebyshev", "monomial")
SCHEMES = ("full_batch", "mini_batch", "graph_partition")


def _fullscale_run(epochs: int) -> dict:
    if FULLSCALE_DIR.exists():
        shutil.rmtree(FULLSCALE_DIR)
    exit_code = bench_main([
        "efficiency", "--datasets", DATASET, "--filters", *FILTERS,
        "--schemes", *SCHEMES,
        "--scale", "1.0", "--epochs", str(epochs),
        "--blocked", "--ram-budget", str(RAM_BUDGET_MIB),
        "--spill-dir", str(FULLSCALE_DIR / "spill"),
        "--registry-dir", str(FULLSCALE_DIR),
        "--trace", str(FULLSCALE_DIR / "run.jsonl"),
        "--output", str(FULLSCALE_DIR / "run.json"),
    ])
    rows = load_rows(FULLSCALE_DIR / "run.json")
    record = RunRegistry(FULLSCALE_DIR).load()[-1]
    return {"exit_code": exit_code, "rows": rows, "record": record}


def test_table5_fullscale(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _fullscale_run, epochs)
    rows, record = report["rows"], report["record"]
    tier = record.memory.get("blocked") or {}

    emit(rows, title=f"Table 5 shape: {DATASET} @ scale=1.0 "
                     f"(blocked, {RAM_BUDGET_MIB} MiB budget)")
    emit([{"check": "blocked.tiles", "value": tier.get("tiles")},
          {"check": "blocked.spill_terms", "value": tier.get("spill_terms")},
          {"check": "blocked.spill_bytes", "value": tier.get("spill_bytes")},
          {"check": "memory.peak_bytes",
           "value": record.memory.get("peak_bytes")}],
         title="full-scale blocked accounting")

    assert report["exit_code"] == 0
    assert record.schema.endswith("/v6")

    # --- every cell of the grid is a measured row, not an OOM cell.
    assert len(rows) == len(FILTERS) * len(SCHEMES)
    assert all(row["status"] == "ok" for row in rows), \
        [f"{r['filter']}/{r['scheme']}: {r['status']}" for r in rows
         if r["status"] != "ok"]
    assert all(row["n"] >= 800 for row in rows), \
        "scale=1.0 must produce the paper-sized graph"

    # --- GP expressiveness accounting at full scale.
    gp_rows = [r for r in rows if r["scheme"] == "graph_partition"]
    assert gp_rows
    for row in gp_rows:
        assert row["cut_edges"] > 0
        assert 0.0 < row["cut_edge_fraction"] <= 1.0

    # --- the tier engaged and went out of core.
    assert tier, "full-scale record lacks the v6 'blocked' sub-block"
    assert tier["tiles"] >= 1
    assert tier["spill_terms"] >= 1, \
        "a 64 MiB budget must spill at least one full-scale term"

    # --- pinned memory gate: full scale, bounded peak.
    peak = record.memory.get("peak_bytes") or 0
    assert 0 < peak <= PEAK_BYTES_CEILING, \
        f"memory.peak_bytes {peak} exceeds pinned {PEAK_BYTES_CEILING}"
