"""Live sweep observatory gate: heartbeats, Chrome trace, payload purity.

Runs one small efficiency sweep (1 dataset × 2 filters × 1 scheme = 2
grid cells) twice through the real CLI — once with live monitoring on
(``--live`` + 2 workers) and once with it off — and holds the live
telemetry channel (:mod:`repro.telemetry.live`) to its contract:

- **liveness**: every grid cell announces ``cell_start`` on the live
  stream and produces at least one ``heartbeat`` (the per-epoch trainer
  tick), so a monitored sweep can never be silently opaque.
- **exportability**: the post-run Chrome trace (``*.trace.json``) is
  valid JSON in Trace Event Format with one named track per worker pid,
  cell slices (``ph: "X"``) on those tracks, and an RSS counter track
  (``ph: "C"``) — loadable as-is in https://ui.perfetto.dev.
- **payload purity**: live monitoring is observability only. The
  canonical result payload of the monitored run is *byte-identical* to
  the unmonitored run's, so the serial≡parallel determinism gates of
  ``bench-parallel``/``bench-plan`` are untouched by live events.
- **registry annotation**: the monitored run's registry record points at
  both live artifacts (``live_path``/``chrome_trace_path``).

Artifacts land under ``benchmarks/results/watch_smoke/`` for the
``bench-watch`` CI job to upload.
"""

from __future__ import annotations

import json
import shutil

from repro.bench.__main__ import main as bench_main
from repro.bench.io import canonical_payload, load_rows
from repro.telemetry.registry import RunRegistry
from repro.telemetry.sinks import load_events

from .conftest import RESULTS_DIR, emit, env_epochs, run_once

EPOCHS_DEFAULT = 3
WATCH_DIR = RESULTS_DIR / "watch_smoke"
GRID_CELLS = 2  # 1 dataset x 2 filters x 1 scheme
WORKERS = 2


def _one_cli_run(mode: str, epochs: int) -> int:
    # --no-plan for the same reason as bench_parallel_smoke: keep the two
    # runs' execution paths identical apart from the live channel.
    argv = [
        "efficiency", "--datasets", "cora",
        "--filters", "ppr", "chebyshev", "--schemes", "mini_batch",
        "--epochs", str(epochs), "--workers", str(WORKERS), "--no-plan",
        "--registry-dir", str(WATCH_DIR),
        "--output", str(WATCH_DIR / f"{mode}.json"),
        "--trace", str(WATCH_DIR / f"{mode}_trace.jsonl"),
    ]
    if mode == "live":
        argv += ["--live", str(WATCH_DIR / "live.jsonl")]
    return bench_main(argv)


def _watch_smoke(epochs: int) -> dict:
    if WATCH_DIR.exists():
        shutil.rmtree(WATCH_DIR)
    WATCH_DIR.mkdir(parents=True)

    exit_codes = {mode: _one_cli_run(mode, epochs)
                  for mode in ("live", "plain")}

    payloads = {}
    for mode in ("live", "plain"):
        payload = canonical_payload(load_rows(WATCH_DIR / f"{mode}.json"))
        payloads[mode] = payload
        (WATCH_DIR / f"payload_{mode}.json").write_bytes(payload)

    live_events = load_events(WATCH_DIR / "live.jsonl")
    trace = json.loads((WATCH_DIR / "live.trace.json").read_text())

    registry = RunRegistry(WATCH_DIR)
    records = {("live" if record.live_path else "plain"): record
               for record in registry.load()}

    return {
        "exit_codes": exit_codes,
        "payloads": payloads,
        "live_events": live_events,
        "trace": trace,
        "records": records,
    }


def test_watch_smoke_gate(benchmark):
    epochs = env_epochs(EPOCHS_DEFAULT)
    report = run_once(benchmark, _watch_smoke, epochs)
    live_events = report["live_events"]

    started = {e["cell"] for e in live_events if e["type"] == "cell_start"}
    beating = {e["cell"] for e in live_events if e["type"] == "heartbeat"}
    by_type: dict = {}
    for event in live_events:
        by_type[event["type"]] = by_type.get(event["type"], 0) + 1
    emit([{"event": name, "count": count}
          for name, count in sorted(by_type.items())],
         title="live.jsonl event stream")

    assert report["exit_codes"] == {"live": 0, "plain": 0}

    # --- liveness: every cell started and proved progress.
    assert len(started) == GRID_CELLS, \
        f"expected cell_start for all {GRID_CELLS} cells, got {started}"
    assert beating >= started, \
        f"cells without a single heartbeat: {started - beating}"
    assert any(e["type"] == "rss" for e in live_events), \
        "no RSS samples on the live stream"
    assert any(e["type"] == "sweep_finish" for e in live_events)

    # --- exportability: Trace Event JSON, per-worker tracks, RSS counter.
    trace_events = report["trace"]["traceEvents"]
    worker_pids = {e["pid"] for e in live_events
                   if e.get("pid") is not None and e["type"] == "cell_start"}
    named_tracks = {e["tid"] for e in trace_events
                    if e.get("ph") == "M" and e["name"] == "thread_name"
                    and e["args"]["name"].startswith("worker ")}
    cell_track_tids = {e["tid"] for e in trace_events
                       if e.get("ph") == "X" and e.get("cat") == "cell"}
    assert worker_pids and named_tracks == worker_pids, \
        f"named worker tracks {named_tracks} != worker pids {worker_pids}"
    assert cell_track_tids <= worker_pids | {0}
    assert len(cell_track_tids & worker_pids) == len(worker_pids), \
        "some worker track carries no cell slice"
    assert any(e.get("ph") == "C" and e["name"] == "rss"
               for e in trace_events), "no RSS counter track"

    # --- payload purity: live monitoring cannot move a result bit.
    assert report["payloads"]["plain"], "unmonitored run payload is empty"
    assert report["payloads"]["live"] == report["payloads"]["plain"], (
        "live monitoring perturbed the canonical payload; diff "
        f"{WATCH_DIR / 'payload_live.json'} against "
        f"{WATCH_DIR / 'payload_plain.json'}")

    # --- registry annotation: the monitored run indexes its artifacts.
    assert set(report["records"]) == {"live", "plain"}
    live_record = report["records"]["live"]
    assert live_record.live_path == str(WATCH_DIR / "live.jsonl")
    assert live_record.chrome_trace_path == str(WATCH_DIR / "live.trace.json")
    assert (live_record.pool.get("stats") or {}).get("stragglers"), \
        "pool stats lost the straggler ranking"
