"""Figure 5 — time efficiency on different hardware platforms.

Projects one set of measured stage timings onto the S1 (reference) and S2
(slower CPU, faster GPU) profiles and asserts the paper's crossover: MB
fixed filters — transform-bound — get faster on S2, while
propagation-bound stages get slower.
"""

from __future__ import annotations

from repro.bench import hardware_experiment
from repro.training import TrainConfig

from .conftest import emit, env_epochs, run_once


def test_fig5_hardware_profiles(benchmark):
    config = TrainConfig(epochs=env_epochs(4), patience=0, eval_every=100,
                         batch_size=256)
    rows = run_once(
        benchmark, hardware_experiment,
        filters=("monomial", "ppr", "chebyshev", "favard"),
        dataset_name="penn94",
        config=config,
    )
    emit(rows, title="Fig 5: projected stage times on S1 vs S2")

    def total(filter_display, scheme, platform):
        return next(r for r in rows
                    if r["filter"] == filter_display and r["scheme"] == scheme
                    and r["platform"] == platform)

    # MB fixed filters: training is transform-bound -> faster on S2.
    mb_s1 = total("PPR", "mini_batch", "S1")
    mb_s2 = total("PPR", "mini_batch", "S2")
    assert mb_s2["train_s"] < mb_s1["train_s"]
    # The propagation-bound precompute slows down on S2's slower CPUs.
    assert mb_s2["precompute_s"] > mb_s1["precompute_s"]
    # FB training is propagation-bound -> slower on S2.
    fb_s1 = total("PPR", "full_batch", "S1")
    fb_s2 = total("PPR", "full_batch", "S2")
    assert fb_s2["train_s"] > fb_s1["train_s"]
