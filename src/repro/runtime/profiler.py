"""Stage-level profiling: wall time and memory per learning stage.

The paper reports efficiency per *stage* — precomputation, training (per
epoch), inference — with RAM and device memory tracked separately
(Figure 2, Tables 9 & 11). :class:`StageProfiler` is the collector behind
those tables: trainers open named stages and record byte counts for what
they hold in host RAM; device peaks come from the paired
:class:`~repro.runtime.device.DeviceModel`.

Since the telemetry layer landed, the profiler is a *view* over the span
tracer: every stage entry also opens a ``kind="stage"`` span on the active
:mod:`repro.telemetry` tracer (a no-op while telemetry is disabled), and
:meth:`StageProfiler.from_events` rebuilds identical stage statistics from
a recorded trace, so any JSONL artifact can be re-aggregated into the
paper's tables offline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping

from .. import telemetry

#: The op_class used before a stage is explicitly classified.
DEFAULT_OP_CLASS = "transform"


@dataclass
class StageStats:
    """Accumulated measurements for one named stage."""

    seconds: float = 0.0
    calls: int = 0
    ram_bytes: int = 0
    device_bytes: int = 0
    #: Operation class for hardware re-scaling: "propagation" | "transform"
    op_class: str = DEFAULT_OP_CLASS

    @property
    def seconds_per_call(self) -> float:
        """Throughput view; 0.0 (not NaN/inf) for never-entered stages."""
        return self.seconds / self.calls if self.calls else 0.0


class StageProfiler:
    """Collects per-stage wall time and memory for one benchmark run."""

    def __init__(self):
        self.stages: Dict[str, StageStats] = {}

    def _stage(self, name: str) -> StageStats:
        stage = self.stages.get(name)
        if stage is None:
            stage = StageStats()
            self.stages[name] = stage
        return stage

    @contextmanager
    def stage(self, name: str, op_class: str = DEFAULT_OP_CLASS) -> Iterator[StageStats]:
        """Time a stage; repeated entries accumulate (per-epoch training)."""
        stats = self._stage(name)
        stats.op_class = op_class
        start = time.perf_counter()
        with telemetry.span(name, kind="stage", op_class=op_class):
            try:
                yield stats
            finally:
                stats.seconds += time.perf_counter() - start
                stats.calls += 1

    def record_ram(self, name: str, nbytes: int) -> None:
        """Record peak host-RAM bytes attributed to a stage."""
        stats = self._stage(name)
        stats.ram_bytes = max(stats.ram_bytes, int(nbytes))
        telemetry.emit_event("stage.memory", stage=name, kind="ram",
                             bytes=int(nbytes))

    def record_device(self, name: str, nbytes: int) -> None:
        """Record peak device bytes attributed to a stage."""
        stats = self._stage(name)
        stats.device_bytes = max(stats.device_bytes, int(nbytes))
        telemetry.emit_event("stage.memory", stage=name, kind="device",
                             bytes=int(nbytes))

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def seconds(self, name: str) -> float:
        return self.stages[name].seconds if name in self.stages else 0.0

    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages.values())

    def peak_ram_bytes(self) -> int:
        return max((stage.ram_bytes for stage in self.stages.values()), default=0)

    def peak_device_bytes(self) -> int:
        return max((stage.device_bytes for stage in self.stages.values()), default=0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict view used by the report formatter."""
        return {
            name: {
                "seconds": stage.seconds,
                "seconds_per_call": stage.seconds_per_call,
                "calls": stage.calls,
                "ram_bytes": stage.ram_bytes,
                "device_bytes": stage.device_bytes,
                "op_class": stage.op_class,
            }
            for name, stage in self.stages.items()
        }

    def reset(self) -> None:
        """Drop all recorded stages (reuse one profiler across runs)."""
        self.stages.clear()

    def merge(self, other: "StageProfiler") -> None:
        """Fold another profiler's stages into this one (multi-seed runs).

        Timings and calls accumulate; memory peaks take the max. The
        ``op_class`` keeps the first non-default classification: a stage
        that was never entered on the incoming side (still carrying the
        default) must not clobber an explicit classification here, and an
        already-classified stage keeps its original class.
        """
        for name, stage in other.stages.items():
            mine = self._stage(name)
            mine.seconds += stage.seconds
            mine.calls += stage.calls
            mine.ram_bytes = max(mine.ram_bytes, stage.ram_bytes)
            mine.device_bytes = max(mine.device_bytes, stage.device_bytes)
            if mine.op_class == DEFAULT_OP_CLASS and stage.op_class != DEFAULT_OP_CLASS:
                mine.op_class = stage.op_class

    # ------------------------------------------------------------------
    # trace view
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events: Iterable[Mapping]) -> "StageProfiler":
        """Rebuild stage statistics from recorded telemetry events.

        Aggregates ``kind="stage"`` span events (accumulating seconds and
        calls, exactly like live :meth:`stage` entries) and ``stage.memory``
        events (taking peaks), making the profiler a pure view over a
        trace: ``StageProfiler.from_events(load_events(path)).summary()``
        reproduces the live run's summary.
        """
        profiler = cls()
        for event in events:
            etype = event.get("type")
            if etype == "span" and event.get("attrs", {}).get("kind") == "stage":
                stats = profiler._stage(event["name"])
                stats.seconds += float(event.get("duration_s", 0.0))
                stats.calls += 1
                op_class = event["attrs"].get("op_class")
                if op_class and stats.op_class == DEFAULT_OP_CLASS:
                    stats.op_class = op_class
            elif etype == "stage.memory":
                stats = profiler._stage(event["stage"])
                nbytes = int(event.get("bytes", 0))
                if event.get("kind") == "device":
                    stats.device_bytes = max(stats.device_bytes, nbytes)
                else:
                    stats.ram_bytes = max(stats.ram_bytes, nbytes)
        return profiler
