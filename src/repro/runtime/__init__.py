"""Execution-environment simulation: device memory, profiling, hardware."""

from .device import GIBIBYTE, DeviceModel, nbytes_of
from .hardware import PROFILES, S1, S2, HardwareProfile
from .profiler import StageProfiler, StageStats

__all__ = [
    "DeviceModel",
    "nbytes_of",
    "GIBIBYTE",
    "StageProfiler",
    "StageStats",
    "HardwareProfile",
    "S1",
    "S2",
    "PROFILES",
]
