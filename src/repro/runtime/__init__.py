"""Execution-environment simulation: device memory, profiling, hardware,
the instrumented sparse-compute cache layer, the basis-term propagation
planner, the process-pool grid executor for parallel benchmark sweeps,
and the content-addressed cell artifact store that makes sweeps
resumable."""

from .artifacts import (
    ARTIFACT_DIR_ENV,
    ARTIFACT_SCHEMA,
    DEFAULT_ARTIFACT_DIR,
    ArtifactStore,
    CellArtifact,
    SweepArtifacts,
    active_sweep,
    cell_address,
    default_artifact_dir,
    default_code_rev,
    sweep_scope,
)
from .cache import (
    MISSING,
    NORM_MEMO_ENTRIES,
    TRANSPOSE_CACHE_ENTRIES,
    LRUCache,
    caches_disabled,
    clear_transpose_cache,
    data_token,
    is_enabled as cache_enabled,
    matrix_token,
    norm_memo,
    set_enabled as set_cache_enabled,
    transpose_build_count,
    transpose_cache_stats,
    transpose_csr,
)
from .device import GIBIBYTE, DeviceModel, nbytes_of
from .hardware import PROFILES, S1, S2, HardwareProfile
from .plan import (
    PLAN_CHAIN_ENTRIES,
    BasisPlanner,
    active_planner,
    chain_bases,
    is_enabled as plan_enabled,
    plan_scope,
    plans_disabled,
    set_enabled as set_plan_enabled,
)
from .pool import (
    Cell,
    CellResult,
    PoolConfig,
    derive_cell_seed,
    execute_cells,
    last_run_stats,
    pool_stats,
)
from .profiler import StageProfiler, StageStats

__all__ = [
    "DeviceModel",
    "nbytes_of",
    "GIBIBYTE",
    "StageProfiler",
    "StageStats",
    "HardwareProfile",
    "S1",
    "S2",
    "PROFILES",
    # cache layer
    "LRUCache",
    "MISSING",
    "NORM_MEMO_ENTRIES",
    "TRANSPOSE_CACHE_ENTRIES",
    "cache_enabled",
    "set_cache_enabled",
    "caches_disabled",
    "clear_transpose_cache",
    "data_token",
    "matrix_token",
    "norm_memo",
    "transpose_build_count",
    "transpose_cache_stats",
    "transpose_csr",
    # basis-term planner
    "BasisPlanner",
    "PLAN_CHAIN_ENTRIES",
    "active_planner",
    "chain_bases",
    "plan_enabled",
    "plan_scope",
    "plans_disabled",
    "set_plan_enabled",
    # parallel sweep executor
    "Cell",
    "CellResult",
    "PoolConfig",
    "derive_cell_seed",
    "execute_cells",
    "last_run_stats",
    "pool_stats",
    # resumable-sweep artifact store
    "ARTIFACT_DIR_ENV",
    "ARTIFACT_SCHEMA",
    "DEFAULT_ARTIFACT_DIR",
    "ArtifactStore",
    "CellArtifact",
    "SweepArtifacts",
    "active_sweep",
    "cell_address",
    "default_artifact_dir",
    "default_code_rev",
    "sweep_scope",
]
