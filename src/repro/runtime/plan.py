"""repro.runtime.plan — cross-filter basis-term propagation planner.

Every filter in the taxonomy reduces to ``g(L̃)x = Σ θ_k T^(k)(L̃)x``, and
the benchmark's grid sweeps run many filters back-to-back on the *same*
graph, *same* features, and *same* normalization ρ. The basis chains are
therefore a cross-filter common subexpression: six of the fixed/variable
filters share the monomial prefix ``x, Ãx, Ã²x, …`` outright, Chebyshev
and its interpolated variant share one recurrence chain, BernNet's
Laplacian-power stage is the same chain FBGNN/ACMGNN/AdaGNN precompute,
and so on. Without planning the sweep pays for each chain once per
filter × seed; with it, once per (operator, signal, basis family).

The planner canonicalizes each filter's recurrence into a *chain*:

- an **operator fingerprint** — the propagation matrix's identity plus
  the mutation token from :func:`repro.runtime.cache.matrix_token` (the
  matrix itself already encodes ρ/self-loops via the per-graph
  normalization memo) and the spmm backend;
- a **signal fingerprint** — the identity + content token of ``X``;
- a **basis family + scaling** — e.g. ``("jacobi", (a, b))`` — naming
  the recurrence step;

and serves order-k terms from a bounded, instrumented term store.
Requests extend a chain incrementally: a later filter asking for a
higher order recomputes only the missing suffix, never the shared
prefix. Recurrence steps run through preallocated ping-pong scratch
buffers (dirty-checked per shape/dtype) so the planned numpy path
allocates one fresh array per stored term and zero per-step temporaries.

**Bit-identity guarantee** (same contract as the spmm transpose cache):
the planned and unplanned paths execute the *same floating-point
operations in the same order* — the in-place kernels mirror the
streaming expressions ufunc by ufunc — so enabling the planner never
changes a single result bit. The hypothesis suite in
``tests/test_runtime_plan.py`` holds every family to this property.

Scope and lifetime: the store only exists inside a :func:`plan_scope`
(the bench sweeps open one per sweep; the mini-batch trainer opens a
nested one around precompute). Scopes nest by reuse, so chains live for
the outermost scope. Pool workers open a *fresh* scope per cell, which
keeps worker runs deterministic regardless of start method — and means
``ops.spmm.calls`` legitimately depends on the execution mode when the
planner is on (serial sweeps share across cells; an isolated worker's
local store cannot). The cross-process shared term store
(:mod:`repro.runtime.shm`, on by default for pooled sweeps) closes that
gap: :meth:`BasisPlanner.chain_terms` consults the sweep's shared index
before computing a chain suffix and publishes what it computed, so
sibling workers attach the identical bytes instead of recomputing.
Tensor (autodiff) and spectral-grid signals always stream:
caching per-epoch activations would be useless and planning must never
capture autodiff graphs.

Bypass: ``--no-plan`` (this module's :func:`set_enabled`) or the global
``--no-cache`` switch (:func:`repro.runtime.cache.is_enabled`) turns
:func:`active_planner` off at serve time; filters then stream exactly
what the seed code computed.

Spill tier: inside a :func:`repro.runtime.blocked.blocked_scope` the
store gains a disk-backed level. Evicting a chain — by LRU capacity or
because resident term bytes exceed the tier's byte budget — writes its
computed ``T^(k)(L̃)·X`` terms to the tier's :class:`~repro.runtime
.blocked.SpillStore` (atomic ``.npy`` files keyed by the chain's content
fingerprint + order) instead of dropping them; a later request for the
same chain maps the identical bytes back read-only (``numpy.memmap``)
rather than recomputing the spmm suffix. Spilled-then-reloaded terms are
bit-identical by construction, so the planner's bit-identity guarantee
is unchanged.

Counters emitted (when telemetry is configured):

- ``plan.terms.{hit,miss,evict}`` — order-k≥1 term traffic in the store.
- ``plan.terms.{spill,spill_load}`` — terms written to / mapped back
  from the blocked tier's spill store (zero outside a blocked scope).
- ``plan.spmm_avoided`` — spmm applications *not* executed because the
  term was served (a Gaussian chain term avoids 2 per hit).
- ``plan.chains.{hit,miss,evict}`` — chain-level LRU traffic.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

import numpy as np
import scipy.sparse as sp

from .. import telemetry
from . import blocked as runtime_blocked
from . import cache as runtime_cache
from . import shm as runtime_shm
from .cache import LRUCache, MISSING, matrix_token

#: Default bound on live chains per planner. Each chain holds up to K+1
#: dense (n, F) terms, so the bound — not the term count — is what caps
#: host RAM growth; a sweep touches ~2-4 distinct chains per dataset.
PLAN_CHAIN_ENTRIES = 8

_enabled = True
_enabled_lock = threading.Lock()


def set_enabled(enabled: bool) -> bool:
    """Switch the planner on/off process-wide; returns the previous state."""
    global _enabled
    with _enabled_lock:
        previous = _enabled
        _enabled = bool(enabled)
    return previous


def is_enabled() -> bool:
    """Whether the planner is active (``--no-plan`` clears this)."""
    return _enabled


@contextmanager
def plans_disabled() -> Iterator[None]:
    """Context manager running its body with the planner bypassed."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def array_token(array: np.ndarray) -> Tuple:
    """Cheap mutation fingerprint of a dense signal's payload.

    The signal-side analogue of :func:`repro.runtime.cache.matrix_token`:
    shape, dtype, and a strided checksum (≤ 64 samples plus the exact
    endpoints), so an in-place edit of ``X`` invalidates every chain
    keyed on it with overwhelming probability.
    """
    data = np.asarray(array)
    size = int(data.size)
    if size == 0:
        checksum = 0.0
    else:
        flat = data.reshape(-1) if data.flags["C_CONTIGUOUS"] \
            else np.ravel(data)
        stride = max(1, size // 64)
        sample = flat[::stride]
        checksum = float(np.asarray(sample, dtype=np.float64).sum())
        checksum += float(flat[0]) * 3.0 + float(flat[-1]) * 7.0
    return (tuple(data.shape), data.dtype.str, checksum)


# ======================================================================
# basis families
# ======================================================================
# Each step function computes term k (k >= 1) of its recurrence from the
# window (prev_prev, prev); ``prev_prev`` is None at k == 1. With
# ``ws=None`` the step evaluates the plain streaming expression (works on
# numpy arrays, autodiff Tensors, and spectral-grid signals alike); with
# a Workspace it runs the numpy in-place variant. The two branches MUST
# stay ufunc-for-ufunc identical — that is the planner's bit-identity
# contract — so edit them only in pairs.


class Workspace:
    """Preallocated ping-pong scratch buffers for recurrence temporaries.

    ``scratch(template, slot)`` returns a reusable buffer matching the
    template's shape/dtype (slot 0 = ping, 1 = pong), dirty-checked on
    every take so a stale buffer from a different signal shape can never
    be served. Buffers only ever hold *intra-step* temporaries — stored
    chain terms are always fresh arrays — which is what makes serving
    cached terms safe without copying.
    """

    def __init__(self):
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def scratch(self, template: np.ndarray, slot: int = 0) -> np.ndarray:
        key = (template.shape, template.dtype.str, int(slot))
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape != template.shape \
                or buffer.dtype != template.dtype:
            buffer = self._buffers[key] = np.empty(template.shape,
                                                   dtype=template.dtype)
        return buffer

    def clear(self) -> None:
        self._buffers.clear()


def _step_monomial_adj(ctx, x, prev_prev, prev, k, params, ws=None):
    """Adjacency powers: ``T_k = Ã T_{k-1}``."""
    return ctx.adj(prev)


def _step_monomial_lap(ctx, x, prev_prev, prev, k, params, ws=None):
    """Laplacian powers: ``T_k = L̃ T_{k-1} = T_{k-1} − Ã T_{k-1}``."""
    if ws is None:
        return prev - ctx.adj(prev)
    term = ctx.adj(prev)
    np.subtract(prev, term, out=term)
    return term


def _step_chebyshev(ctx, x, prev_prev, prev, k, params, ws=None):
    """First-kind Chebyshev on ``L̂ = −Ã``: ``T_k = 2L̂T_{k-1} − T_{k-2}``."""
    if ws is None:
        shifted = -ctx.adj(prev)
        if k == 1:
            return shifted
        return shifted * 2.0 - prev_prev
    term = ctx.adj(prev)
    np.negative(term, out=term)
    if k == 1:
        return term
    np.multiply(term, 2.0, out=term)
    np.subtract(term, prev_prev, out=term)
    return term


def _step_clenshaw(ctx, x, prev_prev, prev, k, params, ws=None):
    """Second-kind Chebyshev: ``U_1 = 2L̂``, ``U_k = 2L̂U_{k-1} − U_{k-2}``."""
    if ws is None:
        shifted = -ctx.adj(prev)
        if k == 1:
            return shifted * 2.0
        return shifted * 2.0 - prev_prev
    term = ctx.adj(prev)
    np.negative(term, out=term)
    np.multiply(term, 2.0, out=term)
    if k == 1:
        return term
    np.subtract(term, prev_prev, out=term)
    return term


def _step_legendre(ctx, x, prev_prev, prev, k, params, ws=None):
    """Legendre: ``P_k = ((2k−1)/k) L̂ P_{k-1} − ((k−1)/k) P_{k-2}``."""
    if ws is None:
        shifted = -ctx.adj(prev)
        if k == 1:
            return shifted
        return shifted * ((2.0 * k - 1.0) / k) - prev_prev * ((k - 1.0) / k)
    term = ctx.adj(prev)
    np.negative(term, out=term)
    if k == 1:
        return term
    np.multiply(term, (2.0 * k - 1.0) / k, out=term)
    scratch = ws.scratch(term)
    np.multiply(prev_prev, (k - 1.0) / k, out=scratch)
    np.subtract(term, scratch, out=term)
    return term


def _step_jacobi(ctx, x, prev_prev, prev, k, params, ws=None):
    """Jacobi ``P_k^{(a,b)}(1 − λ)`` (Wang & Zhang 2022 recurrence)."""
    a, b = params
    if k == 1:
        if ws is None:
            return x * ((a - b) / 2.0) + ctx.adj(x) * ((a + b + 2.0) / 2.0)
        term = ctx.adj(x)
        np.multiply(term, (a + b + 2.0) / 2.0, out=term)
        scratch = ws.scratch(term)
        np.multiply(x, (a - b) / 2.0, out=scratch)
        np.add(scratch, term, out=term)
        return term
    denom = 2.0 * k * (k + a + b) * (2.0 * k + a + b - 2.0)
    c1 = (2.0 * k + a + b - 1.0) * (2.0 * k + a + b) \
        * (2.0 * k + a + b - 2.0) / denom
    c2 = (2.0 * k + a + b - 1.0) * (a * a - b * b) / denom
    c3 = 2.0 * (k + a - 1.0) * (k + b - 1.0) * (2.0 * k + a + b) / denom
    if ws is None:
        return ctx.adj(prev) * c1 + prev * c2 - prev_prev * c3
    term = ctx.adj(prev)
    np.multiply(term, c1, out=term)
    scratch = ws.scratch(term)
    np.multiply(prev, c2, out=scratch)
    np.add(term, scratch, out=term)
    np.multiply(prev_prev, c3, out=scratch)
    np.subtract(term, scratch, out=term)
    return term


def _step_horner(ctx, x, prev_prev, prev, k, params, ws=None):
    """Horner residual: ``b_k = Ã b_{k-1} + x``."""
    if ws is None:
        return ctx.adj(prev) + x
    term = ctx.adj(prev)
    np.add(term, x, out=term)
    return term


def _step_shifted_monomial(ctx, x, prev_prev, prev, k, params, ws=None):
    """FAGNN channel powers: ``T_k = s·Ã T_{k-1} + β T_{k-1}``."""
    beta, sign = params
    if ws is None:
        return ctx.adj(prev) * sign + prev * beta
    term = ctx.adj(prev)
    np.multiply(term, sign, out=term)
    scratch = ws.scratch(term)
    np.multiply(prev, beta, out=scratch)
    np.add(term, scratch, out=term)
    return term


def _step_gaussian(ctx, x, prev_prev, prev, k, params, ws=None):
    """One G²CN product layer: ``H ← H − (α/J)·C²H`` with ``C = βI + Ã``."""
    alpha, beta, layers = params
    step = alpha / layers
    if ws is None:
        inner = ctx.adj(prev) + prev * beta
        squared = ctx.adj(inner) + inner * beta
        return prev - squared * step
    inner = ctx.adj(prev)
    scratch = ws.scratch(inner)
    np.multiply(prev, beta, out=scratch)
    np.add(inner, scratch, out=inner)
    squared = ctx.adj(inner)
    np.multiply(inner, beta, out=scratch)
    np.add(squared, scratch, out=squared)
    np.multiply(squared, step, out=squared)
    np.subtract(prev, squared, out=squared)
    return squared


@dataclass(frozen=True)
class ChainFamily:
    """One canonicalized basis recurrence the planner knows how to run."""

    name: str
    step: Callable
    #: spmm applications per recurrence step (what a served term avoids).
    spmm_per_step: int = 1
    #: recurrence history: 2 for three-term recurrences, else 1.
    history: int = 1


FAMILIES: Dict[str, ChainFamily] = {
    family.name: family
    for family in (
        ChainFamily("monomial_adj", _step_monomial_adj),
        ChainFamily("monomial_lap", _step_monomial_lap),
        ChainFamily("chebyshev", _step_chebyshev, history=2),
        ChainFamily("clenshaw", _step_clenshaw, history=2),
        ChainFamily("legendre", _step_legendre, history=2),
        ChainFamily("jacobi", _step_jacobi, history=2),
        ChainFamily("horner", _step_horner),
        ChainFamily("shifted_monomial", _step_shifted_monomial),
        ChainFamily("gaussian", _step_gaussian, spmm_per_step=2),
    )
}


def _family(name: str) -> ChainFamily:
    family = FAMILIES.get(name)
    if family is None:
        raise KeyError(f"unknown basis family {name!r}; "
                       f"known: {', '.join(sorted(FAMILIES))}")
    return family


def stream_chain(ctx, x, family: str, params: Tuple, count: int):
    """Unplanned chain evaluation: yield ``count`` terms, windowed.

    This is the exact seed propagation path — a sliding window of at
    most :attr:`ChainFamily.history` previous terms, no term storage —
    and works on numpy, Tensor, and spectral-grid signals alike.
    """
    fam = _family(family)
    prev_prev = None
    prev = x
    yield x
    for k in range(1, count):
        term = fam.step(ctx, x, prev_prev, prev, k, params, None)
        yield term
        prev_prev = prev if fam.history == 2 else None
        prev = term


# ======================================================================
# term store
# ======================================================================
@dataclass
class _ChainEntry:
    matrix_ref: weakref.ref
    matrix_token: Tuple
    x_token: Tuple
    #: ``terms[0]`` is the signal itself; computed terms are read-only.
    terms: List[Any]
    spmm_per_step: int
    #: Content fingerprint used as the spill-store key (computed only
    #: inside a blocked scope; ``None`` otherwise).
    fingerprint: Optional[str] = None
    #: RAM held by locally-computed terms (memmap/shm-served terms are
    #: file- or segment-backed and excluded), driving budget eviction.
    resident_bytes: int = 0


class BasisPlanner:
    """Bounded, instrumented store of basis chains for one sweep scope.

    Chains are keyed by (operator identity + mutation token + backend,
    signal identity + mutation token, family, scaling params) and extend
    incrementally: serving ``count`` terms reuses the stored prefix and
    computes only the missing suffix through the family's in-place
    kernels. Computed terms are returned read-only — they are shared
    across filters, so a consumer mutating one would corrupt its
    siblings; making that a loud ``ValueError`` instead of silent
    corruption is part of the bit-identity contract.
    """

    def __init__(self, capacity: int = PLAN_CHAIN_ENTRIES):
        self._chains = LRUCache(capacity, counter_prefix="plan.chains",
                                on_evict=self._on_evict)
        self._workspace = Workspace()
        self._lock = threading.RLock()
        self.terms_served = 0
        self.terms_computed = 0
        self.spmm_avoided = 0
        self.terms_spilled = 0
        self.terms_loaded = 0
        self._resident_bytes = 0

    def _on_evict(self, key: Any, entry: _ChainEntry) -> None:
        """Chain eviction: count dropped terms and, inside a blocked
        scope, spill them to disk so re-requests map instead of
        recompute."""
        dropped = max(len(entry.terms) - 1, 0)
        if dropped:
            telemetry.inc_counter("plan.terms.evict", dropped)
        self._resident_bytes -= entry.resident_bytes
        entry.resident_bytes = 0
        tier = runtime_blocked.active_tier()
        if tier is None or entry.fingerprint is None:
            return
        spilled = 0
        for order, term in enumerate(entry.terms):
            if order == 0 or isinstance(term, np.memmap):
                # The signal belongs to the caller; memmap terms already
                # live in the store under this same fingerprint.
                continue
            if tier.spill.put((entry.fingerprint, order), term):
                spilled += 1
        if spilled:
            self.terms_spilled += spilled
            telemetry.inc_counter("plan.terms.spill", spilled)

    def _enforce_term_budget(self, current_key: Any) -> None:
        """Shed least-recent chains while resident term bytes exceed the
        blocked tier's budget (never the chain being served)."""
        tier = runtime_blocked.active_tier()
        if tier is None:
            return
        while self._resident_bytes > tier.term_budget_bytes \
                and len(self._chains) > 1:
            if self._chains.pop_lru(skip=current_key) is None:
                break

    def chain_terms(self, ctx, x: np.ndarray, family: str, params: Tuple,
                    count: int) -> Sequence[np.ndarray]:
        """Serve ``count`` chain terms, computing only the missing suffix."""
        fam = _family(family)
        matrix = ctx.matrix
        key = (id(matrix), ctx.backend, id(x), fam.name, params)
        token = matrix_token(matrix)
        x_tok = array_token(x)

        def validate(entry: _ChainEntry) -> bool:
            return (entry.matrix_ref() is matrix
                    and entry.matrix_token == token
                    and entry.x_token == x_tok)

        with self._lock:
            entry = self._chains.get(key, validate=validate)
            if entry is MISSING:
                chains = self._chains

                def _purge(_ref, _key=key, _chains=chains):
                    _chains.discard(_key)

                entry = _ChainEntry(weakref.ref(matrix, _purge), token,
                                    x_tok, [x], fam.spmm_per_step)
                self._chains.put(key, entry)
            if entry.fingerprint is None \
                    and runtime_blocked.active_tier() is not None:
                entry.fingerprint = runtime_shm.chain_fingerprint(
                    token, ctx.backend, x_tok, fam.name, params)
            hits = max(min(len(entry.terms), count) - 1, 0)
            if hits:
                self.terms_served += hits
                self.spmm_avoided += hits * fam.spmm_per_step
                telemetry.inc_counter("plan.terms.hit", hits)
                telemetry.inc_counter("plan.spmm_avoided",
                                      hits * fam.spmm_per_step)
            if len(entry.terms) < count:
                self._extend_chain(ctx, x, fam, params, count, entry,
                                   token, x_tok)
                self._enforce_term_budget(key)
            return list(entry.terms[:count])

    def _extend_chain(self, ctx, x, fam: ChainFamily, params: Tuple,
                      count: int, entry: _ChainEntry, token: Tuple,
                      x_tok: Tuple) -> None:
        """Extend a chain to ``count`` terms, sharing across processes.

        With a shared store attached (:func:`repro.runtime.shm
        .active_handle`, pooled sweeps), the missing suffix is first
        requested from the cross-process index — terms another worker
        already computed arrive as read-only shared-memory views, which
        are bit-identical by construction (the publisher ran the same
        in-place kernels this process would have). Whatever remains is
        computed locally and, when this process holds the chain claim,
        published for the siblings still waiting on it. Without a store
        this is exactly the original local compute loop.
        """
        shared = runtime_shm.active_handle()
        fingerprint = None
        claimed = False
        if shared is not None:
            fingerprint = runtime_shm.chain_fingerprint(
                token, ctx.backend, x_tok, fam.name, params)
            served, claimed = shared.plan_chain(
                fingerprint, have=len(entry.terms) - 1, want=count - 1)
            if served:
                entry.terms.extend(served)
                self.terms_served += len(served)
                self.spmm_avoided += len(served) * fam.spmm_per_step
                telemetry.inc_counter("plan.spmm_avoided",
                                      len(served) * fam.spmm_per_step)
        # Spill tier (blocked scope): terms this planner evicted to disk
        # earlier map back read-only instead of recomputing the suffix.
        tier = runtime_blocked.active_tier()
        if tier is not None and entry.fingerprint is not None:
            loaded = 0
            while len(entry.terms) < count:
                term = tier.spill.get((entry.fingerprint, len(entry.terms)))
                if term is None:
                    break
                entry.terms.append(term)
                loaded += 1
            if loaded:
                self.terms_loaded += loaded
                self.terms_served += loaded
                self.spmm_avoided += loaded * fam.spmm_per_step
                telemetry.inc_counter("plan.terms.spill_load", loaded)
                telemetry.inc_counter("plan.spmm_avoided",
                                      loaded * fam.spmm_per_step)
        first_order = len(entry.terms)
        computed: List[np.ndarray] = []
        try:
            while len(entry.terms) < count:
                k = len(entry.terms)
                prev = entry.terms[-1]
                prev_prev = entry.terms[-2] if k >= 2 else None
                term = np.asarray(fam.step(ctx, x, prev_prev, prev, k,
                                           params, self._workspace))
                if term is not x:
                    term.setflags(write=False)
                entry.terms.append(term)
                computed.append(term)
                entry.resident_bytes += int(term.nbytes)
                self._resident_bytes += int(term.nbytes)
                self.terms_computed += 1
                telemetry.inc_counter("plan.terms.miss")
        except BaseException:
            if claimed:
                shared.abandon_claim(fingerprint)
            raise
        if shared is not None and computed:
            # Opportunistic even without a claim: a waiter that timed out
            # still offers its suffix; publish_terms refuses stale
            # offsets, so the first publisher always wins.
            if not shared.publish_terms(fingerprint, first_order, computed) \
                    and claimed:
                shared.abandon_claim(fingerprint)
        elif claimed:
            shared.abandon_claim(fingerprint)

    def clear(self) -> None:
        """Drop every chain and scratch buffer (scope exit, tests)."""
        with self._lock:
            self._chains.clear()
            self._workspace.clear()
            self._resident_bytes = 0

    def stats(self) -> dict:
        """Local traffic summary (telemetry-independent)."""
        with self._lock:
            chain_stats = self._chains.stats()
            return {
                "chains": chain_stats["entries"],
                "chain_capacity": chain_stats["capacity"],
                "terms_served": self.terms_served,
                "terms_computed": self.terms_computed,
                "spmm_avoided": self.spmm_avoided,
                "terms_spilled": self.terms_spilled,
                "terms_loaded": self.terms_loaded,
                "resident_term_bytes": self._resident_bytes,
            }


# ======================================================================
# scope management
# ======================================================================
_scope_lock = threading.RLock()
_scopes: List[BasisPlanner] = []


@contextmanager
def plan_scope(capacity: Optional[int] = None,
               fresh: bool = False) -> Iterator[BasisPlanner]:
    """Activate a planner for the dynamic extent of the ``with`` body.

    Nested scopes *reuse* the innermost active planner (so the MB
    trainer's per-fit scope joins a surrounding sweep scope instead of
    shadowing it); ``fresh=True`` forces a new empty planner — what pool
    workers use so cell results never depend on inherited store state.
    The planner created by a scope is cleared when the scope exits.
    """
    with _scope_lock:
        reused = bool(_scopes) and not fresh
        if reused:
            planner = _scopes[-1]
        else:
            planner = BasisPlanner(capacity or PLAN_CHAIN_ENTRIES)
            _scopes.append(planner)
    try:
        yield planner
    finally:
        if not reused:
            with _scope_lock:
                _scopes.remove(planner)
            planner.clear()


def active_planner() -> Optional[BasisPlanner]:
    """The serving planner, or ``None`` when no scope is active or either
    the planner (``--no-plan``) or the cache layer (``--no-cache``) is
    disabled."""
    if not _scopes:
        return None
    if not is_enabled() or not runtime_cache.is_enabled():
        return None
    with _scope_lock:
        return _scopes[-1] if _scopes else None


def _plannable(ctx, x) -> bool:
    """Planner serves numpy signals over sparse propagation contexts only.

    Autodiff Tensors (full-batch training: per-epoch activations, live
    gradient graphs) and spectral-grid contexts always stream.
    """
    if getattr(ctx, "is_spectral", True):
        return False
    if not isinstance(x, np.ndarray):
        return False
    return isinstance(getattr(ctx, "matrix", None), sp.spmatrix)


def chain_bases(ctx, x, family: str, params: Tuple, count: int):
    """Yield ``count`` basis-chain terms, planned when a scope is active.

    The single entry point the filters use: with an active planner and a
    plannable (numpy over sparse operator) request, terms come from the
    shared store — bit-identical to streaming, each distinct term
    computed exactly once per scope. Everything else streams.
    """
    if count < 1:
        return
    planner = active_planner()
    if planner is not None and _plannable(ctx, x):
        yield from planner.chain_terms(ctx, x, family, params, count)
        return
    yield from stream_chain(ctx, x, family, params, count)
