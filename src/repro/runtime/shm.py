"""repro.runtime.shm — cross-process shared-memory basis-term store.

The PR 5 planner (:mod:`repro.runtime.plan`) dedups ``T^(k)(L̃)·X`` basis
chains only *within* a process: pool workers open a fresh plan scope per
cell, so a pooled sweep rebuilds identical ``Ã^k X`` chains in every
worker and ``ops.spmm.calls`` balloons to ``~workers×`` the serial
count. This module closes that gap. A sweep-scoped
:class:`SharedTermStore` publishes planner-computed terms (and the
spmm-transpose / normalization CSR blobs from
:mod:`repro.runtime.cache` / :mod:`repro.graph.graph`) into
``multiprocessing.shared_memory`` segments; workers attach read-only
numpy views keyed by the same content fingerprints the in-process
caches already use (:func:`repro.runtime.cache.matrix_token`,
:func:`repro.runtime.plan.array_token`).

Layout
------
One *index segment* per store (name ``rsm<run8>idx``) holds a
length-prefixed JSON document protected by a cross-process
``multiprocessing.Lock``::

    {"schema": "repro.shm/v1", "owner": <pid>, "run": "<run8>",
     "bytes": <payload bytes>, "peak_bytes": <max payload bytes>,
     "chains": {fp: {"dtype", "shape", "nbytes",
                     "terms": [{"seg", "off"}, ...],
                     "claim": {"pid", "ts", "upto"} | null}},
     "blobs":  {fp: {"seg", "bytes", "meta",
                     "arrays": [{"name", "dtype", "shape", "off"}, ...]}},
     "order":  [["c"|"b", fp], ...],      # FIFO eviction order
     "stats":  {"hits", "publishes", "adoptions"}}

Term payloads live in per-publish *data segments* (``rsm<run8>d<pid>x<n>``)
created by whichever process computed the suffix. The index is rewritten
with the length word zeroed first, so lock-free probes (the leaked-
segment sweep reading ``owner``) see either valid JSON or an explicit
"torn" marker, never garbage.

Claim protocol
--------------
The parent is the store *owner* but adopts the first worker's
computation instead of precomputing: the first process to need a chain
suffix writes a claim ``{pid, ts, upto}`` into the index entry and
computes it; siblings needing the same suffix poll (2 ms) until the
claimant publishes. A claim is *stale* — and silently adopted by the
next claimant — when its pid is dead (``os.kill(pid, 0)``) or its
timestamp exceeds ``claim_timeout_s``. A waiter that outlives
``wait_timeout_s`` gives up and computes locally without publishing, so
a hung claimant costs duplicated work, never wrongness.

Crash safety
------------
``SharedMemory`` attach *registers* with the ``resource_tracker`` on
CPython ≤ 3.12 (gh-82300); every create/attach here immediately
unregisters, because segment lifetime is owned explicitly by the store
scope: :meth:`SharedTermStore.close` unlinks every ``rsm<run8>*``
segment by name (``/dev/shm`` glob on Linux, index walk elsewhere), and
:func:`sweep_leaked_segments` — run on every store entry — reaps groups
whose owner pid is dead or whose index segment is gone. Unlinking while
a sibling still maps a segment is safe on POSIX: existing mappings
survive; the name just disappears. A worker SIGKILLed while *holding the
lock* leaves it unreleasable; clients therefore acquire with a timeout
and degrade to local computation (the store turns itself off for the
session), and the owner's cleanup never needs the lock.

Counters (when telemetry is configured):

- ``shm.terms.{hit,publish,evict}`` — term traffic through the index.
- ``shm.terms.attach`` — data segments mapped into this process.
- ``shm.blobs.{hit,publish}`` — CSR blob traffic (spmm-transpose,
  normalization).
- ``shm.claims.{adopted,timeout}`` — stale-claim adoptions and waiter
  give-ups.
- ``shm.lock.timeout`` / ``shm.index.corrupt`` — store degraded to
  local-compute for this process.
- ``shm.segments.swept`` — leaked segments reaped on scope entry.
- gauges ``shm.store.bytes`` / ``shm.store.peak_bytes`` — live and peak
  published payload bytes (folded into the registry memory block).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import struct
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import resource_tracker, shared_memory
    _HAVE_SHM = True
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]
    _HAVE_SHM = False

#: Segment-name prefix; the 8-hex run id follows, then ``idx`` or
#: ``d<pid>x<seq>``.
SEGMENT_PREFIX = "rsm"

#: Segments whose mappings must outlive their store. An ndarray built
#: over ``segment.buf`` reaches the mmap through the memoryview's
#: managed buffer WITHOUT bumping the mmap's export count, so
#: ``SharedMemory.close()`` succeeds silently and unmaps under the live
#: view (a segfault, not a BufferError). Any segment that ever exported
#: an array is therefore parked here instead of closed; the mapping
#: lives until process exit, the name is already unlinked.
_keepalive: List[Any] = []

_SHM_DIR = "/dev/shm"
_SCHEMA = "repro.shm/v1"
_RUN_ID_LEN = 8


def supported() -> bool:
    """Whether this interpreter can host a shared term store."""
    return _HAVE_SHM and os.name == "posix"


# ======================================================================
# low-level segment helpers
# ======================================================================
def _untrack(segment) -> None:
    """Detach a segment from the resource tracker.

    CPython ≤ 3.12 registers shared memory with the tracker on *attach*
    as well as create (gh-82300), so without this a spawn-worker's
    tracker unlinks live segments at worker exit and the parent's
    tracker warns about "leaked" segments it never owned. Lifetime is
    managed explicitly by the store scope instead.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _create_segment(name: str, size: int):
    segment = shared_memory.SharedMemory(name=name, create=True, size=size)
    _untrack(segment)
    return segment


def _attach_segment(name: str):
    segment = shared_memory.SharedMemory(name=name)
    _untrack(segment)
    return segment


def _unlink_segment(segment) -> bool:
    """Unlink an open segment, keeping the resource tracker balanced.

    ``SharedMemory.unlink`` unregisters the name from the tracker; we
    already unregistered at create/attach time, so re-register first or
    the tracker process logs a KeyError traceback per segment.
    """
    try:
        resource_tracker.register(segment._name, "shared_memory")
    except Exception:  # pragma: no cover
        pass
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover
            pass
        return False
    return True


def _unlink_name(name: str) -> bool:
    """Unlink a segment by name without keeping a mapping; False if gone."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    _untrack(segment)
    try:
        segment.close()
    except BufferError:  # pragma: no cover - no views on a fresh attach
        pass
    return _unlink_segment(segment)


def _pid_alive(pid: Any) -> bool:
    try:
        os.kill(int(pid), 0)
    except (ProcessLookupError, ValueError, TypeError, OverflowError):
        return False
    except PermissionError:
        return True
    return True


# ======================================================================
# index serialization
# ======================================================================
def _read_index_buf(buf) -> Optional[dict]:
    (length,) = struct.unpack_from("<I", buf, 0)
    if length == 0 or length > len(buf) - 4:
        return None
    try:
        return json.loads(bytes(buf[4:4 + length]).decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None


def _write_index_buf(buf, index: dict) -> bool:
    """Serialize the index in place; False when it does not fit.

    The length word is zeroed before the payload lands and written last,
    so a concurrent lock-free probe (or a write torn by SIGKILL) reads
    an explicit empty marker instead of interleaved JSON.
    """
    payload = json.dumps(index, separators=(",", ":")).encode("utf-8")
    if len(payload) > len(buf) - 4:
        return False
    struct.pack_into("<I", buf, 0, 0)
    buf[4:4 + len(payload)] = payload
    struct.pack_into("<I", buf, 0, len(payload))
    return True


# ======================================================================
# fingerprints
# ======================================================================
def _digest(parts: Sequence[Any]) -> str:
    blob = json.dumps(list(parts), sort_keys=True, default=repr,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def chain_fingerprint(matrix_tok: Tuple, backend: str, x_tok: Tuple,
                      family: str, params: Tuple) -> str:
    """Content address of a basis chain: operator token + backend +
    signal token + family + scaling params — the cross-process analogue
    of the planner's ``id()``-based local key."""
    return _digest(["chain", matrix_tok, backend, x_tok, family, params])


def blob_fingerprint(kind: str, *parts: Any) -> str:
    """Content address of a CSR blob (``spmm_t``, ``norm`` …)."""
    return _digest(["blob", kind, *parts])


# ======================================================================
# configuration
# ======================================================================
@dataclass(frozen=True)
class StoreConfig:
    """Tunables for one shared term store."""

    #: Index segment size; the JSON document must fit (entries are a few
    #: hundred bytes each, so 256 KiB covers thousands of chains).
    index_bytes: int = 262_144
    #: FIFO byte budget for published payloads; oldest unclaimed entries
    #: are evicted (and their segments unlinked) past this.
    budget_bytes: int = 512 * 1024 * 1024
    #: Cross-process lock acquisition timeout; on expiry the client
    #: assumes a dead holder and disables itself for the session.
    lock_timeout_s: float = 10.0
    #: Backstop staleness for a claim whose pid is still alive.
    claim_timeout_s: float = 600.0
    #: How long a waiter polls for a claimant's publication before
    #: computing locally (without publishing).
    wait_timeout_s: float = 120.0
    #: Claim-wait poll interval.
    poll_interval_s: float = 0.002


def _default_context():
    """Match :func:`repro.runtime.pool._default_start_method` without
    importing pool: prefer fork so the store lock is inheritable by the
    default worker processes."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


# ======================================================================
# client machinery (shared by the owner store and worker handles)
# ======================================================================
class _StoreClient:
    """Index access under the cross-process lock + segment attach cache.

    A client that hits a lock timeout or a corrupt index marks itself
    ``_disabled`` and every subsequent operation degrades to "store
    unavailable" (callers compute locally) — liveness over sharing.
    """

    def __init__(self, index_name: str, lock, config: StoreConfig,
                 run_id: str, start_method: str):
        self._index_name = index_name
        self._lock = lock
        self.config = config
        self.run_id = run_id
        #: start method of the context the lock was created under; pool
        #: refuses to ship the handle into a mismatched worker context.
        self.start_method = start_method
        self._segments: Dict[str, Any] = {}
        #: names of segments arrays were exported from; those mappings
        #: are parked in :data:`_keepalive` instead of closed (see
        #: there for why close would segfault, not raise).
        self._exported: set = set()
        #: segments unlinked while this process still maps views into
        #: them; kept open until close so the views stay valid.
        self._retired: List[Any] = []
        self._index_seg = None
        self._seq = 0
        self._disabled = False

    # -- pickling: only the addressing state crosses process boundaries
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_segments"] = {}
        state["_exported"] = set()
        state["_retired"] = []
        state["_index_seg"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    # -- index access ---------------------------------------------------
    def _attach_index(self):
        if self._index_seg is None:
            try:
                self._index_seg = _attach_segment(self._index_name)
            except (FileNotFoundError, OSError):
                self._disabled = True
                return None
        return self._index_seg

    def _with_index(self, fn):
        """Run ``fn(index)`` under the store lock.

        ``fn`` returns ``(result, dirty)``; a dirty index is written
        back (evicting oldest entries if the document outgrew the
        segment). Returns ``None`` when the store is unusable.
        """
        if self._disabled:
            return None
        try:
            acquired = self._lock.acquire(timeout=self.config.lock_timeout_s)
        except (OSError, ValueError):  # pragma: no cover - torn lock
            acquired = False
        if not acquired:
            telemetry.inc_counter("shm.lock.timeout")
            self._disabled = True
            return None
        try:
            segment = self._attach_index()
            if segment is None:
                return None
            index = _read_index_buf(segment.buf)
            if index is None:
                telemetry.inc_counter("shm.index.corrupt")
                self._disabled = True
                return None
            result, dirty = fn(index)
            if dirty:
                while not _write_index_buf(segment.buf, index):
                    if not self._evict_one(index, protect=frozenset()):
                        telemetry.inc_counter("shm.index.overflow")
                        self._disabled = True
                        return None
            return result
        finally:
            self._lock.release()

    # -- segment helpers ------------------------------------------------
    def _new_segment(self, size: int):
        name = f"{SEGMENT_PREFIX}{self.run_id}d{os.getpid()}x{self._seq}"
        self._seq += 1
        segment = _create_segment(name, max(size, 1))
        self._segments[name] = segment
        return segment

    def _attach_array(self, seg_name: str, offset: int, dtype: str,
                      shape: Sequence[int]) -> np.ndarray:
        segment = self._segments.get(seg_name)
        if segment is None:
            segment = self._segments[seg_name] = _attach_segment(seg_name)
            telemetry.inc_counter("shm.terms.attach")
        array = np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                           buffer=segment.buf, offset=offset)
        array.setflags(write=False)
        self._exported.add(seg_name)
        return array

    def _close_segment(self, segment) -> None:
        """Drop a mapping, parking it if arrays were exported from it."""
        if segment.name in self._exported:
            _keepalive.append(segment)
            return
        try:
            segment.close()
        except BufferError:  # pragma: no cover - internal views only
            _keepalive.append(segment)

    def _release_segment(self, name: str) -> None:
        """Unlink a segment, preserving any views this process holds."""
        segment = self._segments.pop(name, None)
        if segment is None:
            _unlink_name(name)
            return
        _unlink_segment(segment)
        self._retired.append(segment)

    # -- eviction -------------------------------------------------------
    def _claim_stale(self, claim: dict, now: float) -> bool:
        pid = claim.get("pid")
        if pid == os.getpid():
            return True
        if not _pid_alive(pid):
            return True
        return now - float(claim.get("ts", now)) > self.config.claim_timeout_s

    def _evict_one(self, index: dict, protect: frozenset) -> bool:
        order = index.get("order") or []
        now = time.time()
        for position, (kind, fp) in enumerate(order):
            if fp in protect:
                continue
            if kind == "c":
                entry = index["chains"].get(fp)
                if entry is None:
                    order.pop(position)
                    return True
                claim = entry.get("claim")
                if claim is not None and not self._claim_stale(claim, now):
                    continue
                dropped = len(entry["terms"])
                for name in {term["seg"] for term in entry["terms"]}:
                    self._release_segment(name)
                index["bytes"] -= int(entry.get("nbytes", 0)) * dropped
                del index["chains"][fp]
                order.pop(position)
                if dropped:
                    telemetry.inc_counter("shm.terms.evict", dropped)
                return True
            blob = index["blobs"].get(fp)
            if blob is None:
                order.pop(position)
                return True
            self._release_segment(blob["seg"])
            index["bytes"] -= int(blob.get("bytes", 0))
            del index["blobs"][fp]
            order.pop(position)
            telemetry.inc_counter("shm.blobs.evict")
            return True
        return False

    def _evict_over_budget(self, index: dict, protect: frozenset) -> None:
        while index.get("bytes", 0) > self.config.budget_bytes:
            if not self._evict_one(index, protect):
                break

    def _set_gauges(self, index: dict) -> None:
        live = int(index.get("bytes", 0))
        index["peak_bytes"] = max(int(index.get("peak_bytes", 0)), live)
        telemetry.set_gauge("shm.store.bytes", live)
        telemetry.set_gauge("shm.store.peak_bytes", index["peak_bytes"])

    # -- chain protocol -------------------------------------------------
    def plan_chain(self, fp: str, have: int, want: int
                   ) -> Tuple[List[np.ndarray], bool]:
        """Resolve a chain-extension request against the shared index.

        ``have``/``want`` count k ≥ 1 terms (the signal itself is never
        stored). Returns ``(served, claimed)``: ``served`` holds
        read-only views for orders ``have+1 … have+len(served)``;
        ``claimed`` means this process now owns computing the remainder
        and MUST finish with :meth:`publish_terms` or
        :meth:`abandon_claim`. Blocks (bounded by ``wait_timeout_s``)
        while another live process's claim covers the remainder.
        """
        served: List[np.ndarray] = []
        if self._disabled or have >= want:
            return served, False
        deadline = time.monotonic() + self.config.wait_timeout_s

        def step(index):
            dirty = False
            entry = index["chains"].get(fp)
            arrays: List[np.ndarray] = []
            position = have + len(served)
            if entry is not None and len(entry["terms"]) > position:
                for term in entry["terms"][position:want]:
                    arrays.append(self._attach_array(
                        term["seg"], term["off"],
                        entry["dtype"], entry["shape"]))
                index["stats"]["hits"] += len(arrays)
                telemetry.inc_counter("shm.terms.hit", len(arrays))
                dirty = True
                position += len(arrays)
            if position >= want:
                return ("done", arrays), dirty
            now = time.time()
            claim = entry.get("claim") if entry is not None else None
            if claim is not None and not self._claim_stale(claim, now):
                return ("wait", arrays), dirty
            if entry is None:
                entry = {"dtype": None, "shape": None, "nbytes": 0,
                         "terms": [], "claim": None}
                index["chains"][fp] = entry
            if claim is not None:
                index["stats"]["adoptions"] += 1
                telemetry.inc_counter("shm.claims.adopted")
            entry["claim"] = {"pid": os.getpid(), "ts": now,
                              "upto": int(want)}
            return ("claimed", arrays), True

        while True:
            outcome = self._with_index(step)
            if outcome is None:
                return served, False
            action, arrays = outcome
            served.extend(arrays)
            if action == "done":
                return served, False
            if action == "claimed":
                return served, True
            if time.monotonic() > deadline:
                telemetry.inc_counter("shm.claims.timeout")
                return served, False
            time.sleep(self.config.poll_interval_s)

    def publish_terms(self, fp: str, first_order: int,
                      terms: Sequence[np.ndarray]) -> bool:
        """Publish computed orders ``first_order …`` of a chain.

        Copies the suffix into one fresh data segment, then appends the
        term records and clears this process's claim in a single locked
        index update. Returns False (and unlinks the orphan segment) if
        the store is unavailable or a concurrent publisher got there
        first — the caller's locally computed terms stay valid either
        way.
        """
        if self._disabled or not terms:
            return False
        arrays = [np.ascontiguousarray(term) for term in terms]
        dtype = arrays[0].dtype.str
        shape = list(arrays[0].shape)
        nbytes = int(arrays[0].nbytes)
        total = nbytes * len(arrays)
        try:
            segment = self._new_segment(total)
        except (OSError, ValueError):
            telemetry.inc_counter("shm.publish.failed")
            return False
        for position, array in enumerate(arrays):
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf, offset=position * nbytes)
            np.copyto(view, array)

        def step(index):
            entry = index["chains"].get(fp)
            if entry is None:
                entry = {"dtype": None, "shape": None, "nbytes": 0,
                         "terms": [], "claim": None}
                index["chains"][fp] = entry
            if entry["dtype"] is None:
                entry["dtype"], entry["shape"] = dtype, shape
                entry["nbytes"] = nbytes
            stale = (len(entry["terms"]) != first_order - 1
                     or entry["dtype"] != dtype or entry["shape"] != shape)
            dirty = self._clear_own_claim(entry)
            if stale:
                return False, dirty
            entry["terms"].extend(
                {"seg": segment.name, "off": position * nbytes}
                for position in range(len(arrays)))
            if ["c", fp] not in index["order"]:
                index["order"].append(["c", fp])
            index["bytes"] += total
            index["stats"]["publishes"] += len(arrays)
            telemetry.inc_counter("shm.terms.publish", len(arrays))
            self._evict_over_budget(index, protect=frozenset((fp,)))
            self._set_gauges(index)
            return True, True

        published = self._with_index(step)
        if not published:
            self._discard_segment(segment)
            return False
        return True

    def _discard_segment(self, segment) -> None:
        """Drop a just-created segment that never made it into the index."""
        self._segments.pop(segment.name, None)
        _unlink_segment(segment)
        try:
            segment.close()
        except BufferError:  # pragma: no cover
            pass

    @staticmethod
    def _clear_own_claim(entry: dict) -> bool:
        claim = entry.get("claim")
        if claim is not None and claim.get("pid") == os.getpid():
            entry["claim"] = None
            return True
        return False

    def abandon_claim(self, fp: str) -> None:
        """Drop this process's claim so siblings stop waiting on it."""

        def step(index):
            entry = index["chains"].get(fp)
            if entry is None:
                return None, False
            return None, self._clear_own_claim(entry)

        self._with_index(step)

    # -- blob protocol (spmm-transpose / normalization CSR) -------------
    def fetch_blob(self, fp: str) -> Optional[Tuple[Dict[str, np.ndarray],
                                                    dict]]:
        """Attach a published blob: ``(name → read-only array, meta)``."""
        if self._disabled:
            return None

        def step(index):
            blob = index["blobs"].get(fp)
            if blob is None:
                return None, False
            arrays = {
                record["name"]: self._attach_array(
                    blob["seg"], record["off"],
                    record["dtype"], record["shape"])
                for record in blob["arrays"]
            }
            index["stats"]["hits"] += 1
            telemetry.inc_counter("shm.blobs.hit")
            return (arrays, blob.get("meta") or {}), True

        return self._with_index(step)

    def publish_blob(self, fp: str, arrays: Dict[str, np.ndarray],
                     meta: Optional[dict] = None) -> bool:
        """Publish named arrays as one blob (first publisher wins)."""
        if self._disabled or not arrays:
            return False
        packed = [(name, np.ascontiguousarray(array))
                  for name, array in arrays.items()]
        offsets, cursor = [], 0
        for _name, array in packed:
            offsets.append(cursor)
            cursor += int(array.nbytes)
        try:
            segment = self._new_segment(cursor)
        except (OSError, ValueError):
            telemetry.inc_counter("shm.publish.failed")
            return False
        records = []
        for (name, array), offset in zip(packed, offsets):
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf, offset=offset)
            np.copyto(view, array)
            records.append({"name": name, "dtype": array.dtype.str,
                            "shape": list(array.shape), "off": offset})

        def step(index):
            if fp in index["blobs"]:
                return False, False
            index["blobs"][fp] = {"seg": segment.name, "bytes": cursor,
                                  "arrays": records, "meta": meta or {}}
            if ["b", fp] not in index["order"]:
                index["order"].append(["b", fp])
            index["bytes"] += cursor
            index["stats"]["publishes"] += 1
            telemetry.inc_counter("shm.blobs.publish")
            self._evict_over_budget(index, protect=frozenset((fp,)))
            self._set_gauges(index)
            return True, True

        published = self._with_index(step)
        if not published:
            self._discard_segment(segment)
            return False
        return True


class WorkerHandle(_StoreClient):
    """A worker-side view of the store: attach/publish, never unlink.

    Created by :meth:`SharedTermStore.worker_handle` and shipped to pool
    workers through ``Process`` args (the embedded lock only pickles on
    that path). :meth:`close` drops this process's mappings; segment
    *names* stay live until the owner's scope exit unlinks them.
    """

    def close(self) -> None:
        for segment in list(self._segments.values()) + self._retired:
            self._close_segment(segment)
        self._segments.clear()
        self._retired.clear()
        if self._index_seg is not None:
            try:
                self._index_seg.close()
            except BufferError:  # pragma: no cover
                _keepalive.append(self._index_seg)
            self._index_seg = None


class SharedTermStore(_StoreClient):
    """Sweep-scoped owner of the shared index + published segments.

    Creating the store sweeps leaked segments from crashed runs, then
    publishes an empty index under a fresh 8-hex run id.
    :meth:`close` snapshots cross-process stats and unlinks every
    segment of the run by name — lock-free, so a worker SIGKILLed while
    holding the lock can never wedge cleanup.
    """

    def __init__(self, config: Optional[StoreConfig] = None,
                 mp_context=None):
        if not supported():
            raise RuntimeError("multiprocessing.shared_memory unavailable; "
                               "shared term store requires POSIX")
        config = config or StoreConfig()
        sweep_leaked_segments()
        context = mp_context if mp_context is not None else _default_context()
        run_id = uuid.uuid4().hex[:_RUN_ID_LEN]
        index_name = f"{SEGMENT_PREFIX}{run_id}idx"
        super().__init__(index_name, context.Lock(), config, run_id,
                         context.get_start_method())
        segment = _create_segment(index_name, config.index_bytes)
        _write_index_buf(segment.buf, {
            "schema": _SCHEMA, "owner": os.getpid(), "run": run_id,
            "bytes": 0, "peak_bytes": 0, "chains": {}, "blobs": {},
            "order": [],
            "stats": {"hits": 0, "publishes": 0, "adoptions": 0},
        })
        self._index_seg = segment
        self._closed = False
        self._final_stats: Optional[dict] = None

    def worker_handle(self) -> WorkerHandle:
        """A picklable client for one pool worker process."""
        return WorkerHandle(self._index_name, self._lock, self.config,
                            self.run_id, self.start_method)

    def _snapshot(self) -> Optional[dict]:
        def step(index):
            terms = sum(len(entry["terms"])
                        for entry in index["chains"].values())
            return {
                "chains": len(index["chains"]),
                "blobs": len(index["blobs"]),
                "terms": terms,
                "bytes": int(index.get("bytes", 0)),
                "peak_bytes": int(index.get("peak_bytes", 0)),
                **{key: int(value)
                   for key, value in (index.get("stats") or {}).items()},
            }, False

        return self._with_index(step)

    def close(self) -> dict:
        """Snapshot stats, then unlink every segment of this run."""
        if self._closed:
            return self._final_stats or {}
        self._closed = True
        stats = self._snapshot() or {}
        stats["segments_unlinked"] = self._unlink_all()
        self._final_stats = stats
        return stats

    def _unlink_all(self) -> int:
        prefix = f"{SEGMENT_PREFIX}{self.run_id}"
        names = set()
        if os.path.isdir(_SHM_DIR):
            try:
                names.update(name for name in os.listdir(_SHM_DIR)
                             if name.startswith(prefix))
            except OSError:  # pragma: no cover
                pass
        names.update(name for name in self._segments
                     if name.startswith(prefix))
        names.add(self._index_name)
        unlinked = 0
        for name in sorted(names):
            segment = self._segments.pop(name, None)
            if segment is None and name == self._index_name:
                segment, self._index_seg = self._index_seg, None
            if segment is not None:
                if _unlink_segment(segment):
                    unlinked += 1
                self._close_segment(segment)
            elif _unlink_name(name):
                unlinked += 1
        for segment in self._retired:
            self._close_segment(segment)
        self._retired.clear()
        return unlinked

    def stats(self) -> dict:
        """Cross-process traffic summary (final snapshot after close)."""
        if self._final_stats is not None:
            return dict(self._final_stats)
        return self._snapshot() or {}


# ======================================================================
# leaked-segment sweep
# ======================================================================
def _probe_owner(path: str) -> Optional[int]:
    """Lock-free read of a (possibly torn) index segment's owner pid."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return None
    if len(raw) < 4:
        return None
    index = _read_index_buf(memoryview(raw))
    if not isinstance(index, dict):
        return None
    owner = index.get("owner")
    return int(owner) if isinstance(owner, int) else None


def sweep_leaked_segments(max_age_s: float = 300.0) -> int:
    """Reap ``rsm*`` segments leaked by crashed runs; returns the count.

    A run's segments are leaked when its index segment is missing
    (orphan data — the index is always created first and unlinked last
    by a clean close) or its owner pid is dead. A torn/unreadable index
    is only reaped once older than ``max_age_s``, so a store mid-write
    on scope entry is never swept out from under its owner.
    """
    if not supported() or not os.path.isdir(_SHM_DIR):
        return 0
    try:
        names = [name for name in os.listdir(_SHM_DIR)
                 if name.startswith(SEGMENT_PREFIX)
                 and len(name) > len(SEGMENT_PREFIX) + _RUN_ID_LEN]
    except OSError:  # pragma: no cover
        return 0
    groups: Dict[str, List[str]] = {}
    for name in names:
        run = name[len(SEGMENT_PREFIX):len(SEGMENT_PREFIX) + _RUN_ID_LEN]
        groups.setdefault(run, []).append(name)
    removed = 0
    for run, members in groups.items():
        index_name = f"{SEGMENT_PREFIX}{run}idx"
        if index_name in members:
            path = os.path.join(_SHM_DIR, index_name)
            owner = _probe_owner(path)
            if owner is not None:
                if _pid_alive(owner):
                    continue
            else:
                try:
                    age = time.time() - os.path.getmtime(path)
                except OSError:
                    age = max_age_s + 1.0
                if age <= max_age_s:
                    continue
        for name in members:
            if _unlink_name(name):
                removed += 1
    if removed:
        telemetry.inc_counter("shm.segments.swept", removed)
    return removed


# ======================================================================
# scope management
# ======================================================================
_scope_lock = threading.RLock()
_active_store: Optional[SharedTermStore] = None
_active_handle: Optional[WorkerHandle] = None


@contextmanager
def store_scope(store: SharedTermStore) -> Iterator[SharedTermStore]:
    """Install a store for the dynamic extent of a sweep (parent side).

    The store is closed — stats snapshotted, every segment unlinked —
    on exit, crash or not.
    """
    global _active_store
    with _scope_lock:
        previous = _active_store
        _active_store = store
    try:
        yield store
    finally:
        with _scope_lock:
            _active_store = previous
        store.close()


def active_store() -> Optional[SharedTermStore]:
    """The sweep's store (parent process), or None."""
    return _active_store


@contextmanager
def worker_scope(handle: Optional[WorkerHandle]) -> Iterator[
        Optional[WorkerHandle]]:
    """Install a worker's store handle for one cell execution."""
    global _active_handle
    if handle is None:
        yield None
        return
    with _scope_lock:
        previous = _active_handle
        _active_handle = handle
    try:
        yield handle
    finally:
        with _scope_lock:
            _active_handle = previous
        handle.close()


def active_handle() -> Optional[WorkerHandle]:
    """The serving store client, or None when sharing is off.

    Consulted by the planner (:func:`repro.runtime.plan`) and the CSR
    caches; ``--no-cache`` turns it off with the rest of the cache
    layer.
    """
    handle = _active_handle
    if handle is None:
        return None
    from . import cache as runtime_cache
    if not runtime_cache.is_enabled():
        return None
    return handle
