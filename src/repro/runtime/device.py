"""Simulated accelerator memory: byte-exact accounting without a GPU.

The paper's scalability results hinge on *where bytes live*: full-batch
training keeps the graph and all n-row representations in GPU memory and
OOMs on million-scale graphs, while mini-batch training keeps only batch
rows and weights on the device. We reproduce that with an accounting model:

- **Persistent** allocations are tensors explicitly moved to the device
  (parameters, and under full-batch the graph + feature matrices).
- **Transient** allocations are every array the autodiff engine
  materializes inside one training/inference step — a faithful stand-in for
  activation memory, since reverse mode retains activations until backward.

Peak device usage is ``persistent + max(transient within any step)``; a
configurable capacity raises :class:`~repro.errors.DeviceOOMError` exactly
where a real 24 GB card would, so benchmark tables can report ``(OOM)``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

import numpy as np
import scipy.sparse as sp

from .. import telemetry
from ..autodiff.tensor import add_allocation_hook, remove_allocation_hook
from ..errors import DeviceOOMError

GIBIBYTE = 1024 ** 3


def nbytes_of(obj: Union[int, np.ndarray, sp.spmatrix]) -> int:
    """Byte size of an int, numpy array, or scipy sparse matrix."""
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if sp.issparse(obj):
        csr = obj.tocsr()
        return int(csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes)
    raise TypeError(f"cannot size object of type {type(obj).__name__}")


class DeviceModel:
    """Accounting model of an accelerator with bounded memory.

    Parameters
    ----------
    capacity_bytes:
        Device capacity; ``None`` means unbounded (profiling only).
    name:
        Label used in reports (e.g. ``"A30-24GB"``).
    """

    def __init__(self, capacity_bytes: Optional[int] = None, name: str = "device"):
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.persistent_bytes = 0
        self.peak_bytes = 0
        self._transient_bytes = 0
        self._in_step = False

    # ------------------------------------------------------------------
    # persistent residency
    # ------------------------------------------------------------------
    def to_device(self, obj: Union[int, np.ndarray, sp.spmatrix]) -> int:
        """Register a persistent allocation; returns its byte size."""
        size = nbytes_of(obj)
        self._check(size)
        self.persistent_bytes += size
        if self.persistent_bytes > self.peak_bytes:
            self.peak_bytes = self.persistent_bytes
            telemetry.set_gauge(f"device.{self.name}.peak_bytes", self.peak_bytes)
        return size

    def free(self, obj: Union[int, np.ndarray, sp.spmatrix]) -> None:
        """Release a persistent allocation registered via :meth:`to_device`."""
        self.persistent_bytes = max(0, self.persistent_bytes - nbytes_of(obj))

    @contextmanager
    def resident(self, *objs: Union[int, np.ndarray, sp.spmatrix]) -> Iterator[None]:
        """Hold ``objs`` on the device for the duration of the block.

        The graph-partition scheme moves one cluster (operator + features)
        onto the device per step and releases it afterwards, so GP OOMs
        exactly when the *largest cluster* exceeds capacity — the paper's
        semantics for partition-based training. If a later ``to_device``
        raises mid-admission, only the sizes already admitted are freed.
        """
        admitted = []
        try:
            for obj in objs:
                admitted.append(self.to_device(obj))
            yield
        finally:
            for size in admitted:
                self.free(size)

    # ------------------------------------------------------------------
    # per-step transient accounting
    # ------------------------------------------------------------------
    @contextmanager
    def step(self) -> Iterator[None]:
        """Meter every autodiff allocation inside the block as activations.

        Steps do not nest; the device's own allocation hook is removed on
        exit even when the step raises (including on simulated OOM). The
        hook is *subscribed* (:func:`~repro.autodiff.tensor.
        add_allocation_hook`), not installed into a single slot, so a step
        composes with the telemetry allocation ledger instead of silently
        displacing its span attribution.
        """
        if self._in_step:
            yield
            return
        self._in_step = True
        self._transient_bytes = 0
        add_allocation_hook(self._on_alloc)
        try:
            yield
        finally:
            remove_allocation_hook(self._on_alloc)
            self._in_step = False
            self._transient_bytes = 0

    def _on_alloc(self, nbytes: int, array: Optional[np.ndarray] = None,
                  op: str = "leaf") -> None:
        self._check(nbytes)
        self._transient_bytes += nbytes
        total = self.persistent_bytes + self._transient_bytes
        if total > self.peak_bytes:
            self.peak_bytes = total
            # Only on a new peak (not per-alloc) to keep the hot path cheap.
            telemetry.set_gauge(f"device.{self.name}.peak_bytes", total)

    def _check(self, nbytes: int) -> None:
        if self.capacity_bytes is None:
            return
        used = self.persistent_bytes + self._transient_bytes
        if used + nbytes > self.capacity_bytes:
            telemetry.emit_event("device.oom", device=self.name,
                                 requested_bytes=int(nbytes), used_bytes=int(used),
                                 capacity_bytes=int(self.capacity_bytes))
            raise DeviceOOMError(nbytes, used, self.capacity_bytes)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all residency and peak statistics."""
        self.persistent_bytes = 0
        self.peak_bytes = 0
        self._transient_bytes = 0

    @property
    def peak_gib(self) -> float:
        """Peak usage in GiB, the unit of the paper's memory columns."""
        return self.peak_bytes / GIBIBYTE

    def __repr__(self) -> str:
        cap = "∞" if self.capacity_bytes is None else f"{self.capacity_bytes / GIBIBYTE:.0f}GiB"
        return f"DeviceModel(name={self.name!r}, capacity={cap}, peak={self.peak_gib:.3f}GiB)"
