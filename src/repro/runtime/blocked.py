"""repro.runtime.blocked — out-of-core blocked execution tier.

The paper's efficiency/memory tables (Tables 5–6) are defined on
full-size graphs, but every propagation path in this repo materializes
dense ``n × d`` term matrices in RAM — nothing downstream of the
synthesizer survived ``scale=1.0`` before this module. The blocked tier
makes those rows *measurable* instead of extrapolated:

- **Tiled CSR spmm** — :func:`blocked_spmm` evaluates ``P @ X`` over
  row-block tiles. CSR matmul computes each output row independently
  from that row's nonzeros, so row tiling executes the *same
  floating-point operations in the same order* as the one-shot product:
  the tiled result is bit-identical to the in-core path (the same
  contract the planner and every cache in this repo already hold, and
  what the ``bench-blocked`` CI gate asserts end to end).
- **Spill store** — :class:`SpillStore` persists whole ``T^(k)(L̃)·X``
  term matrices as ``.npy`` files written atomically (tmp file +
  ``os.replace``) and serves them back as read-only ``numpy.memmap``
  views, keyed by the planner's existing operator/signal fingerprints
  (:func:`repro.runtime.shm.chain_fingerprint`). The basis planner's
  LRU (:mod:`repro.runtime.plan`) evicts chains *into* this store
  instead of dropping them, so a later filter re-requesting a spilled
  chain maps the identical bytes from disk rather than recomputing the
  spmm chain.
- **RAM-budget auto-tuning** — block size derives from a byte budget
  (:func:`choose_block_rows`); the budget comes from ``--ram-budget``
  or, by default, from the process's current RSS
  (:func:`default_ram_budget` via :mod:`repro.telemetry.rss`).

Scope and lifetime: like the planner, the tier only acts inside a
:func:`blocked_scope` (the bench CLI opens one under ``--blocked``).
:func:`spmm_csr` is the single integration hook — the autodiff spmm
paths (:mod:`repro.autodiff.sparse`) route every CSR product through it,
so full-batch training, mini-batch precompute, and per-cluster GP
propagation all tile transparently when a scope is active and run the
original one-shot product otherwise.

Counters emitted (when telemetry is configured):

- ``blocked.spmm_calls`` / ``blocked.tiles`` — tiled products and the
  row tiles they split into.
- ``blocked.spill_bytes`` / ``blocked.spill_files`` — bytes/files the
  spill store wrote.
- ``blocked.load_files`` — spilled matrices served back as memmaps.
- ``blocked.mmap_peak_bytes`` (gauge) — peak bytes mapped from disk.

The registry ``memory`` block (schema v6) folds these into a
``blocked`` sub-block so ``memory.peak_bytes`` attribution stays
truthful: bytes living in spill files or memory-mapped read-only are
reported next to — never inside — the allocation ledger's RAM peak.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import numpy as np
import scipy.sparse as sp

from .. import telemetry
from ..telemetry.rss import current_rss_bytes

#: Floor for a derived RAM budget: even on a tiny container the tier
#: should not degenerate into single-row tiles.
MIN_RAM_BUDGET_BYTES = 64 * 2 ** 20

#: Fraction of the RAM budget one spmm tile (output rows) may occupy.
TILE_BUDGET_FRACTION = 0.25

#: Fraction of the RAM budget the planner's resident term store may
#: occupy before chains spill to disk.
TERM_BUDGET_FRACTION = 0.5


def default_ram_budget() -> int:
    """RAM budget when ``--ram-budget`` is not given: the process's
    current RSS (headroom comparable to what the run already uses),
    floored at :data:`MIN_RAM_BUDGET_BYTES`."""
    return max(MIN_RAM_BUDGET_BYTES, int(current_rss_bytes()))


def choose_block_rows(num_rows: int, row_nbytes: int,
                      budget_bytes: int,
                      fraction: float = TILE_BUDGET_FRACTION) -> int:
    """Rows per tile such that one tile's output fits ``fraction`` of the
    budget; always at least 1 and never more than ``num_rows``."""
    if num_rows <= 0:
        return 1
    tile_bytes = max(1, int(budget_bytes * fraction))
    rows = tile_bytes // max(1, int(row_nbytes))
    return int(min(max(rows, 1), num_rows))


def blocked_spmm(csr: sp.csr_matrix, dense: np.ndarray, block_rows: int,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """``csr @ dense`` over row-block tiles, bit-identical to the one-shot
    product (each output row's accumulation order is unchanged by row
    slicing). ``out`` may be any preallocated array of the result shape
    (including a ``numpy.memmap``)."""
    num_rows = csr.shape[0]
    if block_rows >= num_rows:
        result = np.asarray(csr @ dense)
        if out is None:
            return result
        out[...] = result
        return out
    shape = (num_rows,) + tuple(np.asarray(dense).shape[1:])
    if out is None:
        out = np.empty(shape, dtype=np.result_type(csr.dtype, dense.dtype))
    for start in range(0, num_rows, block_rows):
        stop = min(start + block_rows, num_rows)
        out[start:stop] = csr[start:stop] @ dense
    return out


def _spill_digest(key: Any) -> str:
    """Stable file name for a spill key (fingerprint tuples/strings)."""
    encoded = json.dumps(key, sort_keys=True, default=str,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


class SpillStore:
    """Atomic on-disk store of dense matrices, served back as memmaps.

    Writes go to a temp file in the store directory and land via
    ``os.replace`` — a reader can never observe a torn matrix, and a
    crashed writer leaves only a ``.tmp`` file the next :meth:`purge`
    sweeps. Keys are the planner's content fingerprints, so the store is
    safe to share across runs of identical configurations (same key ⇒
    byte-identical payload by the planner's bit-identity contract).
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.files_stored = 0
        self.files_loaded = 0
        self.spilled_bytes = 0
        self.mapped_bytes = 0
        self.mapped_peak_bytes = 0

    def _path(self, key: Any) -> Path:
        return self.root / f"{_spill_digest(key)}.npy"

    def contains(self, key: Any) -> bool:
        return self._path(key).exists()

    def put(self, key: Any, array: np.ndarray) -> int:
        """Persist ``array`` under ``key`` atomically; returns its bytes.

        An existing entry is kept as-is (same key ⇒ same bytes), so
        re-spilling a reloaded term costs nothing.
        """
        path = self._path(key)
        if path.exists():
            return 0
        array = np.ascontiguousarray(array)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.save(handle, array)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        nbytes = int(array.nbytes)
        with self._lock:
            self.files_stored += 1
            self.spilled_bytes += nbytes
        telemetry.inc_counter("blocked.spill_files")
        telemetry.inc_counter("blocked.spill_bytes", nbytes)
        return nbytes

    def get(self, key: Any) -> Optional[np.ndarray]:
        """Memory-map a stored matrix read-only, or ``None`` on a miss."""
        path = self._path(key)
        if not path.exists():
            return None
        array = np.load(path, mmap_mode="r")
        with self._lock:
            self.files_loaded += 1
            self.mapped_bytes += int(array.nbytes)
            if self.mapped_bytes > self.mapped_peak_bytes:
                self.mapped_peak_bytes = self.mapped_bytes
                telemetry.set_gauge("blocked.mmap_peak_bytes",
                                    self.mapped_peak_bytes)
        telemetry.inc_counter("blocked.load_files")
        return array

    def purge(self) -> int:
        """Delete every spill file (and stale temp files); returns count.

        Open memmaps stay valid on POSIX — the pages outlive the
        directory entry — so purging at scope exit is safe hygiene.
        """
        removed = 0
        for path in list(self.root.glob("*.npy")) \
                + list(self.root.glob("*.tmp")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spill_files": self.files_stored,
                "spill_bytes": self.spilled_bytes,
                "load_files": self.files_loaded,
                "mmap_peak_bytes": self.mapped_peak_bytes,
            }


class BlockedTier:
    """One run's blocked-execution configuration: budget, spill, tiling.

    Parameters
    ----------
    ram_budget_bytes:
        Byte budget the tier tunes against (``--ram-budget``); ``None``
        derives it from the current RSS (:func:`default_ram_budget`).
    spill_dir:
        Spill-store directory; ``None`` creates a private temp directory
        removed by :meth:`close`.
    block_rows:
        Fixed tile height override; ``None`` auto-tunes per product via
        :func:`choose_block_rows`.
    """

    def __init__(self, ram_budget_bytes: Optional[int] = None,
                 spill_dir: Optional[os.PathLike] = None,
                 block_rows: Optional[int] = None):
        self.ram_budget_bytes = int(ram_budget_bytes or default_ram_budget())
        if self.ram_budget_bytes < 1:
            raise ValueError("ram budget must be positive, got "
                             f"{self.ram_budget_bytes}")
        self._owns_dir = spill_dir is None
        root = spill_dir if spill_dir is not None \
            else tempfile.mkdtemp(prefix="repro-spill-")
        self.spill = SpillStore(root)
        self._block_rows = None if block_rows is None else int(block_rows)
        #: Resident-term budget the planner enforces before spilling.
        self.term_budget_bytes = max(
            1, int(self.ram_budget_bytes * TERM_BUDGET_FRACTION))
        self.spmm_calls = 0
        self.tiles = 0
        self.closed = False

    def block_rows_for(self, num_rows: int, row_nbytes: int) -> int:
        if self._block_rows is not None:
            return max(1, min(self._block_rows, max(num_rows, 1)))
        return choose_block_rows(num_rows, row_nbytes,
                                 self.ram_budget_bytes)

    def spmm(self, csr: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
        """Tiled ``csr @ dense`` under this tier's budget."""
        dense = np.asarray(dense)
        width = dense.shape[1] if dense.ndim > 1 else 1
        row_nbytes = width * np.result_type(csr.dtype, dense.dtype).itemsize
        block_rows = self.block_rows_for(csr.shape[0], row_nbytes)
        ntiles = max(1, -(-csr.shape[0] // block_rows))
        self.spmm_calls += 1
        self.tiles += ntiles
        telemetry.inc_counter("blocked.spmm_calls")
        telemetry.inc_counter("blocked.tiles", ntiles)
        return blocked_spmm(csr, dense, block_rows)

    def close(self) -> None:
        """Purge spill files; remove the directory when tier-owned."""
        if self.closed:
            return
        self.closed = True
        self.spill.purge()
        if self._owns_dir:
            shutil.rmtree(self.spill.root, ignore_errors=True)

    def stats(self) -> Dict[str, int]:
        out = {
            "ram_budget_bytes": self.ram_budget_bytes,
            "term_budget_bytes": self.term_budget_bytes,
            "spmm_calls": self.spmm_calls,
            "tiles": self.tiles,
        }
        out.update(self.spill.stats())
        return out


# ======================================================================
# scope management
# ======================================================================
_scope_lock = threading.RLock()
_tiers: List[BlockedTier] = []


@contextmanager
def blocked_scope(tier: Optional[BlockedTier] = None,
                  **tier_kwargs) -> Iterator[BlockedTier]:
    """Activate a blocked tier for the dynamic extent of the body.

    A caller-provided ``tier`` is left open on exit (the CLI prints its
    stats after the run and closes it explicitly); a scope-created one
    is closed — spill files purged — when the scope exits.
    """
    created = tier is None
    if created:
        tier = BlockedTier(**tier_kwargs)
    with _scope_lock:
        _tiers.append(tier)
    try:
        yield tier
    finally:
        with _scope_lock:
            _tiers.remove(tier)
        if created:
            tier.close()


def active_tier() -> Optional[BlockedTier]:
    """The innermost active tier, or ``None`` outside any scope."""
    if not _tiers:
        return None
    with _scope_lock:
        return _tiers[-1] if _tiers else None


def spmm_csr(csr: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
    """The autodiff integration hook: ``csr @ dense``, tiled when a
    blocked scope is active, the plain one-shot product otherwise.
    Bit-identical either way."""
    tier = active_tier()
    if tier is None:
        return np.asarray(csr @ dense)
    return tier.spmm(csr, dense)


__all__ = [
    "BlockedTier",
    "SpillStore",
    "active_tier",
    "blocked_scope",
    "blocked_spmm",
    "choose_block_rows",
    "default_ram_budget",
    "spmm_csr",
]
