"""Hardware profiles for the cross-platform study (Figure 5).

The paper validates its efficiency conclusions on a second server (S2) with
slower CPUs and a faster GPU, showing that the *bottleneck class* — graph
propagation vs weight transformation — determines which platform wins.
Since all our measurements run on one CPU, a :class:`HardwareProfile`
re-scales measured stage times by op class: propagation-dominated stages
scale with CPU speed, transformation-dominated stages with accelerator
speed. This reproduces the figure's qualitative flip (MB fixed filters run
faster on S2, FB variable filters slower) from a single set of
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping


@dataclass(frozen=True)
class HardwareProfile:
    """Relative throughput of a platform, normalized to the reference S1.

    ``propagation_speed`` multiplies sparse-graph-op throughput (CPU-bound
    under mini-batch precompute, memory-bandwidth-bound on device under
    full-batch); ``transform_speed`` multiplies dense weight-transform
    throughput (GPU-bound).
    """

    name: str
    propagation_speed: float = 1.0
    transform_speed: float = 1.0

    def scale_stage_seconds(self, summary: Mapping[str, Mapping]) -> Dict[str, float]:
        """Re-scale a :meth:`StageProfiler.summary` to this platform.

        Returns projected seconds per stage: measured time divided by the
        throughput of the stage's op class.
        """
        scaled: Dict[str, float] = {}
        for stage, stats in summary.items():
            if stats["op_class"] == "propagation":
                speed = self.propagation_speed
            else:
                speed = self.transform_speed
            scaled[stage] = stats["seconds"] / speed
        return scaled


#: The paper's primary server: 2.4 GHz Xeon CPUs + NVIDIA A30.
S1 = HardwareProfile(name="S1 (Xeon 2.4GHz + A30)")

#: The validation server: slower 2.2 GHz CPUs, faster RTX A5000 GPU.
S2 = HardwareProfile(
    name="S2 (Xeon 2.2GHz + A5000)",
    propagation_speed=2.2 / 2.4,
    transform_speed=1.5,
)

PROFILES: Dict[str, HardwareProfile] = {"S1": S1, "S2": S2}
