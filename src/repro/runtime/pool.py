"""Process-pool grid executor for embarrassingly parallel sweeps.

Every (dataset, filter, scheme) cell of the paper's sweep grids is an
independent train/eval run, so the benchmark harness fans them out to
``multiprocessing`` workers. The executor is built around three
guarantees the benchmark methodology depends on:

- **Determinism** — a cell's randomness is a pure function of *what* the
  cell is, never of *where or when* it runs. Cells carry explicit seeds
  (or derive them via :func:`derive_cell_seed`, a stable hash of the root
  seed and the cell coordinates), results are assembled in cell-list
  order regardless of completion order, and telemetry shards are folded
  in that same order. ``workers=N`` therefore produces results
  bit-identical to ``workers=1``, which the ``bench-parallel`` CI job
  enforces on every PR.
- **Crash isolation** — each cell attempt runs in its own worker process.
  A raising, segfaulting, or hanging worker marks *its* cell failed
  (after a bounded number of retries) without aborting sibling cells; the
  sweep completes and reports partial results.
- **Telemetry fold-in** — each worker runs under its own tracer and
  :class:`~repro.telemetry.metrics.MetricsRegistry`; the shard (span
  events + metrics state) ships back through the result pipe and the
  parent merges it via :func:`repro.telemetry.fold_shard`, so op
  counters, histograms, and the trace file describe the whole sweep as
  one coherent run. Only the *successful* attempt of a cell contributes
  telemetry — a retried attempt's partial counters are discarded, which
  is what keeps merged totals equal to a serial run's. The worker's
  allocation-ledger summary (:mod:`repro.telemetry.memory`) rides the
  same shard as an ordinary ``{"type": "memory"}`` event: the worker's
  telemetry shutdown emits it, and the parent's ``fold_shard`` merges it
  into the parent ledger (allocation totals add; peaks take the max and
  adopt that shard's attribution) — so pooled alloc totals equal serial
  totals with no executor-level plumbing.

Caches (:mod:`repro.runtime.cache`) are per-process by construction: a
worker inherits (fork) or rebuilds (spawn) its own memos, and cache hits
only ever substitute bit-identical values, so cell numerics are
cache-schedule-invariant even though ``cache.*`` hit counts differ
between execution modes.

With ``workers=1`` (the default) no subprocess machinery is involved at
all: cells run inline, in order, in the calling process — the exact
serial path, where a raising cell propagates like any other exception.

Resumable sweeps: when a :class:`repro.runtime.artifacts.SweepArtifacts`
scope is active (``--resume``/``--fresh`` on the bench CLI), the executor
consults the content-addressed store *before* launching anything. Hits
come back as :data:`CACHED` results — value and persisted telemetry
shard decoded from disk, folded into grid-order reassembly exactly like
a live cell's — and only misses execute; their successful results (never
``failed:*`` ones) persist on completion. Because cells are
deterministic, a cache-served sweep's canonical payload is byte-identical
to an uninterrupted one, which the ``bench-resume`` CI job enforces.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Terminal cell statuses.
OK = "ok"
CACHED = "cached"      # served from the artifact store; nothing executed
ERROR = "error"        # the cell function raised inside the worker
CRASHED = "crashed"    # the worker died without reporting (segfault, _exit)
TIMEOUT = "timeout"    # the attempt exceeded ``cell_timeout`` seconds

FAILURE_STATUSES = (ERROR, CRASHED, TIMEOUT)

#: Seeds stay within the range every numpy BitGenerator accepts.
_SEED_MODULUS = 2 ** 31 - 1


def derive_cell_seed(root_seed: int, *coordinates) -> int:
    """Deterministic per-cell seed: a pure function of root seed + cell.

    Hashes ``(root_seed, *coordinates)`` — e.g. ``(0, "cora", "ppr", 2)``
    for repeat 2 of the (cora, ppr) cell — with SHA-256 and folds the
    digest into ``[0, 2**31 - 1)``. The derivation never sees worker ids,
    scheduling order, or wall-clock time, so a cell draws the same seed
    whether the sweep runs serially, on 4 workers, or resumes after a
    retry; distinct coordinates get (with overwhelming probability)
    distinct seeds.
    """
    payload = json.dumps([int(root_seed), *[str(c) for c in coordinates]],
                         separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS


@dataclass(frozen=True)
class Cell:
    """One independent unit of a sweep grid.

    ``fn`` must be a module-level callable (picklable under the spawn
    start method) and fully self-contained: everything the cell needs —
    dataset name, filter, config, seed — travels in ``kwargs`` so the
    cell computes the same value in any process.
    """

    key: Tuple
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return "/".join(str(part) for part in self.key)


@dataclass(frozen=True)
class PoolConfig:
    """Execution policy for :func:`execute_cells`.

    Parameters
    ----------
    workers:
        Process count. ``1`` (default) runs cells inline in the calling
        process — the exact serial path, no subprocesses.
    cell_timeout:
        Per-attempt wall-clock budget in seconds; an attempt past it is
        terminated and counts as a :data:`TIMEOUT` failure. ``None``
        disables the limit. Ignored in inline mode.
    max_retries:
        Additional attempts after a failed one, so a cell runs at most
        ``1 + max_retries`` times. Ignored in inline mode.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap, inherits loaded modules) and falls back to ``spawn``.
    poll_interval_s:
        Scheduler sleep between liveness sweeps when nothing completed.
    """

    workers: int = 1
    cell_timeout: Optional[float] = None
    max_retries: int = 1
    start_method: Optional[str] = None
    poll_interval_s: float = 0.02


@dataclass
class CellResult:
    """Outcome of one cell, in terminal state (succeeded or retries spent).

    A :data:`CACHED` result carries the persisted value and telemetry
    shard from the artifact store with ``attempts=0`` — nothing executed.
    """

    key: Tuple
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0
    worker_pid: Optional[int] = None
    events: List[Dict] = field(default_factory=list)
    metrics_state: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        """Whether the cell has a usable value (ran live or cache-served)."""
        return self.status in (OK, CACHED)

    @property
    def label(self) -> str:
        return "/".join(str(part) for part in self.key)


#: How many slowest cells :func:`pool_stats` ranks as stragglers.
STRAGGLER_TOP_N = 5


def pool_stats(results: Sequence[CellResult],
               top_n: int = STRAGGLER_TOP_N) -> Dict[str, Any]:
    """Retry/failure accounting over a finished sweep (registry ``pool``).

    Besides the flat counts, ``stragglers`` ranks the ``top_n`` slowest
    cells (label, status, attempts, seconds; slowest first, grid order on
    ties) — the cells that bound the sweep's wall clock and the first
    place to look when a parallel run stops scaling.

    ``ok`` counts live executions only; cells served from the artifact
    store count under ``cached`` (``ok + cached + failed == cells``).
    """
    stats: Dict[str, Any] = {
        "cells": len(results),
        "ok": sum(1 for r in results if r.status == OK),
        "cached": sum(1 for r in results if r.status == CACHED),
        "failed": sum(1 for r in results if not r.ok),
        "attempts": sum(r.attempts for r in results),
        "retries": sum(max(0, r.attempts - 1) for r in results),
        "timeouts": sum(1 for r in results if r.status == TIMEOUT),
    }
    slowest = sorted(results, key=lambda r: r.seconds, reverse=True)
    stats["stragglers"] = [
        {"cell": r.label, "status": r.status, "attempts": r.attempts,
         "seconds": round(r.seconds, 6)}
        for r in slowest[:max(0, int(top_n))]
    ]
    return stats


#: Stats of the most recent :func:`execute_cells` sweep in this process,
#: for callers (the bench CLI) that persist them after results are
#: consumed. ``per_cell`` holds one dict per cell in grid order.
_last_run_stats: Optional[Dict[str, Any]] = None


def last_run_stats() -> Optional[Dict[str, Any]]:
    """Full accounting of the most recent sweep: :func:`pool_stats`
    totals plus per-cell status/attempt/seconds detail (registry
    ``pool.stats``), or ``None`` before any sweep has run."""
    return _last_run_stats


def _record_run_stats(results: Sequence[CellResult]) -> None:
    global _last_run_stats
    stats: Dict[str, Any] = dict(pool_stats(results))
    stats["per_cell"] = [
        {"cell": result.label, "status": result.status,
         "attempts": result.attempts,
         "seconds": round(result.seconds, 6)}
        for result in results
    ]
    _last_run_stats = stats


# ======================================================================
# worker side
# ======================================================================
def _cell_entry(conn, cell: Cell, telemetry_on: bool, attempt: int = 1,
                live_conn=None, rss_interval_s: float = 0.2,
                shm_handle=None) -> None:
    """Worker-process entry: run one cell, ship value + telemetry shard.

    The worker reconfigures telemetry from scratch (dropping any tracer
    state inherited through fork) so its shard contains exactly this
    cell's spans and counters. Failures are reported as data — the
    parent decides on retries; nothing propagates across the pipe as an
    exception. ``live_conn`` is the attempt's dedicated side pipe for
    live heartbeat/RSS events (``None`` when monitoring is off); it is
    separate from the result pipe so a sheared live channel never
    corrupts the result protocol. ``shm_handle`` is the sweep's shared
    term-store client (``None`` when sharing is off); it is installed
    *around* the fresh plan scope so the planner's chain suffixes fall
    through to the cross-process index.
    """
    import os

    from . import plan
    from . import shm as shm_mod
    from ..telemetry import live

    payload: Dict[str, Any] = {"pid": os.getpid()}
    send = live_conn.send if live_conn is not None else None
    try:
        # A fresh planner scope per attempt: chains never leak in via
        # fork, so a cell computes the same value under any start method.
        with live.worker_session(send, cell.label, attempt,
                                 rss_interval_s=rss_interval_s):
            if telemetry_on:
                from .. import telemetry

                telemetry.shutdown()  # discard fork-inherited tracer state
                tracer = telemetry.configure()
                with telemetry.span("cell", cell=cell.label), \
                        shm_mod.worker_scope(shm_handle), \
                        plan.plan_scope(fresh=True):
                    value = cell.fn(**cell.kwargs)
                metrics_state = tracer.metrics.to_state()
                events = telemetry.shutdown()
                payload.update(ok=True, value=value, events=events,
                               metrics=metrics_state)
            else:
                with shm_mod.worker_scope(shm_handle), \
                        plan.plan_scope(fresh=True):
                    payload.update(ok=True, value=cell.fn(**cell.kwargs))
    except BaseException as exc:  # noqa: BLE001 - crash isolation boundary
        payload = {"pid": payload.get("pid"), "ok": False,
                   "error": f"{type(exc).__name__}: {exc}"}
    try:
        conn.send(payload)
    except Exception:
        pass  # parent gone or payload unpicklable; parent sees a crash
    finally:
        conn.close()
        if live_conn is not None:
            try:
                live_conn.close()
            except OSError:
                pass


# ======================================================================
# parent side
# ======================================================================
@dataclass
class _Attempt:
    proc: Any
    conn: Any
    attempt: int
    deadline: Optional[float]
    started: float
    #: Parent end of the attempt's live-event side pipe (None when live
    #: monitoring is off or the channel has sheared).
    live_conn: Any = None


def _default_start_method() -> str:
    import multiprocessing as mp

    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def execute_cells(cells: Sequence[Cell],
                  config: Optional[PoolConfig] = None) -> List[CellResult]:
    """Run a cell list under the given policy; results in cell-list order.

    ``workers=1`` executes inline (serial semantics: exceptions
    propagate); ``workers>1`` fans out to worker processes with timeout,
    bounded retry, and crash isolation, then folds each successful cell's
    telemetry shard into the active run in deterministic cell order.

    When a :class:`~repro.telemetry.live.SweepMonitor` is installed
    (``live.monitoring(...)`` around the sweep), the executor streams
    live heartbeat/RSS/stall events through it — observability only,
    never part of the results or the canonical payload.

    When a :class:`~repro.runtime.artifacts.SweepArtifacts` scope is
    active, every cell's content address is consulted first: hits become
    :data:`CACHED` results (persisted value + telemetry shard, folded in
    grid order like any live cell's), and only misses execute — their
    successful results persisting back to the store.
    """
    from ..telemetry import live
    from . import artifacts as artifact_mod

    config = config or PoolConfig()
    cells = list(cells)
    sweep = artifact_mod.active_sweep()
    monitor = live.current_monitor()
    if monitor is not None:
        monitor.sweep_started(len(cells), config.workers,
                              config.cell_timeout)
    cached: Dict[int, CellResult] = {}
    if sweep is not None:
        for index, cell in enumerate(cells):
            artifact = sweep.load(cell)
            if artifact is not None:
                cached[index] = CellResult(
                    key=cell.key, status=CACHED, value=artifact.value,
                    attempts=0, seconds=0.0,
                    events=list(artifact.events),
                    metrics_state=artifact.metrics_state)
    if config.workers <= 1:
        results = _run_inline_all(cells, cached, sweep, monitor)
    else:
        results = _run_pooled(cells, config, monitor,
                              cached=cached, sweep=sweep)
    _record_run_stats(results)
    if monitor is not None:
        monitor.sweep_finished(pool_stats(results))
    return results


def _serve_cached(result: CellResult, monitor=None) -> CellResult:
    """Account one store-served cell (counter, monitor event)."""
    from .. import telemetry

    telemetry.inc_counter("pool.cells.cached")
    if monitor is not None:
        monitor.cell_finished(result.label, 0, CACHED, 0.0)
    return result


def _run_inline_all(cells: Sequence[Cell], cached: Dict[int, CellResult],
                    sweep, monitor=None) -> List[CellResult]:
    """Inline (workers=1) sweep: cached cells fold, misses run serially.

    Folding happens in cell-list order here too — a cached cell's
    persisted shard and a live cell's captured shard interleave exactly
    as the grid reads.
    """
    from .. import telemetry

    results: List[CellResult] = []
    for index, cell in enumerate(cells):
        result = cached.get(index)
        if result is not None:
            telemetry.fold_shard(result.events, result.metrics_state,
                                 label=result.label)
            results.append(_serve_cached(result, monitor))
            continue
        results.append(_run_inline(cell, monitor, sweep=sweep))
    return results


def _run_inline(cell: Cell, monitor=None, sweep=None) -> CellResult:
    from .. import telemetry
    from ..telemetry import live

    send = monitor.handle_event if monitor is not None else None
    rss_interval = (monitor.config.rss_interval_s
                    if monitor is not None else 0.2)
    if monitor is not None:
        monitor.attempt_launched(cell.label, 1)
    # Capture this cell's spans/metrics in an isolated shard (mirroring
    # a worker's from-scratch tracer) so the artifact store can persist
    # it and fold-in is identical whether the cell ran live or cached.
    shard: Dict[str, Any] = {}
    started = time.perf_counter()
    try:
        with live.worker_session(send, cell.label, 1,
                                 rss_interval_s=rss_interval), \
                telemetry.shard_capture(shard), \
                telemetry.span("cell", cell=cell.label):
            value = cell.fn(**cell.kwargs)
    except BaseException:
        if monitor is not None:
            monitor.cell_finished(cell.label, 1, ERROR,
                                  time.perf_counter() - started)
        raise
    seconds = time.perf_counter() - started
    events = list(shard.get("events") or ())
    metrics_state = shard.get("metrics")
    telemetry.fold_shard(events, metrics_state, label=cell.label)
    if monitor is not None:
        monitor.cell_finished(cell.label, 1, OK, seconds)
    telemetry.inc_counter("pool.cells.ok")
    if sweep is not None:
        sweep.save(cell, value, events, metrics_state)
    return CellResult(key=cell.key, status=OK, value=value, attempts=1,
                      seconds=seconds, events=events,
                      metrics_state=metrics_state)


def _worker_shm_handle(start_method: str):
    """The sweep's shared-term-store client for worker processes, if any.

    Requires an active :func:`repro.runtime.shm.store_scope` whose lock
    was created under the same start method the pool is about to use —
    a fork-context lock cannot be pickled into a spawn worker.
    """
    from . import shm as shm_mod

    store = shm_mod.active_store()
    if store is None:
        return None
    if store.start_method != start_method:
        return None
    return store.worker_handle()


def _run_pooled(cells: List[Cell], config: PoolConfig,
                monitor=None, cached: Optional[Dict[int, CellResult]] = None,
                sweep=None) -> List[CellResult]:
    import multiprocessing as mp

    from .. import telemetry
    from ..telemetry import live

    ctx = mp.get_context(config.start_method or _default_start_method())
    telemetry_on = telemetry.enabled()
    shm_handle = _worker_shm_handle(ctx.get_start_method())
    cached = cached or {}
    results: List[Optional[CellResult]] = [None] * len(cells)
    for index, result in cached.items():
        results[index] = _serve_cached(result, monitor)
    pending = deque((index, 1) for index in range(len(cells))
                    if index not in cached)
    active: Dict[int, _Attempt] = {}

    def drain_live(attempt: _Attempt) -> None:
        # Non-blocking: ship whatever live events the worker has queued to
        # the monitor; a sheared live channel just ends the stream.
        if monitor is None or attempt.live_conn is None:
            return
        try:
            while attempt.live_conn.poll(0):
                monitor.handle_event(attempt.live_conn.recv())
        except (EOFError, OSError):
            attempt.live_conn = None

    def retire(index: int, attempt: _Attempt) -> None:
        drain_live(attempt)
        if attempt.live_conn is not None:
            try:
                attempt.live_conn.close()
            except OSError:
                pass
        try:
            attempt.conn.close()
        except OSError:
            pass
        attempt.proc.join()
        del active[index]

    def fail_or_retry(index: int, attempt: _Attempt, status: str,
                      error: str) -> None:
        seconds = time.monotonic() - attempt.started
        if attempt.attempt <= config.max_retries:
            telemetry.inc_counter("pool.cells.retried")
            if monitor is not None:
                monitor.cell_finished(cells[index].label, attempt.attempt,
                                      live.RETRYING, seconds)
            pending.append((index, attempt.attempt + 1))
            return
        results[index] = CellResult(
            key=cells[index].key, status=status, error=error,
            attempts=attempt.attempt, seconds=seconds)
        telemetry.inc_counter("pool.cells.failed")
        telemetry.inc_counter(f"pool.cells.{status}")
        if monitor is not None:
            monitor.cell_finished(cells[index].label, attempt.attempt,
                                  status, seconds)

    while pending or active:
        while pending and len(active) < config.workers:
            index, attempt_no = pending.popleft()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            live_parent = live_child = None
            if monitor is not None:
                live_parent, live_child = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_cell_entry,
                args=(child_conn, cells[index], telemetry_on, attempt_no,
                      live_child, (monitor.config.rss_interval_s
                                   if monitor is not None else 0.2),
                      shm_handle),
                daemon=True)
            proc.start()
            child_conn.close()
            if live_child is not None:
                live_child.close()
            if monitor is not None:
                monitor.attempt_launched(cells[index].label, attempt_no)
            now = time.monotonic()
            deadline = now + config.cell_timeout \
                if config.cell_timeout is not None else None
            active[index] = _Attempt(proc=proc, conn=parent_conn,
                                     attempt=attempt_no, deadline=deadline,
                                     started=now, live_conn=live_parent)

        # Drain live side pipes and run stall detection *before* the
        # completion/timeout scan: a stalled attempt's ``stall`` event is
        # emitted strictly before the deadline kill below retires it.
        if monitor is not None:
            for attempt in active.values():
                drain_live(attempt)
            monitor.check()

        progressed = False
        for index, attempt in list(active.items()):
            has_message = attempt.conn.poll(0)
            if not has_message and not attempt.proc.is_alive():
                # Exited between polls: grant a grace poll for a message
                # that was in flight when the process finished.
                has_message = attempt.conn.poll(0.2)
            if has_message:
                try:
                    payload = attempt.conn.recv()
                except (EOFError, OSError):
                    payload = None  # pipe sheared mid-message: a crash
                progressed = True
                if payload is not None and payload.get("ok"):
                    results[index] = CellResult(
                        key=cells[index].key, status=OK,
                        value=payload.get("value"),
                        attempts=attempt.attempt,
                        seconds=time.monotonic() - attempt.started,
                        worker_pid=payload.get("pid"),
                        events=list(payload.get("events") or ()),
                        metrics_state=payload.get("metrics"))
                    telemetry.inc_counter("pool.cells.ok")
                    if sweep is not None:
                        sweep.save(cells[index], results[index].value,
                                   results[index].events,
                                   results[index].metrics_state)
                    retire(index, attempt)
                    if monitor is not None:
                        monitor.cell_finished(cells[index].label,
                                              attempt.attempt, OK,
                                              results[index].seconds)
                elif payload is not None:
                    error = payload.get("error") or "cell raised"
                    retire(index, attempt)
                    fail_or_retry(index, attempt, ERROR, error)
                else:
                    exitcode = attempt.proc.exitcode
                    retire(index, attempt)
                    fail_or_retry(index, attempt, CRASHED,
                                  "worker sheared its result pipe "
                                  f"(exitcode {exitcode})")
            elif not attempt.proc.is_alive():
                exitcode = attempt.proc.exitcode
                progressed = True
                retire(index, attempt)
                fail_or_retry(index, attempt, CRASHED,
                              f"worker died without reporting "
                              f"(exitcode {exitcode})")
            elif attempt.deadline is not None \
                    and time.monotonic() > attempt.deadline:
                attempt.proc.terminate()
                progressed = True
                retire(index, attempt)
                fail_or_retry(index, attempt, TIMEOUT,
                              f"cell exceeded {config.cell_timeout:g}s "
                              f"timeout")
        if not progressed:
            time.sleep(config.poll_interval_s)

    # Fold telemetry shards in cell-list order — never completion order —
    # so merged histograms and the trace are schedule-independent.
    finished = [result for result in results if result is not None]
    for result in finished:
        if result.ok and (result.events or result.metrics_state):
            telemetry.fold_shard(result.events, result.metrics_state,
                                 label=result.label)
    return finished
