"""repro.runtime.artifacts — content-addressed cell results for resumable sweeps.

A killed 500-cell sweep used to restart from zero even though every cell
is deterministic: seeds derive from grid coordinates
(:func:`repro.runtime.pool.derive_cell_seed`) and runs are
config-fingerprinted (:mod:`repro.telemetry.registry`). This module adds
the missing piece — a small on-disk store keyed by a *content address*,
so a rerun serves completed cells from disk and executes only the
remainder.

**Content address.** Each cell's address is a SHA-256 over everything
that could change its result:

- the run's *config fingerprint* (experiment, config, seed, datasets,
  cache mode — :func:`repro.telemetry.registry.config_fingerprint`),
- the cell's *grid coordinates* (its ``Cell.key``),
- the cell's *derived seed(s)* (the ``seed``/``seeds`` kwargs),
- the *code-relevant rev* (git SHA, falling back to the package
  version — new code never trusts old bytes),
- a fingerprint of the cell's full kwargs and function identity
  (:func:`repro.runtime.cache.data_token`), which catches knobs like
  ``scale_override`` that travel in kwargs rather than the run config.

Any change to any component flips the address, which the staleness test
suite (``tests/test_runtime_artifacts.py``) holds as an invariant.

**Store layout and durability.** One JSON payload file plus one metadata
sidecar per cell, both written atomically (temp file + ``os.replace``) in
sidecar-first order so the payload is the commit point: a crash can leave
a sidecar without a payload (a miss) but never a payload the reader
would trust without its write having completed. Torn or truncated files
read as misses, mirroring the run registry's crash discipline.

**Correctness contract.** The store is a *cache of deterministic
computations*: a hit substitutes bytes that a live execution would have
produced. Cell values round-trip through the same numpy-safe JSON
encoding as saved result files (:mod:`repro.bench.io`), so
``canonical_payload`` of a resumed sweep is byte-identical to an
uninterrupted one — CI-gated by ``bench-resume``. Each artifact also
carries the cell's telemetry shard (span events + metrics state), so a
cached cell folds into the parent run's registry record exactly like a
live one. Failed cells (``failed:*`` rows) are never persisted.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from .. import telemetry
from .cache import data_token

PathLike = Union[str, Path]

#: Artifact payload schema; bumped on any incompatible layout change so a
#: new reader never misinterprets old bytes (a mismatch reads as a miss).
ARTIFACT_SCHEMA = "repro.runtime.artifacts/v1"

#: Environment variable overriding the default artifact-store directory.
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Default store location, resolved relative to the working directory
#: (the repo root in every documented workflow).
DEFAULT_ARTIFACT_DIR = Path("benchmarks") / "results" / "artifacts"

#: Payload / sidecar suffixes inside the store directory.
PAYLOAD_SUFFIX = ".json"
META_SUFFIX = ".meta.json"


def default_artifact_dir(override: Optional[PathLike] = None) -> Path:
    """Resolve the store directory: explicit > env var > repo default."""
    if override is not None:
        return Path(override)
    env = os.environ.get(ARTIFACT_DIR_ENV)
    if env:
        return Path(env)
    return DEFAULT_ARTIFACT_DIR


def default_code_rev() -> str:
    """The code-relevant revision baked into every content address.

    The current git SHA when available — any commit invalidates the
    store, the conservative end of the staleness trade-off — falling back
    to the package version outside a checkout.
    """
    from .. import __version__
    from ..telemetry.manifest import git_sha

    sha = git_sha(Path(__file__).resolve().parent)
    return sha if sha else f"repro-{__version__}"


def cell_address(config_fingerprint: str, coordinates: Sequence,
                 seed: Any, code_rev: str,
                 cell_token: Optional[str] = None) -> str:
    """SHA-256 content address of one grid cell's result (64 hex chars).

    A pure function of (config fingerprint, grid coordinates, derived
    cell seed, code rev, optional cell-kwargs token): flip any component
    and the address — hence the store key — changes.
    """
    payload = json.dumps(
        {
            "config": str(config_fingerprint),
            "coords": [str(part) for part in coordinates],
            "seed": data_token(seed),
            "rev": str(code_rev),
            "cell": cell_token,
        },
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CellArtifact:
    """One persisted cell result, decoded: value + telemetry shard."""

    address: str
    value: Any
    events: List[Dict] = field(default_factory=list)
    metrics_state: Optional[Dict] = None
    meta: Dict = field(default_factory=dict)


class ArtifactStore:
    """On-disk, content-addressed store of completed sweep cells.

    Parameters
    ----------
    root:
        Store directory (created on first put). ``None`` resolves through
        :func:`default_artifact_dir`.
    max_cells:
        Optional bound on stored cells; a put past it evicts the oldest
        payloads (by modification time) until the bound holds. ``None``
        (default) keeps everything.

    Traffic is tallied locally (``hits``/``misses``/``stores``/
    ``evictions``/``torn``) and mirrored to telemetry counters
    (``artifacts.{hit,miss,store,evict}``) so registry records and traces
    show what the store did.
    """

    def __init__(self, root: Optional[PathLike] = None,
                 max_cells: Optional[int] = None):
        self.root = default_artifact_dir(root)
        if max_cells is not None and max_cells < 1:
            raise ValueError(f"max_cells must be >= 1, got {max_cells}")
        self.max_cells = max_cells
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.torn = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def payload_path(self, address: str) -> Path:
        return self.root / f"{address}{PAYLOAD_SUFFIX}"

    def meta_path(self, address: str) -> Path:
        return self.root / f"{address}{META_SUFFIX}"

    def addresses(self) -> List[str]:
        """Sorted addresses of every committed (payload-present) cell."""
        if not self.root.is_dir():
            return []
        return sorted(
            path.name[:-len(PAYLOAD_SUFFIX)]
            for path in self.root.glob(f"*{PAYLOAD_SUFFIX}")
            if not path.name.endswith(META_SUFFIX))

    def __len__(self) -> int:
        return len(self.addresses())

    def __contains__(self, address: str) -> bool:
        return self.payload_path(address).is_file()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def get(self, address: str) -> Optional[CellArtifact]:
        """Decode one artifact, or ``None`` on any miss.

        A miss is: no payload file, a torn/truncated payload (crashed
        writer — counted on :attr:`torn` and the broken file dropped so
        the rerun overwrites it cleanly), or a schema/address mismatch.
        """
        path = self.payload_path(address)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self._count_miss()
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self.torn += 1
            self._discard_files(address)
            self._count_miss()
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != ARTIFACT_SCHEMA
                or payload.get("address") != address):
            self._discard_files(address)
            self._count_miss()
            return None
        from ..bench.io import unjsonify  # lazy: bench imports runtime

        meta = {}
        try:
            meta = json.loads(self.meta_path(address).read_text(
                encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            pass  # sidecar is informational; the payload is authoritative
        self.hits += 1
        telemetry.inc_counter("artifacts.hit")
        return CellArtifact(
            address=address,
            value=unjsonify(payload.get("value")),
            events=[dict(event) for event in payload.get("events") or ()],
            metrics_state=payload.get("metrics"),
            meta=meta,
        )

    def _count_miss(self) -> None:
        self.misses += 1
        telemetry.inc_counter("artifacts.miss")

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def put(self, address: str, value: Any,
            events: Optional[Sequence[Dict]] = None,
            metrics_state: Optional[Dict] = None,
            meta: Optional[Dict] = None) -> Path:
        """Persist one cell atomically; returns the payload path.

        Sidecar first, payload last: the payload rename is the commit
        point, so a reader never sees a half-written artifact — a crash
        between the two writes leaves an orphan sidecar that reads as a
        plain miss.
        """
        from ..bench.io import jsonify  # lazy: bench imports runtime

        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": ARTIFACT_SCHEMA,
            "address": address,
            "value": jsonify(value),
            "events": jsonify(list(events or ())),
            "metrics": jsonify(metrics_state) if metrics_state else None,
        }
        self._atomic_write(self.meta_path(address),
                           dict(meta or {}, schema=ARTIFACT_SCHEMA,
                                address=address))
        path = self._atomic_write(self.payload_path(address), payload)
        self.stores += 1
        telemetry.inc_counter("artifacts.store")
        if self.max_cells is not None:
            self._evict_over_bound(keep=address)
        return path

    def _atomic_write(self, path: Path, payload: Dict) -> Path:
        # Temp name must not match *PAYLOAD_SUFFIX so a crash mid-write
        # never leaves a file that addresses()/get() would consider.
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        # Insertion order, not sort_keys: a cached row must decode with
        # the same key order a live execution produced, so downstream
        # tables and saved result files match a never-cached run exactly.
        tmp.write_text(json.dumps(payload, separators=(",", ":")),
                       encoding="utf-8")
        os.replace(tmp, path)
        return path

    def _discard_files(self, address: str) -> None:
        for path in (self.payload_path(address), self.meta_path(address)):
            try:
                path.unlink()
            except OSError:
                pass

    def discard(self, address: str) -> None:
        """Drop one cell (payload + sidecar) if present."""
        self._discard_files(address)

    def _evict_over_bound(self, keep: Optional[str] = None) -> None:
        addresses = self.addresses()
        if len(addresses) <= self.max_cells:
            return
        by_age = sorted(
            addresses,
            key=lambda addr: (self.payload_path(addr).stat().st_mtime, addr))
        for address in by_age:
            if len(self.addresses()) <= self.max_cells:
                break
            if address == keep:
                continue
            self._discard_files(address)
            self.evictions += 1
            telemetry.inc_counter("artifacts.evict")

    def purge(self) -> int:
        """Drop every stored cell (``--fresh``); returns the count dropped.

        Stray temp files from crashed writers are swept too; the local
        traffic tallies are left intact so a fresh-then-populate run still
        reports what it stored.
        """
        dropped = 0
        for address in self.addresses():
            self._discard_files(address)
            dropped += 1
        if self.root.is_dir():
            for tmp in self.root.glob("*.tmp.*"):
                try:
                    tmp.unlink()
                except OSError:
                    pass
            # Orphan sidecars (crash between sidecar and payload writes).
            for sidecar in self.root.glob(f"*{META_SUFFIX}"):
                try:
                    sidecar.unlink()
                except OSError:
                    pass
        return dropped

    def stats(self) -> Dict[str, int]:
        """Local traffic/occupancy summary (registry ``artifacts`` block)."""
        return {
            "cells": len(self),
            "hit": self.hits,
            "miss": self.misses,
            "stored": self.stores,
            "evicted": self.evictions,
            "torn": self.torn,
        }


@dataclass
class SweepArtifacts:
    """One sweep's view of the store: addressing + load/save of cells.

    Parameters
    ----------
    store:
        The underlying :class:`ArtifactStore`.
    config_fingerprint:
        The run's config fingerprint
        (:func:`repro.telemetry.registry.config_fingerprint`), computed
        *before* the sweep from the same manifest fields the registry
        hashes after it.
    code_rev:
        Code-relevant revision; defaults to :func:`default_code_rev`.
    consult:
        When ``False`` (``--fresh``), every cell executes live — loads
        are counted as misses without touching disk — while successful
        results still persist, repopulating the store.
    """

    store: ArtifactStore
    config_fingerprint: str
    code_rev: str = field(default_factory=default_code_rev)
    consult: bool = True

    def address_for(self, cell) -> str:
        """Content address of one :class:`repro.runtime.pool.Cell`."""
        kwargs = dict(cell.kwargs)
        seed = kwargs.get("seed", kwargs.get("seeds"))
        fn = cell.fn
        cell_token = data_token({
            "fn": f"{getattr(fn, '__module__', '?')}."
                  f"{getattr(fn, '__qualname__', repr(fn))}",
            "kwargs": kwargs,
        })
        return cell_address(self.config_fingerprint, cell.key, seed,
                            self.code_rev, cell_token)

    def load(self, cell) -> Optional[CellArtifact]:
        """The cell's persisted artifact, or ``None`` when it must run."""
        if not self.consult:
            self.store._count_miss()
            return None
        return self.store.get(self.address_for(cell))

    def save(self, cell, value: Any,
             events: Optional[Sequence[Dict]] = None,
             metrics_state: Optional[Dict] = None) -> Optional[Path]:
        """Persist one *successful* cell; unserializable values are skipped.

        Returns the payload path, or ``None`` when the value cannot take
        the JSON round trip (the sweep still completes — such a cell just
        re-executes on resume).
        """
        from ..errors import ReproError

        address = self.address_for(cell)
        meta = {
            "config_fingerprint": self.config_fingerprint,
            "coordinates": [str(part) for part in cell.key],
            "code_rev": self.code_rev,
            "cell": cell.label,
        }
        try:
            return self.store.put(address, value, events=events,
                                  metrics_state=metrics_state, meta=meta)
        except ReproError:
            telemetry.inc_counter("artifacts.unstorable")
            return None

    def stats(self) -> Dict[str, int]:
        return self.store.stats()


# ----------------------------------------------------------------------
# scope: how the pool executor finds the active sweep's store
# ----------------------------------------------------------------------
_active_sweep: Optional[SweepArtifacts] = None


def active_sweep() -> Optional[SweepArtifacts]:
    """The installed :class:`SweepArtifacts`, or ``None`` (store off)."""
    return _active_sweep


@contextmanager
def sweep_scope(sweep: Optional[SweepArtifacts]) -> Iterator[
        Optional[SweepArtifacts]]:
    """Install ``sweep`` for the duration of the body (None = disable).

    :func:`repro.runtime.pool.execute_cells` consults the active sweep on
    entry — hits are served as completed results, misses execute and
    persist. Scopes nest; the previous sweep is restored on exit.
    """
    global _active_sweep
    previous = _active_sweep
    _active_sweep = sweep
    try:
        yield sweep
    finally:
        _active_sweep = previous
