"""repro.runtime.cache — instrumented memoization for the sparse hot paths.

The paper's efficiency story hinges on the propagation stage: precompute
and spmm dominate time and RAM across the FB/MB/GP schemes (Section 5).
PR 1's op counters made two forms of recomputation visible:

1. ``spmm`` backward re-materialized ``csr.T.tocsr()`` on every call —
   once per epoch per propagation hop, for a matrix that never changes.
2. ``normalized_adjacency`` was rebuilt per (filter, scheme) combination
   inside sweep loops, so the ``precompute`` span dominated small-graph
   efficiency runs.

This module closes both with a small, observable memoization layer:

- :class:`LRUCache` — a bounded, thread-safe, move-to-front cache whose
  hits / misses / evictions are both tracked locally and mirrored into
  telemetry counters (``<prefix>.hit`` / ``.miss`` / ``.evict``), so any
  trace shows exactly what the caches did.
- :func:`transpose_csr` — a process-wide cache of ``Pᵀ`` keyed by the
  identity of the forward-pass matrix and validated against a mutation
  fingerprint (:func:`matrix_token`), so an in-place edit of the sparse
  data invalidates the entry instead of silently serving stale bytes.
- Per-graph normalization memos use :class:`LRUCache` directly (see
  :meth:`repro.graph.graph.Graph.normalized_adjacency`).

Everything respects a single process-wide switch (:func:`set_enabled`,
``--no-cache`` on the bench CLI). Disabled means *bypass*: callers
recompute exactly what the seed code computed, which is what lets the
property-test suite assert bit-identical numerics cached vs. uncached.

Counters emitted (when telemetry is configured):

- ``cache.spmm_t.{hit,miss,evict}`` — transpose cache traffic.
- ``cache.norm_adj.{hit,miss,evict}`` — normalization memo traffic.
- ``ops.spmm.transpose_builds`` — actual ``csr.T.tocsr()``
  materializations; with the cache on this stays at ≤ 1 per matrix.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .. import telemetry
from . import shm

#: Default bound on process-wide cached transposes. MB sweeps touch many
#: graphs; bounding the entry count keeps host RAM growth bounded too.
TRANSPOSE_CACHE_ENTRIES = 32

#: Default bound on per-graph normalization memo entries — one entry per
#: distinct (operator, ρ, self-loops) key, so 16 covers every sweep in the
#: bench suite with room to spare.
NORM_MEMO_ENTRIES = 16

_MISSING = object()

_enabled = True
_enabled_lock = threading.Lock()


def set_enabled(enabled: bool) -> bool:
    """Switch the whole cache layer on/off; returns the previous state."""
    global _enabled
    with _enabled_lock:
        previous = _enabled
        _enabled = bool(enabled)
    return previous


def is_enabled() -> bool:
    """Whether the cache layer is active (``--no-cache`` clears this)."""
    return _enabled


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Context manager running its body with every cache bypassed."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


class LRUCache:
    """Bounded move-to-front memo with local and telemetry instrumentation.

    Parameters
    ----------
    capacity:
        Maximum entry count; the least-recently-used entry is evicted when
        a put would exceed it.
    counter_prefix:
        When set, every hit / miss / eviction also increments the
        telemetry counters ``<prefix>.hit`` / ``.miss`` / ``.evict`` on
        the active registry (no-op while telemetry is disabled).
    on_evict:
        Optional ``(key, value)`` callback fired for each capacity
        eviction (not for ``discard``/``clear``), letting owners account
        for what the dropped entry carried — e.g. the basis planner
        counts evicted chain terms.
    """

    def __init__(self, capacity: int, counter_prefix: Optional[str] = None,
                 on_evict: Optional[Callable[[Any, Any], None]] = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.counter_prefix = counter_prefix
        self.on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        # Reentrant: weakref eviction callbacks may fire inside a put.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def _count(self, outcome: str) -> None:
        if self.counter_prefix is not None:
            telemetry.inc_counter(f"{self.counter_prefix}.{outcome}")

    def get(self, key: Any,
            validate: Optional[Callable[[Any], bool]] = None) -> Any:
        """Return the cached value or ``MISSING``; refreshes recency.

        ``validate(value)`` may reject a structurally-present entry (e.g.
        the cached matrix was mutated); rejection counts as a miss and
        drops the entry.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING and validate is not None and not validate(value):
                del self._entries[key]
                value = _MISSING
            if value is _MISSING:
                self.misses += 1
                self._count("miss")
                return _MISSING
            self._entries.move_to_end(key)
            self.hits += 1
            self._count("hit")
            return value

    def put(self, key: Any, value: Any) -> None:
        """Insert/overwrite an entry, evicting the LRU tail past capacity."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                evicted_key, evicted_value = self._entries.popitem(last=False)
                self.evictions += 1
                self._count("evict")
                if self.on_evict is not None:
                    self.on_evict(evicted_key, evicted_value)

    def discard(self, key: Any) -> None:
        """Drop an entry if present (not counted as an eviction)."""
        with self._lock:
            self._entries.pop(key, None)

    def pop_lru(self, skip: Any = None) -> Optional[Tuple[Any, Any]]:
        """Evict the least-recently-used entry (counted, ``on_evict`` fired).

        ``skip`` protects one key — the basis planner uses it to shed
        resident chains over the blocked tier's byte budget without
        evicting the chain it is currently extending. Returns the
        evicted ``(key, value)`` or ``None`` when nothing is evictable.
        """
        with self._lock:
            for key in self._entries:
                if skip is not None and key == skip:
                    continue
                value = self._entries.pop(key)
                self.evictions += 1
                self._count("evict")
                if self.on_evict is not None:
                    self.on_evict(key, value)
                return key, value
            return None

    def get_or_compute(self, key: Any, factory: Callable[[], Any],
                       validate: Optional[Callable[[Any], bool]] = None) -> Any:
        """Memoized call: cached value when valid, else ``factory()``."""
        value = self.get(key, validate=validate)
        if value is _MISSING:
            value = factory()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry and reset the local hit/miss/evict tallies."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        """Local (telemetry-independent) traffic summary."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

#: Sentinel returned by ``LRUCache.get`` on a miss.
MISSING = _MISSING


def data_token(value: Any) -> str:
    """Stable content fingerprint of plain config-like data (16 hex chars).

    The third token family next to :func:`matrix_token` (sparse payloads)
    and :func:`repro.runtime.plan.array_token` (dense signals): dicts,
    dataclasses (e.g. :class:`~repro.training.loop.TrainConfig`), tuples,
    numpy scalars, and ``None`` all reduce through the manifest's
    JSON-stable ``_plain`` normalization before hashing, so logically
    equal configurations fingerprint identically across processes and
    runs. The artifact store (:mod:`repro.runtime.artifacts`) keys cell
    content addresses on it.
    """
    import hashlib
    import json

    from ..telemetry.manifest import _plain

    payload = json.dumps(_plain(value), sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def matrix_token(matrix: sp.spmatrix) -> Tuple:
    """Cheap mutation fingerprint of a sparse matrix's payload.

    Combines shape, nnz, dtype, and a strided checksum of the data array
    (≤ 64 samples plus the exact endpoints), so in-place edits of values
    or structure change the token with overwhelming probability while the
    cost stays O(1)-ish relative to an spmm over the same matrix.
    """
    data = matrix.data
    nnz = int(data.shape[0]) if data.ndim else 0
    if nnz == 0:
        checksum = 0.0
    else:
        stride = max(1, nnz // 64)
        sample = data[::stride]
        checksum = float(np.asarray(sample, dtype=np.float64).sum())
        checksum += float(data[0]) * 3.0 + float(data[-1]) * 7.0
    return (matrix.shape, nnz, data.dtype.str, checksum)


_transpose_cache = LRUCache(TRANSPOSE_CACHE_ENTRIES,
                            counter_prefix="cache.spmm_t")
_transpose_builds = 0
_builds_lock = threading.Lock()


def materialize_transpose(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Build ``matrixᵀ`` in CSR form, counting the materialization.

    Every actual ``.T.tocsr()`` in the process funnels through here so
    ``ops.spmm.transpose_builds`` is the ground truth the bench gate and
    the acceptance criterion (≤ 1 build per matrix with the cache on)
    read.
    """
    global _transpose_builds
    with _builds_lock:
        _transpose_builds += 1
    transposed = matrix.T.tocsr()
    telemetry.inc_counter("ops.spmm.transpose_builds")
    telemetry.inc_counter("ops.spmm.transpose_bytes",
                          transposed.data.nbytes + transposed.indices.nbytes
                          + transposed.indptr.nbytes)
    return transposed


def transpose_build_count() -> int:
    """Process-wide count of actual transpose materializations."""
    return _transpose_builds


def transpose_csr(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Cached ``matrixᵀ`` (CSR), keyed by matrix identity + content token.

    The entry is bound to the *object*: a weak reference proves the key's
    ``id`` still names the same matrix (ids recycle after GC), and the
    token proves its payload was not mutated since caching. Either check
    failing turns the lookup into a miss and rebuilds the transpose.
    """
    if not is_enabled():
        return materialize_transpose(matrix)
    key = id(matrix)
    token = matrix_token(matrix)

    def validate(entry) -> bool:
        ref, cached_token, _ = entry
        return ref() is matrix and cached_token == token

    cached = _transpose_cache.get(key, validate=validate)
    if cached is not _MISSING:
        return cached[2]
    handle = shm.active_handle()
    transposed = None
    fingerprint = None
    if handle is not None:
        fingerprint = shm.blob_fingerprint("spmm_t", token)
        transposed = shared_csr_fetch(handle, fingerprint)
    if transposed is None:
        transposed = materialize_transpose(matrix)
        if handle is not None:
            shared_csr_publish(handle, fingerprint, transposed)

    def _on_collect(_ref, _key=key):
        _transpose_cache.discard(_key)

    _transpose_cache.put(key, (weakref.ref(matrix, _on_collect), token,
                               transposed))
    return transposed


def shared_csr_fetch(handle, fingerprint: str) -> Optional[sp.csr_matrix]:
    """Rebuild a published CSR blob as a zero-copy, read-only matrix.

    The payload arrays stay mapped in the shared segment (unlink-safe on
    POSIX), so a served matrix costs index-lookup + mmap, not a rebuild.
    Returns None when the blob is absent or malformed — callers fall
    back to building locally, never to an error.
    """
    blob = handle.fetch_blob(fingerprint)
    if blob is None:
        return None
    arrays, meta = blob
    try:
        matrix = sp.csr_matrix(
            (arrays["data"], arrays["indices"], arrays["indptr"]),
            shape=tuple(meta["shape"]), copy=False)
    except (KeyError, TypeError, ValueError):
        return None
    if meta.get("sorted"):
        # Publisher guaranteed sortedness; recording it stops scipy from
        # attempting an in-place sort of the read-only index arrays.
        matrix.has_sorted_indices = True
    return matrix


def shared_csr_publish(handle, fingerprint: str, matrix: sp.spmatrix) -> bool:
    """Publish a CSR matrix's payload arrays for sibling processes."""
    csr = matrix if sp.isspmatrix_csr(matrix) else matrix.tocsr()
    return handle.publish_blob(
        fingerprint,
        {"data": csr.data, "indices": csr.indices, "indptr": csr.indptr},
        {"shape": list(csr.shape), "sorted": bool(csr.has_sorted_indices)})


def transpose_cache_stats() -> dict:
    """Traffic/occupancy snapshot of the process-wide transpose cache."""
    stats = _transpose_cache.stats()
    stats["builds"] = _transpose_builds
    return stats


def clear_transpose_cache() -> None:
    """Empty the transpose cache and reset its counters (tests, CLI)."""
    global _transpose_builds
    _transpose_cache.clear()
    with _builds_lock:
        _transpose_builds = 0


def norm_memo(capacity: int = NORM_MEMO_ENTRIES) -> LRUCache:
    """Fresh per-graph normalization memo (``cache.norm_adj.*`` counters)."""
    return LRUCache(capacity, counter_prefix="cache.norm_adj")
