"""Filter abstractions: the unified spectral-filter interface.

Every GNN in the paper's taxonomy (Table 1) reduces to a polynomial filter

    g(L̃) · x = Σ_{k=0}^{K} θ_k · T^(k)(L̃) · x

characterized by a basis recurrence ``T^(k)`` and coefficients ``θ`` that
are constant (*fixed* filters), learned (*variable* filters), or organized
into Q fused channels (*filter banks*).

The central trick of this implementation is that each filter writes its
basis recurrence **once**, against a :class:`PropagationContext` that knows
only how to apply the graph operator. Three interchangeable contexts then
reuse the same recurrence for:

- full-batch training  — operator = sparse ``Ã`` matmul over autodiff
  tensors (gradients flow through propagation);
- mini-batch precompute — operator = the same matmul over raw numpy;
- spectral analysis    — operator = elementwise multiplication by
  ``(1 − λ)`` on a grid of eigenvalues, so ``response(λ)`` is *numerically
  identical* to what propagation computes, by construction.

Filters never own trainable state. They declare what they need through
:meth:`SpectralFilter.parameter_spec`, and the enclosing model materializes
those parameters — which is what lets one filter implementation serve the
full-batch, mini-batch, and analysis paths alike (the paper's "separated
spectral kernels" design, Appendix C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..autodiff.sparse import spmm, spmm_numpy
from ..autodiff.tensor import Tensor
from ..errors import FilterError
from ..graph.graph import Graph
from ..runtime import plan

Signal = Union[np.ndarray, Tensor]


@dataclass(frozen=True)
class ParamSpec:
    """Declaration of one trainable parameter a filter requires.

    ``init`` is the initial value; the model copies it into a fresh
    :class:`~repro.nn.module.Parameter`, so filters stay stateless.
    """

    shape: tuple
    init: np.ndarray

    def __post_init__(self):
        if tuple(self.init.shape) != tuple(self.shape):
            raise FilterError(
                f"init shape {self.init.shape} != declared shape {self.shape}"
            )


class PropagationContext:
    """Applies the graph operator to signals; backend for basis recurrences.

    ``adj(x)`` applies the normalized self-looped adjacency ``Ã = I − L̃``;
    ``lap(x)`` applies ``L̃``. Both work on numpy arrays and autodiff
    tensors. ``hops`` counts operator applications, which the profiler uses
    to verify the O(KmF) / O(K²mF) complexity column of Table 1.
    """

    is_spectral = False

    def __init__(self, matrix: sp.spmatrix, backend: str = "csr"):
        self._matrix = matrix
        self._backend = backend
        self.hops = 0

    @property
    def matrix(self) -> sp.spmatrix:
        """The propagation operator (the planner keys chains on it)."""
        return self._matrix

    @property
    def backend(self) -> str:
        """The spmm backend name (part of the planner's operator key)."""
        return self._backend

    def adj(self, x: Signal) -> Signal:
        """Apply ``Ã`` (one propagation hop)."""
        self.hops += 1
        if isinstance(x, Tensor):
            return spmm(self._matrix, x, backend=self._backend)
        return spmm_numpy(self._matrix, x, backend=self._backend)

    def lap(self, x: Signal) -> Signal:
        """Apply ``L̃ = I − Ã``."""
        return x - self.adj(x)

    @classmethod
    def for_graph(cls, graph: Graph, rho: float = 0.5, backend: str = "csr"
                  ) -> "PropagationContext":
        """Context over the graph's memoized ``Ã`` for this ``ρ``.

        Repeated contexts on the same graph (across filters, schemes, and
        epochs) share one propagation matrix via the per-graph
        normalization memo, and therefore one cached backward transpose.
        """
        return cls(graph.normalized_adjacency(rho), backend=backend)


class SpectralContext:
    """Evaluates the same recurrences on an eigenvalue grid.

    A "signal" here is the vector of polynomial values ``p(λ_i)`` over the
    grid; applying ``Ã`` multiplies pointwise by ``(1 − λ)``, applying
    ``L̃`` by ``λ``. Running a filter's recurrence from the all-ones signal
    therefore yields its exact frequency response ``g(λ)``.
    """

    is_spectral = True

    def __init__(self, lams: np.ndarray):
        lams = np.asarray(lams, dtype=np.float64)
        if lams.ndim != 1:
            raise FilterError(f"eigenvalue grid must be 1-D, got {lams.shape}")
        self.lams = lams
        self.hops = 0

    def adj(self, x: np.ndarray) -> np.ndarray:
        self.hops += 1
        return (1.0 - self.lams) * x

    def lap(self, x: np.ndarray) -> np.ndarray:
        return self.lams * x


Context = Union[PropagationContext, SpectralContext]


def _combine(bases: Iterator[Signal], coefficients) -> Signal:
    """Σ θ_k B_k, streaming (holds one accumulator + current basis)."""
    out = None
    for k, basis in enumerate(bases):
        # basis-first keeps numpy scalars from trying to absorb Tensors
        term = basis * coefficients[k]
        out = term if out is None else out + term
    if out is None:
        raise FilterError("filter produced no basis terms")
    return out


class SpectralFilter:
    """Base class for all 27 filters of the taxonomy.

    Subclasses implement :meth:`_bases` — a generator of basis signals
    ``T^(k) x`` — and declare coefficients. Everything else (full-batch
    forward, mini-batch precompute, frequency response) is derived here.

    Parameters
    ----------
    num_hops:
        Polynomial order K (the paper's universal setting is K = 10).
    """

    #: Registry name, e.g. ``"ppr"``.
    name: str = "abstract"
    #: Taxonomy category: ``"fixed"`` | ``"variable"`` | ``"bank"``.
    category: str = "abstract"
    #: Asymptotic complexity strings reported in Table 1.
    time_complexity: str = "O(KmF)"
    memory_complexity: str = "O(nF)"
    #: True when the basis is plain adjacency powers ``(I − L̃)^k`` — the
    #: precondition for AGP-style approximate propagation (filters.approx).
    adjacency_monomial_basis: bool = False

    def __init__(self, num_hops: int = 10):
        if num_hops < 0:
            raise FilterError(f"num_hops must be non-negative, got {num_hops}")
        self.num_hops = int(num_hops)

    # ------------------------------------------------------------------
    # subclass interface
    # ------------------------------------------------------------------
    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        """Yield basis signals ``T^(0) x, …, T^(K) x``."""
        raise NotImplementedError

    def basis_count(self) -> int:
        """Number of basis terms produced by :meth:`_bases`."""
        return self.num_hops + 1

    def fixed_coefficients(self) -> Optional[np.ndarray]:
        """Constant θ for fixed filters; ``None`` when θ is learnable."""
        return None

    def default_coefficients(self) -> np.ndarray:
        """Initialization for learnable θ (ignored by fixed filters)."""
        fixed = self.fixed_coefficients()
        if fixed is not None:
            return fixed
        raise NotImplementedError

    def coefficient_transform(self) -> Optional[np.ndarray]:
        """Optional matrix C mapping raw params to basis weights (w = C θ).

        Used by Chebyshev interpolation, where the learnable parameters live
        at interpolation nodes rather than on the basis directly.
        """
        return None

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def parameter_spec(self) -> Dict[str, ParamSpec]:
        """Parameters the enclosing model must create for this filter."""
        if self.category == "fixed":
            return {}
        init = np.asarray(self.default_coefficients(), dtype=np.float32)
        return {"theta": ParamSpec(init.shape, init)}

    # ------------------------------------------------------------------
    # forward paths
    # ------------------------------------------------------------------
    def forward(self, ctx: Context, x: Signal, params: Optional[Dict] = None) -> Signal:
        """Filter a signal: ``g(L̃) x`` under any context.

        ``params`` maps the names from :meth:`parameter_spec` to tensors
        (full-batch training) or numpy arrays (analysis). Fixed filters
        ignore it.
        """
        coefficients = self._resolve_coefficients(params)
        return _combine(self._bases(ctx, x), coefficients)

    def _resolve_coefficients(self, params: Optional[Dict]):
        fixed = self.fixed_coefficients()
        if fixed is not None:
            return fixed
        if not params or "theta" not in params:
            raise FilterError(f"filter {self.name!r} requires 'theta' parameter")
        theta = params["theta"]
        transform = self.coefficient_transform()
        if transform is None:
            return theta
        if isinstance(theta, Tensor):
            return Tensor(transform.astype(np.float32)) @ theta
        return transform @ np.asarray(theta)

    def propagate(self, graph: Graph, x: np.ndarray, rho: float = 0.5,
                  backend: str = "csr") -> np.ndarray:
        """Convenience fixed-filter application over numpy (no gradients)."""
        if self.category != "fixed":
            raise FilterError(
                f"propagate() is for fixed filters; {self.name!r} has learnable "
                "parameters — use forward() with params"
            )
        ctx = PropagationContext.for_graph(graph, rho, backend)
        out = self.forward(ctx, np.asarray(x, dtype=np.float32))
        return np.asarray(out, dtype=np.float32)

    # ------------------------------------------------------------------
    # mini-batch path
    # ------------------------------------------------------------------
    def precompute(self, graph: Graph, x: np.ndarray, rho: float = 0.5,
                   backend: str = "csr") -> np.ndarray:
        """CPU precomputation stage: return channels ``(n, C, F)``.

        Fixed filters fully combine during precompute (C = 1, the O(nF)
        memory row of Table 1). Variable filters must keep every basis term
        so θ can be learned downstream (C = K + 1, the paper's K-fold RAM
        increase for variable filters under mini-batch).
        """
        ctx = PropagationContext.for_graph(graph, rho, backend)
        x = np.asarray(x, dtype=np.float32)
        if self.category == "fixed":
            combined = np.asarray(self.forward(ctx, x), dtype=np.float32)
            return combined[:, None, :]
        bases = list(self._bases(ctx, x))
        return np.stack(bases, axis=1).astype(np.float32, copy=False)

    def batch_combine(self, batch: Tensor, params: Optional[Dict] = None) -> Tensor:
        """Combine precomputed channels for a row batch ``(B, C, F) → (B, F)``."""
        if self.category == "fixed":
            return batch.reshape(batch.shape[0], batch.shape[2])
        coefficients = self._resolve_coefficients(params)
        if not isinstance(coefficients, Tensor):
            coefficients = Tensor(np.asarray(coefficients, dtype=np.float32))
        weights = coefficients.reshape(1, coefficients.shape[0], 1)
        return (batch * weights).sum(axis=1)

    def output_width(self, in_features: int) -> int:
        """Feature width after :meth:`forward` (banks with concat widen it)."""
        return in_features

    # ------------------------------------------------------------------
    # spectral analysis
    # ------------------------------------------------------------------
    def response(self, lams: np.ndarray,
                 params: Optional[Dict[str, np.ndarray]] = None) -> np.ndarray:
        """Exact frequency response ``g(λ)`` on an eigenvalue grid.

        For variable filters, pass the learned parameters (numpy arrays);
        defaults to the initialization otherwise.
        """
        if params is None and self.category != "fixed":
            params = {name: spec.init for name, spec in self.parameter_spec().items()}
        if params is not None:
            params = {k: _to_numpy(v) for k, v in params.items()}
        ctx = SpectralContext(lams)
        ones = np.ones_like(ctx.lams)
        return np.asarray(self.forward(ctx, ones, params), dtype=np.float64)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def hyperparameters(self) -> Dict[str, float]:
        """Tunable (non-learned) hyperparameters, for the search scheme."""
        return {}

    def __repr__(self) -> str:
        hp = ", ".join(f"{k}={v}" for k, v in self.hyperparameters().items())
        suffix = f", {hp}" if hp else ""
        return f"{type(self).__name__}(K={self.num_hops}{suffix})"


def _to_numpy(value) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value)


def monomial_bases(ctx: Context, x: Signal, count: int,
                   operator: str = "adj") -> Iterator[Signal]:
    """Shared generator of operator powers: ``x, P x, P² x, …``.

    ``operator`` selects ``adj`` (Ã) or ``lap`` (L̃). Served through the
    basis planner when a :func:`repro.runtime.plan.plan_scope` is active,
    so every monomial-basis filter in a sweep shares one prefix chain.
    """
    family = "monomial_adj" if operator == "adj" else "monomial_lap"
    return plan.chain_bases(ctx, x, family, (), count)
