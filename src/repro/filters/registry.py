"""Filter registry: the machine-readable form of the paper's Table 1.

Maps every filter name to its class, taxonomy category, asymptotic
complexity, tunable hyperparameters, and the GNN models it represents —
and provides the :func:`make_filter` factory the benchmark harness uses to
instantiate sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from ..errors import FilterError
from .bank import (
    ACMGNNFilter,
    AdaGNNFilter,
    FAGNNFilter,
    FBGNNFilter,
    FiGUReFilter,
    FilterBank,
    G2CNFilter,
    GNNLFHFFilter,
)
from .base import SpectralFilter
from .fixed import (
    GaussianFilter,
    HeatKernelFilter,
    IdentityFilter,
    ImpulseFilter,
    LinearFilter,
    MonomialFilter,
    PPRFilter,
)
from .variable import (
    BernsteinFilter,
    ChebInterpFilter,
    ChebyshevFilter,
    ClenshawFilter,
    FavardFilter,
    HornerFilter,
    JacobiFilter,
    LegendreFilter,
    LinearVariableFilter,
    MonomialVariableFilter,
    OptBasisFilter,
)


@dataclass(frozen=True)
class FilterEntry:
    """One row of Table 1."""

    name: str
    display: str
    category: str
    cls: Type[SpectralFilter]
    constructor_kwargs: Tuple[Tuple[str, object], ...] = ()
    hyperparameters: Tuple[str, ...] = ()
    time_complexity: str = "O(KmF)"
    memory_complexity: str = "O(nF)"
    models: Tuple[str, ...] = ()

    def build(self, num_hops: int = 10, num_features: Optional[int] = None,
              **overrides) -> SpectralFilter:
        kwargs = dict(self.constructor_kwargs)
        kwargs.update(overrides)
        if self.cls is AdaGNNFilter:
            if num_features is None:
                raise FilterError("AdaGNN needs num_features to size its γ bank")
            kwargs["num_features"] = num_features
        return self.cls(num_hops=num_hops, **kwargs)


def _entry(name, display, category, cls, hp=(), time="O(KmF)", memory="O(nF)",
           models=(), **ctor) -> FilterEntry:
    return FilterEntry(
        name=name,
        display=display,
        category=category,
        cls=cls,
        constructor_kwargs=tuple(ctor.items()),
        hyperparameters=tuple(hp),
        time_complexity=time,
        memory_complexity=memory,
        models=tuple(models),
    )


#: Registry in the paper's Table 5 row order.
REGISTRY: Dict[str, FilterEntry] = {
    entry.name: entry
    for entry in [
        # ---------------- fixed ----------------
        _entry("identity", "Identity", "fixed", IdentityFilter,
               time="O(KnF)", models=("MLP",)),
        _entry("linear", "Linear", "fixed", LinearFilter, models=("GCN",)),
        _entry("impulse", "Impulse", "fixed", ImpulseFilter,
               models=("SGC", "gfNN", "GZoom", "GRAND+")),
        _entry("monomial", "Monomial", "fixed", MonomialFilter,
               models=("S2GC", "AGP", "GRAND+")),
        _entry("ppr", "PPR", "fixed", PPRFilter, hp=("alpha",),
               models=("GLP", "GCNII", "APPNP", "GDC", "AGP", "GRAND+")),
        _entry("hk", "HK", "fixed", HeatKernelFilter, hp=("alpha",),
               models=("GDC", "AGP", "DGC")),
        _entry("gaussian", "Gaussian", "fixed", GaussianFilter,
               hp=("alpha", "beta"), models=("G2CN",)),
        # ---------------- variable ----------------
        _entry("linear_var", "Linear (var)", "variable", LinearVariableFilter,
               models=("GIN", "AKGNN")),
        _entry("monomial_var", "Monomial (var)", "variable",
               MonomialVariableFilter, models=("DAGNN", "GPRGNN")),
        _entry("horner", "Horner", "variable", HornerFilter,
               memory="O(2nF)", models=("ARMAGNN", "HornerGCN")),
        _entry("chebyshev", "Chebyshev", "variable", ChebyshevFilter,
               memory="O(2nF)", models=("ChebNet", "ChebBase")),
        _entry("clenshaw", "Clenshaw", "variable", ClenshawFilter,
               memory="O(3nF)", models=("ClenshawGCN",)),
        _entry("chebinterp", "ChebInterp", "variable", ChebInterpFilter,
               time="O(KmF + K^2 nF)", memory="O(2nF)", models=("ChebNetII",)),
        _entry("bernstein", "Bernstein", "variable", BernsteinFilter,
               time="O(K^2 mF)", models=("BernNet",)),
        _entry("legendre", "Legendre", "variable", LegendreFilter,
               memory="O(2nF)", models=("LegendreNet",)),
        _entry("jacobi", "Jacobi", "variable", JacobiFilter, hp=("a", "b"),
               memory="O(2nF)", models=("JacobiConv",)),
        _entry("favard", "Favard", "variable", FavardFilter,
               time="O(KmF + KnF)", memory="O(2nF)", models=("FavardGNN",)),
        _entry("optbasis", "OptBasis", "variable", OptBasisFilter,
               time="O(KmF + KnF^2)", memory="O(2nF)", models=("OptBasisGNN",)),
        # ---------------- bank ----------------
        _entry("adagnn", "AdaGNN", "bank", AdaGNNFilter,
               models=("AdaGNN",)),
        _entry("fbgnn1", "FBGNN I", "bank", FBGNNFilter, variant="I",
               time="O(QKmF + QKnF)", memory="O(QnF)", models=("FBGCN-I",)),
        _entry("fbgnn2", "FBGNN II", "bank", FBGNNFilter, variant="II",
               time="O(QKmF + QKnF)", memory="O(QnF)", models=("FBGCN-II",)),
        _entry("acmgnn1", "ACMGNN I", "bank", ACMGNNFilter, variant="I",
               time="O(QKmF + QKnF)", memory="O(QnF)", models=("ACMGNN-I",)),
        _entry("acmgnn2", "ACMGNN II", "bank", ACMGNNFilter, variant="II",
               time="O(QKmF + QKnF)", memory="O(QnF)", models=("ACMGNN-II",)),
        _entry("fagnn", "FAGNN", "bank", FAGNNFilter, hp=("beta",),
               time="O(QKmF)", memory="O(QnF)", models=("FAGCN",)),
        _entry("g2cn", "G2CN", "bank", G2CNFilter,
               hp=("alpha_low", "alpha_high", "beta_low", "beta_high"),
               time="O(QKmF)", memory="O(QnF)", models=("G2CN",)),
        _entry("gnnlfhf", "GNN-LF/HF", "bank", GNNLFHFFilter,
               hp=("alpha_low", "alpha_high", "beta_low", "beta_high"),
               time="O(QKmF)", memory="O(QnF)", models=("GNN-LF/HF",)),
        _entry("figure", "FiGURe", "bank", FiGUReFilter,
               time="O(QKmF)", memory="O(QnF)", models=("FiGURe",)),
    ]
}

FILTER_NAMES: List[str] = list(REGISTRY)
FIXED_NAMES = [n for n, e in REGISTRY.items() if e.category == "fixed"]
VARIABLE_NAMES = [n for n, e in REGISTRY.items() if e.category == "variable"]
BANK_NAMES = [n for n, e in REGISTRY.items() if e.category == "bank"]


def make_filter(name: str, num_hops: int = 10,
                num_features: Optional[int] = None, **overrides) -> SpectralFilter:
    """Instantiate a filter by registry name.

    Parameters
    ----------
    name:
        One of :data:`FILTER_NAMES`.
    num_hops:
        Polynomial order K (paper default 10).
    num_features:
        Input width; required only by AdaGNN.
    overrides:
        Filter hyperparameters (e.g. ``alpha=0.2`` for PPR).
    """
    entry = REGISTRY.get(name)
    if entry is None:
        raise FilterError(
            f"unknown filter {name!r}; known: {', '.join(FILTER_NAMES)}"
        )
    return entry.build(num_hops=num_hops, num_features=num_features, **overrides)


def taxonomy_table() -> List[Dict[str, str]]:
    """Rows of Table 1 (name, category, params, complexity, models)."""
    rows = []
    for entry in REGISTRY.values():
        rows.append(
            {
                "filter": entry.display,
                "type": entry.category,
                "hyperparameters": ", ".join(entry.hyperparameters) or "/",
                "time": entry.time_complexity,
                "memory": entry.memory_complexity,
                "models": ", ".join(entry.models),
            }
        )
    return rows
