"""Fixed filters: constant basis *and* constant coefficients (Table 1, top).

These are the classical graph-diffusion schemes — identity/MLP, the GCN
linear filter, SGC's impulse, S²GC's monomial average, APPNP's personalized
PageRank, GDC's heat kernel, and G²CN's Gaussian — whose spectral responses
are closed-form functions of λ. They combine during propagation with an
O(nF) accumulator, which is exactly why the taxonomy credits them with the
smallest memory footprint.
"""

from __future__ import annotations

from math import factorial
from typing import Dict, Iterator

import numpy as np

from ..errors import FilterError
from ..runtime import plan
from .base import Context, Signal, SpectralFilter, monomial_bases


class IdentityFilter(SpectralFilter):
    """``g(L̃) = I`` — no graph information; the MLP baseline."""

    name = "identity"
    category = "fixed"
    adjacency_monomial_basis = True
    time_complexity = "O(KnF)"

    def basis_count(self) -> int:
        return 1

    def fixed_coefficients(self) -> np.ndarray:
        return np.array([1.0])

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield x


class LinearFilter(SpectralFilter):
    """``g(L̃) = 2I − L̃`` — one GCN propagation layer, response ``2 − λ``."""

    name = "linear"
    category = "fixed"
    adjacency_monomial_basis = True

    def basis_count(self) -> int:
        return 2

    def fixed_coefficients(self) -> np.ndarray:
        return np.array([1.0, 1.0])

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        # 2I − L̃ = I + Ã : bases {x, Ãx} with unit weights.
        yield from monomial_bases(ctx, x, 2, operator="adj")


class ImpulseFilter(SpectralFilter):
    """``g(L̃) = (I − L̃)^K`` — SGC/gfNN: only the K-th hop survives."""

    name = "impulse"
    category = "fixed"
    adjacency_monomial_basis = True

    def fixed_coefficients(self) -> np.ndarray:
        theta = np.zeros(self.num_hops + 1)
        theta[-1] = 1.0
        return theta

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from monomial_bases(ctx, x, self.num_hops + 1, operator="adj")


class MonomialFilter(SpectralFilter):
    """``g(L̃) = (1/(K+1)) Σ (I − L̃)^k`` — S²GC's uniform hop average."""

    name = "monomial"
    category = "fixed"
    adjacency_monomial_basis = True

    def fixed_coefficients(self) -> np.ndarray:
        return np.full(self.num_hops + 1, 1.0 / (self.num_hops + 1))

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from monomial_bases(ctx, x, self.num_hops + 1, operator="adj")


class PPRFilter(SpectralFilter):
    """Personalized PageRank: ``θ_k = α (1 − α)^k`` (APPNP/GDC/AGP).

    Parameters
    ----------
    alpha:
        Teleport/decay coefficient in [0, 1]; larger keeps more node
        identity, smaller diffuses further (useful under heterophily).
    """

    name = "ppr"
    category = "fixed"
    adjacency_monomial_basis = True

    def __init__(self, num_hops: int = 10, alpha: float = 0.1):
        super().__init__(num_hops)
        if not 0.0 <= alpha <= 1.0:
            raise FilterError(f"PPR alpha must be in [0, 1], got {alpha}")
        self.alpha = float(alpha)

    def fixed_coefficients(self) -> np.ndarray:
        k = np.arange(self.num_hops + 1)
        return self.alpha * (1.0 - self.alpha) ** k

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from monomial_bases(ctx, x, self.num_hops + 1, operator="adj")

    def hyperparameters(self) -> Dict[str, float]:
        return {"alpha": self.alpha}


class HeatKernelFilter(SpectralFilter):
    """Heat kernel: ``θ_k = e^{-α} α^k / k!``, response ``e^{-αλ}``.

    Parameters
    ----------
    alpha:
        Temperature; larger diffuses further (sharper low-pass).
    """

    name = "hk"
    category = "fixed"
    adjacency_monomial_basis = True

    def __init__(self, num_hops: int = 10, alpha: float = 1.0):
        super().__init__(num_hops)
        if alpha < 0:
            raise FilterError(f"heat-kernel alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)

    def fixed_coefficients(self) -> np.ndarray:
        k = np.arange(self.num_hops + 1)
        factorials = np.array([factorial(i) for i in k], dtype=np.float64)
        return np.exp(-self.alpha) * self.alpha ** k / factorials

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from monomial_bases(ctx, x, self.num_hops + 1, operator="adj")

    def hyperparameters(self) -> Dict[str, float]:
        return {"alpha": self.alpha}


class GaussianFilter(SpectralFilter):
    """Gaussian filter of G²CN, concentrated at a centre ``μ = 1 + β``.

    Implemented in G²CN's stable *product* form: J = ⌊K/2⌋ layers of
    ``H ← H − (α/J)·C²H`` with ``C = (1+β)I − L̃ = βI + Ã``, i.e.

        g(λ) = (1 − α(μ − λ)²/J)^J  →  e^{-α (λ − μ)²},

    two propagation hops per layer (the Table 1 cost). The Taylor-series
    expansion printed in Table 1 is numerically divergent when truncated
    at practical K (terms up to (αΔ²)^k/k! with αΔ² ≈ 8 need k ≳ 20), so —
    like the original G²CN code — we evaluate the product directly.

    Parameters
    ----------
    alpha:
        Concentration (decay) coefficient; larger = narrower band.
    beta:
        Centre offset: the bump sits at ``λ = 1 + β``; ``β = -1`` gives a
        low-pass bump at 0, ``β = +1`` a high-pass bump at 2.
    """

    name = "gaussian"
    category = "fixed"

    def __init__(self, num_hops: int = 10, alpha: float = 1.0, beta: float = -1.0):
        super().__init__(num_hops)
        if alpha < 0:
            raise FilterError(f"gaussian alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)
        self.beta = float(beta)

    @property
    def num_layers(self) -> int:
        return max(self.num_hops // 2, 1)

    def basis_count(self) -> int:
        return 1

    def fixed_coefficients(self) -> np.ndarray:
        return np.array([1.0])

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        layers = self.num_layers
        for current in plan.chain_bases(ctx, x, "gaussian",
                                        (self.alpha, self.beta, layers),
                                        layers + 1):
            pass
        yield current

    def hyperparameters(self) -> Dict[str, float]:
        return {"alpha": self.alpha, "beta": self.beta}


FIXED_FILTERS = (
    IdentityFilter,
    LinearFilter,
    ImpulseFilter,
    MonomialFilter,
    PPRFilter,
    HeatKernelFilter,
    GaussianFilter,
)
