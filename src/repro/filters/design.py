"""Filter design: fit a filter's parameters to a target frequency response.

The paper's regression task (Section 6.1.3) learns θ by gradient descent
through graph propagation. When the *target response* ``g*(λ)`` is known in
closed form, the same fit has a direct solution: a filter with learnable
coefficients is linear in θ on the spectral axis, so least squares over the
basis values gives the optimal θ in one step. This is useful for

- warm-starting variable filters at a designed response (e.g. initialize
  ChebNetII at a band-pass instead of a low-pass);
- scoring how well a basis family *can* express a response, independent of
  optimization (used by :mod:`repro.spectral.guidelines`);
- building custom fixed filters from a specification.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..errors import FilterError
from .base import SpectralContext, SpectralFilter

ResponseFunction = Callable[[np.ndarray], np.ndarray]


def basis_matrix(filter_: SpectralFilter, grid: np.ndarray) -> np.ndarray:
    """Evaluate a filter's basis functions on a λ grid: shape (len(grid), C).

    Only defined for filters whose basis does not depend on trainable
    parameters (everything except Favard; OptBasis uses its last replayed
    or default basis).
    """
    ctx = SpectralContext(grid)
    ones = np.ones_like(ctx.lams)
    columns = [np.asarray(b, dtype=np.float64) for b in filter_._bases(ctx, ones)]
    return np.stack(columns, axis=1)


def fit_filter_to_response(
    filter_: SpectralFilter,
    target: ResponseFunction,
    grid: Optional[np.ndarray] = None,
    regularization: float = 1e-8,
) -> Dict[str, np.ndarray]:
    """Least-squares θ (and uniform-response γ for banks) matching ``target``.

    Parameters
    ----------
    filter_:
        A variable filter or a bank of them; fixed filters have nothing to
        fit and raise :class:`FilterError`.
    target:
        Vectorized response function over λ ∈ [0, 2].
    grid:
        Evaluation points; defaults to a uniform 65-point grid.
    regularization:
        Tikhonov damping for ill-conditioned bases (high-order monomials).

    Returns a parameter dict in the shape the filter's ``forward`` /
    ``response`` expect. Raises :class:`FilterError` for filters whose
    basis itself is parameterized (Favard) — fit those by gradient descent
    via :func:`repro.tasks.run_signal_regression` instead.
    """
    spec = filter_.parameter_spec()
    if not spec:
        raise FilterError(
            f"filter {filter_.name!r} has no learnable parameters to fit"
        )
    if "alpha_raw" in spec:
        raise FilterError(
            "Favard's basis depends on its parameters; closed-form fitting "
            "does not apply — use gradient-based signal regression"
        )
    grid = np.linspace(0.0, 2.0, 65) if grid is None else np.asarray(grid, float)
    values = np.asarray(target(grid), dtype=np.float64)
    if values.shape != grid.shape:
        raise FilterError("target function must be vectorized over λ")

    if filter_.category == "bank":
        return _fit_bank(filter_, grid, values, regularization)

    matrix = basis_matrix(filter_, grid)
    transform = filter_.coefficient_transform()
    if transform is not None:
        matrix = matrix @ transform
    theta = _ridge_solve(matrix, values, regularization)
    return {"theta": theta.astype(np.float32)}


def _fit_bank(filter_, grid, values, regularization) -> Dict[str, np.ndarray]:
    """Fit a bank: stack all channels' (γ-scaled) bases into one system."""
    if getattr(filter_, "channels", None) is None:
        raise FilterError(
            f"bank filter {filter_.name!r} does not expose channels; "
            "fit it by gradient descent instead"
        )
    blocks = []
    layout = []  # (channel_index, has_theta, column_count)
    for index, channel in enumerate(filter_.channels):
        matrix = basis_matrix(channel, grid)
        if channel.category == "fixed":
            combined = matrix @ channel.fixed_coefficients()
            blocks.append(combined[:, None])
            layout.append((index, False, 1))
        else:
            transform = channel.coefficient_transform()
            if transform is not None:
                matrix = matrix @ transform
            blocks.append(matrix)
            layout.append((index, True, matrix.shape[1]))
    system = np.concatenate(blocks, axis=1)
    solution = _ridge_solve(system, values, regularization)

    params: Dict[str, np.ndarray] = {}
    gamma = np.zeros(len(filter_.channels), dtype=np.float32)
    offset = 0
    for index, has_theta, count in layout:
        chunk = solution[offset:offset + count]
        offset += count
        if has_theta:
            # Put the full fit in θ and let γ carry unit weight.
            params[f"theta_{index}"] = chunk.astype(np.float32)
            gamma[index] = 1.0
        else:
            gamma[index] = float(chunk[0])
    params["gamma"] = gamma
    return params


def _ridge_solve(matrix: np.ndarray, values: np.ndarray,
                 regularization: float) -> np.ndarray:
    gram = matrix.T @ matrix
    gram += regularization * np.eye(gram.shape[0])
    return np.linalg.solve(gram, matrix.T @ values)


def design_error(
    filter_: SpectralFilter,
    params: Dict[str, np.ndarray],
    target: ResponseFunction,
    grid: Optional[np.ndarray] = None,
) -> float:
    """RMS error between a parameterized response and the target."""
    grid = np.linspace(0.0, 2.0, 65) if grid is None else np.asarray(grid, float)
    achieved = filter_.response(grid, params)
    wanted = np.asarray(target(grid), dtype=np.float64)
    return float(np.sqrt(np.mean((achieved - wanted) ** 2)))
