"""Filter banks: Q fused channels spanning different frequency ranges.

Section 3.3 of the paper frames these as ``g = ⊕_q γ_q g_q(L̃; θ)`` with a
learnable per-channel strength γ and a fusion ⊕ (sum or concatenation).
:class:`FilterBank` implements the generic machinery — channel evaluation,
fusion, mini-batch channel stacking — and each named model below is a thin
channel configuration:

- FBGNN-I/II and ACMGNN-I/II: low-pass/high-pass(/identity) linear banks;
  the "-I" variants transform channels separately (modelled as concat
  fusion feeding a shared MLP), the "-II" variants fuse first (sum).
- FAGNN: low/high channels with a β identity bias, attention-style γ.
- G²CN: two Gaussian bumps at opposite ends of the spectrum.
- GNN-LF/HF: PPR channels with a (I ∓ βL̃) pre-filter.
- FiGURe: identity + variable Monomial/Chebyshev/Bernstein channels.
- AdaGNN: a degenerate bank with Q = F per-feature linear filters, handled
  by its own class because channels act feature-wise rather than stacking.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff.tensor import Tensor, concatenate as tensor_concat, stack as tensor_stack
from ..errors import FilterError
from ..graph.graph import Graph
from ..runtime import plan
from .base import Context, ParamSpec, Signal, SpectralFilter, monomial_bases
from .fixed import GaussianFilter, IdentityFilter, MonomialFilter, PPRFilter
from .variable import BernsteinFilter, ChebyshevFilter, MonomialVariableFilter


class LaplacianMonomialFilter(SpectralFilter):
    """High-pass channel: uniform average of Laplacian powers ``L̃^k``."""

    name = "monomial_hp"
    category = "fixed"

    def fixed_coefficients(self) -> np.ndarray:
        return np.full(self.num_hops + 1, 1.0 / (self.num_hops + 1))

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from monomial_bases(ctx, x, self.num_hops + 1, operator="lap")


class ShiftedMonomialFilter(SpectralFilter):
    """FAGNN channel: uniform powers of ``βI ± Ã`` (low/high + identity bias)."""

    name = "shifted_monomial"
    category = "fixed"

    def __init__(self, num_hops: int = 10, beta: float = 0.5, sign: float = 1.0):
        super().__init__(num_hops)
        self.beta = float(beta)
        self.sign = float(sign)

    def fixed_coefficients(self) -> np.ndarray:
        return np.full(self.num_hops + 1, 1.0 / (self.num_hops + 1))

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from plan.chain_bases(ctx, x, "shifted_monomial",
                                    (self.beta, self.sign), self.num_hops + 1)

    def hyperparameters(self) -> Dict[str, float]:
        return {"beta": self.beta, "sign": self.sign}


class PrefixedPPRFilter(PPRFilter):
    """GNN-LF/HF channel: PPR over the pre-filtered signal ``(I ∓ βL̃)x``."""

    name = "ppr_prefixed"
    category = "fixed"

    def __init__(self, num_hops: int = 10, alpha: float = 0.1,
                 beta: float = 0.5, sign: float = -1.0):
        super().__init__(num_hops, alpha=alpha)
        self.beta = float(beta)
        self.sign = float(sign)

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        prefixed = x + ctx.lap(x) * (self.sign * self.beta)
        yield from monomial_bases(ctx, prefixed, self.num_hops + 1, operator="adj")

    def hyperparameters(self) -> Dict[str, float]:
        return {"alpha": self.alpha, "beta": self.beta, "sign": self.sign}


def _fuse_concat(parts: Sequence[Signal]) -> Signal:
    if isinstance(parts[0], Tensor):
        return tensor_concat(list(parts), axis=1)
    return np.concatenate(list(parts), axis=1)


class FilterBank(SpectralFilter):
    """Generic bank: named sub-filters, learnable γ, sum or concat fusion.

    Parameters for channel q are namespaced ``<name>_q`` in the spec the
    enclosing model materializes; :meth:`forward` re-scopes them before
    delegating to each channel.
    """

    name = "bank"
    category = "bank"
    time_complexity = "O(QKmF)"
    memory_complexity = "O(QnF)"

    def __init__(self, channels: Sequence[SpectralFilter], fusion: str = "sum",
                 num_hops: int = 10):
        super().__init__(num_hops)
        if fusion not in ("sum", "concat"):
            raise FilterError(f"fusion must be 'sum' or 'concat', got {fusion!r}")
        if not channels:
            raise FilterError("a filter bank needs at least one channel")
        self.channels: List[SpectralFilter] = list(channels)
        self.fusion = fusion
        self._channel_slices: Optional[List[Tuple[int, int]]] = None

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def parameter_spec(self) -> Dict[str, ParamSpec]:
        q = len(self.channels)
        gamma = np.full(q, 1.0 / q, dtype=np.float32)
        spec: Dict[str, ParamSpec] = {"gamma": ParamSpec(gamma.shape, gamma)}
        for index, channel in enumerate(self.channels):
            for name, sub in channel.parameter_spec().items():
                spec[f"{name}_{index}"] = sub
        return spec

    def _channel_params(self, params: Optional[Dict], index: int) -> Optional[Dict]:
        if not params:
            return None
        suffix = f"_{index}"
        scoped = {
            key[: -len(suffix)]: value
            for key, value in params.items()
            if key.endswith(suffix)
        }
        return scoped or None

    # ------------------------------------------------------------------
    # forward / fuse
    # ------------------------------------------------------------------
    def forward(self, ctx: Context, x: Signal, params: Optional[Dict] = None) -> Signal:
        gamma = params["gamma"] if params else self.parameter_spec()["gamma"].init
        outputs = []
        for index, channel in enumerate(self.channels):
            out = channel.forward(ctx, x, self._channel_params(params, index))
            outputs.append(out * gamma[index])
        if self.fusion == "sum":
            fused = outputs[0]
            for out in outputs[1:]:
                fused = fused + out
            return fused
        return _fuse_concat(outputs)

    def output_width(self, in_features: int) -> int:
        if self.fusion == "concat":
            return in_features * len(self.channels)
        return in_features

    # ------------------------------------------------------------------
    # mini-batch path
    # ------------------------------------------------------------------
    def precompute(self, graph: Graph, x: np.ndarray, rho: float = 0.5,
                   backend: str = "csr") -> np.ndarray:
        stacks = []
        slices: List[Tuple[int, int]] = []
        offset = 0
        for channel in self.channels:
            block = channel.precompute(graph, x, rho=rho, backend=backend)
            stacks.append(block)
            slices.append((offset, offset + block.shape[1]))
            offset += block.shape[1]
        self._channel_slices = slices
        return np.concatenate(stacks, axis=1)

    def batch_combine(self, batch: Tensor, params: Optional[Dict] = None) -> Tensor:
        if self._channel_slices is None:
            raise FilterError("batch_combine before precompute on a filter bank")
        gamma = params["gamma"] if params else self.parameter_spec()["gamma"].init
        outputs = []
        for index, (channel, (start, stop)) in enumerate(
            zip(self.channels, self._channel_slices)
        ):
            sub = batch[:, start:stop, :]
            out = channel.batch_combine(sub, self._channel_params(params, index))
            outputs.append(out * gamma[index])
        if self.fusion == "sum":
            fused = outputs[0]
            for out in outputs[1:]:
                fused = fused + out
            return fused
        return _fuse_concat(outputs)

    # ------------------------------------------------------------------
    # spectral analysis
    # ------------------------------------------------------------------
    def channel_responses(self, lams: np.ndarray,
                          params: Optional[Dict] = None) -> np.ndarray:
        """Per-channel responses ``g_q(λ)`` as a (Q, len(λ)) array."""
        if params is None:
            params = {name: spec.init for name, spec in self.parameter_spec().items()}
        rows = []
        for index, channel in enumerate(self.channels):
            rows.append(channel.response(lams, self._channel_params(params, index)))
        return np.stack(rows, axis=0)

    def response(self, lams: np.ndarray,
                 params: Optional[Dict[str, np.ndarray]] = None) -> np.ndarray:
        """γ-weighted sum of channel responses (also used for concat banks
        as the aggregate frequency profile)."""
        if params is None:
            params = {name: spec.init for name, spec in self.parameter_spec().items()}
        gamma = np.asarray(
            params["gamma"].data if isinstance(params["gamma"], Tensor) else params["gamma"]
        )
        responses = self.channel_responses(lams, params)
        return (gamma[:, None] * responses).sum(axis=0)


class FBGNNFilter(FilterBank):
    """FBGNN-I/II: low-pass + high-pass linear channels (Luan et al.)."""

    name = "fbgnn"
    time_complexity = "O(QKmF + QKnF)"

    def __init__(self, num_hops: int = 10, variant: str = "I"):
        if variant not in ("I", "II"):
            raise FilterError(f"FBGNN variant must be 'I' or 'II', got {variant!r}")
        fusion = "concat" if variant == "I" else "sum"
        super().__init__(
            channels=[
                MonomialFilter(num_hops),
                LaplacianMonomialFilter(num_hops),
            ],
            fusion=fusion,
            num_hops=num_hops,
        )
        self.variant = variant
        self.name = f"fbgnn{'1' if variant == 'I' else '2'}"


class ACMGNNFilter(FilterBank):
    """ACMGNN-I/II: FBGNN plus an identity (all-pass) channel."""

    name = "acmgnn"
    time_complexity = "O(QKmF + QKnF)"

    def __init__(self, num_hops: int = 10, variant: str = "I"):
        if variant not in ("I", "II"):
            raise FilterError(f"ACMGNN variant must be 'I' or 'II', got {variant!r}")
        fusion = "concat" if variant == "I" else "sum"
        super().__init__(
            channels=[
                MonomialFilter(num_hops),
                LaplacianMonomialFilter(num_hops),
                IdentityFilter(num_hops),
            ],
            fusion=fusion,
            num_hops=num_hops,
        )
        self.variant = variant
        self.name = f"acmgnn{'1' if variant == 'I' else '2'}"


class FAGNNFilter(FilterBank):
    """FAGCN-style bank: ``γ1((β+1)I − L̃) + γ2((β−1)I + L̃)`` over K hops."""

    name = "fagnn"

    def __init__(self, num_hops: int = 10, beta: float = 0.5):
        super().__init__(
            channels=[
                ShiftedMonomialFilter(num_hops, beta=beta, sign=1.0),
                ShiftedMonomialFilter(num_hops, beta=beta, sign=-1.0),
            ],
            fusion="sum",
            num_hops=num_hops,
        )
        self.beta = float(beta)

    def hyperparameters(self) -> Dict[str, float]:
        return {"beta": self.beta}


class G2CNFilter(FilterBank):
    """G²CN: Gaussian bumps concentrated near λ = 1 − β (low) and 1 + β (high)."""

    name = "g2cn"

    def __init__(self, num_hops: int = 10, alpha_low: float = 1.0,
                 alpha_high: float = 1.0, beta_low: float = 1.0,
                 beta_high: float = 1.0):
        super().__init__(
            channels=[
                GaussianFilter(num_hops, alpha=alpha_low, beta=-beta_low),
                GaussianFilter(num_hops, alpha=alpha_high, beta=beta_high),
            ],
            fusion="sum",
            num_hops=num_hops,
        )

    def hyperparameters(self) -> Dict[str, float]:
        low, high = self.channels
        return {
            "alpha_low": low.alpha,
            "alpha_high": high.alpha,
            "beta_low": -low.beta,
            "beta_high": high.beta,
        }


class GNNLFHFFilter(FilterBank):
    """GNN-LF/HF: PPR channels with low/high (I ∓ βL̃) pre-filters."""

    name = "gnnlfhf"

    def __init__(self, num_hops: int = 10, alpha_low: float = 0.1,
                 alpha_high: float = 0.1, beta_low: float = 0.4,
                 beta_high: float = 0.4):
        super().__init__(
            channels=[
                PrefixedPPRFilter(num_hops, alpha=alpha_low, beta=beta_low, sign=-1.0),
                PrefixedPPRFilter(num_hops, alpha=alpha_high, beta=beta_high, sign=1.0),
            ],
            fusion="sum",
            num_hops=num_hops,
        )


class FiGUReFilter(FilterBank):
    """FiGURe: identity + variable Monomial/Chebyshev/Bernstein channels."""

    name = "figure"

    def __init__(self, num_hops: int = 10):
        super().__init__(
            channels=[
                IdentityFilter(num_hops),
                MonomialVariableFilter(num_hops),
                ChebyshevFilter(num_hops),
                BernsteinFilter(num_hops),
            ],
            fusion="sum",
            num_hops=num_hops,
        )


class AdaGNNFilter(SpectralFilter):
    """AdaGNN: per-feature linear filters ``Π_j (I − γ_{j,f} L̃)``.

    The bank degenerates to Q = F channels acting feature-wise: each layer
    multiplies channel f by ``(1 − γ_{j,f} λ)`` with a learnable γ. The
    full-batch path runs the K-layer recurrence directly; the mini-batch
    path stores Laplacian-power hops and recombines them with the
    elementary-symmetric-polynomial coefficients of γ, which is the exact
    expansion of the product form.

    Parameters
    ----------
    num_features:
        Width F of the signal the filter will see (needed to size γ).
    """

    name = "adagnn"
    category = "bank"
    time_complexity = "O(KmF)"
    memory_complexity = "O(nF)"

    def __init__(self, num_hops: int = 10, num_features: int = 1):
        super().__init__(num_hops)
        if num_features < 1:
            raise FilterError(f"num_features must be >= 1, got {num_features}")
        self.num_features = int(num_features)

    def parameter_spec(self) -> Dict[str, ParamSpec]:
        gamma = np.full((self.num_hops, self.num_features), 0.2, dtype=np.float32)
        return {"gamma": ParamSpec(gamma.shape, gamma)}

    def forward(self, ctx: Context, x: Signal, params: Optional[Dict] = None) -> Signal:
        gamma = self._gamma(params)
        if ctx.is_spectral:
            return self._spectral_forward(ctx, x, gamma)
        current = x
        for j in range(self.num_hops):
            current = current - ctx.lap(current) * gamma[j]
        return current

    def _gamma(self, params: Optional[Dict]):
        if params and "gamma" in params:
            return params["gamma"]
        return self.parameter_spec()["gamma"].init

    def _spectral_forward(self, ctx: Context, x: np.ndarray, gamma) -> np.ndarray:
        gamma = gamma.data if isinstance(gamma, Tensor) else np.asarray(gamma)
        mean_gamma = gamma.mean(axis=1)  # channel-average response
        out = np.asarray(x, dtype=np.float64)
        for j in range(self.num_hops):
            out = out * (1.0 - mean_gamma[j] * ctx.lams)
        return out

    def precompute(self, graph: Graph, x: np.ndarray, rho: float = 0.5,
                   backend: str = "csr") -> np.ndarray:
        from .base import PropagationContext

        ctx = PropagationContext.for_graph(graph, rho, backend)
        hops = list(monomial_bases(ctx, np.asarray(x, dtype=np.float32),
                                   self.num_hops + 1, operator="lap"))
        return np.stack(hops, axis=1).astype(np.float32, copy=False)

    def batch_combine(self, batch: Tensor, params: Optional[Dict] = None) -> Tensor:
        gamma = self._gamma(params)
        if not isinstance(gamma, Tensor):
            gamma = Tensor(np.asarray(gamma, dtype=np.float32))
        coefficients = self._signed_elementary_symmetric(gamma)  # (K+1, F)
        weights = coefficients.reshape(1, self.num_hops + 1, self.num_features)
        return (batch * weights).sum(axis=1)

    def _signed_elementary_symmetric(self, gamma: Tensor) -> Tensor:
        """(−1)^k e_k(γ_{:,f}) per feature: Π(1−γλ) = Σ_k c_k λ^k."""
        ones = Tensor(np.ones((self.num_features,), dtype=np.float32))
        zeros = Tensor(np.zeros((self.num_features,), dtype=np.float32))
        coeffs: List[Tensor] = [ones] + [zeros] * self.num_hops
        for j in range(self.num_hops):
            layer_gamma = gamma[j]
            # Multiply the running polynomial by (1 − γ_j λ), highest first.
            for k in range(min(j + 1, self.num_hops), 0, -1):
                coeffs[k] = coeffs[k] - coeffs[k - 1] * layer_gamma
        return tensor_stack(coeffs, axis=0)


BANK_FILTERS = (
    AdaGNNFilter,
    FBGNNFilter,
    ACMGNNFilter,
    FAGNNFilter,
    G2CNFilter,
    GNNLFHFFilter,
    FiGUReFilter,
)
