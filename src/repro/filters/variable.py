"""Variable filters: fixed basis, learnable coefficients (Table 1, middle).

Each filter here is a polynomial basis — monomial, Horner-residual,
Chebyshev (1st/2nd kind, plain and interpolated), Bernstein, Legendre,
Jacobi, Favard, OptBasis — whose K+1 coefficients θ are learned by gradient
descent in the enclosing model.

Bases with recurrences over an argument in [−1, 1] (Chebyshev, Clenshaw,
Legendre, Jacobi) are evaluated on the *shifted* operator ``L̃ − I = −Ã``
(eigenvalues ``λ − 1``), the convention of ChebNetII/JacobiConv; this keeps
basis magnitudes bounded where the raw-``L̃`` recurrences printed in the
paper's table would grow geometrically.

Favard and OptBasis have data- or parameter-dependent bases. Both are
reduced to the monomial hop space: any degree-k polynomial basis is a
(here triangular) linear map over monomials, so the recurrence runs on
coefficient vectors instead of n×F matrices. This is what makes them
trainable under the mini-batch scheme (precomputed hops + per-batch
recombination), matching the O(KnF) extra transform cost the paper reports.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from ..autodiff.tensor import Tensor, stack
from ..errors import FilterError
from ..runtime import plan
from .base import Context, ParamSpec, Signal, SpectralFilter, monomial_bases


def _sqrt(value):
    if isinstance(value, Tensor):
        return value.sqrt()
    return np.sqrt(value)


def _softplus(value):
    if isinstance(value, Tensor):
        return ((value.clip(-30.0, 30.0)).exp() + 1.0).log()
    return np.log1p(np.exp(np.clip(value, -30.0, 30.0)))


class LinearVariableFilter(SpectralFilter):
    """GIN/AKGNN linear filter ``(1+θ)I − L̃ = θI + Ã`` with learnable θ.

    Two bases {x, Ãx}; the learnable weight on the identity term is GIN's
    (1+ε) self-loop strength.
    """

    name = "linear_var"
    category = "variable"

    def basis_count(self) -> int:
        return 2

    def default_coefficients(self) -> np.ndarray:
        return np.array([0.0, 1.0], dtype=np.float32)

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from monomial_bases(ctx, x, 2, operator="adj")


class MonomialVariableFilter(SpectralFilter):
    """GPRGNN/DAGNN: learnable θ over monomial bases ``(I − L̃)^k``.

    Initialized with the PPR decay ``θ_k = α(1−α)^k`` (and the tail mass on
    θ_K), GPRGNN's recommended warm start.
    """

    name = "monomial_var"
    category = "variable"

    def __init__(self, num_hops: int = 10, alpha: float = 0.5):
        super().__init__(num_hops)
        self.alpha = float(alpha)

    def default_coefficients(self) -> np.ndarray:
        k = np.arange(self.num_hops + 1)
        theta = self.alpha * (1.0 - self.alpha) ** k
        theta[-1] = (1.0 - self.alpha) ** self.num_hops
        return theta.astype(np.float32)

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from monomial_bases(ctx, x, self.num_hops + 1, operator="adj")

    def hyperparameters(self) -> Dict[str, float]:
        return {"alpha": self.alpha}


class HornerFilter(SpectralFilter):
    """HornerGCN/ARMA-style residual bases ``b_k = Ã b_{k−1} + x``.

    Spectrally the residual-accumulated basis spans the same space as the
    monomial one (``b_k(λ) = Σ_{j≤k}(1−λ)^j``), but the explicit residual
    changes the optimization geometry: weights on later bases keep mixing
    the raw signal back in, which counteracts over-smoothing. The extra
    live term gives the O(2nF) memory row of Table 1.
    """

    name = "horner"
    category = "variable"
    memory_complexity = "O(2nF)"

    def default_coefficients(self) -> np.ndarray:
        return np.full(self.num_hops + 1, 1.0 / (self.num_hops + 1), dtype=np.float32)

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from plan.chain_bases(ctx, x, "horner", (), self.num_hops + 1)


class ChebyshevFilter(SpectralFilter):
    """ChebNet/ChebBase: first-kind Chebyshev basis on ``L̂ = L̃ − I``.

    ``T_0 = I, T_1 = L̂, T_k = 2 L̂ T_{k−1} − T_{k−2}``; the basis values are
    ``cos(k·arccos(λ−1))``, bounded in [−1, 1].
    """

    name = "chebyshev"
    category = "variable"
    memory_complexity = "O(2nF)"

    def default_coefficients(self) -> np.ndarray:
        theta = np.zeros(self.num_hops + 1, dtype=np.float32)
        theta[0] = 1.0
        if self.num_hops >= 1:
            theta[1] = -1.0  # T0 − T1 = 2 − λ: linear low-pass start
        return theta

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from plan.chain_bases(ctx, x, "chebyshev", (), self.num_hops + 1)


def chebyshev_nodes(order: int) -> np.ndarray:
    """Chebyshev nodes ``x_κ = cos((κ + 1/2)π / (K+1))`` of ``T_{K+1}``."""
    kappa = np.arange(order + 1)
    return np.cos((kappa + 0.5) * np.pi / (order + 1))


class ChebInterpFilter(ChebyshevFilter):
    """ChebNetII: parameters live at Chebyshev nodes, not on the basis.

    The learnable vector θ holds target responses at the K+1 Chebyshev
    nodes; the basis weights are the interpolation
    ``w_k = (2/(K+1)) Σ_κ θ_κ T_k(x_κ)`` (k = 0 halved). This reparameterizes
    the same space with implicit smoothing — the paper's O(K²nF) extra
    term is this transform.
    """

    name = "chebinterp"
    category = "variable"
    time_complexity = "O(KmF + K^2 nF)"
    memory_complexity = "O(2nF)"

    def default_coefficients(self) -> np.ndarray:
        # Initialize the node responses to a linear low-pass: g(λ) = 1 − λ/2
        # evaluated at λ = x_κ + 1.
        nodes = chebyshev_nodes(self.num_hops)
        return ((1.0 - nodes) / 2.0).astype(np.float32)

    def coefficient_transform(self) -> np.ndarray:
        nodes = chebyshev_nodes(self.num_hops)
        k = np.arange(self.num_hops + 1)[:, None]
        transform = np.cos(k * np.arccos(nodes[None, :]))  # T_k(x_κ)
        transform *= 2.0 / (self.num_hops + 1)
        transform[0] *= 0.5
        return transform.astype(np.float64)


class ClenshawFilter(SpectralFilter):
    """ClenshawGCN: second-kind Chebyshev basis ``U_k(λ − 1)``.

    ``U_0 = I, U_1 = 2L̂, U_k = 2L̂U_{k−1} − U_{k−2}``; magnitudes grow
    linearly at the interval ends, giving the stronger high-frequency
    emphasis the paper observes, at an O(3nF) live-term cost.
    """

    name = "clenshaw"
    category = "variable"
    memory_complexity = "O(3nF)"

    def default_coefficients(self) -> np.ndarray:
        theta = np.zeros(self.num_hops + 1, dtype=np.float32)
        theta[0] = 1.0
        return theta

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from plan.chain_bases(ctx, x, "clenshaw", (), self.num_hops + 1)


class BernsteinFilter(SpectralFilter):
    """BernNet: Bernstein basis ``C(K,k) 2^{-K} (2I−L̃)^{K−k} L̃^k``.

    The only O(K²mF) filter in the taxonomy: every basis term needs its own
    chain of (2I − L̃) applications on top of the stored L̃-powers. Each
    basis value is the Bernstein polynomial ``b_{k,K}(λ/2)``, non-negative
    and partitioning unity — so flat θ means an all-pass filter and θ is
    directly interpretable as the response at λ ≈ 2k/K.
    """

    name = "bernstein"
    category = "variable"
    time_complexity = "O(K^2 mF)"

    def default_coefficients(self) -> np.ndarray:
        # Linear low-pass ramp: response ≈ 1 − λ/2 at the Bernstein anchors.
        k = np.arange(self.num_hops + 1, dtype=np.float32)
        return 1.0 - k / max(self.num_hops, 1)

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        from math import comb

        # Stage 1: Laplacian powers l_k = L̃^k x (K extra live arrays) —
        # the same chain FBGNN/ACMGNN/AdaGNN precompute, so shared.
        powers: List[Signal] = list(
            monomial_bases(ctx, x, self.num_hops + 1, operator="lap"))
        # Stage 2: (K−k) applications of (2I − L̃) = I + Ã per term.
        scale = 0.5 ** self.num_hops
        for k in range(self.num_hops + 1):
            term = powers[k]
            for _ in range(self.num_hops - k):
                term = term + ctx.adj(term)
            yield term * float(comb(self.num_hops, k) * scale)


class LegendreFilter(SpectralFilter):
    """LegendreNet: Legendre basis ``P_k(λ − 1)`` via three-term recurrence.

    ``P_k = ((2k−1)/k) L̂ P_{k−1} − ((k−1)/k) P_{k−2}`` on the shifted
    operator, orthogonal over the spectrum interval [0, 2].
    """

    name = "legendre"
    category = "variable"
    memory_complexity = "O(2nF)"

    def default_coefficients(self) -> np.ndarray:
        theta = np.zeros(self.num_hops + 1, dtype=np.float32)
        theta[0] = 1.0
        if self.num_hops >= 1:
            theta[1] = -1.0
        return theta

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from plan.chain_bases(ctx, x, "legendre", (), self.num_hops + 1)


class JacobiFilter(SpectralFilter):
    """JacobiConv: Jacobi basis ``P_k^{(a,b)}(1 − λ)`` with shape HPs a, b.

    Chebyshev (a = b = −1/2) and Legendre (a = b = 0) are special cases;
    tuning (a, b) tilts the basis weight toward either end of the spectrum.
    Recurrence follows Wang & Zhang (2022), Appendix B of the paper.
    """

    name = "jacobi"
    category = "variable"
    memory_complexity = "O(2nF)"

    def __init__(self, num_hops: int = 10, a: float = 1.0, b: float = 1.0):
        super().__init__(num_hops)
        self.a = float(a)
        self.b = float(b)

    def default_coefficients(self) -> np.ndarray:
        theta = np.zeros(self.num_hops + 1, dtype=np.float32)
        theta[0] = 1.0
        if self.num_hops >= 1:
            theta[1] = 0.5
        return theta

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from plan.chain_bases(ctx, x, "jacobi", (self.a, self.b),
                                    self.num_hops + 1)

    def hyperparameters(self) -> Dict[str, float]:
        return {"a": self.a, "b": self.b}


def _shift_matrix(size: int) -> np.ndarray:
    """Matrix S with S@c = coefficients of Ã·p when c holds those of p."""
    shift = np.zeros((size, size), dtype=np.float32)
    for i in range(1, size):
        shift[i, i - 1] = 1.0
    return shift


class FavardFilter(SpectralFilter):
    """FavardGNN: the basis itself is learned through Favard's theorem.

    A three-term recurrence with learnable per-hop parameters
    ``√α_k > 0`` and ``β_k`` spans every orthonormal polynomial basis:

        T_k = (Ã T_{k−1} − β_k T_{k−1} − √α_{k−1} T_{k−2}) / √α_k

    Because each T_k is a degree-k polynomial in Ã, we run the recurrence on
    *coefficient vectors over the monomial basis* (a (K+1)² triangular
    computation) and apply the result to precomputed hop features — one
    implementation that serves full-batch autodiff, mini-batch precompute,
    and spectral response alike, at the O(KnF + KmF) cost in Table 1.
    Positivity of α is enforced with a softplus.
    """

    name = "favard"
    category = "variable"
    time_complexity = "O(KmF + KnF)"
    memory_complexity = "O(2nF)"

    def parameter_spec(self) -> Dict[str, ParamSpec]:
        size = self.num_hops + 1
        theta = self.default_coefficients()
        # softplus(0.5413) ≈ 1 → α starts at 1 (plain monomial recurrence).
        alpha_raw = np.full(size, 0.5413, dtype=np.float32)
        beta = np.zeros(size, dtype=np.float32)
        return {
            "theta": ParamSpec(theta.shape, theta),
            "alpha_raw": ParamSpec(alpha_raw.shape, alpha_raw),
            "beta": ParamSpec(beta.shape, beta),
        }

    def default_coefficients(self) -> np.ndarray:
        theta = np.zeros(self.num_hops + 1, dtype=np.float32)
        theta[0] = 1.0
        if self.num_hops >= 1:
            theta[1] = 0.5
        return theta

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        yield from monomial_bases(ctx, x, self.num_hops + 1, operator="adj")

    def _resolve_coefficients(self, params: Optional[Dict]):
        if not params:
            raise FilterError("Favard filter requires theta/alpha_raw/beta parameters")
        theta = params["theta"]
        alpha = _softplus(params["alpha_raw"])
        beta = params["beta"]
        basis_rows = self._recurrence_rows(alpha, beta)
        # c_j = Σ_k θ_k · rows[k][j]: combined weights over monomial hops.
        if isinstance(theta, Tensor):
            rows = stack(basis_rows, axis=0)  # (K+1, K+1)
            return (rows * theta.reshape(theta.shape[0], 1)).sum(axis=0)
        rows_np = np.stack(basis_rows, axis=0)
        return rows_np.T @ np.asarray(theta)

    def _recurrence_rows(self, alpha, beta) -> List:
        """Rows r_k: monomial coefficients of T_k, built by the recurrence."""
        size = self.num_hops + 1
        shift = _shift_matrix(size)
        is_tensor = isinstance(alpha, Tensor)
        if is_tensor:
            shift_t = Tensor(shift)
            e0 = Tensor(np.eye(size, dtype=np.float32)[0])
        else:
            e0 = np.eye(size, dtype=np.float32)[0]
        sqrt_alpha = _sqrt(alpha + 1e-6)
        rows: List = [e0 / sqrt_alpha[0]]
        for k in range(1, size):
            prev = rows[k - 1]
            shifted = (shift_t @ prev) if is_tensor else (shift @ prev)
            term = shifted - prev * beta[k]
            if k >= 2:
                term = term - rows[k - 2] * sqrt_alpha[k - 1]
            rows.append(term / sqrt_alpha[k])
        return rows


class OptBasisFilter(SpectralFilter):
    """OptBasisGNN: per-channel basis orthonormalized against the signal.

    A Lanczos-style three-term recurrence whose β/γ coefficients come from
    inner products with the current signal, yielding (per feature channel)
    the polynomial basis that is orthonormal under the signal's spectral
    density — optimal for the denoising objective. The basis has no
    trainable parameters inside, so it precomputes for mini-batch exactly
    like a fixed basis; only θ is learned.

    The frequency response is signal-dependent: :meth:`response` replays
    the recurrence coefficients recorded during the most recent
    propagation (channel-averaged), or falls back to the initialization
    state's Chebyshev-like shape if the filter has not been run.
    """

    name = "optbasis"
    category = "variable"
    time_complexity = "O(KmF + KnF^2)"
    memory_complexity = "O(2nF)"

    def __init__(self, num_hops: int = 10):
        super().__init__(num_hops)
        self._last_beta: Optional[np.ndarray] = None
        self._last_gamma: Optional[np.ndarray] = None

    def default_coefficients(self) -> np.ndarray:
        theta = np.zeros(self.num_hops + 1, dtype=np.float32)
        theta[0] = 1.0
        return theta

    def _bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        if ctx.is_spectral:
            yield from self._spectral_bases(ctx, x)
            return
        yield from self._orthonormal_bases(ctx, x)

    def _orthonormal_bases(self, ctx: Context, x: Signal) -> Iterator[Signal]:
        eps = 1e-8
        data = x.data if isinstance(x, Tensor) else x
        if data.ndim != 2:
            raise FilterError("OptBasis requires a 2-D (n, F) signal")
        betas = np.zeros((self.num_hops + 1,), dtype=np.float64)
        gammas = np.ones((self.num_hops + 1,), dtype=np.float64)

        def col_norm(v):
            if isinstance(v, Tensor):
                return ((v * v).sum(axis=0, keepdims=True) + eps).sqrt()
            return np.sqrt((v * v).sum(axis=0, keepdims=True) + eps)

        def col_dot(u, v):
            if isinstance(u, Tensor):
                return (u * v).sum(axis=0, keepdims=True)
            return (u * v).sum(axis=0, keepdims=True)

        norm0 = col_norm(x)
        h_prev = x / norm0
        h_prev_prev = None
        gamma_prev = None
        yield h_prev
        for k in range(1, self.num_hops + 1):
            v = ctx.adj(h_prev)
            beta = col_dot(v, h_prev)
            v = v - h_prev * beta
            if h_prev_prev is not None:
                v = v - h_prev_prev * gamma_prev
            gamma = col_norm(v)
            h = v / gamma
            betas[k - 1] = float(np.mean(beta.data if isinstance(beta, Tensor) else beta))
            gammas[k] = float(np.mean(gamma.data if isinstance(gamma, Tensor) else gamma))
            yield h
            h_prev_prev, h_prev, gamma_prev = h_prev, h, gamma
        self._last_beta = betas
        self._last_gamma = gammas

    def _spectral_bases(self, ctx: Context, x: np.ndarray) -> Iterator[np.ndarray]:
        """Replay channel-averaged recurrence coefficients on the λ grid."""
        if self._last_beta is None:
            # Not yet propagated: report the Chebyshev-like default shape.
            prev_prev = x
            yield prev_prev
            if self.num_hops == 0:
                return
            prev = -ctx.adj(x)
            yield prev
            for _ in range(self.num_hops - 1):
                current = -ctx.adj(prev) * 2.0 - prev_prev
                yield current
                prev_prev, prev = prev, current
            return
        h_prev = x
        h_prev_prev = None
        yield h_prev
        for k in range(1, self.num_hops + 1):
            v = ctx.adj(h_prev) - self._last_beta[k - 1] * h_prev
            if h_prev_prev is not None:
                v = v - self._last_gamma[k - 1] * h_prev_prev
            h = v / self._last_gamma[k]
            yield h
            h_prev_prev, h_prev = h_prev, h


VARIABLE_FILTERS = (
    LinearVariableFilter,
    MonomialVariableFilter,
    HornerFilter,
    ChebyshevFilter,
    ChebInterpFilter,
    ClenshawFilter,
    BernsteinFilter,
    LegendreFilter,
    JacobiFilter,
    FavardFilter,
    OptBasisFilter,
)
