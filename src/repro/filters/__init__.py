"""Spectral graph filters: the paper's Table 1 taxonomy, unified.

27 filters across three categories, each usable under full-batch training
(gradients through propagation), mini-batch precompute, and exact spectral
response analysis — from a single basis-recurrence definition.
"""

from .bank import (
    ACMGNNFilter,
    AdaGNNFilter,
    FAGNNFilter,
    FBGNNFilter,
    FiGUReFilter,
    FilterBank,
    G2CNFilter,
    GNNLFHFFilter,
)
from .base import (
    ParamSpec,
    PropagationContext,
    SpectralContext,
    SpectralFilter,
)
from .approx import (
    approximate_precompute,
    approximation_error,
    last_pruning_stats,
)
from .design import basis_matrix, design_error, fit_filter_to_response
from .fixed import (
    GaussianFilter,
    HeatKernelFilter,
    IdentityFilter,
    ImpulseFilter,
    LinearFilter,
    MonomialFilter,
    PPRFilter,
)
from .registry import (
    BANK_NAMES,
    FILTER_NAMES,
    FIXED_NAMES,
    REGISTRY,
    VARIABLE_NAMES,
    FilterEntry,
    make_filter,
    taxonomy_table,
)
from .wavelets import WaveletFilterBank, dyadic_scales, scaling_kernel, wavelet_kernel
from .variable import (
    BernsteinFilter,
    ChebInterpFilter,
    ChebyshevFilter,
    ClenshawFilter,
    FavardFilter,
    HornerFilter,
    JacobiFilter,
    LegendreFilter,
    LinearVariableFilter,
    MonomialVariableFilter,
    OptBasisFilter,
)

__all__ = [
    "SpectralFilter",
    "ParamSpec",
    "PropagationContext",
    "SpectralContext",
    "make_filter",
    "taxonomy_table",
    "fit_filter_to_response",
    "design_error",
    "basis_matrix",
    "approximate_precompute",
    "approximation_error",
    "last_pruning_stats",
    "FilterEntry",
    "REGISTRY",
    "FILTER_NAMES",
    "FIXED_NAMES",
    "VARIABLE_NAMES",
    "BANK_NAMES",
    "IdentityFilter",
    "LinearFilter",
    "ImpulseFilter",
    "MonomialFilter",
    "PPRFilter",
    "HeatKernelFilter",
    "GaussianFilter",
    "LinearVariableFilter",
    "MonomialVariableFilter",
    "HornerFilter",
    "ChebyshevFilter",
    "ChebInterpFilter",
    "ClenshawFilter",
    "BernsteinFilter",
    "LegendreFilter",
    "JacobiFilter",
    "FavardFilter",
    "OptBasisFilter",
    "FilterBank",
    "AdaGNNFilter",
    "FBGNNFilter",
    "ACMGNNFilter",
    "FAGNNFilter",
    "G2CNFilter",
    "GNNLFHFFilter",
    "FiGUReFilter",
    "WaveletFilterBank",
    "dyadic_scales",
    "scaling_kernel",
    "wavelet_kernel",
]
