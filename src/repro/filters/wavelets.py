"""Spectral graph wavelets (SGWT): multi-scale band-pass filter banks.

Appendix A.3 lists wavelet-transform models (GWNN and kin) among the
"alternative spectral filters" the benchmark's polynomial framework can
express but its artifact does not ship. This module builds them from parts
the library already has: the classical SGWT construction (Hammond,
Vandergheynst & Gribonval 2011) defines a scaling (low-pass) kernel and J
dyadically-scaled band-pass kernels

    h(λ) = exp(−(λ/(0.3·λ_max))⁴),     g_s(λ) = w(s·λ),

with ``w`` a band-shaped bump; each kernel is fit onto a Chebyshev basis
by the closed-form designer (:mod:`repro.filters.design`) — exactly how
the original SGWT evaluates wavelets without eigendecomposition — and the
result is a standard :class:`~repro.filters.bank.FilterBank` that plugs
into every training scheme and analysis path of the benchmark.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..errors import FilterError
from .bank import FilterBank
from .design import fit_filter_to_response
from .variable import ChebyshevFilter


def scaling_kernel(lam: np.ndarray, lambda_max: float = 2.0) -> np.ndarray:
    """SGWT low-pass scaling function ``exp(−(λ/0.3λ_max)⁴)``."""
    return np.exp(-((np.asarray(lam, dtype=np.float64)
                     / (0.3 * lambda_max)) ** 4))


def wavelet_kernel(lam: np.ndarray, scale: float) -> np.ndarray:
    """Band-pass bump ``w(sλ)`` with w peaking at 1: the SGWT cubic-spline
    shape approximated by ``(sλ)² · exp(1 − (sλ)²)`` (max 1 at sλ = 1)."""
    x = scale * np.asarray(lam, dtype=np.float64)
    return (x ** 2) * np.exp(1.0 - x ** 2)


def dyadic_scales(num_scales: int, lambda_max: float = 2.0) -> np.ndarray:
    """Scales placing band centres log-uniformly across (0, λ_max]."""
    if num_scales < 1:
        raise FilterError(f"num_scales must be >= 1, got {num_scales}")
    # Centre of g_s is at λ = 1/s; spread centres from λ_max down to
    # λ_max / 2^(J−1).
    centres = lambda_max / (2.0 ** np.arange(num_scales))
    return 1.0 / centres


class _DesignedChebyshevChannel(ChebyshevFilter):
    """A Chebyshev filter frozen at designer-fit coefficients.

    Behaves as a *fixed* filter (the wavelet frame is not trained), so the
    bank combines each channel during precompute — O(QnF) memory, as a
    wavelet transform should be.
    """

    name = "designed_cheb"
    category = "fixed"

    def __init__(self, num_hops: int, kernel: Callable[[np.ndarray], np.ndarray]):
        super().__init__(num_hops)
        self._kernel = kernel
        params = fit_filter_to_response(
            ChebyshevFilter(num_hops), kernel,
            grid=np.linspace(0.0, 2.0, 4 * (num_hops + 1)))
        self._coefficients = params["theta"].astype(np.float64)

    def fixed_coefficients(self) -> np.ndarray:
        return self._coefficients

    def parameter_spec(self) -> dict:
        return {}

    def design_residual(self) -> float:
        """RMS error of the Chebyshev fit to the ideal kernel."""
        grid = np.linspace(0.0, 2.0, 101)
        achieved = self.response(grid)
        return float(np.sqrt(np.mean((achieved - self._kernel(grid)) ** 2)))


class WaveletFilterBank(FilterBank):
    """SGWT frame as a filter bank: scaling channel + J wavelet channels.

    Parameters
    ----------
    num_scales:
        Number of band-pass channels J.
    num_hops:
        Chebyshev order per channel (the SGWT's polynomial degree).
    fusion:
        ``"concat"`` (the wavelet transform proper: all sub-bands kept,
        default) or ``"sum"`` with learnable γ (a learnable multi-band
        filter).
    """

    name = "wavelet"

    def __init__(self, num_scales: int = 3, num_hops: int = 10,
                 fusion: str = "concat"):
        scales = dyadic_scales(num_scales)
        channels: List = [
            _DesignedChebyshevChannel(num_hops, scaling_kernel)
        ]
        for scale in scales:
            channels.append(_DesignedChebyshevChannel(
                num_hops, lambda lam, s=scale: wavelet_kernel(lam, s)))
        super().__init__(channels=channels, fusion=fusion, num_hops=num_hops)
        self.scales = scales

    def frame_bounds(self, num_points: int = 201) -> tuple:
        """(A, B) of the frame ``A ≤ Σ_q g_q(λ)² ≤ B`` over the spectrum.

        A well-conditioned frame (B/A small) loses no signal information —
        the wavelet analogue of an all-pass filter bank.
        """
        grid = np.linspace(0.0, 2.0, num_points)
        total = np.zeros_like(grid)
        for channel in self.channels:
            total += channel.response(grid) ** 2
        return float(total.min()), float(total.max())
