"""Approximate propagation: thresholded hop pruning (the AGP/Unifews line).

Several models in Table 1 (AGP, GRAND+, SCARA) owe their scalability to
*approximate* graph propagation: entries whose residual mass falls below a
threshold are dropped mid-propagation, trading a bounded error for a large
reduction in touched edges. This module implements the vectorized form of
that idea for the mini-batch precompute stage:

after every hop, representation entries smaller than
``threshold × ‖column‖∞`` are zeroed and the matrix is kept sparse, so
subsequent hops only propagate the surviving mass. With coefficient-decay
filters (PPR, HK) the induced output error is bounded by the truncated
mass — checked empirically in the tests and swept in the ablation bench.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import FilterError
from ..graph.graph import Graph
from .base import SpectralFilter


def approximate_precompute(
    filter_: SpectralFilter,
    graph: Graph,
    x: np.ndarray,
    threshold: float = 1e-3,
    rho: float = 0.5,
) -> np.ndarray:
    """AGP-style precompute: per-hop entry pruning during propagation.

    Only fixed filters over the adjacency-monomial basis qualify (their
    coefficients decay, so dropped residual mass cannot re-amplify);
    variable filters need exact bases for θ to stay meaningful.

    Returns channels shaped like :meth:`SpectralFilter.precompute`
    (``(n, 1, F)``) plus the pruning statistics via
    :func:`last_pruning_stats`.
    """
    if not getattr(filter_, "adjacency_monomial_basis", False):
        raise FilterError(
            "approximate propagation requires a fixed filter over the "
            "adjacency-monomial basis (Identity/Linear/Impulse/Monomial/"
            "PPR/HK); other bases need exact propagation"
        )
    if not 0.0 <= threshold < 1.0:
        raise FilterError(f"threshold must be in [0, 1), got {threshold}")
    coefficients = filter_.fixed_coefficients()
    adjacency = graph.normalized_adjacency(rho)
    x = np.asarray(x, dtype=np.float32)

    current = sp.csr_matrix(x)
    output = np.zeros_like(x, dtype=np.float64)
    kept_entries = 0
    total_entries = 0
    output += float(coefficients[0]) * x
    for k in range(1, len(coefficients)):
        current = adjacency @ current
        current = _prune(current, threshold)
        kept_entries += current.nnz
        total_entries += current.shape[0] * current.shape[1]
        output += float(coefficients[k]) * np.asarray(current.todense())
    global _LAST_STATS
    _LAST_STATS = {
        "threshold": threshold,
        "density": kept_entries / max(total_entries, 1),
        "hops": len(coefficients) - 1,
    }
    return output.astype(np.float32)[:, None, :]


_LAST_STATS: Optional[dict] = None


def last_pruning_stats() -> Optional[dict]:
    """Statistics of the most recent :func:`approximate_precompute` call."""
    return _LAST_STATS


def _prune(matrix: sp.csr_matrix, threshold: float) -> sp.csr_matrix:
    """Zero entries below ``threshold`` of the per-column max magnitude."""
    if threshold <= 0.0 or matrix.nnz == 0:
        return matrix
    dense_max = np.abs(matrix).max(axis=0).toarray().ravel()
    cutoff = threshold * np.maximum(dense_max, 1e-30)
    coo = matrix.tocoo()
    keep = np.abs(coo.data) >= cutoff[coo.col]
    pruned = sp.csr_matrix(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=matrix.shape)
    return pruned


def approximation_error(
    filter_: SpectralFilter,
    graph: Graph,
    x: np.ndarray,
    threshold: float,
    rho: float = 0.5,
) -> float:
    """Relative L2 error of the approximate vs exact filter output."""
    exact = filter_.precompute(graph, x, rho=rho)
    approximate = approximate_precompute(filter_, graph, x,
                                         threshold=threshold, rho=rho)
    denominator = max(float(np.linalg.norm(exact)), 1e-12)
    return float(np.linalg.norm(exact - approximate)) / denominator
