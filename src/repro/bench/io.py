"""Persisting experiment results: numpy-safe JSON round trips.

Benchmark sweeps are minutes long; this module lets the CLI and notebooks
save experiment rows and reload them for later comparison against the
paper (EXPERIMENTS.md workflow).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

import numpy as np

from ..errors import ReproError

PathLike = Union[str, Path]


def _jsonify(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ReproError(f"cannot serialize value of type {type(value).__name__}")


def _unjsonify(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        return {k: _unjsonify(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unjsonify(v) for v in value]
    return value


def save_rows(rows: Sequence[Mapping], path: PathLike,
              metadata: Mapping | None = None) -> None:
    """Write experiment rows (plus optional metadata) as JSON."""
    payload = {
        "metadata": _jsonify(dict(metadata or {})),
        "rows": [_jsonify(dict(row)) for row in rows],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_rows(path: PathLike) -> List[Dict]:
    """Read rows written by :func:`save_rows`."""
    payload = json.loads(Path(path).read_text())
    if "rows" not in payload:
        raise ReproError(f"{path} is not a saved experiment file")
    return [_unjsonify(row) for row in payload["rows"]]


def load_metadata(path: PathLike) -> Dict:
    """Read the metadata block of a saved experiment file."""
    payload = json.loads(Path(path).read_text())
    return _unjsonify(payload.get("metadata", {}))
