"""Persisting experiment results: numpy-safe JSON round trips.

Benchmark sweeps are minutes long; this module lets the CLI and notebooks
save experiment rows and reload them for later comparison against the
paper (EXPERIMENTS.md workflow).

Every result file gets a reproducibility sidecar: :func:`save_rows`
writes a ``<name>.manifest.json`` run manifest (config, seed, git SHA,
platform — see :mod:`repro.telemetry.manifest`) next to the rows, so any
saved table row can be traced back to the exact code and configuration
that produced it. JSONL telemetry traces round-trip through
:func:`save_jsonl` / :func:`load_jsonl`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import ReproError
from ..telemetry.manifest import build_manifest, manifest_path_for, write_manifest
from ..telemetry.sinks import load_events

PathLike = Union[str, Path]


def jsonify(value):
    """Numpy-safe JSON encoding of a result value.

    Numpy scalars widen to Python numbers, arrays become tagged
    ``{"__ndarray__": ..., "dtype": ...}`` dicts, tuples become lists.
    This is the one encoding shared by saved result files, JSONL traces,
    and the artifact store (:mod:`repro.runtime.artifacts`) — a value
    that survives :func:`jsonify` → JSON → :func:`unjsonify` compares
    byte-identical under :func:`canonical_payload`, which is the
    resumable-sweep correctness contract. Raises
    :class:`~repro.errors.ReproError` for unserializable types.
    """
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ReproError(f"cannot serialize value of type {type(value).__name__}")


def unjsonify(value):
    """Inverse of :func:`jsonify`: rebuild tagged ndarrays, recurse dicts."""
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        return {k: unjsonify(v) for k, v in value.items()}
    if isinstance(value, list):
        return [unjsonify(v) for v in value]
    return value


#: Backwards-compatible aliases (pre-PR 7 private names).
_jsonify = jsonify
_unjsonify = unjsonify


def save_rows(rows: Sequence[Mapping], path: PathLike,
              metadata: Mapping | None = None,
              manifest: Union[Mapping, None, bool] = True) -> None:
    """Write experiment rows (plus optional metadata) as JSON.

    Parameters
    ----------
    manifest:
        Reproducibility sidecar policy. ``True`` (default) builds a
        minimal manifest (git SHA, platform, the ``metadata`` block) and
        writes it to ``manifest_path_for(path)``; a mapping is written
        as-is; ``False``/``None`` skips the sidecar.
    """
    payload = {
        "metadata": _jsonify(dict(metadata or {})),
        "rows": [_jsonify(dict(row)) for row in rows],
    }
    Path(path).write_text(json.dumps(payload, indent=1))
    if manifest is True:
        manifest = build_manifest(extra={"metadata": dict(metadata or {}),
                                         "num_rows": len(rows)})
    if manifest:
        write_manifest(manifest_path_for(path), manifest)


def load_manifest(path: PathLike) -> Optional[Dict]:
    """Read the manifest sidecar of a result file (None when absent)."""
    sidecar = manifest_path_for(path)
    if not sidecar.exists():
        return None
    return json.loads(sidecar.read_text())


def load_rows(path: PathLike) -> List[Dict]:
    """Read rows written by :func:`save_rows`."""
    payload = json.loads(Path(path).read_text())
    if "rows" not in payload:
        raise ReproError(f"{path} is not a saved experiment file")
    return [_unjsonify(row) for row in payload["rows"]]


def load_metadata(path: PathLike) -> Dict:
    """Read the metadata block of a saved experiment file."""
    payload = json.loads(Path(path).read_text())
    return _unjsonify(payload.get("metadata", {}))


def summarize_rows(rows: Sequence[Mapping]) -> Dict[str, float]:
    """Column means of every finite numeric column across result rows.

    The flat ``name -> mean`` map stored as a run's ``summary`` in the run
    registry (:mod:`repro.telemetry.registry`), so regression thresholds
    can gate on e.g. ``summary.mean`` (accuracy) or
    ``summary.train_s_per_epoch`` without reparsing result files.
    """
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for row in rows:
        for name, value in row.items():
            if isinstance(value, bool) or not isinstance(
                    value, (int, float, np.integer, np.floating)):
                continue
            if not np.isfinite(value):
                continue
            sums[name] = sums.get(name, 0.0) + float(value)
            counts[name] = counts.get(name, 0) + 1
    return {name: sums[name] / counts[name] for name in sorted(sums)}


#: Row keys that measure *this execution* rather than the configuration:
#: wall-clock timings (``*_s``, ``*_s_per_epoch``, ``*seconds*``), host
#: RSS peaks (``ram_bytes`` — :func:`resource.getrusage` is process- and
#: scheduling-dependent), file paths, and timestamps. Everything else in
#: a result row — scores, statuses, graph sizes, modeled device bytes,
#: FLOP counts — is a deterministic function of the configuration and
#: must be identical across worker counts.
_NONDETERMINISTIC_KEY_RE = re.compile(
    r"(_s$|_s_per_epoch$|seconds|_path$|^ram_bytes$|^timestamp)")

#: Telemetry counters that are invariant to caching and scheduling: the
#: engine op counters (every matmul/spmm/elementwise the model executes)
#: plus the pool's completed-cell count. Cache-traffic counters
#: (``cache.*``, ``ops.spmm.transpose_*``, ``ops.eig.*``, ``plan.*``) are
#: excluded — per-process memos legitimately hit/miss differently between
#: serial and parallel execution without perturbing a single result bit.
#: Note ``ops.spmm.calls`` is schedule-invariant only at a fixed planner
#: sharing topology: the basis planner (:mod:`repro.runtime.plan`) shares
#: chains *across* cells in a serial sweep but per-worker in a pool, so
#: the serial≡parallel gate holds it to a *ratio* against the serial
#: count (pooled ≤ 1.25× serial with the shared term store,
#: :mod:`repro.runtime.shm`, closing the cross-worker gap) instead of
#: exact equality — see ``benchmarks/bench_parallel_smoke.py``.
_DETERMINISTIC_COUNTER_RE = re.compile(
    r"^(ops\.(matmul|spmm|ewise)\.(calls|flops|bytes)|pool\.cells\.ok)$")


def canonical_rows(rows: Sequence[Mapping]) -> List[Dict]:
    """Strip execution-dependent fields, keeping the deterministic payload.

    The serial≡parallel gate (``bench-parallel`` CI job) compares sweeps
    run with different ``--workers`` after this normalization: two runs
    of one configuration must agree byte-for-byte on everything left.
    """
    return [
        {key: _jsonify(value) for key, value in row.items()
         if not _NONDETERMINISTIC_KEY_RE.search(key)}
        for row in rows
    ]


def canonical_payload(rows: Sequence[Mapping]) -> bytes:
    """Stable bytes of :func:`canonical_rows` (sorted keys, no whitespace)."""
    return json.dumps(canonical_rows(rows), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def deterministic_counters(counters: Mapping) -> Dict[str, float]:
    """The schedule-invariant subset of a run's telemetry counters.

    Serial and parallel runs of one configuration must agree exactly on
    these (op calls/FLOPs/bytes); see :data:`_DETERMINISTIC_COUNTER_RE`
    for why cache-traffic counters are not held to that standard.
    """
    return {name: value for name, value in sorted(counters.items())
            if _DETERMINISTIC_COUNTER_RE.match(name)}


def save_jsonl(records: Sequence[Mapping], path: PathLike) -> None:
    """Write records as JSON Lines (numpy-safe), one object per line."""
    lines = [json.dumps(_jsonify(dict(record)), separators=(",", ":"),
                        sort_keys=True)
             for record in records]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_jsonl(path: PathLike) -> List[Dict]:
    """Read a JSONL file (e.g. a telemetry trace) into a list of dicts."""
    return [_unjsonify(event) for event in load_events(path)]
