"""Paper-style result formatting.

Turns experiment rows into the exact presentation the paper uses: accuracy
cells like ``86.58±1.96``, ``(OOM)`` markers, time in ms/epoch, and memory
in GB — so a bench run can be compared against the published tables line
by line.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..telemetry.report import render_trace_report, sparkline

GIBIBYTE = 1024 ** 3

__all__ = [
    "format_score_cell",
    "format_memory",
    "format_seconds",
    "render_table",
    "render_run_telemetry",
    "render_trace_report",
    "sparkline",
    "pivot",
]


def format_score_cell(mean: float, std: float, percent: bool = True) -> str:
    """``86.58±1.96`` — the Table 5/10 cell format."""
    factor = 100.0 if percent else 1.0
    return f"{mean * factor:.2f}±{std * factor:.2f}"


def format_memory(nbytes: float) -> str:
    """GB with one decimal, the Figure 2 / Table 9 unit."""
    return f"{nbytes / GIBIBYTE:.2f}GB"


def format_seconds(seconds: float) -> str:
    """Adaptive s/ms formatting for stage timings."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as a monospace table (markdown-pipe style)."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = list(columns or rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    body: List[List[str]] = []
    for row in rows:
        rendered = [_render_value(row.get(c, "")) for c in columns]
        body.append(rendered)
        for column, value in zip(columns, rendered):
            widths[column] = max(widths[column], len(value))
    lines = []
    if title:
        lines.append(f"== {title} ==")
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for rendered in body:
        lines.append(" | ".join(v.ljust(widths[c]) for v, c in zip(rendered, columns)))
    return "\n".join(lines)


def _render_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_run_telemetry(events: Sequence[Mapping], top: int = 8) -> str:
    """Trace summary appended to CLI output when tracing is enabled.

    Thin composition over :func:`repro.telemetry.report.render_trace_report`
    (top spans, per-epoch sparklines, op counters) with a bench-style
    heading, so the trace report reads like the result tables above it.
    """
    return "== telemetry ==\n" + render_trace_report(events, top=top)


def pivot(
    rows: Sequence[Mapping[str, object]],
    index: str,
    column: str,
    value: str,
) -> List[Dict[str, object]]:
    """Pivot long-form rows into a wide table (filters × datasets)."""
    column_values: List[object] = []
    for row in rows:
        if row[column] not in column_values:
            column_values.append(row[column])
    table: Dict[object, Dict[str, object]] = {}
    order: List[object] = []
    for row in rows:
        key = row[index]
        if key not in table:
            table[key] = {index: key}
            order.append(key)
        table[key][str(row[column])] = row[value]
    return [table[key] for key in order]
