"""Command-line entry for the benchmark harness.

Runs any paper-artifact experiment by name and prints its table::

    python -m repro.bench --list
    python -m repro.bench taxonomy
    python -m repro.bench effectiveness --datasets cora roman --epochs 60
    python -m repro.bench efficiency --filters ppr chebyshev --schemes mini_batch
    python -m repro.bench regression --epochs 200

Observability: runs collect telemetry (spans, op counters, per-epoch
metrics) by default. ``--trace PATH`` streams the events to a JSONL file,
writes a run manifest next to it, and appends a trace report to the
output; ``--no-telemetry`` disables collection entirely (the zero-overhead
mode used for timing-sensitive comparisons).

Caching: the sparse-compute cache layer (:mod:`repro.runtime.cache`) is on
by default — spmm-backward transposes and per-graph normalized operators
are memoized, with traffic on the ``cache.spmm_t.*`` / ``cache.norm_adj.*``
counters. ``--no-cache`` bypasses every cache (the baseline mode used to
measure the cache's own FLOP/byte delta with ``ops.spmm.*``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from .. import telemetry
from ..runtime import cache as runtime_cache
from ..training.loop import TrainConfig
from . import experiments
from .report import render_run_telemetry, render_table

#: experiment name -> (runner, paper artifact, accepts-config)
EXPERIMENTS: Dict[str, tuple] = {
    "taxonomy": (experiments.taxonomy_experiment, "Table 1", False),
    "efficiency": (experiments.efficiency_experiment, "Figure 2 / Tables 9+11", True),
    "effectiveness": (experiments.effectiveness_experiment, "Table 5", True),
    "scale-shift": (experiments.scale_shift_experiment, "Figure 3", True),
    "stability": (experiments.stability_experiment, "Figure 4", True),
    "hardware": (experiments.hardware_experiment, "Figure 5", True),
    "baselines": (experiments.baseline_experiment, "Table 6", True),
    "linkpred": (experiments.linkpred_experiment, "Figure 6", True),
    "regression": (experiments.regression_experiment, "Table 7", False),
    "hops": (experiments.hop_sweep_experiment, "Figure 7", True),
    "tsne": (experiments.tsne_experiment, "Figure 8", True),
    "degree-bias": (experiments.degree_bias_experiment, "Figure 9", True),
    "normalization": (experiments.normalization_experiment, "Figure 10", True),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate one of the paper's tables/figures.")
    parser.add_argument("experiment", nargs="?",
                        help=f"one of: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("--datasets", nargs="+", default=None,
                        help="dataset registry names")
    parser.add_argument("--filters", nargs="+", default=None,
                        help="filter registry names")
    parser.add_argument("--schemes", nargs="+", default=None,
                        choices=["full_batch", "mini_batch", "graph_partition"])
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--seeds", nargs="+", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale override")
    parser.add_argument("--capacity-gib", type=float, default=None,
                        help="simulated device capacity (GiB)")
    parser.add_argument("--output", type=str, default=None,
                        help="save rows as JSON to this path")
    parser.add_argument("--trace", type=str, default=None, metavar="PATH",
                        help="stream telemetry events to this JSONL file and "
                             "write a run manifest next to it")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="disable span/metric collection entirely")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the sparse-compute cache layer "
                             "(spmm transpose + normalization memos)")
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        rows = [{"experiment": name, "reproduces": artifact}
                for name, (_, artifact, _) in EXPERIMENTS.items()]
        print(render_table(rows, title="available experiments"))
        return 0

    if args.trace and args.no_telemetry:
        parser.error("--trace requires telemetry; drop --no-telemetry")

    entry = EXPERIMENTS.get(args.experiment)
    if entry is None:
        parser.error(f"unknown experiment {args.experiment!r}; use --list")
    runner, artifact, takes_config = entry

    kwargs = {}
    if args.datasets:
        if args.experiment == "hardware":
            kwargs["dataset_name"] = args.datasets[0]
        else:
            kwargs["dataset_names"] = tuple(args.datasets)
    if args.filters:
        kwargs["filters"] = tuple(args.filters)
    if args.schemes and args.experiment == "efficiency":
        kwargs["schemes"] = tuple(args.schemes)
    if args.seeds and args.experiment in ("effectiveness", "stability",
                                          "scale-shift", "hops",
                                          "degree-bias", "normalization"):
        kwargs["seeds"] = tuple(args.seeds)
    if args.scale is not None and args.experiment in ("efficiency",
                                                      "effectiveness"):
        kwargs["scale_override"] = args.scale
    if args.capacity_gib is not None and args.experiment in ("efficiency",
                                                             "baselines"):
        kwargs["device_capacity_gib"] = args.capacity_gib
    if takes_config and args.epochs is not None:
        kwargs["config"] = TrainConfig(epochs=args.epochs,
                                       patience=max(args.epochs // 2, 1))
    if not takes_config and args.epochs is not None:
        kwargs["epochs"] = args.epochs

    telemetry_on = not args.no_telemetry
    if telemetry_on:
        telemetry.configure(trace_path=args.trace)
    cache_was_enabled = runtime_cache.is_enabled()
    if args.no_cache:
        runtime_cache.set_enabled(False)
        runtime_cache.clear_transpose_cache()
    try:
        with telemetry.span("experiment", experiment=args.experiment,
                            artifact=artifact):
            rows = runner(**kwargs)
    finally:
        events = telemetry.shutdown() if telemetry_on else []
        if args.no_cache:
            runtime_cache.set_enabled(cache_was_enabled)

    printable = [{k: v for k, v in row.items() if k != "embedding"}
                 for row in rows]
    print(render_table(printable, title=f"{args.experiment} ({artifact})"))

    run_manifest = None
    if telemetry_on:
        run_manifest = telemetry.build_manifest(
            config=kwargs.get("config"),
            seed=(args.seeds[0] if args.seeds else None),
            extra={"experiment": args.experiment, "artifact": artifact,
                   "cache": not args.no_cache,
                   "argv": list(argv) if argv is not None else sys.argv[1:]})
    if args.output:
        from .io import save_rows

        save_rows(rows, args.output,
                  metadata={"experiment": args.experiment,
                            "artifact": artifact},
                  manifest=run_manifest if run_manifest is not None else True)
        print(f"saved {len(rows)} rows to {args.output}")
    if args.trace and run_manifest is not None:
        manifest_path = telemetry.manifest_path_for(args.trace)
        telemetry.write_manifest(manifest_path, run_manifest)
        print(f"trace: {args.trace}  manifest: {manifest_path}")
        print(render_run_telemetry(events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
