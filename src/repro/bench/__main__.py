"""Command-line entry for the benchmark harness.

Runs any paper-artifact experiment by name and prints its table::

    python -m repro.bench --list
    python -m repro.bench taxonomy
    python -m repro.bench effectiveness --datasets cora roman --epochs 60
    python -m repro.bench efficiency --filters ppr chebyshev --schemes mini_batch
    python -m repro.bench regression --epochs 200

Observability: runs collect telemetry (spans, op counters, per-epoch
metrics) by default. ``--trace PATH`` streams the events to a JSONL file,
writes a run manifest next to it, and appends a trace report to the
output; ``--no-telemetry`` disables collection entirely (the zero-overhead
mode used for timing-sensitive comparisons). The memory observatory
(:mod:`repro.telemetry.memory`) runs whenever telemetry does: an
allocation ledger accounts every tensor allocation against the open span
path, and its summary — accounted peak, attribution, coverage vs
measured RSS — lands in the trace report and the registry record.
``--mem-trace`` additionally samples the ledger's live-bytes timeline,
which the Chrome trace export renders as a ``ledger_live`` counter track
next to the sampled-RSS track (accounted vs measured memory, side by
side, in Perfetto). Every telemetry-enabled run
is also indexed in the append-only run registry
(:mod:`repro.telemetry.registry`; ``--no-registry`` skips it,
``--registry-dir`` relocates it), which is what powers run history::

    python -m repro.bench compare --registry <config-fingerprint>
    python -m repro.bench compare --registry efficiency --gate
    python -m repro.bench compare baseline.json candidate.json

The first forms resolve the two most recent runs of a configuration from
the registry — no file paths — and diff their stage timings, counters,
and summaries; ``--gate`` additionally evaluates regression thresholds
(:mod:`repro.telemetry.regression`) and exits non-zero on a failure;
``--history N`` switches to a trend report (min/max/last + sparkline per
stage/summary metric over the fingerprint's last N runs).

Caching: the sparse-compute cache layer (:mod:`repro.runtime.cache`) is on
by default — spmm-backward transposes, per-graph normalized operators, and
dense eigenpairs are memoized, with traffic on the ``cache.spmm_t.*`` /
``cache.norm_adj.*`` / ``cache.eig.*`` counters. ``--no-cache`` bypasses
every cache (the baseline mode used to measure the cache's own FLOP/byte
delta with ``ops.spmm.*`` / ``ops.eig.*``). The basis planner
(:mod:`repro.runtime.plan`) additionally dedups polynomial basis chains
*across* the filters of a sweep (``plan.terms.*`` / ``plan.spmm_avoided``
counters) without changing a single result bit; ``--no-plan`` bypasses
just the planner, and ``--no-cache`` implies it.

Parallelism: the grid sweeps (``efficiency``, ``effectiveness``, ``hops``,
``scale-shift``)
accept ``--workers N`` to fan their dataset×filter cells out to a process
pool (:mod:`repro.runtime.pool`) with per-cell ``--cell-timeout`` and
``--max-retries`` crash isolation. Results are bit-identical to a serial
run (deterministic seeds, grid-order reassembly) and worker telemetry
shards are folded into the parent run, so ``--trace`` and the registry
record one coherent run annotated with the worker count::

    python -m repro.bench efficiency --workers 4 --cell-timeout 600

Live observability (grid sweeps): ``--watch`` renders a one-line live
status while the sweep runs; ``--live PATH`` streams worker heartbeats,
sampled RSS watermarks, and stall flags (silent for ``--stall-fraction``
of the cell timeout, flagged *before* the kill) to a JSONL file and
exports a Perfetto-loadable Chrome trace next to it after the run. Live
events are observability only — they never enter the canonical result
payload, so the serial≡parallel byte-identity gate is unaffected::

    python -m repro.bench efficiency --workers 4 --cell-timeout 600 \\
        --watch --live benchmarks/results/live.jsonl

Resumable sweeps (grid sweeps): ``--resume`` consults the
content-addressed cell artifact store (:mod:`repro.runtime.artifacts`)
before launching any worker — cells whose address (config fingerprint,
grid coordinates, derived seed, code rev) matches a stored result are
served from disk, only the remainder executes, and every successful cell
persists back; ``--fresh`` purges the store first and repopulates it;
``--artifact-dir`` relocates it (default ``$REPRO_ARTIFACT_DIR`` or
``benchmarks/results/artifacts``). A resumed run's canonical payload is
byte-identical to an uninterrupted one (the ``bench-resume`` CI gate),
and the registry record (schema v4) carries the store's hit/miss
accounting outside the config fingerprint::

    python -m repro.bench efficiency --workers 4 --resume
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import Dict

from .. import telemetry
from ..runtime import blocked as runtime_blocked
from ..runtime import cache as runtime_cache
from ..runtime import plan as runtime_plan
from ..runtime import pool as runtime_pool
from ..runtime import shm as runtime_shm
from ..runtime.pool import PoolConfig
from ..training.loop import TrainConfig
from . import experiments
from .report import render_run_telemetry, render_table

#: experiment name -> (runner, paper artifact, accepts-config)
EXPERIMENTS: Dict[str, tuple] = {
    "taxonomy": (experiments.taxonomy_experiment, "Table 1", False),
    "efficiency": (experiments.efficiency_experiment, "Figure 2 / Tables 9+11", True),
    "effectiveness": (experiments.effectiveness_experiment, "Table 5", True),
    "scale-shift": (experiments.scale_shift_experiment, "Figure 3", True),
    "stability": (experiments.stability_experiment, "Figure 4", True),
    "hardware": (experiments.hardware_experiment, "Figure 5", True),
    "baselines": (experiments.baseline_experiment, "Table 6", True),
    "linkpred": (experiments.linkpred_experiment, "Figure 6", True),
    "regression": (experiments.regression_experiment, "Table 7", False),
    "hops": (experiments.hop_sweep_experiment, "Figure 7", True),
    "tsne": (experiments.tsne_experiment, "Figure 8", True),
    "degree-bias": (experiments.degree_bias_experiment, "Figure 9", True),
    "normalization": (experiments.normalization_experiment, "Figure 10", True),
}

#: Experiments whose grids run through the process-pool executor.
POOLED_EXPERIMENTS = ("efficiency", "effectiveness", "hops", "scale-shift")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate one of the paper's tables/figures.")
    parser.add_argument("experiment", nargs="?",
                        help=f"one of: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("--datasets", nargs="+", default=None,
                        help="dataset registry names")
    parser.add_argument("--filters", nargs="+", default=None,
                        help="filter registry names")
    parser.add_argument("--schemes", nargs="+", default=None,
                        choices=["full_batch", "mini_batch", "graph_partition"])
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--seeds", nargs="+", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale override (validated against the "
                             "synthesizer's supported range at parse time)")
    parser.add_argument("--blocked", action="store_true",
                        help="run propagation through the out-of-core "
                             "blocked tier: row-tiled CSR spmm sized to the "
                             "RAM budget, and planner terms that spill to "
                             "mmap-backed files instead of being recomputed "
                             "(bit-identical to the in-core path; serial "
                             "runs only)")
    parser.add_argument("--ram-budget", type=float, default=None,
                        metavar="MIB",
                        help="RAM budget of the blocked tier in MiB "
                             "(default: current RSS, floored at 64 MiB); "
                             "requires --blocked")
    parser.add_argument("--spill-dir", type=str, default=None, metavar="DIR",
                        help="directory for spilled term matrices (default: "
                             "a private temp dir removed after the run); "
                             "requires --blocked")
    parser.add_argument("--capacity-gib", type=float, default=None,
                        help="simulated device capacity (GiB)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="process-pool size for the grid sweeps "
                             f"({', '.join(POOLED_EXPERIMENTS)}); 1 = "
                             "serial in-process execution (default)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell wall-clock budget; a timed-out "
                             "worker is terminated and the cell retried "
                             "(pool mode only)")
    parser.add_argument("--max-retries", type=int, default=1, metavar="K",
                        help="extra attempts for a crashed/timed-out cell "
                             "before it is reported failed (default 1; "
                             "pool mode only)")
    parser.add_argument("--root-seed", type=int, default=None,
                        help="derive per-cell repeat seeds as "
                             "f(root_seed, dataset, filter, repeat) "
                             "(effectiveness only; default: literal "
                             "--seeds)")
    parser.add_argument("--output", type=str, default=None,
                        help="save rows as JSON to this path")
    parser.add_argument("--trace", type=str, default=None, metavar="PATH",
                        help="stream telemetry events to this JSONL file and "
                             "write a run manifest next to it")
    parser.add_argument("--mem-trace", action="store_true",
                        help="sample the allocation ledger's live-bytes "
                             "timeline during the run; the samples ride the "
                             "final memory event and render as a "
                             "'ledger_live' counter track in the Chrome "
                             "trace (the ledger itself — peaks, totals, "
                             "attribution — is always on with telemetry)")
    parser.add_argument("--watch", action="store_true",
                        help="render a one-line live status of the sweep "
                             "(cells running/ok/failed, stragglers, stalls, "
                             "peak RSS) to stderr while it runs "
                             "(grid sweeps with telemetry only)")
    parser.add_argument("--live", type=str, default=None, metavar="PATH",
                        help="stream live heartbeat/stall/RSS events to this "
                             "JSONL file and export a Perfetto-loadable "
                             "Chrome trace (same stem, .trace.json) after "
                             "the run (grid sweeps with telemetry only)")
    parser.add_argument("--stall-fraction", type=float, default=0.5,
                        metavar="F",
                        help="flag a cell stalled once its heartbeat has "
                             "been silent for F x --cell-timeout, before "
                             "the timeout kill (0 < F < 1, default 0.5)")
    resume_group = parser.add_mutually_exclusive_group()
    resume_group.add_argument(
        "--resume", action="store_true",
        help="serve grid cells already in the artifact store and execute "
             "only the remainder; successful cells persist back "
             "(grid sweeps with telemetry only)")
    resume_group.add_argument(
        "--fresh", action="store_true",
        help="purge the artifact store, run every cell live, and "
             "repopulate it (grid sweeps with telemetry only)")
    parser.add_argument("--artifact-dir", type=str, default=None,
                        metavar="DIR",
                        help="cell artifact-store directory (default: "
                             "$REPRO_ARTIFACT_DIR or "
                             "benchmarks/results/artifacts); requires "
                             "--resume or --fresh")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="disable span/metric collection entirely")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the sparse-compute cache layer "
                             "(spmm transpose + normalization + eig memos); "
                             "implies --no-plan")
    parser.add_argument("--no-plan", action="store_true",
                        help="bypass the basis-term propagation planner "
                             "(every filter streams its own recurrence; "
                             "the baseline mode for measuring "
                             "plan.spmm_avoided)")
    shared_group = parser.add_mutually_exclusive_group()
    shared_group.add_argument(
        "--shared-terms", action="store_true",
        help="require the cross-process shared-memory term store: pool "
             "workers attach planner-served basis chains (and the "
             "spmm-transpose/normalization CSRs) published by their "
             "siblings instead of recomputing them (grid sweeps with "
             "--workers > 1; on by default there — this flag makes a "
             "silently unavailable store an error)")
    shared_group.add_argument(
        "--no-shared-terms", action="store_true",
        help="disable the shared term store; each pool worker recomputes "
             "its own chains (the pre-shm baseline for measuring the "
             "pooled ops.spmm.calls gap)")
    parser.add_argument("--registry-dir", type=str, default=None,
                        metavar="DIR",
                        help="run-registry directory (default: "
                             "$REPRO_REGISTRY_DIR or "
                             "benchmarks/results/registry)")
    parser.add_argument("--no-registry", action="store_true",
                        help="do not index this run in the run registry")
    return parser


def build_compare_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench compare",
        description="Diff two runs: saved result files, or the two most "
                    "recent registry runs of one config fingerprint.")
    parser.add_argument("paths", nargs="*", metavar="RESULT.json",
                        help="baseline and candidate result files "
                             "(omit both when using --registry)")
    parser.add_argument("--registry", type=str, default=None, metavar="SPEC",
                        help="resolve baseline/candidate from the run "
                             "registry by config fingerprint (prefix) or "
                             "experiment name")
    parser.add_argument("--registry-dir", type=str, default=None,
                        metavar="DIR",
                        help="run-registry directory (default: "
                             "$REPRO_REGISTRY_DIR or "
                             "benchmarks/results/registry)")
    parser.add_argument("--history", type=int, default=None, metavar="N",
                        help="registry mode: instead of diffing two runs, "
                             "render one sparkline per stage/headline "
                             "metric over the last N runs of the config")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative regression tolerance for file mode")
    parser.add_argument("--gate", action="store_true",
                        help="evaluate regression thresholds and exit "
                             "non-zero on any failure")
    parser.add_argument("--thresholds", type=str, default=None,
                        metavar="FILE",
                        help="JSON threshold file (default: the pinned "
                             "benchmarks/thresholds/<experiment>.json, "
                             "falling back to the stock stage time/RAM "
                             "thresholds)")
    return parser


def compare_main(argv) -> int:
    """``python -m repro.bench compare ...`` — file or registry mode."""
    parser = build_compare_parser()
    args = parser.parse_args(argv)

    if args.history is not None and args.registry is None:
        parser.error("--history requires --registry SPEC")
    if args.registry is not None:
        if args.paths:
            parser.error("--registry takes no file paths")
        if args.history is not None:
            return _registry_history(args)
        return _compare_registry(args)
    if len(args.paths) != 2:
        parser.error("file mode needs exactly BASELINE and CANDIDATE paths "
                     "(or use --registry SPEC)")
    return _compare_files(args)


def _compare_files(args) -> int:
    from .compare import compare_files

    comparison = compare_files(args.paths[0], args.paths[1])
    print(render_table(comparison.summary_rows(),
                       title=f"compare: {args.paths[0]} -> {args.paths[1]} "
                             f"({comparison.matched} rows matched)"))
    regressions = comparison.regressions(args.tolerance)
    for delta in regressions:
        print(f"REGRESSION {'/'.join(map(str, delta.key))} {delta.metric}: "
              f"{delta.baseline:g} -> {delta.candidate:g} "
              f"({delta.relative:+.1%})")
    if comparison.baseline_only:
        print(f"baseline-only rows: {len(comparison.baseline_only)}")
    if comparison.candidate_only:
        print(f"candidate-only rows: {len(comparison.candidate_only)}")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance")
        return 1 if args.gate else 0
    return 0


def _registry_history(args) -> int:
    from ..errors import ReproError
    from .compare import registry_history

    try:
        latest, rows = registry_history(args.registry, count=args.history,
                                        registry_dir=args.registry_dir)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not rows:
        print(f"config {latest.config_fingerprint}: no numeric stage or "
              "summary metrics recorded yet")
        return 0
    print(f"config {latest.config_fingerprint}  experiment "
          f"{latest.experiment}  latest run {latest.run_id} "
          f"(git {latest.git_sha or '?'})")
    print(render_table(
        rows, title=f"registry history: {args.registry} "
                    f"(last {args.history} runs, oldest -> newest)"))
    return 0


def _compare_registry(args) -> int:
    from ..errors import ReproError
    from ..telemetry.regression import (evaluate_pair, load_thresholds,
                                        pinned_thresholds,
                                        render_verdict_table)
    from ..telemetry.report import render_run_diff
    from ..telemetry.sinks import load_events
    from .compare import compare_registry

    try:
        baseline, candidate, rows = compare_registry(
            args.registry, registry_dir=args.registry_dir)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"config {candidate.config_fingerprint}  "
          f"baseline run {baseline.run_id} "
          f"(git {baseline.git_sha or '?'})  ->  "
          f"candidate run {candidate.run_id} "
          f"(git {candidate.git_sha or '?'})")
    print(render_table(
        rows, title=f"registry diff: {args.registry} "
                    f"(2 most recent of {candidate.config_fingerprint})"))

    trace_paths = (baseline.trace_path, candidate.trace_path)
    if all(p and Path(p).exists() for p in trace_paths):
        print()
        print(render_run_diff(load_events(trace_paths[0]),
                              load_events(trace_paths[1])))

    if args.gate or args.thresholds:
        thresholds = load_thresholds(args.thresholds) if args.thresholds \
            else pinned_thresholds(candidate.experiment)
        verdicts = evaluate_pair(baseline, candidate, thresholds)
        print()
        print(render_verdict_table(verdicts))
        if args.gate and any(v.failed for v in verdicts):
            return 1
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["compare"]:
        return compare_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        rows = [{"experiment": name, "reproduces": artifact}
                for name, (_, artifact, _) in EXPERIMENTS.items()]
        print(render_table(rows, title="available experiments"))
        return 0

    if args.trace and args.no_telemetry:
        parser.error("--trace requires telemetry; drop --no-telemetry")
    if args.mem_trace and args.no_telemetry:
        parser.error("--mem-trace requires telemetry; drop --no-telemetry")

    live_requested = args.watch or args.live is not None
    if live_requested and args.no_telemetry:
        parser.error("--watch/--live require telemetry; drop --no-telemetry")
    if live_requested and args.experiment not in POOLED_EXPERIMENTS:
        parser.error(f"--watch/--live apply to the grid sweeps only "
                     f"({', '.join(POOLED_EXPERIMENTS)})")
    if not 0.0 < args.stall_fraction < 1.0:
        parser.error("--stall-fraction must be strictly between 0 and 1")

    if args.scale is not None:
        from ..datasets.synthesis import validate_scale
        from ..errors import DatasetError

        try:
            validate_scale(args.scale)
        except DatasetError as error:
            parser.error(str(error))

    if args.ram_budget is not None and not args.blocked:
        parser.error("--ram-budget requires --blocked")
    if args.spill_dir is not None and not args.blocked:
        parser.error("--spill-dir requires --blocked")
    if args.ram_budget is not None and args.ram_budget <= 0:
        parser.error("--ram-budget must be a positive MiB count")
    if args.blocked and args.workers > 1:
        parser.error("--blocked is serial-only (the tier scope is "
                     "process-local); drop --workers")

    entry = EXPERIMENTS.get(args.experiment)
    if entry is None:
        parser.error(f"unknown experiment {args.experiment!r}; use --list")
    runner, artifact, takes_config = entry

    kwargs = {}
    if args.datasets:
        if args.experiment == "hardware":
            kwargs["dataset_name"] = args.datasets[0]
        else:
            kwargs["dataset_names"] = tuple(args.datasets)
    if args.filters:
        kwargs["filters"] = tuple(args.filters)
    if args.schemes and args.experiment == "efficiency":
        kwargs["schemes"] = tuple(args.schemes)
    if args.seeds and args.experiment in ("effectiveness", "stability",
                                          "scale-shift", "hops",
                                          "degree-bias", "normalization"):
        kwargs["seeds"] = tuple(args.seeds)
    if args.scale is not None and args.experiment in ("efficiency",
                                                      "effectiveness"):
        kwargs["scale_override"] = args.scale
    if args.capacity_gib is not None and args.experiment in ("efficiency",
                                                             "baselines"):
        kwargs["device_capacity_gib"] = args.capacity_gib
    if takes_config and args.epochs is not None:
        kwargs["config"] = TrainConfig(epochs=args.epochs,
                                       patience=max(args.epochs // 2, 1))
    if not takes_config and args.epochs is not None:
        kwargs["epochs"] = args.epochs

    if args.workers < 1:
        parser.error("--workers must be >= 1")
    pool_requested = (args.workers != 1 or args.cell_timeout is not None
                      or args.max_retries != 1)
    if args.experiment in POOLED_EXPERIMENTS:
        kwargs["pool"] = PoolConfig(workers=args.workers,
                                    cell_timeout=args.cell_timeout,
                                    max_retries=args.max_retries)
    elif pool_requested:
        parser.error(f"--workers/--cell-timeout/--max-retries apply to "
                     f"the grid sweeps only ({', '.join(POOLED_EXPERIMENTS)})")
    if args.root_seed is not None:
        if args.experiment != "effectiveness":
            parser.error("--root-seed applies to effectiveness only")
        kwargs["root_seed"] = args.root_seed

    if args.shared_terms:
        if args.experiment not in POOLED_EXPERIMENTS:
            parser.error(f"--shared-terms applies to the grid sweeps only "
                         f"({', '.join(POOLED_EXPERIMENTS)})")
        if args.workers <= 1:
            parser.error("--shared-terms requires --workers > 1 "
                         "(a serial sweep already shares chains in-process)")
        if args.no_cache:
            parser.error("--shared-terms conflicts with --no-cache "
                         "(the store is part of the cache layer)")
        if not runtime_shm.supported():
            parser.error("--shared-terms requires "
                         "multiprocessing.shared_memory (POSIX)")
    # Default: sharing is ON for pooled grid sweeps — the store is what
    # keeps pooled ops.spmm.calls at serial levels with the planner on.
    # --no-plan only disables *chain* sharing (the planner is the chain
    # producer); the CSR blobs still share.
    shared_terms = (args.experiment in POOLED_EXPERIMENTS
                    and args.workers > 1
                    and not args.no_shared_terms
                    and not args.no_cache
                    and runtime_shm.supported())

    resume_requested = args.resume or args.fresh
    if args.artifact_dir is not None and not resume_requested:
        parser.error("--artifact-dir requires --resume or --fresh")
    if resume_requested and args.no_telemetry:
        parser.error("--resume/--fresh require telemetry; "
                     "drop --no-telemetry")
    if resume_requested and args.experiment not in POOLED_EXPERIMENTS:
        parser.error(f"--resume/--fresh apply to the grid sweeps only "
                     f"({', '.join(POOLED_EXPERIMENTS)})")

    telemetry_on = not args.no_telemetry
    # The manifest is deterministic and fully known pre-run, which is
    # what lets the artifact store address cells with the *same* config
    # fingerprint the registry stamps on the record afterwards (argv/
    # workers/plan/shared_terms live outside the fingerprint keys).
    run_manifest = None
    if telemetry_on:
        run_manifest = telemetry.build_manifest(
            config=kwargs.get("config"),
            seed=(args.seeds[0] if args.seeds else None),
            extra={"experiment": args.experiment, "artifact": artifact,
                   "cache": not args.no_cache, "argv": argv,
                   "workers": args.workers,
                   "plan": not (args.no_plan or args.no_cache),
                   "shared_terms": shared_terms,
                   "blocked": args.blocked,
                   "ram_budget_mib": args.ram_budget})
    span_epoch_wall = None
    if telemetry_on:
        tracer = telemetry.configure(trace_path=args.trace,
                                     mem_trace=args.mem_trace)
        span_epoch_wall = tracer.wall_epoch
    monitor = None
    monitor_scope = contextlib.nullcontext()
    if live_requested:
        monitor = telemetry.SweepMonitor(
            sink=telemetry.JsonlSink(args.live) if args.live else None,
            config=telemetry.LiveConfig(stall_fraction=args.stall_fraction,
                                        watch=args.watch))
        monitor_scope = telemetry.monitoring(monitor)
    sweep_artifacts = None
    artifact_scope = contextlib.nullcontext()
    if resume_requested:
        from ..runtime import artifacts as runtime_artifacts

        store = runtime_artifacts.ArtifactStore(args.artifact_dir)
        if args.fresh:
            purged = store.purge()
            print(f"artifacts: purged {purged} stored cell(s) from "
                  f"{store.root}", file=sys.stderr)
        sweep_artifacts = runtime_artifacts.SweepArtifacts(
            store=store,
            config_fingerprint=telemetry.config_fingerprint(run_manifest),
            consult=not args.fresh)
        artifact_scope = runtime_artifacts.sweep_scope(sweep_artifacts)
    shm_store = None
    shm_scope = contextlib.nullcontext()
    if shared_terms:
        shm_store = runtime_shm.SharedTermStore()
        shm_scope = runtime_shm.store_scope(shm_store)
    blocked_tier = None
    blocked_scope = contextlib.nullcontext()
    if args.blocked:
        blocked_tier = runtime_blocked.BlockedTier(
            ram_budget_bytes=(int(args.ram_budget * 2 ** 20)
                              if args.ram_budget is not None else None),
            spill_dir=args.spill_dir)
        blocked_scope = runtime_blocked.blocked_scope(blocked_tier)
    cache_was_enabled = runtime_cache.is_enabled()
    plan_was_enabled = runtime_plan.is_enabled()
    if args.no_cache:
        from ..spectral.decomposition import clear_eig_cache

        runtime_cache.set_enabled(False)
        runtime_cache.clear_transpose_cache()
        clear_eig_cache()
    if args.no_plan or args.no_cache:
        runtime_plan.set_enabled(False)
    blocked_info = None
    try:
        with monitor_scope, artifact_scope, shm_scope, blocked_scope, \
                telemetry.span("experiment", experiment=args.experiment,
                               artifact=artifact):
            rows = runner(**kwargs)
    finally:
        if blocked_tier is not None:
            # Capture before close(): close purges the spill dir.
            blocked_info = blocked_tier.stats()
            blocked_tier.close()
        events = telemetry.shutdown() if telemetry_on else []
        if args.no_cache:
            runtime_cache.set_enabled(cache_was_enabled)
        if args.no_plan or args.no_cache:
            runtime_plan.set_enabled(plan_was_enabled)

    printable = [{k: v for k, v in row.items() if k != "embedding"}
                 for row in rows]
    print(render_table(printable, title=f"{args.experiment} ({artifact})"))

    if args.output:
        from .io import save_rows

        save_rows(rows, args.output,
                  metadata={"experiment": args.experiment,
                            "artifact": artifact},
                  manifest=run_manifest if run_manifest is not None else True)
        print(f"saved {len(rows)} rows to {args.output}")
    if args.trace and run_manifest is not None:
        manifest_path = telemetry.manifest_path_for(args.trace)
        telemetry.write_manifest(manifest_path, run_manifest)
        print(f"trace: {args.trace}  manifest: {manifest_path}")
        print(render_run_telemetry(events))
    chrome_trace_path = None
    if args.live:
        live_file = Path(args.live)
        chrome_trace_path = telemetry.export_chrome_trace(
            live_file.with_name(live_file.stem + ".trace.json"),
            telemetry.load_events(live_file),
            span_events=events, span_epoch_wall=span_epoch_wall)
        live_summary = monitor.summary() if monitor is not None else {}
        print(f"live: {args.live}  chrome-trace: {chrome_trace_path}  "
              f"(heartbeats: {live_summary.get('heartbeats', 0)}, "
              f"stalls: {live_summary.get('stalls', 0)})")
    shm_info = None
    if shm_store is not None:
        shm_info = shm_store.stats()
        print(f"shared-terms: chains={shm_info.get('chains', 0)} "
              f"blobs={shm_info.get('blobs', 0)} "
              f"hits={shm_info.get('hits', 0)} "
              f"publishes={shm_info.get('publishes', 0)} "
              f"peak_bytes={shm_info.get('peak_bytes', 0)} "
              f"unlinked={shm_info.get('segments_unlinked', 0)}")
    if blocked_info is not None:
        print(f"blocked: budget={blocked_info['ram_budget_bytes']} "
              f"spmm={blocked_info['spmm_calls']} "
              f"tiles={blocked_info['tiles']} "
              f"spill_files={blocked_info['spill_files']} "
              f"spill_bytes={blocked_info['spill_bytes']} "
              f"loads={blocked_info['load_files']} "
              f"mmap_peak_bytes={blocked_info['mmap_peak_bytes']}")
    artifacts_info = None
    if sweep_artifacts is not None:
        artifacts_info = dict(
            {"mode": "fresh" if args.fresh else "resume",
             "dir": str(sweep_artifacts.store.root)},
            **sweep_artifacts.stats())
        print(f"artifacts: {sweep_artifacts.store.root}  "
              f"mode={artifacts_info['mode']}  "
              f"hit={artifacts_info['hit']} miss={artifacts_info['miss']} "
              f"stored={artifacts_info['stored']} "
              f"cells={artifacts_info['cells']}")
    if run_manifest is not None and not args.no_registry:
        from .io import summarize_rows

        pool_info = None
        if args.experiment in POOLED_EXPERIMENTS:
            pool_info = {"workers": args.workers,
                         "cell_timeout": args.cell_timeout,
                         "max_retries": args.max_retries,
                         "shared_terms": shared_terms}
            sweep_stats = runtime_pool.last_run_stats()
            if sweep_stats is not None:
                pool_info["stats"] = sweep_stats
            if shm_info is not None:
                pool_info["shm"] = shm_info
        record = telemetry.record_run(
            run_manifest, events=events, summary=summarize_rows(printable),
            trace_path=args.trace, result_path=args.output,
            registry_dir=args.registry_dir,
            workers=args.workers, pool=pool_info,
            live_path=args.live, chrome_trace_path=chrome_trace_path,
            artifacts=artifacts_info)
        registry_path = telemetry.default_registry_dir(args.registry_dir)
        print(f"registry: {registry_path}  "
              f"config={record.config_fingerprint}  run={record.run_id}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
