"""Experiment runners: one per table and figure of the paper.

Each function regenerates the rows/series of one published artifact —
same axes, same cell formats — on synthetic stand-ins of the datasets
(see DESIGN.md §2 for the substitution rationale). The companion
``benchmarks/`` directory wraps each runner in a pytest-benchmark target.

Scaling: ``DEFAULT_SCALES`` maps each dataset's scale class to a fraction
keeping the S < M < L ordering while staying CPU-feasible; pass
``scale_override`` (or per-call scales) to run closer to paper size.

Parallelism: the grid experiments (``efficiency_experiment``,
``effectiveness_experiment``, ``hop_sweep_experiment``,
``scale_shift_experiment``) decompose their
dataset×filter loops into self-contained cells executed through
:func:`repro.runtime.pool.execute_cells`. With the default
``pool=None``/``workers=1`` the cells run inline in grid order — the
serial path — while ``PoolConfig(workers=N)`` fans them out to worker
processes with bit-identical results (cells carry explicit seeds and are
reassembled in grid order). A failed cell (worker crash or timeout, pool
mode only) contributes a row with ``status="failed:<reason>"`` instead of
aborting the sweep.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.registry import DatasetSpec, get_spec
from ..datasets.signals import SIGNAL_NAMES
from ..datasets.splits import random_split, stratified_split
from ..datasets.synthesis import synthesize
from ..filters.base import PropagationContext
from ..filters.registry import FILTER_NAMES, REGISTRY, make_filter
from ..graph.graph import Graph
from ..graph.metrics import degree_groups
from ..runtime import plan
from ..runtime.hardware import PROFILES
from ..runtime.pool import (
    Cell,
    CellResult,
    PoolConfig,
    derive_cell_seed,
    execute_cells,
)
from ..spectral.tsne import cluster_separation, tsne
from ..tasks.link_prediction import run_link_prediction
from ..tasks.node_classification import run_node_classification, run_seeds
from ..tasks.signal_regression import run_signal_regression
from ..training.loop import TrainConfig
from ..training.metrics import accuracy

#: CPU-feasible dataset scales preserving the S < M < L ordering.
DEFAULT_SCALES: Dict[str, float] = {"S": 0.25, "M": 0.02, "L": 0.004}

#: A category-balanced filter subset for the quicker benches (full sweeps
#: accept ``filters=FILTER_NAMES``).
REPRESENTATIVE_FILTERS: List[str] = [
    "identity", "linear", "impulse", "monomial", "ppr", "hk", "gaussian",
    "monomial_var", "horner", "chebyshev", "chebinterp", "bernstein",
    "favard", "optbasis",
    "adagnn", "fbgnn2", "acmgnn2", "fagnn", "g2cn", "gnnlfhf", "figure",
]

#: The OGB-PPA stand-in for the link-prediction study (Figure 6); PPA is
#: not a Table 3 dataset, so its spec lives here.
PPA_SPEC = DatasetSpec(
    name="ppa", scale_class="L", homophily_class="homo", nodes=576289,
    edges=60652546, homophily=0.5, num_features=58, num_classes=2,
    metric="roc_auc",
)


def dataset_scale(spec: DatasetSpec, override: Optional[float] = None) -> float:
    """Resolve the generation scale for a spec."""
    return override if override is not None else DEFAULT_SCALES[spec.scale_class]


def load_dataset(name: str, scale: Optional[float] = None, seed: int = 0) -> Graph:
    """Synthesize a benchmark dataset at its default (or given) scale."""
    spec = get_spec(name) if isinstance(name, str) else name
    return synthesize(spec, scale=dataset_scale(spec, scale), seed=seed)


def _config_for(spec: DatasetSpec, base: Optional[TrainConfig],
                seed: int = 0) -> TrainConfig:
    config = base or TrainConfig()
    return replace(config, metric=spec.metric, seed=seed)


# ======================================================================
# sweep cells (process-pool units; see repro.runtime.pool)
# ======================================================================
#: Per-process memo of synthesized graphs, so consecutive cells of one
#: dataset share a single synthesis in serial mode (matching the historic
#: one-load-per-dataset loops) and each worker process pays at most one
#: synthesis per dataset it touches. Synthesis is deterministic in
#: (spec, scale, seed), so memo hits are bit-identical to fresh loads.
_GRAPH_MEMO: Dict[Tuple, Graph] = {}
_GRAPH_MEMO_CAP = 4


def _memo_load(name: str, scale: Optional[float], seed: int) -> Graph:
    key = (name, scale, seed)
    graph = _GRAPH_MEMO.get(key)
    if graph is None:
        if len(_GRAPH_MEMO) >= _GRAPH_MEMO_CAP:
            _GRAPH_MEMO.pop(next(iter(_GRAPH_MEMO)))
        graph = _GRAPH_MEMO[key] = load_dataset(name, scale, seed=seed)
    return graph


def _failure_row(result: CellResult, **coordinates) -> Dict:
    """Placeholder row for a cell that exhausted its retries (pool mode)."""
    row = dict(coordinates)
    row["status"] = f"failed:{result.status}"
    row["error"] = result.error
    return row


def _pooled_rows(cells: Sequence[Cell], pool: Optional[PoolConfig],
                 failure_keys: Sequence[str]) -> List[Dict]:
    """Execute cells and reassemble rows in grid order.

    Successful cells contribute their row lists; failed ones (pool mode
    only — inline cells propagate) contribute one failure row built from
    the cell key zipped with ``failure_keys``.
    """
    rows: List[Dict] = []
    for result in execute_cells(cells, pool):
        if result.ok:
            rows.extend(result.value)
        else:
            rows.append(_failure_row(
                result, **dict(zip(failure_keys, result.key))))
    return rows


def _efficiency_cell(dataset_name: str, filter_name: str, scheme: str,
                     config: TrainConfig, scale_override: Optional[float],
                     device_capacity_gib: Optional[float],
                     seed: int) -> List[Dict]:
    """One (dataset, scheme, filter) cell of the Figure 2 efficiency grid."""
    spec = get_spec(dataset_name)
    graph = _memo_load(dataset_name, scale_override, seed)
    run_config = _config_for(spec, config, seed)
    result = run_node_classification(
        graph, filter_name, scheme=scheme, config=run_config,
        device_capacity_gib=device_capacity_gib)
    row = {
        "dataset": dataset_name,
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "filter": REGISTRY[filter_name].display,
        "type": REGISTRY[filter_name].category,
        "scheme": scheme,
        "status": result.status,
        "precompute_s": result.precompute_seconds,
        "train_s_per_epoch": result.train_seconds_per_epoch,
        "inference_s": result.inference_seconds,
        "ram_bytes": result.ram_peak_bytes,
        "device_bytes": result.device_peak_bytes,
    }
    if result.cut_edges is not None:
        # GP expressiveness accounting: edges the clustering severed.
        row["cut_edges"] = result.cut_edges
        row["cut_edge_fraction"] = round(result.cut_edge_fraction, 6)
        row["num_parts"] = result.num_parts
    return [row]


def _effectiveness_cell(dataset_name: str, filter_name: str, scheme: str,
                        seeds: Sequence[int], config: TrainConfig,
                        scale_override: Optional[float]) -> List[Dict]:
    """One (dataset, filter) cell of the Table 5/10 effectiveness grid."""
    spec = get_spec(dataset_name)
    graph = _memo_load(dataset_name, scale_override, 0)
    run_config = _config_for(spec, config)
    summary = run_seeds(graph, filter_name, scheme=scheme,
                        config=run_config, seeds=tuple(seeds))
    return [
        {
            "dataset": dataset_name,
            "homophily_class": spec.homophily_class,
            "filter": REGISTRY[filter_name].display,
            "type": REGISTRY[filter_name].category,
            "scheme": scheme,
            "status": summary.status,
            "mean": summary.mean,
            "std": summary.std,
            "cell": summary.cell(),
        }
    ]


def _scale_shift_cell(dataset_name: str, filter_name: str,
                      seeds: Sequence[int], config: TrainConfig) -> List[Dict]:
    """One (dataset, filter) cell of the Figure 3 scale-shift sweep.

    ``relative_accuracy`` needs the per-dataset best across *all* filters,
    so the parent computes it after reassembly — cells only report the
    absolute score.
    """
    spec = get_spec(dataset_name)
    graph = _memo_load(dataset_name, None, 0)
    run_config = _config_for(spec, config)
    summary = run_seeds(graph, filter_name, scheme="mini_batch",
                        config=run_config, seeds=tuple(seeds))
    return [
        {
            "dataset": dataset_name,
            "scale_class": spec.scale_class,
            "n": graph.num_nodes,
            "filter": REGISTRY[filter_name].display,
            "accuracy": summary.mean,
        }
    ]


def _hop_cell(dataset_name: str, filter_name: str, num_hops: int,
              seeds: Sequence[int], config: TrainConfig) -> List[Dict]:
    """One (dataset, filter, K) cell of the Figure 7 hop sweep."""
    spec = get_spec(dataset_name)
    graph = _memo_load(dataset_name, None, 0)
    run_config = _config_for(spec, config)
    summary = run_seeds(graph, filter_name, scheme="full_batch",
                        config=run_config, seeds=tuple(seeds),
                        num_hops=num_hops)
    return [
        {
            "dataset": dataset_name,
            "homophily_class": spec.homophily_class,
            "filter": REGISTRY[filter_name].display,
            "K": num_hops,
            "accuracy": summary.mean,
        }
    ]


# ======================================================================
# Table 1 — taxonomy verification
# ======================================================================
def taxonomy_experiment(num_hops: int = 10, num_features: int = 16,
                        seed: int = 0) -> List[Dict]:
    """Verify Table 1's complexity columns against metered execution.

    Runs every filter on a small graph while counting propagation hops and
    precomputed channels, confirming the O(KmF) vs O(K²mF) time classes
    and the O(nF) vs O(KnF) channel-memory classes.
    """
    rng = np.random.default_rng(seed)
    graph = synthesize("cora", scale=0.1, seed=seed)
    signal = rng.normal(size=(graph.num_nodes, num_features)).astype(np.float32)
    rows = []
    for name in FILTER_NAMES:
        entry = REGISTRY[name]
        filter_ = make_filter(name, num_hops=num_hops, num_features=num_features)
        ctx = PropagationContext.for_graph(graph)
        params = {p: s.init for p, s in filter_.parameter_spec().items()}
        filter_.forward(ctx, signal, params or None)
        channels = filter_.precompute(graph, signal)
        rows.append(
            {
                "filter": entry.display,
                "type": entry.category,
                "declared_time": entry.time_complexity,
                "declared_memory": entry.memory_complexity,
                "measured_hops": ctx.hops,
                "mb_channels": channels.shape[1],
                "quadratic_hops": ctx.hops > 3 * num_hops,
            }
        )
    return rows


# ======================================================================
# Figure 2 / Tables 9 & 11 — time and memory efficiency per scheme
# ======================================================================
def efficiency_experiment(
    dataset_names: Sequence[str] = ("penn94", "arxiv", "pokec", "snap-patents"),
    filters: Sequence[str] = REPRESENTATIVE_FILTERS,
    schemes: Sequence[str] = ("full_batch", "mini_batch"),
    config: Optional[TrainConfig] = None,
    scale_override: Optional[float] = None,
    device_capacity_gib: Optional[float] = None,
    seed: int = 0,
    pool: Optional[PoolConfig] = None,
) -> List[Dict]:
    """Per-(dataset, filter, scheme) stage timings and memory peaks.

    With a finite ``device_capacity_gib``, memory-hungry full-batch runs
    report ``status="oom"`` — the empty bars of Figure 2. ``pool`` fans
    the (dataset, scheme, filter) cells out to worker processes
    (:mod:`repro.runtime.pool`); the default runs them inline, serially.
    """
    base = config or TrainConfig(epochs=5, patience=0, eval_every=10)
    cells = [
        Cell(key=(dataset_name, scheme, filter_name),
             fn=_efficiency_cell,
             kwargs=dict(dataset_name=dataset_name, filter_name=filter_name,
                         scheme=scheme, config=base,
                         scale_override=scale_override,
                         device_capacity_gib=device_capacity_gib, seed=seed))
        for dataset_name in dataset_names
        for scheme in schemes
        for filter_name in filters
    ]
    with plan.plan_scope():
        return _pooled_rows(cells, pool, ("dataset", "scheme", "filter"))


# ======================================================================
# Tables 5 & 10 — effectiveness under FB / MB
# ======================================================================
def effectiveness_experiment(
    dataset_names: Sequence[str] = ("cora", "chameleon", "roman"),
    filters: Sequence[str] = REPRESENTATIVE_FILTERS,
    scheme: str = "full_batch",
    seeds: Sequence[int] = (0, 1, 2),
    config: Optional[TrainConfig] = None,
    scale_override: Optional[float] = None,
    pool: Optional[PoolConfig] = None,
    root_seed: Optional[int] = None,
) -> List[Dict]:
    """Mean±std efficacy cells for filters × datasets under one scheme.

    ``pool`` distributes the (dataset, filter) cells across worker
    processes; each cell's repeats keep their explicit ``seeds``, so the
    mean±std cells are bit-identical across worker counts. With
    ``root_seed`` set, the repeat seeds are instead *derived* per cell as
    ``derive_cell_seed(root_seed, dataset, filter, repeat)`` — decorrelating
    repeats across cells while staying independent of worker scheduling
    (``len(seeds)`` then only fixes the repeat count).
    """
    base = config or TrainConfig(epochs=60, patience=30)

    def cell_seeds(dataset_name: str, filter_name: str) -> Tuple[int, ...]:
        if root_seed is None:
            return tuple(seeds)
        return tuple(derive_cell_seed(root_seed, dataset_name, filter_name,
                                      repeat) for repeat in range(len(seeds)))

    cells = [
        Cell(key=(dataset_name, scheme, filter_name),
             fn=_effectiveness_cell,
             kwargs=dict(dataset_name=dataset_name, filter_name=filter_name,
                         scheme=scheme,
                         seeds=cell_seeds(dataset_name, filter_name),
                         config=base, scale_override=scale_override))
        for dataset_name in dataset_names
        for filter_name in filters
    ]
    with plan.plan_scope():
        return _pooled_rows(cells, pool, ("dataset", "scheme", "filter"))


# ======================================================================
# Figure 3 — effectiveness shift across graph scales
# ======================================================================
def scale_shift_experiment(
    filters: Sequence[str] = ("linear", "impulse", "monomial", "ppr",
                              "monomial_var", "chebyshev"),
    dataset_names: Sequence[str] = ("cora", "arxiv", "products"),
    seeds: Sequence[int] = (0, 1),
    config: Optional[TrainConfig] = None,
    pool: Optional[PoolConfig] = None,
) -> List[Dict]:
    """Relative accuracy (to the per-dataset best) vs node count.

    One homophilous dataset per scale class; the paper's observation is
    that the spread between suitable and unsuitable filters widens as n
    grows. ``pool`` distributes the (dataset, filter) cells across worker
    processes; each cell reports its absolute accuracy and the parent
    derives ``relative_accuracy`` from the reassembled grid, so results
    are bit-identical across worker counts.
    """
    base = config or TrainConfig(epochs=60, patience=30)
    cells = [
        Cell(key=(dataset_name, filter_name),
             fn=_scale_shift_cell,
             kwargs=dict(dataset_name=dataset_name, filter_name=filter_name,
                         seeds=tuple(seeds), config=base))
        for dataset_name in dataset_names
        for filter_name in filters
    ]
    with plan.plan_scope():
        rows = _pooled_rows(cells, pool, ("dataset", "filter"))
    best: Dict[str, float] = {}
    for row in rows:
        if "accuracy" in row:
            best[row["dataset"]] = max(best.get(row["dataset"], float("-inf")),
                                       row["accuracy"])
    for row in rows:
        if "accuracy" in row:
            top = best[row["dataset"]]
            row["relative_accuracy"] = \
                row["accuracy"] / top if top > 0 else float("nan")
    return rows


# ======================================================================
# Figure 4 — result stability across seeds and splits
# ======================================================================
def stability_experiment(
    filters: Sequence[str] = ("monomial", "ppr", "chebyshev", "bernstein"),
    dataset_names: Sequence[str] = ("cora", "arxiv"),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    config: Optional[TrainConfig] = None,
) -> List[Dict]:
    """Per-seed scores under random vs stratified (stable) splits.

    cora-style random splits drive most of the seed variance; arxiv-style
    stratified splits concentrate it — the paper's Figure 4 contrast.
    """
    base = config or TrainConfig(epochs=60, patience=30)
    rows = []
    for dataset_name in dataset_names:
        spec = get_spec(dataset_name)
        graph = load_dataset(dataset_name, seed=0)
        run_config = _config_for(spec, base)
        split_kind = "random" if dataset_name == "cora" else "stratified"
        for seed in seeds:
            if split_kind == "random":
                split = random_split(graph.num_nodes, seed=seed)
            else:
                split = stratified_split(graph.labels, seed=seed)
            for filter_name in filters:
                result = run_node_classification(
                    graph, filter_name, scheme="full_batch",
                    config=replace(run_config, seed=seed), split=split)
                rows.append(
                    {
                        "dataset": dataset_name,
                        "split": split_kind,
                        "seed": seed,
                        "filter": REGISTRY[filter_name].display,
                        "score": result.test_score,
                    }
                )
    return rows


# ======================================================================
# Figure 5 — efficiency across hardware platforms
# ======================================================================
def hardware_experiment(
    filters: Sequence[str] = ("monomial", "ppr", "chebyshev", "favard"),
    dataset_name: str = "penn94",
    config: Optional[TrainConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """Project measured stage timings onto the S1 / S2 hardware profiles.

    MB fixed filters (transform-bound) speed up on the faster-GPU S2;
    propagation-bound FB runs slow down with its slower CPUs — Figure 5's
    crossover.
    """
    base = config or TrainConfig(epochs=5, patience=0, eval_every=10)
    spec = get_spec(dataset_name)
    graph = load_dataset(dataset_name, seed=seed)
    run_config = _config_for(spec, base, seed)
    rows = []
    for scheme in ("full_batch", "mini_batch"):
        for filter_name in filters:
            result = run_node_classification(graph, filter_name, scheme=scheme,
                                             config=run_config)
            summary = result.profiler.summary()
            for platform_name, profile in PROFILES.items():
                scaled = profile.scale_stage_seconds(summary)
                rows.append(
                    {
                        "dataset": dataset_name,
                        "filter": REGISTRY[filter_name].display,
                        "type": REGISTRY[filter_name].category,
                        "scheme": scheme,
                        "platform": platform_name,
                        "precompute_s": scaled.get("precompute", 0.0),
                        "train_s": scaled.get("train", 0.0),
                        "inference_s": scaled.get("inference", 0.0),
                        "total_s": sum(scaled.values()),
                    }
                )
    return rows


# ======================================================================
# Figure 6 — link-prediction efficiency
# ======================================================================
def linkpred_experiment(
    filters: Sequence[str] = ("identity", "impulse", "ppr", "monomial_var",
                              "chebyshev", "fagnn"),
    scale: float = 0.004,
    kappa: int = 2,
    config: Optional[TrainConfig] = None,
    seed: int = 0,
) -> List[Dict]:
    """MB link prediction on the PPA stand-in: AUC + stage efficiency."""
    base = config or TrainConfig(epochs=5, patience=0, metric="roc_auc")
    graph = synthesize(PPA_SPEC, scale=scale, seed=seed)
    rows = []
    for filter_name in filters:
        result = run_link_prediction(graph, filter_name, config=base, kappa=kappa)
        rows.append(
            {
                "dataset": "ppa",
                "filter": REGISTRY[filter_name].display,
                "type": REGISTRY[filter_name].category,
                "status": result.status,
                "auc": result.test_auc,
                "precompute_s": result.profiler.seconds("precompute"),
                "train_s_per_epoch":
                    result.profiler.stages["train"].seconds_per_call
                    if "train" in result.profiler.stages else 0.0,
                "ram_bytes": result.ram_peak_bytes,
                "device_bytes": result.device_peak_bytes,
            }
        )
    return rows


# ======================================================================
# Table 7 — signal regression R²
# ======================================================================
def regression_experiment(
    filters: Sequence[str] = ("ppr", "linear", "impulse", "monomial", "hk",
                              "gaussian", "monomial_var", "horner",
                              "chebyshev", "clenshaw", "chebinterp",
                              "bernstein", "legendre", "jacobi", "favard",
                              "optbasis"),
    dataset_name: str = "cora",
    scale: float = 0.1,
    num_hops: int = 10,
    epochs: int = 150,
    seed: int = 0,
) -> List[Dict]:
    """R² of each filter on the five Table 7 transfer functions."""
    graph = load_dataset(dataset_name, scale, seed=seed)
    rows = []
    for filter_name in filters:
        row: Dict = {
            "filter": REGISTRY[filter_name].display,
            "type": REGISTRY[filter_name].category,
        }
        for signal_name in SIGNAL_NAMES:
            result = run_signal_regression(graph, filter_name, signal_name,
                                           num_hops=num_hops, epochs=epochs,
                                           seed=seed)
            row[signal_name] = round(100.0 * result.r2, 2)
        rows.append(row)
    return rows


# ======================================================================
# Figure 7 — effect of propagation hops K
# ======================================================================
def hop_sweep_experiment(
    filters: Sequence[str] = ("linear", "impulse", "ppr", "gaussian",
                              "monomial_var", "chebyshev"),
    dataset_names: Sequence[str] = ("cora", "chameleon"),
    hops: Sequence[int] = (2, 4, 6, 10, 14, 20),
    config: Optional[TrainConfig] = None,
    seeds: Sequence[int] = (0, 1),
    pool: Optional[PoolConfig] = None,
) -> List[Dict]:
    """Accuracy vs K: over-smoothing of low-pass filters at large K.

    ``pool`` distributes the (dataset, filter, K) cells across worker
    processes; the default runs them inline, serially.
    """
    base = config or TrainConfig(epochs=60, patience=30)
    cells = [
        Cell(key=(dataset_name, filter_name, num_hops),
             fn=_hop_cell,
             kwargs=dict(dataset_name=dataset_name, filter_name=filter_name,
                         num_hops=num_hops, seeds=tuple(seeds), config=base))
        for dataset_name in dataset_names
        for filter_name in filters
        for num_hops in hops
    ]
    with plan.plan_scope():
        return _pooled_rows(cells, pool, ("dataset", "filter", "K"))


# ======================================================================
# Figure 8 — t-SNE cluster visualization
# ======================================================================
def tsne_experiment(
    filters: Sequence[str] = ("impulse", "ppr", "monomial", "chebyshev",
                              "chebinterp", "jacobi"),
    dataset_names: Sequence[str] = ("cora", "chameleon"),
    config: Optional[TrainConfig] = None,
    tsne_iterations: int = 250,
    seed: int = 0,
) -> List[Dict]:
    """Embed learned logits with t-SNE; report cluster-separation scores.

    Sharp clusters (high separation) correspond to the filters that also
    classify well on that dataset — Figure 8's visual argument, made
    quantitative.
    """
    base = config or TrainConfig(epochs=60, patience=30)
    rows = []
    for dataset_name in dataset_names:
        spec = get_spec(dataset_name)
        graph = load_dataset(dataset_name, seed=seed)
        run_config = _config_for(spec, base, seed)
        for filter_name in filters:
            result = run_node_classification(graph, filter_name,
                                             scheme="full_batch",
                                             config=run_config)
            embedding = tsne(result.predictions, perplexity=20.0,
                             num_iterations=tsne_iterations, seed=seed)
            rows.append(
                {
                    "dataset": dataset_name,
                    "filter": REGISTRY[filter_name].display,
                    "accuracy": result.test_score,
                    "cluster_separation":
                        cluster_separation(embedding, graph.labels),
                    "embedding": embedding,
                }
            )
    return rows


# ======================================================================
# Figure 9 — degree-specific effectiveness
# ======================================================================
def degree_bias_experiment(
    filters: Sequence[str] = ("linear", "impulse", "monomial", "ppr",
                              "monomial_var", "chebyshev", "bernstein"),
    dataset_names: Sequence[str] = ("citeseer", "cora", "chameleon", "roman"),
    config: Optional[TrainConfig] = None,
    seeds: Sequence[int] = (0, 1),
    rho: Optional[float] = None,
) -> List[Dict]:
    """Accuracy gap between high- and low-degree test nodes.

    Positive gaps on homophilous graphs, negative under heterophily — the
    paper's amendment to the "high degree is always easier" assumption.
    """
    base = config or TrainConfig(epochs=60, patience=30)
    rows = []
    for dataset_name in dataset_names:
        spec = get_spec(dataset_name)
        graph = load_dataset(dataset_name, seed=0)
        high, low = degree_groups(graph)
        run_config = _config_for(spec, base)
        if rho is not None:
            run_config = replace(run_config, rho=rho)
        for filter_name in filters:
            gaps, overall = [], []
            for seed in seeds:
                split = random_split(graph.num_nodes, seed=seed)
                result = run_node_classification(
                    graph, filter_name, scheme="full_batch",
                    config=replace(run_config, seed=seed), split=split)
                high_test = np.intersect1d(split.test, high)
                low_test = np.intersect1d(split.test, low)
                if not len(high_test) or not len(low_test):
                    continue
                acc_high = accuracy(result.predictions[high_test],
                                    graph.labels[high_test])
                acc_low = accuracy(result.predictions[low_test],
                                   graph.labels[low_test])
                gaps.append(acc_high - acc_low)
                overall.append(result.test_score)
            rows.append(
                {
                    "dataset": dataset_name,
                    "homophily_class": spec.homophily_class,
                    "filter": REGISTRY[filter_name].display,
                    "rho": run_config.rho,
                    "degree_gap": float(np.mean(gaps)) if gaps else float("nan"),
                    "overall": float(np.mean(overall)) if overall else float("nan"),
                }
            )
    return rows


# ======================================================================
# Figure 10 — effect of graph normalization ρ
# ======================================================================
def normalization_experiment(
    filters: Sequence[str] = ("ppr", "monomial_var"),
    dataset_names: Sequence[str] = ("citeseer", "roman"),
    rhos: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    config: Optional[TrainConfig] = None,
    seeds: Sequence[int] = (0, 1),
) -> List[Dict]:
    """Degree-gap as a function of the normalization coefficient ρ.

    Larger ρ up-weights inbound information and lifts high-degree accuracy
    (Figure 10's rising trend on citeseer/roman).
    """
    rows = []
    for rho in rhos:
        rows.extend(
            degree_bias_experiment(filters=filters, dataset_names=dataset_names,
                                   config=config, seeds=seeds, rho=rho)
        )
    return rows


# ======================================================================
# Table 6 — out-of-framework baselines
# ======================================================================
def baseline_experiment(
    dataset_names: Sequence[str] = ("arxiv", "penn94"),
    backends: Sequence[str] = ("csr", "coo_gather"),
    config: Optional[TrainConfig] = None,
    device_capacity_gib: Optional[float] = None,
    seed: int = 0,
) -> List[Dict]:
    """GCN / GraphSAGE / ChebNet (SP vs EI backends) + graph transformers.

    Reproduces Table 6's contrasts: the gather-scatter (EI) backend's
    O(mF) intermediates inflate device memory and OOM first; transformers
    pay a long precompute and slow training for their accuracy.
    """
    from .baseline_runners import (
        train_ansgt,
        train_iterative_baseline,
        train_nagphormer,
    )

    base = config or TrainConfig(epochs=10, patience=0, eval_every=20)
    rows: List[Dict] = []
    for dataset_name in dataset_names:
        spec = get_spec(dataset_name)
        graph = load_dataset(dataset_name, seed=seed)
        run_config = _config_for(spec, base, seed)
        split = random_split(graph.num_nodes, seed=seed)
        for backend in backends:
            for model_name in ("GCN", "GraphSAGE", "ChebNet"):
                rows.append(
                    train_iterative_baseline(
                        model_name, graph, split, run_config, backend,
                        device_capacity_gib)
                    | {"dataset": dataset_name}
                )
        rows.append(train_nagphormer(graph, split, run_config,
                                     device_capacity_gib)
                    | {"dataset": dataset_name})
        rows.append(train_ansgt(graph, split, run_config, device_capacity_gib)
                    | {"dataset": dataset_name})
    return rows
