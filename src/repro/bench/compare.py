"""Comparing experiment runs: regression tracking for benchmark sweeps.

Two comparison modes:

- **File mode** (:func:`compare_files`): given two saved experiment files
  (``bench.io.save_rows`` output — e.g. a baseline run on main and a
  candidate run on a branch), align their rows on key columns and report
  per-metric deltas, flagging regressions beyond a tolerance.
- **Registry mode** (:func:`compare_registry`): no file paths at all —
  resolve the two most recent runs of a config fingerprint from the run
  registry (:mod:`repro.telemetry.registry`) and diff their stage
  timings, op counters, and result summaries. This is what ``python -m
  repro.bench compare --registry <config>`` runs, and what makes
  efficiency claims trackable longitudinally across commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError

#: Columns that identify a row across runs, tried in this order.
DEFAULT_KEY_COLUMNS = ("dataset", "filter", "scheme", "model", "backend",
                       "K", "rho", "seed", "signal", "keep", "platform")

#: Metrics where larger is better (everything else: smaller is better).
HIGHER_IS_BETTER = ("accuracy", "auc", "mean", "score", "r2", "overall",
                    "test", "valid", "relative_accuracy",
                    "cluster_separation")


@dataclass
class MetricDelta:
    """Change of one metric on one aligned row pair."""

    key: Tuple
    metric: str
    baseline: float
    candidate: float

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def relative(self) -> float:
        return self.delta / abs(self.baseline) if self.baseline else np.inf

    def is_regression(self, tolerance: float) -> bool:
        """Did the candidate get worse by more than ``tolerance`` (relative)?"""
        higher_better = any(self.metric.endswith(m) or self.metric == m
                            for m in HIGHER_IS_BETTER)
        worsening = -self.relative if higher_better else self.relative
        return worsening > tolerance


@dataclass
class Comparison:
    """Alignment + deltas between two experiment runs."""

    matched: int
    baseline_only: List[Tuple]
    candidate_only: List[Tuple]
    deltas: List[MetricDelta] = field(default_factory=list)

    def regressions(self, tolerance: float = 0.05) -> List[MetricDelta]:
        return [d for d in self.deltas if d.is_regression(tolerance)]

    def summary_rows(self) -> List[Dict]:
        """Long-form rows for :func:`repro.bench.render_table`."""
        return [
            {
                "key": " / ".join(str(v) for v in d.key),
                "metric": d.metric,
                "baseline": d.baseline,
                "candidate": d.candidate,
                "delta": d.delta,
            }
            for d in self.deltas
        ]


def _row_key(row: Mapping, key_columns: Sequence[str]) -> Tuple:
    return tuple(row[c] for c in key_columns if c in row)


def compare_rows(
    baseline: Sequence[Mapping],
    candidate: Sequence[Mapping],
    key_columns: Optional[Sequence[str]] = None,
    metrics: Optional[Sequence[str]] = None,
) -> Comparison:
    """Align two row sets on key columns and diff their numeric metrics.

    Parameters
    ----------
    key_columns:
        Identity columns; defaults to whichever of
        :data:`DEFAULT_KEY_COLUMNS` appear in the rows.
    metrics:
        Numeric columns to diff; defaults to all shared numeric non-key
        columns.
    """
    if not baseline or not candidate:
        raise ReproError("both runs need at least one row to compare")
    keys = list(key_columns or
                [c for c in DEFAULT_KEY_COLUMNS if c in baseline[0]])
    if not keys:
        raise ReproError(
            "no key columns found; pass key_columns= explicitly")

    baseline_index = {_row_key(r, keys): r for r in baseline}
    candidate_index = {_row_key(r, keys): r for r in candidate}
    if len(baseline_index) != len(baseline):
        raise ReproError(f"key columns {keys} do not uniquely identify "
                         "baseline rows")

    shared = [k for k in baseline_index if k in candidate_index]
    comparison = Comparison(
        matched=len(shared),
        baseline_only=sorted(set(baseline_index) - set(candidate_index)),
        candidate_only=sorted(set(candidate_index) - set(baseline_index)),
    )

    if metrics is None:
        sample = baseline_index[shared[0]] if shared else {}
        metrics = [
            name for name, value in sample.items()
            if name not in keys and isinstance(value, (int, float))
            and not isinstance(value, bool)
        ]
    for key in shared:
        base_row, cand_row = baseline_index[key], candidate_index[key]
        for metric in metrics:
            if metric not in base_row or metric not in cand_row:
                continue
            base_value, cand_value = base_row[metric], cand_row[metric]
            if not _is_number(base_value) or not _is_number(cand_value):
                continue
            comparison.deltas.append(
                MetricDelta(key, metric, float(base_value), float(cand_value)))
    return comparison


def compare_files(baseline_path, candidate_path, **kwargs) -> Comparison:
    """File-level convenience wrapper over :func:`compare_rows`."""
    from .io import load_rows

    return compare_rows(load_rows(baseline_path), load_rows(candidate_path),
                        **kwargs)


#: Per-stage fields diffed by the registry comparison (inclusive time,
#: exclusive time, host RAM growth, and the allocation ledger's
#: accounted bytes — inclusive, exclusive, and the in-stage live peak —
#: matching the paper's stage view).
REGISTRY_STAGE_FIELDS = ("seconds", "self_seconds", "ram_delta_bytes",
                         "mem_bytes", "self_mem_bytes", "mem_peak_bytes")


def registry_delta_rows(baseline, candidate,
                        stage_fields: Sequence[str] = REGISTRY_STAGE_FIELDS,
                        ) -> List[Dict]:
    """Long-form delta rows between two registry run records.

    One row per (stage × field), changed counter, and summary column:
    ``{"metric", "baseline", "candidate", "delta", "rel"}`` — ready for
    :func:`repro.bench.render_table`.
    """
    rows: List[Dict] = []

    def add(metric: str, base, cand) -> None:
        if not _is_number(base) or not _is_number(cand):
            return
        base, cand = float(base), float(cand)
        if base:
            rel = (cand - base) / abs(base)
        else:
            rel = 0.0 if cand == base else np.inf
        rows.append({"metric": metric, "baseline": base, "candidate": cand,
                     "delta": cand - base, "rel": rel})

    for stage in sorted(set(baseline.stages) | set(candidate.stages)):
        base_entry = baseline.stages.get(stage, {})
        cand_entry = candidate.stages.get(stage, {})
        for field_name in stage_fields:
            add(f"stages.{stage}.{field_name}",
                base_entry.get(field_name), cand_entry.get(field_name))

    base_counters = (baseline.metrics or {}).get("counters") or {}
    cand_counters = (candidate.metrics or {}).get("counters") or {}
    for name in sorted(set(base_counters) | set(cand_counters)):
        base_v, cand_v = base_counters.get(name, 0), cand_counters.get(name, 0)
        if base_v != cand_v:
            add(f"counters.{name}", base_v, cand_v)

    for name in sorted(set(baseline.summary or {}) | set(candidate.summary or {})):
        add(f"summary.{name}", (baseline.summary or {}).get(name),
            (candidate.summary or {}).get(name))

    # Memory-observatory scalars (schema v5); absent blocks diff as nothing.
    base_memory = getattr(baseline, "memory", None) or {}
    cand_memory = getattr(candidate, "memory", None) or {}
    for name in sorted(set(base_memory) | set(cand_memory)):
        add(f"memory.{name}", base_memory.get(name), cand_memory.get(name))
    return rows


def compare_registry(spec: str, registry_dir=None,
                     stage_fields: Sequence[str] = REGISTRY_STAGE_FIELDS):
    """Resolve + diff the two most recent runs of one config fingerprint.

    Returns ``(baseline_record, candidate_record, delta_rows)``; raises
    :class:`~repro.errors.ReproError` when the registry holds fewer than
    two runs matching ``spec`` (a fingerprint prefix or experiment name).
    """
    from ..telemetry.registry import RunRegistry

    registry = RunRegistry(registry_dir)
    baseline, candidate = registry.resolve_pair(spec)
    return baseline, candidate, registry_delta_rows(
        baseline, candidate, stage_fields=stage_fields)


def registry_history(spec: str, count: int = 10, registry_dir=None):
    """Cross-run trend report: one sparkline row per headline metric.

    Resolves ``spec`` (fingerprint prefix or experiment name) to one
    config's run history, then renders each stage's inclusive seconds and
    each numeric summary column of the most recent run over that config's
    last ``count`` runs via :meth:`RunRegistry.history`. Returns
    ``(latest_record, rows)`` where each row is ``{"metric", "runs",
    "min", "max", "last", "trend"}`` — the trend a unicode sparkline —
    ready for :func:`repro.bench.render_table`.
    """
    from ..telemetry.registry import RunRegistry
    from ..telemetry.report import sparkline

    if count < 1:
        raise ReproError(f"history length must be >= 1, got {count}")
    registry = RunRegistry(registry_dir)
    records = registry.resolve(spec)
    if not records:
        known = ", ".join(sorted(registry.fingerprints())) or "(empty)"
        raise ReproError(f"registry at {registry.path} holds no runs "
                         f"matching {spec!r}. Known configs: {known}")
    latest = records[-1]
    fingerprint = latest.config_fingerprint

    metrics = [f"stages.{stage}.seconds" for stage in sorted(latest.stages)]
    metrics += [f"summary.{name}" for name in sorted(latest.summary or {})
                if _is_number((latest.summary or {}).get(name))]

    rows: List[Dict] = []
    for metric in metrics:
        series = registry.history(metric, fingerprint)[-count:]
        if not series:
            continue
        values = [value for _, value in series]
        rows.append({
            "metric": metric,
            "runs": len(values),
            "min": min(values),
            "max": max(values),
            "last": values[-1],
            "trend": sparkline(values),
        })
    return latest, rows


def _is_number(value) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) \
        and not isinstance(value, bool) and np.isfinite(value)
