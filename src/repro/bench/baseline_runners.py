"""Training loops for the Table 6 out-of-framework baselines.

These models do not fit the decoupled trainer interface: the iterative
message-passing baselines train full-batch through per-layer propagation,
and the graph transformers train over per-node token batches with their
own precompute/sampling stages. Each runner returns one Table 6 row.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..autodiff import functional as F
from ..autodiff.tensor import Tensor, no_grad
from ..datasets.splits import Split
from ..errors import DeviceOOMError, TrainingError
from ..graph.graph import Graph
from ..models.baselines import (
    ANSGTLite,
    NAGphormerLite,
    make_chebnet,
    make_gcn,
    make_graphsage,
)
from ..runtime.profiler import StageProfiler
from ..training.loop import TrainConfig, make_device
from ..training.metrics import evaluate
from ..autodiff.optim import Adam

_ITERATIVE_FACTORIES = {
    "GCN": make_gcn,
    "GraphSAGE": make_graphsage,
    "ChebNet": make_chebnet,
}

#: Table 6's backend labels: SP = torch.sparse analogue, EI = EdgeIndex.
BACKEND_LABELS = {"csr": "SP", "coo_gather": "EI"}


def train_iterative_baseline(
    model_name: str,
    graph: Graph,
    split: Split,
    config: TrainConfig,
    backend: str = "csr",
    device_capacity_gib: Optional[float] = None,
) -> Dict:
    """Full-batch training of GCN / GraphSAGE / ChebNet on one backend."""
    factory = _ITERATIVE_FACTORIES.get(model_name)
    if factory is None:
        raise TrainingError(f"unknown baseline {model_name!r}")
    device = make_device(device_capacity_gib, name=f"{model_name}-{backend}")
    profiler = StageProfiler()
    row = {
        "model": model_name,
        "backend": BACKEND_LABELS.get(backend, backend),
        "status": "ok",
        "accuracy": float("nan"),
        "precompute_s": 0.0,
        "train_s_per_epoch": 0.0,
        "inference_s": 0.0,
        "device_bytes": 0,
    }
    labels = graph.labels
    try:
        model = factory(graph.num_features, graph.num_classes,
                        hidden=config.hidden, dropout=config.dropout,
                        backend=backend, rng=config.rng())
        optimizer = Adam(model.parameters(), lr=config.lr,
                         weight_decay=config.weight_decay)
        device.to_device(graph.normalized_adjacency(config.rho))
        device.to_device(graph.features)
        device.to_device(sum(p.data.nbytes for p in model.parameters()))

        features = Tensor(graph.features)
        for _ in range(config.epochs):
            model.train()
            with profiler.stage("train", op_class="propagation"):
                with device.step():
                    logits = model(graph, features)
                    loss = F.cross_entropy(logits[split.train], labels[split.train])
                    model.zero_grad()
                    loss.backward()
                    optimizer.step()
        model.eval()
        with profiler.stage("inference", op_class="propagation"):
            with no_grad(), device.step():
                logits = model(graph, features).data
        row["accuracy"] = evaluate(config.metric, logits[split.test],
                                   labels[split.test])
    except DeviceOOMError:
        row["status"] = "oom"
    row["precompute_s"] = profiler.seconds("precompute")
    train_stage = profiler.stages.get("train")
    row["train_s_per_epoch"] = train_stage.seconds_per_call if train_stage else 0.0
    row["inference_s"] = profiler.seconds("inference")
    row["device_bytes"] = device.peak_bytes
    return row


def _token_batches(num_rows: int, batch_size: int, rng: np.random.Generator):
    order = rng.permutation(num_rows)
    for start in range(0, num_rows, batch_size):
        yield order[start:start + batch_size]


def train_nagphormer(
    graph: Graph,
    split: Split,
    config: TrainConfig,
    device_capacity_gib: Optional[float] = None,
    num_hops: int = 4,
) -> Dict:
    """NAGphormer-lite: hop2token precompute + transformer mini-batches."""
    device = make_device(device_capacity_gib, name="nagphormer")
    profiler = StageProfiler()
    row = {
        "model": "NAGphormer", "backend": "EI", "status": "ok",
        "accuracy": float("nan"), "precompute_s": 0.0,
        "train_s_per_epoch": 0.0, "inference_s": 0.0, "device_bytes": 0,
    }
    labels = graph.labels
    rng = config.rng()
    try:
        model = NAGphormerLite(graph.num_features, graph.num_classes,
                               num_hops=num_hops, hidden=config.hidden,
                               rng=rng)
        with profiler.stage("precompute", op_class="propagation"):
            tokens = model.precompute_tokens(graph, rho=config.rho)
        optimizer = Adam(model.parameters(), lr=config.lr,
                         weight_decay=config.weight_decay)
        device.to_device(sum(p.data.nbytes for p in model.parameters()))
        batch_size = min(config.batch_size, 512)
        for _ in range(config.epochs):
            model.train()
            with profiler.stage("train", op_class="transform"):
                for batch_index in _token_batches(len(split.train), batch_size, rng):
                    nodes = split.train[batch_index]
                    with device.step():
                        logits = model(Tensor(tokens[nodes]))
                        loss = F.cross_entropy(logits, labels[nodes])
                        model.zero_grad()
                        loss.backward()
                        optimizer.step()
        model.eval()
        outputs = []
        with profiler.stage("inference", op_class="transform"):
            with no_grad():
                for start in range(0, len(split.test), batch_size):
                    nodes = split.test[start:start + batch_size]
                    with device.step():
                        outputs.append(model(Tensor(tokens[nodes])).data)
        logits = np.concatenate(outputs, axis=0)
        row["accuracy"] = evaluate(config.metric, logits, labels[split.test])
    except DeviceOOMError:
        row["status"] = "oom"
    row["precompute_s"] = profiler.seconds("precompute")
    train_stage = profiler.stages.get("train")
    row["train_s_per_epoch"] = train_stage.seconds_per_call if train_stage else 0.0
    row["inference_s"] = profiler.seconds("inference")
    row["device_bytes"] = device.peak_bytes
    return row


def train_ansgt(
    graph: Graph,
    split: Split,
    config: TrainConfig,
    device_capacity_gib: Optional[float] = None,
) -> Dict:
    """ANSGT-lite: per-batch adaptive token sampling + transformer."""
    device = make_device(device_capacity_gib, name="ansgt")
    profiler = StageProfiler()
    row = {
        "model": "ANS-GT", "backend": "EI", "status": "ok",
        "accuracy": float("nan"), "precompute_s": 0.0,
        "train_s_per_epoch": 0.0, "inference_s": 0.0, "device_bytes": 0,
    }
    labels = graph.labels
    rng = config.rng()
    try:
        model = ANSGTLite(graph.num_features, graph.num_classes,
                          hidden=config.hidden, rng=rng)
        optimizer = Adam(model.parameters(), lr=config.lr,
                         weight_decay=config.weight_decay)
        device.to_device(sum(p.data.nbytes for p in model.parameters()))
        batch_size = min(config.batch_size, 256)
        for _ in range(config.epochs):
            model.train()
            with profiler.stage("train", op_class="transform"):
                for batch_index in _token_batches(len(split.train), batch_size, rng):
                    nodes = split.train[batch_index]
                    # Sampling happens inside the epoch — ANS-GT's cost profile.
                    sampled = model.sample_tokens(graph, nodes)
                    with device.step():
                        logits = model(Tensor(sampled))
                        loss = F.cross_entropy(logits, labels[nodes])
                        model.zero_grad()
                        loss.backward()
                        optimizer.step()
        model.eval()
        outputs = []
        with profiler.stage("inference", op_class="transform"):
            with no_grad():
                for start in range(0, len(split.test), batch_size):
                    nodes = split.test[start:start + batch_size]
                    sampled = model.sample_tokens(graph, nodes)
                    with device.step():
                        outputs.append(model(Tensor(sampled)).data)
        logits = np.concatenate(outputs, axis=0)
        row["accuracy"] = evaluate(config.metric, logits, labels[split.test])
    except DeviceOOMError:
        row["status"] = "oom"
    row["precompute_s"] = profiler.seconds("precompute")
    train_stage = profiler.stages.get("train")
    row["train_s_per_epoch"] = train_stage.seconds_per_call if train_stage else 0.0
    row["inference_s"] = profiler.seconds("inference")
    row["device_bytes"] = device.peak_bytes
    return row
