"""The decoupled architecture: ``H = φ1( g(L̃) · φ0(X) )``.

This is the paper's primary model (Section 4): all graph propagation is
collected in one spectral filter g between a pre-transformation φ0 and a
post-transformation φ1 (plain MLPs). Two concrete modules cover the two
learning schemes:

- :class:`DecoupledModel` — full-batch: φ0, filter, and φ1 run in one
  autodiff graph over the whole node set; gradients flow through the
  sparse propagations.
- :class:`MiniBatchModel` — mini-batch: φ0 is empty (Table 4's MB setting),
  the filter's channels were precomputed on CPU, and the module consumes
  row batches of those channels (combine with θ/γ, then φ1).

Both materialize the filter's :meth:`parameter_spec` as real Parameters so
optimizers can give θ/γ their own learning rate and weight decay.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..autodiff.tensor import Tensor
from ..errors import TrainingError
from ..filters.base import PropagationContext, SpectralFilter
from ..graph.graph import Graph
from ..nn.linear import MLP
from ..nn.module import Module, Parameter


class _FilterParameterMixin:
    """Materializes a filter's parameter spec as module Parameters."""

    def _register_filter_params(self, filter_: SpectralFilter) -> None:
        self._filter_param_names: List[str] = []
        for name, spec in filter_.parameter_spec().items():
            attr = f"filter_{name}"
            setattr(self, attr, Parameter(spec.init.copy()))
            self._filter_param_names.append(name)

    def filter_params(self) -> Optional[Dict[str, Tensor]]:
        """Filter-parameter dict in the shape the filter expects."""
        if not self._filter_param_names:
            return None
        return {
            name: getattr(self, f"filter_{name}")
            for name in self._filter_param_names
        }

    def filter_parameters(self) -> List[Parameter]:
        """The θ/γ parameters, for the separate optimizer group."""
        return [getattr(self, f"filter_{name}") for name in self._filter_param_names]

    def transform_parameters(self) -> List[Parameter]:
        """Everything that is not a filter parameter (φ0/φ1 weights)."""
        filter_ids = {id(p) for p in self.filter_parameters()}
        return [p for p in self.parameters() if id(p) not in filter_ids]

    def numpy_filter_params(self) -> Optional[Dict[str, np.ndarray]]:
        """Learned filter parameters as arrays (for response analysis)."""
        params = self.filter_params()
        if params is None:
            return None
        return {name: tensor.data.copy() for name, tensor in params.items()}


class DecoupledModel(Module, _FilterParameterMixin):
    """Full-batch decoupled spectral GNN.

    Parameters
    ----------
    filter_:
        Any :class:`SpectralFilter`; its trainable parameters (if any) are
        materialized on this module.
    in_features, out_features:
        Attribute width F_i and class count F_o.
    hidden:
        Width of φ0's output / φ1's hidden layers.
    phi0_layers, phi1_layers:
        MLP depths; Table 4's full-batch universal setting is 1 and 1.
    rho:
        Graph-normalization coefficient of ``Ã``.
    backend:
        Sparse propagation backend (``csr`` or ``coo_gather``).
    """

    def __init__(
        self,
        filter_: SpectralFilter,
        in_features: int,
        out_features: int,
        hidden: int = 64,
        phi0_layers: int = 1,
        phi1_layers: int = 1,
        dropout: float = 0.5,
        rho: float = 0.5,
        backend: str = "csr",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.filter = filter_
        self.rho = float(rho)
        self.backend = backend
        width = hidden if phi0_layers > 0 else in_features
        self.phi0 = MLP(in_features, width, hidden=hidden, num_layers=phi0_layers,
                        dropout=dropout, rng=rng)
        self.phi1 = MLP(filter_.output_width(width), out_features, hidden=hidden,
                        num_layers=phi1_layers, dropout=dropout, rng=rng)
        self._register_filter_params(filter_)
        self._filter_width = width

    def forward(self, graph: Graph, x: Optional[Tensor] = None) -> Tensor:
        """Logits for every node of ``graph`` (full-batch)."""
        if x is None:
            if graph.features is None:
                raise TrainingError("graph has no features and none were passed")
            x = Tensor(graph.features)
        hidden = self.phi0(x)
        if hidden.shape[1] != self._filter_width:
            raise TrainingError(
                f"filter expects width {self._filter_width}, got {hidden.shape[1]}"
            )
        ctx = PropagationContext.for_graph(graph, self.rho, self.backend)
        filtered = self.filter.forward(ctx, hidden, self.filter_params())
        return self.phi1(filtered)


class MiniBatchModel(Module, _FilterParameterMixin):
    """Mini-batch decoupled spectral GNN over precomputed channels.

    Consumes ``(B, C, F)`` row batches of the filter's precomputed channel
    tensor; φ0 is structurally absent (the filter already saw raw X during
    precompute), matching the paper's mini-batch configuration.
    """

    def __init__(
        self,
        filter_: SpectralFilter,
        in_features: int,
        out_features: int,
        hidden: int = 64,
        phi1_layers: int = 2,
        dropout: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.filter = filter_
        self.phi1 = MLP(filter_.output_width(in_features), out_features,
                        hidden=hidden, num_layers=phi1_layers,
                        dropout=dropout, rng=rng)
        self._register_filter_params(filter_)

    def forward(self, batch: Tensor) -> Tensor:
        """Logits for one row batch of precomputed channels."""
        if batch.ndim != 3:
            raise TrainingError(
                f"mini-batch input must be (B, C, F), got {batch.shape}"
            )
        combined = self.filter.batch_combine(batch, self.filter_params())
        return self.phi1(combined)
