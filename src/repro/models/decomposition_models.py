"""Decomposition-based spectral models — and why the benchmark excludes them.

Appendix A.3 lists models that need the *full* eigendecomposition
(SpectralCNN, LanczosNet) and excludes them from the evaluation because
O(n³) decomposition "is largely prohibitive, especially on large graphs".
We implement compact versions so that claim is demonstrable rather than
asserted:

- :class:`SpectralCNNLite` — Bruna et al.'s original construction: a free
  filter vector over the first ``num_modes`` eigenvectors, learned
  per-frequency, plus a feature transform.
- :class:`LanczosNetLite` — Lanczos-approximated spectral filtering:
  a small Krylov decomposition provides approximate eigenpairs, filtered by
  a learned response MLP over the Ritz values.

``bench_ablation_design.py::test_ablation_decomposition_cost`` measures the
decomposition wall time against polynomial-filter propagation across graph
sizes — the scaling gap that motivates the paper's polynomial-only scope.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autodiff.tensor import Tensor
from ..errors import TrainingError
from ..graph.graph import Graph
from ..nn.linear import MLP, Linear
from ..nn.module import Module, Parameter
from ..spectral.decomposition import laplacian_eigendecomposition


class SpectralCNNLite(Module):
    """Bruna-style spectral CNN over the leading Laplacian eigenvectors.

    ``H = φ( U_r · diag(w) · U_rᵀ · X · W )`` with a *free* (non-parametric
    in λ) learnable response ``w`` per retained mode — maximal spectral
    flexibility, no spatial locality, and an O(n³) setup cost.
    """

    def __init__(
        self,
        graph: Graph,
        in_features: int,
        out_features: int,
        num_modes: int = 32,
        hidden: int = 64,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        eigenvalues, eigenvectors = laplacian_eigendecomposition(graph)
        num_modes = min(num_modes, graph.num_nodes)
        self.eigenvalues = eigenvalues[:num_modes]
        self._modes = eigenvectors[:, :num_modes].astype(np.float32)
        self.response = Parameter(np.ones(num_modes, dtype=np.float32))
        self.transform = Linear(in_features, hidden, rng=rng)
        self.head = MLP(hidden, out_features, hidden=hidden, num_layers=1,
                        rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        transformed = self.transform(x).relu()
        modes = Tensor(self._modes)
        spectral = modes.T @ transformed            # (r, H)
        modulated = spectral * self.response.reshape(-1, 1)
        recovered = modes @ modulated               # (n, H)
        return self.head(recovered)

    def learned_response(self) -> Tuple[np.ndarray, np.ndarray]:
        """(eigenvalues, learned per-mode response) for analysis."""
        return self.eigenvalues.copy(), self.response.data.copy()


def lanczos_decomposition(graph: Graph, num_steps: int = 16,
                          seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lanczos on ``Ã``: Ritz values and vectors from a Krylov basis.

    Returns ``(ritz_values, ritz_vectors)`` with ``ritz_vectors`` shaped
    ``(n, num_steps)`` — the low-rank stand-in LanczosNet filters over.
    """
    if num_steps < 2:
        raise TrainingError(f"num_steps must be >= 2, got {num_steps}")
    adjacency = graph.normalized_adjacency(0.5)
    n = graph.num_nodes
    num_steps = min(num_steps, n)
    rng = np.random.default_rng(seed)
    q = rng.normal(size=n)
    q /= np.linalg.norm(q)
    basis = [q]
    alphas, betas = [], []
    beta = 0.0
    q_prev = np.zeros(n)
    for step in range(num_steps):
        z = adjacency @ basis[-1]
        alpha = float(basis[-1] @ z)
        z = z - alpha * basis[-1] - beta * q_prev
        # Full reorthogonalization keeps the small basis numerically clean.
        for vector in basis:
            z -= (vector @ z) * vector
        alphas.append(alpha)
        beta = float(np.linalg.norm(z))
        if beta < 1e-10 or step == num_steps - 1:
            break
        betas.append(beta)
        q_prev = basis[-1]
        basis.append(z / beta)
    tridiagonal = np.diag(alphas)
    for i, b in enumerate(betas):
        tridiagonal[i, i + 1] = tridiagonal[i + 1, i] = b
    ritz_values, small_vectors = np.linalg.eigh(tridiagonal)
    ritz_vectors = np.stack(basis, axis=1) @ small_vectors
    return ritz_values, ritz_vectors.astype(np.float32)


class LanczosNetLite(Module):
    """LanczosNet: spectral filtering over Ritz pairs with a learned response.

    The Lanczos basis replaces the full decomposition (O(n·s²) instead of
    O(n³)); a small MLP maps each Ritz value to a response weight, making
    the filter a smooth learned function of frequency.
    """

    def __init__(
        self,
        graph: Graph,
        in_features: int,
        out_features: int,
        num_steps: int = 16,
        hidden: int = 64,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        ritz_values, ritz_vectors = lanczos_decomposition(graph, num_steps)
        self.ritz_values = ritz_values
        self._ritz_vectors = ritz_vectors
        self.response_net = MLP(1, 1, hidden=16, num_layers=2, rng=rng)
        self.transform = Linear(in_features, hidden, rng=rng)
        self.head = MLP(hidden, out_features, hidden=hidden, num_layers=1,
                        rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        transformed = self.transform(x).relu()
        vectors = Tensor(self._ritz_vectors)
        spectral = vectors.T @ transformed
        responses = self.response_net(
            Tensor(self.ritz_values[:, None].astype(np.float32)))
        modulated = spectral * responses
        recovered = vectors @ modulated
        # Residual connection keeps the rank-s projection from discarding
        # everything outside the Krylov subspace.
        return self.head(recovered + transformed)
