"""Model architectures: decoupled (main), iterative, and baselines."""

from .baselines import (
    ANSGTLite,
    NAGphormerLite,
    make_chebnet,
    make_gcn,
    make_graphsage,
)
from .decomposition_models import (
    LanczosNetLite,
    SpectralCNNLite,
    lanczos_decomposition,
)
from .decoupled import DecoupledModel, MiniBatchModel
from .iterative_spectral import IterativeSpectralModel
from .iterative import (
    IterativeModel,
    cheb_propagation,
    gcn_propagation,
    sage_propagation,
)

__all__ = [
    "DecoupledModel",
    "MiniBatchModel",
    "IterativeModel",
    "IterativeSpectralModel",
    "gcn_propagation",
    "sage_propagation",
    "cheb_propagation",
    "make_gcn",
    "make_graphsage",
    "make_chebnet",
    "NAGphormerLite",
    "ANSGTLite",
    "SpectralCNNLite",
    "LanczosNetLite",
    "lanczos_decomposition",
]
