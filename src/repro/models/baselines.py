"""Out-of-framework baselines for the implementation comparison (Table 6).

The paper contrasts its unified filters against models "deployed in other
popular frameworks": spatial message-passing GNNs (GCN, GraphSAGE),
spectral message-passing (ChebNet), and scalable graph transformers
(NAGphormer, ANS-GT). We rebuild each on the same substrate so the
comparison isolates architecture and backend, exactly as the table does:

- GCN / GraphSAGE / ChebNet: :class:`~repro.models.iterative.IterativeModel`
  configurations, runnable on both the ``csr`` (SP) and ``coo_gather`` (EI)
  propagation backends.
- NAGphormer-lite: hop2token — precompute K+1 hop features per node, embed
  as a token sequence, run a small transformer, attention-pool, classify.
  Captures the long-precompute / per-node-sequence cost profile.
- ANSGT-lite: adaptive-node-sampling transformer — per node, a token set of
  itself plus sampled neighbours and sampled global anchors, attention over
  the set. Captures the sampling + quadratic-attention cost profile that
  makes ANS-GT the slowest entry of Table 6.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import functional as F
from ..autodiff.sparse import spmm_numpy
from ..autodiff.tensor import Tensor
from ..graph.graph import Graph
from ..nn.attention import TransformerBlock
from ..nn.linear import MLP, Linear
from ..nn.module import Module
from .iterative import (
    IterativeModel,
    cheb_propagation,
    gcn_propagation,
    sage_propagation,
)


def make_gcn(in_features: int, out_features: int, hidden: int = 64,
             num_layers: int = 2, dropout: float = 0.5, backend: str = "csr",
             rng: Optional[np.random.Generator] = None) -> IterativeModel:
    """Two-layer GCN (Kipf & Welling) on the chosen backend."""
    return IterativeModel(in_features, out_features, gcn_propagation(),
                          width_multiplier=1, hidden=hidden,
                          num_layers=num_layers, dropout=dropout,
                          backend=backend, rng=rng)


def make_graphsage(in_features: int, out_features: int, hidden: int = 64,
                   num_layers: int = 2, dropout: float = 0.5,
                   backend: str = "csr",
                   rng: Optional[np.random.Generator] = None) -> IterativeModel:
    """GraphSAGE-mean with self/neighbour concatenation."""
    return IterativeModel(in_features, out_features, sage_propagation(),
                          width_multiplier=2, hidden=hidden,
                          num_layers=num_layers, dropout=dropout,
                          backend=backend, rng=rng)


def make_chebnet(in_features: int, out_features: int, hidden: int = 64,
                 num_layers: int = 2, order: int = 2, dropout: float = 0.5,
                 backend: str = "csr",
                 rng: Optional[np.random.Generator] = None) -> IterativeModel:
    """Iterative ChebNet with per-layer order-``order`` Chebyshev stacks."""
    return IterativeModel(in_features, out_features, cheb_propagation(order),
                          width_multiplier=order + 1, hidden=hidden,
                          num_layers=num_layers, dropout=dropout,
                          backend=backend, rng=rng)


class NAGphormerLite(Module):
    """Hop2Token graph transformer (Chen et al., simplified to one head).

    ``precompute_tokens`` builds the (n, K+1, F) hop-feature tensor — the
    expensive CPU stage Table 6 reports separately — and the forward pass
    is a per-node transformer over that short token sequence, trained on
    row mini-batches.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_hops: int = 4,
        hidden: int = 64,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_hops = int(num_hops)
        self.embed = Linear(in_features, hidden, rng=rng)
        self.block = TransformerBlock(hidden, dropout=dropout, rng=rng)
        self.pool_query = Linear(hidden, 1, rng=rng)
        self.head = MLP(hidden, out_features, hidden=hidden, num_layers=2,
                        dropout=dropout, rng=rng)

    def precompute_tokens(self, graph: Graph, rho: float = 0.5) -> np.ndarray:
        """Hop2Token: stack ``Ã^k X`` for k = 0..K as per-node sequences."""
        adjacency = graph.normalized_adjacency(rho)
        tokens = [graph.features.astype(np.float32)]
        for _ in range(self.num_hops):
            tokens.append(spmm_numpy(adjacency, tokens[-1]))
        return np.stack(tokens, axis=1)

    def forward(self, tokens: Tensor) -> Tensor:
        """Classify a (B, K+1, F) batch of token sequences."""
        b, t, _ = tokens.shape
        embedded = self.embed(tokens.reshape(b * t, -1)).reshape(b, t, -1)
        encoded = self.block(embedded)
        scores = self.pool_query(encoded.reshape(b * t, -1)).reshape(b, t)
        weights = F.softmax(scores, axis=1).reshape(b, t, 1)
        pooled = (encoded * weights).sum(axis=1)
        return self.head(pooled)


class ANSGTLite(Module):
    """Adaptive-node-sampling graph transformer (Zhang et al., simplified).

    For every target node the token set is [self] + sampled neighbours +
    sampled global anchors; a transformer block attends over it. Sampling
    happens per batch (``sample_tokens``), which is what makes the real
    ANS-GT's training loop so much slower than decoupled models.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_neighbors: int = 4,
        num_anchors: int = 4,
        hidden: int = 64,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_neighbors = int(num_neighbors)
        self.num_anchors = int(num_anchors)
        self._rng = rng
        self.embed = Linear(in_features, hidden, rng=rng)
        self.block = TransformerBlock(hidden, dropout=dropout, rng=rng)
        self.head = MLP(hidden, out_features, hidden=hidden, num_layers=2,
                        dropout=dropout, rng=rng)

    def sample_tokens(self, graph: Graph, nodes: np.ndarray) -> np.ndarray:
        """Token features (B, 1+neighbours+anchors, F) for a node batch."""
        features = graph.features
        indptr, indices = graph.adjacency.indptr, graph.adjacency.indices
        batch = []
        anchors = self._rng.integers(0, graph.num_nodes, size=self.num_anchors)
        for node in nodes:
            neighbours = indices[indptr[node]:indptr[node + 1]]
            if neighbours.size:
                picked = self._rng.choice(neighbours, size=self.num_neighbors)
            else:
                picked = np.full(self.num_neighbors, node)
            token_ids = np.concatenate([[node], picked, anchors])
            batch.append(features[token_ids])
        return np.stack(batch, axis=0).astype(np.float32)

    def forward(self, tokens: Tensor) -> Tensor:
        """Classify a (B, T, F) batch of sampled token sets."""
        b, t, _ = tokens.shape
        embedded = self.embed(tokens.reshape(b * t, -1)).reshape(b, t, -1)
        encoded = self.block(embedded)
        pooled = encoded[:, 0, :]  # the target node's token
        return self.head(pooled)
