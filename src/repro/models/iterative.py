"""The iterative architecture: propagation and transformation interleaved.

Spatial GNNs in the paper's framing (Appendix A.1) apply one hop of
propagation followed by a learnable transformation per layer:
``H^(j+1) = φ( f(Ã) · H^(j) )``. :class:`IterativeModel` implements that
generic stack, parameterized by a per-layer propagation rule; the Table 6
baselines in :mod:`repro.models.baselines` are thin configurations of it.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..autodiff import functional as F
from ..autodiff.sparse import spmm
from ..autodiff.tensor import Tensor, concatenate
from ..errors import TrainingError
from ..graph.graph import Graph
from ..nn.linear import Linear
from ..nn.module import Module, ModuleList

# A propagation rule maps (graph, layer_input, backend) -> propagated tensor.
PropagationRule = Callable[[Graph, Tensor, str], Tensor]


def gcn_propagation(rho: float = 0.5) -> PropagationRule:
    """One hop of ``Ã H`` with the GCN normalization."""

    def rule(graph: Graph, h: Tensor, backend: str) -> Tensor:
        return spmm(graph.normalized_adjacency(rho), h, backend=backend)

    return rule


def sage_propagation() -> PropagationRule:
    """GraphSAGE mean aggregation: concat(h, mean-neighbour(h))."""

    def rule(graph: Graph, h: Tensor, backend: str) -> Tensor:
        mean_adj = graph.normalized_adjacency(rho=1.0, self_loops=False)
        aggregated = spmm(mean_adj, h, backend=backend)
        return concatenate([h, aggregated], axis=1)

    return rule


def cheb_propagation(order: int = 2, rho: float = 0.5) -> PropagationRule:
    """Order-``order`` Chebyshev layer: concat of T_k(L̂) h for k ≤ order."""

    def rule(graph: Graph, h: Tensor, backend: str) -> Tensor:
        adjacency = graph.normalized_adjacency(rho)
        terms = [h]
        if order >= 1:
            terms.append(-spmm(adjacency, h, backend=backend))
        for _ in range(2, order + 1):
            nxt = -spmm(adjacency, terms[-1], backend=backend) * 2.0 - terms[-2]
            terms.append(nxt)
        return concatenate(terms, axis=1)

    return rule


#: Width multiplier each rule applies to its input.
PROPAGATION_WIDTHS = {
    "gcn": 1,
    "sage": 2,
}


class IterativeModel(Module):
    """J layers of propagate-then-transform with ReLU and dropout.

    Parameters
    ----------
    propagation:
        Per-layer propagation rule (see module-level factories).
    width_multiplier:
        Output width of the rule relative to its input (1 for GCN, 2 for
        SAGE's concat, order+1 for Chebyshev).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        propagation: PropagationRule,
        width_multiplier: int = 1,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
        backend: str = "csr",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise TrainingError(f"num_layers must be >= 1, got {num_layers}")
        rng = rng or np.random.default_rng()
        self.propagation = propagation
        self.backend = backend
        self.dropout = float(dropout)
        self._rng = rng
        self.layers = ModuleList()
        width = in_features
        for layer_index in range(num_layers):
            out = out_features if layer_index == num_layers - 1 else hidden
            self.layers.append(Linear(width * width_multiplier, out, rng=rng))
            width = out

    def forward(self, graph: Graph, x: Optional[Tensor] = None) -> Tensor:
        if x is None:
            if graph.features is None:
                raise TrainingError("graph has no features and none were passed")
            x = Tensor(graph.features)
        h = x
        for index, layer in enumerate(self.layers):
            h = F.dropout(h, self.dropout, training=self.training, rng=self._rng)
            h = self.propagation(graph, h, self.backend)
            h = layer(h)
            if index < len(self.layers) - 1:
                h = h.relu()
        return h
