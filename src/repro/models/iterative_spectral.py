"""The iterative spectral architecture: per-layer filters with transforms.

Table 1 tags each model I (iterative) or D (decoupled). The decoupled form
runs all K propagations in one filter between φ0 and φ1; the iterative
form interleaves a lower-order filter with a weight transform + ReLU per
layer — GCN, GIN, ChebNet, ARMA are of this shape. Appendix A.1 argues the
two have the same spectral expressiveness (the layer responses compose:
``g = g^(J) ∗ ... ∗ g^(1)``), at different cost profiles.

:class:`IterativeSpectralModel` makes that architecture available for *any*
registry filter: each layer owns an independent copy of the filter's
parameters, applies ``g(L̃)`` to its input, then a Linear + ReLU. The
composed frequency response is exposed for analysis, so the architecture
comparison (``bench_ablation_architecture``) can check response composition
against measured behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..autodiff import functional as F
from ..autodiff.tensor import Tensor
from ..errors import TrainingError
from ..filters.base import PropagationContext, SpectralFilter
from ..graph.graph import Graph
from ..nn.linear import Linear
from ..nn.module import Module, ModuleList, Parameter


class _FilterLayer(Module):
    """One iterative layer: filter application + affine transform."""

    def __init__(self, filter_: SpectralFilter, in_features: int,
                 out_features: int, rng: np.random.Generator):
        super().__init__()
        self.filter = filter_
        self.linear = Linear(filter_.output_width(in_features), out_features,
                             rng=rng)
        self._filter_param_names: List[str] = []
        for name, spec in filter_.parameter_spec().items():
            attr = f"filter_{name}"
            setattr(self, attr, Parameter(spec.init.copy()))
            self._filter_param_names.append(name)

    def filter_params(self) -> Optional[Dict[str, Tensor]]:
        if not self._filter_param_names:
            return None
        return {name: getattr(self, f"filter_{name}")
                for name in self._filter_param_names}

    def forward(self, ctx: PropagationContext, x: Tensor) -> Tensor:
        filtered = self.filter.forward(ctx, x, self.filter_params())
        return self.linear(filtered)


class IterativeSpectralModel(Module):
    """J stacked (filter → Linear → ReLU) layers over one filter family.

    Parameters
    ----------
    filter_factory:
        Zero-argument callable returning a fresh filter instance per layer
        (layers must not share filter hyper-structure state).
    num_layers:
        J; the receptive field is J × K hops.
    """

    def __init__(
        self,
        filter_factory,
        in_features: int,
        out_features: int,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
        rho: float = 0.5,
        backend: str = "csr",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise TrainingError(f"num_layers must be >= 1, got {num_layers}")
        rng = rng or np.random.default_rng()
        self.rho = float(rho)
        self.backend = backend
        self.dropout = float(dropout)
        self._rng = rng
        self.layers = ModuleList()
        width = in_features
        for index in range(num_layers):
            out = out_features if index == num_layers - 1 else hidden
            self.layers.append(_FilterLayer(filter_factory(), width, out, rng))
            width = out

    def forward(self, graph: Graph, x: Optional[Tensor] = None) -> Tensor:
        if x is None:
            if graph.features is None:
                raise TrainingError("graph has no features and none were passed")
            x = Tensor(graph.features)
        ctx = PropagationContext.for_graph(graph, self.rho, self.backend)
        h = x
        for index, layer in enumerate(self.layers):
            h = F.dropout(h, self.dropout, training=self.training, rng=self._rng)
            h = layer(ctx, h)
            if index < len(self.layers) - 1:
                h = h.relu()
        return h

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def composed_response(self, lams: np.ndarray) -> np.ndarray:
        """Product of the layers' responses: the model's overall filter.

        Exact for the linear part of the network (Appendix A.1's
        ``g = Π g^(j)``); nonlinearities between layers make it an
        approximation of the trained model, which is precisely the paper's
        point about iterative models being *as expressive as* decoupled
        ones in the spectral sense.
        """
        response = np.ones_like(np.asarray(lams, dtype=np.float64))
        for layer in self.layers:
            params = layer.filter_params()
            numpy_params = (
                {k: v.data for k, v in params.items()} if params else None
            )
            response = response * layer.filter.response(lams, numpy_params)
        return response

    def filter_parameters(self) -> List[Parameter]:
        """Per-layer filter parameters (for the θ optimizer group)."""
        params: List[Parameter] = []
        for layer in self.layers:
            layer_params = layer.filter_params()
            if layer_params:
                params.extend(layer_params.values())
        return params

    def transform_parameters(self) -> List[Parameter]:
        """All non-filter parameters."""
        filter_ids = {id(p) for p in self.filter_parameters()}
        return [p for p in self.parameters() if id(p) not in filter_ids]

    def numpy_filter_params(self) -> Optional[Dict[str, np.ndarray]]:
        """Per-layer learned filter parameters, namespaced by layer index."""
        out: Dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            params = layer.filter_params()
            if params:
                for name, tensor in params.items():
                    out[f"layer{index}.{name}"] = tensor.data.copy()
        return out or None
