"""repro — a unified spectral GNN benchmark, rebuilt from first principles.

Reproduction of "A Comprehensive Benchmark on Spectral GNNs: The Impact on
Efficiency, Memory, and Effectiveness" (SIGMOD): 27 spectral graph filters
in a taxonomy of fixed / variable / filter-bank designs, trainable under
full-batch, mini-batch, and graph-partition schemes, with an evaluation
harness regenerating every table and figure of the paper.

Quickstart::

    from repro.datasets import synthesize
    from repro.tasks import run_node_classification
    from repro.training import TrainConfig

    graph = synthesize("cora", scale=0.5, seed=0)
    result = run_node_classification(graph, "ppr", scheme="mini_batch",
                                     config=TrainConfig(epochs=50))
    print(result.test_score)
"""

from . import autodiff, bench, datasets, filters, graph, models, nn
from . import runtime, spectral, tasks, telemetry, training
from .errors import (
    AutodiffError,
    DatasetError,
    DeviceOOMError,
    FilterError,
    GraphError,
    ReproError,
    TrainingError,
)

__version__ = "1.0.0"

__all__ = [
    "autodiff",
    "nn",
    "graph",
    "filters",
    "models",
    "datasets",
    "training",
    "tasks",
    "spectral",
    "runtime",
    "bench",
    "telemetry",
    "ReproError",
    "GraphError",
    "FilterError",
    "AutodiffError",
    "DatasetError",
    "TrainingError",
    "DeviceOOMError",
    "__version__",
]
