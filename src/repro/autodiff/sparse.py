"""Sparse-dense products with gradients: the graph-propagation primitive.

Graph propagation in every spectral filter is the product of a constant
``n × n`` sparse matrix (the normalized adjacency or Laplacian) with a dense
``n × F`` representation. The sparse operand never needs a gradient — the
graph is data, not a parameter — so only the dense-side gradient
``Pᵀ · grad_out`` is implemented.

Two backends are provided, mirroring the paper's Table 6 comparison between
PyG's ``torch.sparse`` (SP) and ``EdgeIndex`` (EI) backends:

- ``csr``: scipy CSR matmul. Fast, O(m) index memory.
- ``coo_gather``: explicit gather / multiply / scatter-add over the edge
  list. Same result, but materializes an O(mF) intermediate — exactly the
  memory blow-up the paper measures for the EI backend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import AutodiffError
from ..runtime import blocked as _blocked
from ..runtime import cache as _cache
from .tensor import Tensor, _notify_alloc, _notify_op


def spmm(matrix: sp.spmatrix, dense: Tensor, backend: str = "csr") -> Tensor:
    """Multiply a constant sparse matrix by a dense tensor: ``P @ X``.

    Parameters
    ----------
    matrix:
        ``(n, n)`` scipy sparse matrix, treated as a constant.
    dense:
        ``(n, F)`` tensor; gradient flows through this operand.
    backend:
        ``"csr"`` (scipy matmul) or ``"coo_gather"`` (edge-wise gather /
        scatter, the memory-hungrier PyG-EdgeIndex analogue).
    """
    if matrix.shape[1] != dense.shape[0]:
        raise AutodiffError(
            f"spmm shape mismatch: {matrix.shape} @ {dense.shape}"
        )
    if backend == "csr":
        # All CSR products route through the blocked tier hook: a no-op
        # `csr @ dense` without an active blocked scope, row-tiled (and
        # bit-identical, since CSR rows accumulate independently) with one.
        csr = matrix.tocsr()
        data = _blocked.spmm_csr(csr, dense.data)
        width = dense.shape[1] if dense.ndim > 1 else 1
        _notify_op("spmm", 2 * csr.nnz * width, data.nbytes)
        csr_t: Optional[sp.csr_matrix] = None

        def backward(grad: np.ndarray):
            # The sparse operand is constant, so its transpose is too: the
            # process-wide cache materializes Pᵀ once per matrix instead of
            # once per forward closure (cache.spmm_t.* counters show the
            # traffic). With caching disabled the seed behaviour returns:
            # one materialization per closure, memoized across multiple
            # backward passes through the same node.
            nonlocal csr_t
            if _cache.is_enabled():
                return (_blocked.spmm_csr(_cache.transpose_csr(csr), grad),)
            if csr_t is None:
                csr_t = _cache.materialize_transpose(csr)
            return (_blocked.spmm_csr(csr_t, grad),)

        return Tensor._make(np.asarray(data), (dense,), backward, "spmm")
    if backend == "coo_gather":
        return _spmm_coo_gather(matrix, dense)
    raise AutodiffError(f"unknown spmm backend {backend!r}")


def _spmm_coo_gather(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Edge-list propagation: gather source rows, weight, scatter to targets.

    Numerically identical to the CSR backend but allocates an ``(m, F)``
    message buffer, reproducing the O(mF) footprint of edge-indexed
    message-passing backends.
    """
    coo = matrix.tocoo()
    rows, cols, vals = coo.row, coo.col, coo.data

    messages = dense.data[cols] * vals[:, None]
    _notify_alloc(messages)  # the O(mF) intermediate is what we meter
    data = np.zeros((matrix.shape[0], dense.shape[1]), dtype=dense.dtype)
    np.add.at(data, rows, messages)
    _notify_op("spmm", 2 * len(vals) * dense.shape[1],
               data.nbytes + messages.nbytes)

    def backward(grad: np.ndarray):
        gathered = grad[rows] * vals[:, None]
        _notify_alloc(gathered)
        out = np.zeros_like(dense.data)
        np.add.at(out, cols, gathered)
        return (out,)

    return Tensor._make(data, (dense,), backward, "spmm_coo")


def spmm_numpy(matrix: sp.spmatrix, dense: np.ndarray, backend: str = "csr") -> np.ndarray:
    """Gradient-free sparse-dense product for precomputation stages.

    Mini-batch precomputation runs outside the autodiff graph (on "CPU", in
    the paper's terms); this helper keeps that code path free of Tensor
    bookkeeping while still supporting both backends.
    """
    if backend == "csr":
        csr = matrix.tocsr()
        out = _blocked.spmm_csr(csr, dense)
        width = dense.shape[1] if dense.ndim > 1 else 1
        _notify_op("spmm", 2 * csr.nnz * width, out.nbytes)
        return out
    if backend == "coo_gather":
        coo = matrix.tocoo()
        messages = dense[coo.col] * coo.data[:, None]
        out = np.zeros((matrix.shape[0], dense.shape[1]), dtype=dense.dtype)
        np.add.at(out, coo.row, messages)
        _notify_op("spmm", 2 * coo.nnz * dense.shape[1],
                   out.nbytes + messages.nbytes)
        return out
    raise AutodiffError(f"unknown spmm backend {backend!r}")
