"""Gradient-descent optimizers with parameter groups.

The paper's hyperparameter protocol (Table 4) tunes the learning rate and
weight decay of the transformation weights (φ0, φ1) separately from those of
the filter parameters (θ, γ). Parameter groups carry per-group ``lr`` and
``weight_decay`` to support exactly that.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..errors import TrainingError
from .tensor import Tensor

ParamGroup = dict


def _normalize_groups(
    params: Union[Sequence[Tensor], Sequence[ParamGroup]],
    lr: float,
    weight_decay: float,
) -> List[ParamGroup]:
    params = list(params)
    if not params:
        raise TrainingError("optimizer received no parameters")
    if isinstance(params[0], dict):
        groups = []
        for group in params:
            if "params" not in group:
                raise TrainingError("parameter group missing 'params' key")
            groups.append(
                {
                    "params": list(group["params"]),
                    "lr": float(group.get("lr", lr)),
                    "weight_decay": float(group.get("weight_decay", weight_decay)),
                }
            )
        return groups
    return [{"params": params, "lr": float(lr), "weight_decay": float(weight_decay)}]


class Optimizer:
    """Base optimizer over :class:`Tensor` leaf parameters."""

    def __init__(
        self,
        params: Union[Sequence[Tensor], Sequence[ParamGroup]],
        lr: float = 1e-2,
        weight_decay: float = 0.0,
    ):
        self.groups = _normalize_groups(params, lr, weight_decay)
        for group in self.groups:
            for param in group["params"]:
                if not isinstance(param, Tensor) or not param.requires_grad:
                    raise TrainingError("optimizer parameters must require grad")

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for group in self.groups:
            for param in group["params"]:
                param.grad = None

    def step(self) -> None:
        """Apply one update; parameters without gradients are skipped."""
        for group in self.groups:
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad
                if group["weight_decay"]:
                    grad = grad + group["weight_decay"] * param.data
                self._update(param, grad, group)

    def _update(self, param: Tensor, grad: np.ndarray, group: ParamGroup) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        params,
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr=lr, weight_decay=weight_decay)
        self.momentum = float(momentum)
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, param: Tensor, grad: np.ndarray, group: ParamGroup) -> None:
        if self.momentum:
            velocity = self._velocity.get(id(param))
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[id(param)] = velocity
            grad = velocity
        param.data = param.data - group["lr"] * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction; the benchmark's default."""

    def __init__(
        self,
        params,
        lr: float = 1e-2,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr=lr, weight_decay=weight_decay)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self._step_count = 0
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        super().step()

    def _update(self, param: Tensor, grad: np.ndarray, group: ParamGroup) -> None:
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        self._m[key] = m
        self._v[key] = v
        m_hat = m / (1.0 - self.beta1 ** self._step_count)
        v_hat = v / (1.0 - self.beta2 ** self._step_count)
        param.data = param.data - group["lr"] * m_hat / (np.sqrt(v_hat) + self.eps)
