"""A small reverse-mode automatic differentiation engine over numpy.

This module is the stand-in for the PyTorch autograd substrate the paper's
artifact builds on. It provides a :class:`Tensor` wrapping a numpy array
together with a dynamically-built computation graph and a topological-order
backward pass. Only what the benchmark needs is implemented, but everything
implemented is exact: gradients are validated against finite differences in
the test suite.

Design notes
------------
- Tensors are immutable from the graph's point of view: ops return new
  tensors; ``data`` should not be mutated after a tensor participates in a
  graph (optimizers mutate leaf parameters between graph builds, which is
  fine).
- Broadcasting follows numpy semantics; gradients are un-broadcast by
  summing over the broadcast axes.
- An optional allocation hook lets the runtime layer meter every array the
  engine materializes, which is how the simulated device accounts "GPU"
  memory without a GPU.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Sequence, Union

import numpy as np

from ..errors import AutodiffError

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True
#: Registered allocation subscribers, dispatched in registration order.
#: A tuple (not a list) so dispatch iterates over an immutable snapshot:
#: a hook that adds/removes hooks mid-notification cannot shear the loop.
_allocation_hooks: tuple = ()
#: The adapter currently installed by the deprecated single-slot setter.
_legacy_allocation_hook: Optional[Callable] = None
_op_hook: Optional[Callable[[str, int, int], None]] = None

#: Signature of a registered allocation hook:
#: ``hook(nbytes, array, op)`` — the byte size, the freshly materialized
#: numpy array itself (so subscribers can register weakref-based free
#: detection), and the op name that produced it (``"leaf"`` for arrays
#: wrapped directly in a :class:`Tensor`).
AllocationHook = Callable[[int, np.ndarray, str], None]


def add_allocation_hook(hook: AllocationHook) -> AllocationHook:
    """Subscribe ``hook(nbytes, array, op)`` to every engine allocation.

    Multiple subscribers compose: :class:`repro.runtime.device.DeviceModel`
    meters simulated device memory per step while the telemetry allocation
    ledger attributes the same bytes to the open span tree — neither
    displaces the other. Adding an already-registered hook is a no-op;
    returns ``hook`` so it can be captured for later removal.
    """
    global _allocation_hooks
    if hook not in _allocation_hooks:
        _allocation_hooks = _allocation_hooks + (hook,)
    return hook


def remove_allocation_hook(hook: AllocationHook) -> None:
    """Unsubscribe one allocation hook (no-op when not registered).

    Compares by equality, not identity, so bound methods work: each
    ``obj.method`` access creates a fresh bound-method object, but they
    compare equal, letting ``add(self._on_alloc)`` / ``remove(self.
    _on_alloc)`` pair up naturally.
    """
    global _allocation_hooks
    _allocation_hooks = tuple(h for h in _allocation_hooks if h != hook)


def set_allocation_hook(hook: Optional[Callable[[int], None]]) -> None:
    """Deprecated single-slot setter kept for backward compatibility.

    Historical callers installed ``hook(nbytes)`` and relied on ``None``
    to remove it; this shim adapts the old one-argument signature onto
    :func:`add_allocation_hook` / :func:`remove_allocation_hook`. Only the
    shim's own previous hook is displaced — hooks registered through the
    multi-subscriber API are untouched, which is the fix for
    ``DeviceModel.step()`` silently clobbering the span tracer's
    allocation attribution.
    """
    global _legacy_allocation_hook
    if _legacy_allocation_hook is not None:
        remove_allocation_hook(_legacy_allocation_hook)
        _legacy_allocation_hook = None
    if hook is not None:
        def adapter(nbytes: int, array: np.ndarray, op: str,
                    _hook=hook) -> None:
            _hook(nbytes)

        _legacy_allocation_hook = adapter
        add_allocation_hook(adapter)


def set_op_hook(hook: Optional[Callable[[str, int, int], None]]) -> None:
    """Install ``hook(op, flops, nbytes)`` called per compute-heavy op.

    Fired by dense matmuls here and sparse propagation in
    :mod:`repro.autodiff.sparse` with the op's FLOP estimate and output
    byte count. Used by :mod:`repro.telemetry` for op-level counters; pass
    ``None`` to remove the hook.
    """
    global _op_hook
    _op_hook = hook


def _notify_alloc(arr: np.ndarray, op: str = "leaf") -> None:
    for hook in _allocation_hooks:
        hook(arr.nbytes, arr, op)


def _notify_op(op: str, flops: int, nbytes: int) -> None:
    if _op_hook is not None:
        _op_hook(op, flops, nbytes)


def _notify_ewise(data: np.ndarray) -> None:
    """Meter one elementwise op: ~1 FLOP and one output write per element.

    Routed through the same hook as matmul/spmm so elementwise arithmetic
    (activations, filter combinations, cache-induced deltas) shows up in
    ``ops.ewise.*`` instead of being invisible to FLOP accounting.
    """
    if _op_hook is not None:
        _op_hook("ewise", data.size, data.nbytes)


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph construction (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    """Return whether new ops will be recorded on the autodiff graph."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and autodiff history.

    Parameters
    ----------
    data:
        Array-like payload; converted to a float numpy array.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` for this
        tensor during :meth:`backward`.
    dtype:
        Optional dtype override. Defaults to ``float32`` for fresh arrays
        (matching common GNN practice) while preserving float64 inputs so
        gradient checks can run in double precision.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: Optional[np.dtype] = None,
    ):
        if isinstance(data, Tensor):
            raise AutodiffError("wrap raw arrays, not Tensors")
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        elif not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self._op: str = "leaf"
        _notify_alloc(self.data, "leaf")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = requires
        if requires:
            out._backward = backward
            out._parents = tuple(parents)
        else:
            out._backward = None
            out._parents = ()
        out._op = op
        _notify_alloc(data, op)
        return out

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    def _item_error(self) -> float:
        raise AutodiffError(f"item() requires a single-element tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autodiff graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        out._op = "detach"
        return out

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient. Defaults to ones, which for the usual scalar loss
            is the conventional seed of 1.0.
        """
        if not self.requires_grad:
            raise AutodiffError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise AutodiffError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            node._accumulate_parent_grads(node_grad, grads)

    def _accumulate_parent_grads(
        self, node_grad: np.ndarray, grads: dict[int, np.ndarray]
    ) -> None:
        parent_grads = self._backward(node_grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        if len(parent_grads) != len(self._parents):
            raise AutodiffError(
                f"op {self._op!r} returned {len(parent_grads)} grads for "
                f"{len(self._parents)} parents"
            )
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            if parent._backward is None:
                # Leaf node: accumulate directly.
                if parent.grad is None:
                    parent.grad = pgrad.copy()
                else:
                    parent.grad = parent.grad + pgrad
            else:
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data + b.data
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

        return Tensor._make(data, (a, b), backward, "add")

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data - b.data
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, a.shape), _unbroadcast(-grad, b.shape))

        return Tensor._make(data, (a, b), backward, "sub")

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data * b.data
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * b.data, a.shape),
                _unbroadcast(grad * a.data, b.shape),
            )

        return Tensor._make(data, (a, b), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data / b.data
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / b.data, a.shape),
                _unbroadcast(-grad * a.data / (b.data * b.data), b.shape),
            )

        return Tensor._make(data, (a, b), backward, "div")

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self
        data = -a.data
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(data, (a,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise AutodiffError("tensor exponents are not supported; use exp/log")
        a = self
        data = a.data ** exponent
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (grad * exponent * a.data ** (exponent - 1),)

        return Tensor._make(data, (a,), backward, "pow")

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        if a.ndim > 2 or b.ndim > 2:
            return _batched_matmul(a, b)
        data = a.data @ b.data
        if _op_hook is not None:
            inner = a.data.shape[-1] if a.ndim else 1
            _op_hook("matmul", 2 * data.size * inner, data.nbytes)

        def backward(grad: np.ndarray):
            grad_a = grad @ b.data.T if a.requires_grad else None
            grad_b = a.data.T @ grad if b.requires_grad else None
            return (grad_a, grad_b)

        return Tensor._make(data, (a, b), backward, "matmul")

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        data = np.exp(a.data)
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._make(data, (a,), backward, "exp")

    def log(self) -> "Tensor":
        a = self
        data = np.log(a.data)
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (grad / a.data,)

        return Tensor._make(data, (a,), backward, "log")

    def sqrt(self) -> "Tensor":
        a = self
        data = np.sqrt(a.data)
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / data,)

        return Tensor._make(data, (a,), backward, "sqrt")

    def abs(self) -> "Tensor":
        a = self
        data = np.abs(a.data)
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (grad * np.sign(a.data),)

        return Tensor._make(data, (a,), backward, "abs")

    def tanh(self) -> "Tensor":
        a = self
        data = np.tanh(a.data)
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data * data),)

        return Tensor._make(data, (a,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        a = self
        # Numerically stable logistic.
        data = np.where(
            a.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(a.data, -60, 60))),
            np.exp(np.clip(a.data, -60, 60)) / (1.0 + np.exp(np.clip(a.data, -60, 60))),
        )
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (a,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0
        data = np.where(mask, a.data, 0.0)
        _notify_ewise(data)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (a,), backward, "relu")

    def clip(self, low: float, high: float) -> "Tensor":
        a = self
        data = np.clip(a.data, low, high)
        _notify_ewise(data)
        mask = (a.data >= low) & (a.data <= high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (a,), backward, "clip")

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, tuple]] = None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, a.shape).copy(),)

        return Tensor._make(np.asarray(data), (a,), backward, "sum")

    def mean(self, axis: Optional[Union[int, tuple]] = None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = a.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([a.shape[i] for i in axis]))
        else:
            count = a.shape[axis]

        def backward(grad: np.ndarray):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, a.shape) / count,)

        return Tensor._make(np.asarray(data), (a,), backward, "mean")

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                d = np.expand_dims(d, axis)
            mask = a.data == d
            # Split gradient evenly among ties (matches subgradient choice).
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            return (mask * g / counts,)

        return Tensor._make(np.asarray(data), (a,), backward, "max")

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        data = a.data.reshape(shape)

        def backward(grad: np.ndarray):
            return (grad.reshape(a.shape),)

        return Tensor._make(data, (a,), backward, "reshape")

    def transpose(self, axes: Optional[tuple] = None) -> "Tensor":
        a = self
        data = a.data.transpose(axes)
        if axes is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (a,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        a = self
        data = a.data[index]

        def backward(grad: np.ndarray):
            out = np.zeros_like(a.data)
            np.add.at(out, index, grad)
            return (out,)

        return Tensor._make(data, (a,), backward, "getitem")


def _batched_matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matmul with numpy broadcasting over batch dimensions (ndim up to 3)."""
    data = a.data @ b.data
    if _op_hook is not None:
        _op_hook("matmul", 2 * data.size * a.data.shape[-1], data.nbytes)

    def backward(grad: np.ndarray):
        grad_a = grad @ np.swapaxes(b.data, -1, -2) if a.requires_grad else None
        grad_b = np.swapaxes(a.data, -1, -2) @ grad if b.requires_grad else None
        if grad_a is not None:
            grad_a = _unbroadcast(grad_a, a.shape)
        if grad_b is not None:
            grad_b = _unbroadcast(grad_b, b.shape)
        return (grad_a, grad_b)

    return Tensor._make(data, (a, b), backward, "bmm")


# ----------------------------------------------------------------------
# free functions over tensors
# ----------------------------------------------------------------------
def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    parts = list(tensors)
    data = np.concatenate([t.data for t in parts], axis=axis)
    sizes = [t.shape[axis] for t in parts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        slicer: list = [slice(None)] * grad.ndim
        grads = []
        for i in range(len(parts)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(slicer)])
        return tuple(grads)

    return Tensor._make(data, parts, backward, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    parts = list(tensors)
    data = np.stack([t.data for t in parts], axis=axis)

    def backward(grad: np.ndarray):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(parts)))

    return Tensor._make(data, parts, backward, "stack")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)
    _notify_ewise(data)

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(np.where(cond, grad, 0.0), a.shape),
            _unbroadcast(np.where(cond, 0.0, grad), b.shape),
        )

    return Tensor._make(data, (a, b), backward, "where")


def as_tensor(value: Union[Tensor, ArrayLike], dtype: Optional[np.dtype] = None) -> Tensor:
    """Coerce arrays/scalars to :class:`Tensor`; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)
