"""Numerically-stable neural-network functions over :class:`Tensor`.

These mirror the ``torch.nn.functional`` entry points the paper's training
pipeline relies on: log-softmax + cross-entropy for multi-class datasets,
binary cross-entropy with logits for the two-class ROC-AUC datasets, MSE for
the signal-regression task, and inverted dropout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AutodiffError
from .tensor import Tensor, is_grad_enabled


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis``."""
    # The max shift is a piecewise-constant offset: detaching it keeps the
    # computation stable without changing the gradient.
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    logsumexp = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - logsumexp


def cross_entropy(logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Multi-class cross-entropy from raw logits and integer labels.

    Parameters
    ----------
    logits:
        ``(N, C)`` tensor of unnormalized class scores.
    labels:
        ``(N,)`` integer array of target classes.
    reduction:
        ``"mean"`` or ``"sum"``.
    """
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise AutodiffError(f"cross_entropy expects 2-D logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise AutodiffError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    log_probs = log_softmax(logits, axis=1)
    rows = np.arange(logits.shape[0])
    picked = log_probs[(rows, labels)]
    if reduction == "mean":
        return -picked.mean()
    if reduction == "sum":
        return -picked.sum()
    raise AutodiffError(f"unknown reduction {reduction!r}")


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, reduction: str = "mean"
) -> Tensor:
    """Stable BCE from logits: ``max(x,0) - x*t + log(1+exp(-|x|))``."""
    targets_t = Tensor(np.asarray(targets, dtype=logits.dtype))
    zeros = Tensor(np.zeros_like(logits.data))
    max_part = _maximum(logits, zeros)
    softplus = ((-logits.abs()).exp() + 1.0).log()
    loss = max_part - logits * targets_t + softplus
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    raise AutodiffError(f"unknown reduction {reduction!r}")


def _maximum(a: Tensor, b: Tensor) -> Tensor:
    from .tensor import where

    return where(a.data >= b.data, a, b)


def mse_loss(prediction: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Mean-squared-error against a constant target array."""
    target_t = Tensor(np.asarray(target, dtype=prediction.dtype))
    diff = prediction - target_t
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    raise AutodiffError(f"unknown reduction {reduction!r}")


def dropout(
    x: Tensor,
    p: float,
    training: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale by ``1/(1-p)``.

    A no-op when ``training`` is false or ``p == 0``.
    """
    if not 0.0 <= p < 1.0:
        raise AutodiffError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    keep = (rng.random(x.shape) >= p).astype(x.dtype)
    scale = 1.0 / (1.0 - p)
    mask = Tensor(keep * scale)
    if not is_grad_enabled():
        return x
    return x * mask
